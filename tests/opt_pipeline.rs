//! Acceptance tests for the mid-end optimization pipeline: the autotuned
//! GEMM kernel and the Orion area filter must retire strictly fewer VM
//! instructions at `-O2` than at `-O0`, while producing bit-identical
//! results. Instruction counts come from the deterministic VM profile, so
//! these assertions are reproducible run-to-run.

use terra_autotune::{GemmConfig, GemmSession, Precision};
use terra_core::{OptLevel, Terra};
use terra_orion::{area_filter, ImageBuf, Schedule, Strategy};

/// Runs the generated 32×32 DGEMM at `level`; returns (total instructions,
/// inner-kernel exclusive instructions, the C matrix).
fn gemm_at(level: OptLevel) -> (u64, u64, Vec<u64>) {
    let mut s = GemmSession::with_opt_level(level).expect("gemm session");
    let cfg = GemmConfig {
        nb: 16,
        rm: 2,
        rn: 2,
        v: 4,
    };
    let f = s.generated(32, cfg, Precision::F64).expect("staging");
    let ws = s.workspace(32, Precision::F64);
    s.terra().set_profile(true);
    s.terra().reset_profile();
    s.run(&f, &ws);
    let profile = s.terra().profile();
    let total = profile.total_instructions();
    // The register-blocked inner kernel is staged as an anonymous Terra
    // function; its exclusive count isolates the hot loop.
    let inner = profile
        .func("anonymous")
        .expect("inner kernel profiled")
        .counters
        .exclusive;
    s.terra().set_profile(false);
    ws.verify(&s);
    let c = s
        .terra()
        .read_f64s(ws.c, 32 * 32)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    (total, inner, c)
}

#[test]
fn gemm_kernel_retires_fewer_instructions_at_o2() {
    let (total0, inner0, c0) = gemm_at(OptLevel::O0);
    let (total2, inner2, c2) = gemm_at(OptLevel::O2);
    assert!(
        total2 < total0,
        "-O2 must retire fewer instructions: O0={total0} O2={total2}"
    );
    assert!(
        inner2 < inner0,
        "inner kernel must shrink: O0={inner0} O2={inner2}"
    );
    assert_eq!(c0, c2, "optimized GEMM must produce bit-identical C");
}

/// Runs the §6.2 area filter at `level`; returns (total instructions, the
/// output image).
fn orion_at(level: OptLevel, schedule: Schedule) -> (u64, Vec<u32>) {
    let (w, h) = (32, 24);
    let mut t = Terra::new();
    t.set_opt_level(level);
    let p = area_filter();
    let stencil = p.compile(&mut t, w, h, schedule).expect("staging");
    let input = ImageBuf::alloc(&mut t, &stencil);
    let data: Vec<f32> = (0..w * h)
        .map(|i| ((i % 11) as f32 - 5.0) * 0.125)
        .collect();
    input.write(&mut t, &data);
    let out = ImageBuf::alloc(&mut t, &stencil);
    t.set_profile(true);
    t.reset_profile();
    stencil.run(&mut t, &[&input], &out);
    let total = t.profile().total_instructions();
    t.set_profile(false);
    let img = out.read(&t).into_iter().map(f32::to_bits).collect();
    (total, img)
}

#[test]
fn orion_area_filter_retires_fewer_instructions_at_o2() {
    for (label, schedule) in [
        (
            "inline",
            Schedule {
                strategy: Strategy::Inline,
                vectorize: false,
            },
        ),
        (
            "materialize",
            Schedule {
                strategy: Strategy::Materialize,
                vectorize: false,
            },
        ),
    ] {
        let (i0, img0) = orion_at(OptLevel::O0, schedule);
        let (i2, img2) = orion_at(OptLevel::O2, schedule);
        assert!(
            i2 < i0,
            "area filter ({label}) must retire fewer instructions at -O2: O0={i0} O2={i2}"
        );
        assert_eq!(img0, img2, "({label}) output must be bit-identical");
    }
}

#[test]
fn opt_levels_are_session_scoped() {
    // The knob affects functions compiled after it is set, per session.
    let mut t = Terra::new();
    assert_eq!(t.opt_level(), OptLevel::O2);
    t.set_opt_level(OptLevel::O0);
    assert_eq!(t.opt_level(), OptLevel::O0);
    t.exec("terra f(x : int) : int return x * 8 + x * 8 end")
        .unwrap();
    assert_eq!(t.call_i64("f", &[3.0]).unwrap(), 48);
}
