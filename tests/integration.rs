//! Cross-crate integration tests: the paper's evaluation systems working
//! together in one process, as the paper argues the design enables —
//! "all parts of the toolchain … inter-operate amongst themselves".

use terra_autotune::{GemmConfig, GemmSession, Precision};
use terra_classes::ClassSession;
use terra_core::{Terra, Value};
use terra_layout::{HostMesh, Layout, MeshKit};
use terra_orion::fluid::FluidSim;
use terra_orion::{area_filter, input, ImageBuf, Pipeline, Schedule, Strategy};

/// The headline GEMM shape: a tuned configuration beats naive by a wide
/// margin even in a debug-friendly problem size.
#[test]
fn gemm_generated_beats_naive() {
    let mut s = GemmSession::new().unwrap();
    let n = 64;
    let ws = s.workspace(n, Precision::F64);
    let naive = s.naive(n, Precision::F64).unwrap();
    let tuned = s
        .generated(
            n,
            GemmConfig {
                nb: 16,
                rm: 2,
                rn: 2,
                v: 4,
            },
            Precision::F64,
        )
        .unwrap();
    s.run(&tuned, &ws);
    ws.verify(&s);
    let g_naive = s.measure_gflops(&naive, &ws, 2);
    let g_tuned = s.measure_gflops(&tuned, &ws, 2);
    assert!(
        g_tuned > g_naive * 2.0,
        "tuned {g_tuned:.3} GFLOPS should beat naive {g_naive:.3} by >2x even unoptimized"
    );
}

/// Orion schedules agree on results; vectorization speeds things up.
#[test]
fn orion_vectorization_speedup_with_identical_results() {
    let p = area_filter();
    let (w, h) = (128, 96);
    let data: Vec<f32> = (0..w * h).map(|i| (i % 97) as f32 * 0.1).collect();
    let mut outs = Vec::new();
    let mut times = Vec::new();
    for vectorize in [false, true] {
        let mut t = Terra::new();
        let c = p
            .compile(
                &mut t,
                w,
                h,
                Schedule {
                    strategy: Strategy::Materialize,
                    vectorize,
                },
            )
            .unwrap();
        let img = ImageBuf::alloc(&mut t, &c);
        let out = ImageBuf::alloc(&mut t, &c);
        img.write(&mut t, &data);
        c.run(&mut t, &[&img], &out);
        let start = std::time::Instant::now();
        for _ in 0..3 {
            c.run(&mut t, &[&img], &out);
        }
        times.push(start.elapsed());
        outs.push(out.read(&t));
    }
    for (a, b) in outs[0].iter().zip(&outs[1]) {
        assert!((a - b).abs() < 1e-4);
    }
    assert!(
        times[1] < times[0],
        "vectorized {:?} should beat scalar {:?}",
        times[1],
        times[0]
    );
}

/// The fluid solver runs the same physics under every schedule and keeps
/// mass roughly conserved over several steps.
#[test]
fn fluid_simulation_is_schedule_invariant() {
    let mut results = Vec::new();
    for strategy in [Strategy::Materialize, Strategy::LineBuffer] {
        let mut sim = FluidSim::new(
            16,
            0.05,
            0.0005,
            Schedule {
                strategy,
                vectorize: true,
            },
        )
        .unwrap();
        sim.solver_iters = 4;
        let n = sim.n();
        let mut dens = vec![0.0f32; n * n];
        dens[n * n / 2 + n / 2] = 1.0;
        let d = sim.dens;
        sim.write(d, &dens);
        for _ in 0..2 {
            sim.step();
        }
        results.push(sim.read(&sim.dens));
    }
    for (a, b) in results[0].iter().zip(&results[1]) {
        assert!((a - b).abs() < 1e-4, "schedules disagree: {a} vs {b}");
    }
    let mass: f64 = results[0].iter().map(|v| *v as f64).sum();
    assert!(mass > 0.3 && mass < 1.1, "mass {mass} drifted");
}

/// Both data layouts compute identical normals on the same mesh.
#[test]
fn layouts_agree_end_to_end() {
    let mesh = HostMesh::grid(6, true);
    let mut kits: Vec<Vec<f32>> = [Layout::Aos, Layout::Soa]
        .into_iter()
        .map(|l| {
            let mut kit = MeshKit::new(&mesh, l).unwrap();
            kit.run_translate(1.0, 2.0, 3.0);
            kit.run_normals();
            let mut v = kit.positions_vec();
            v.extend(kit.normals_vec());
            v
        })
        .collect();
    let b = kits.pop().unwrap();
    let a = kits.pop().unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-5);
    }
}

/// The class system's virtual dispatch composes with hand-written Terra:
/// a Terra function takes an interface pointer produced by __cast.
#[test]
fn classes_compose_with_plain_terra() {
    let mut s = ClassSession::new().unwrap();
    s.exec(
        r#"
        local std = terralib.includec("stdlib.h")
        Valued = J.interface { value = {} -> double }
        struct Konst { v : double }
        J.implements(Konst, Valued)
        terra Konst:value() : double return self.v end
        terra mk(v : double) : &Konst
            var k = [&Konst](std.malloc(sizeof(Konst)))
            k:initclass()
            k.v = v
            return k
        end
        -- plain Terra code, no knowledge of the class library:
        terra sum3(a : &Valued, b : &Valued, c : &Valued) : double
            return a:value() + b:value() + c:value()
        end
        terra run() : double
            return sum3(mk(1.5), mk(2.5), mk(3.0))
        end
        "#,
    )
    .unwrap();
    assert_eq!(s.call_f64("run", &[]).unwrap(), 7.0);
}

/// One session hosting several of the paper's systems at once: the GEMM
/// generator script and a user stencil in the same address space, calling
/// one another's outputs.
#[test]
fn one_process_many_systems() {
    let mut t = Terra::new();
    t.exec(terra_autotune::GEMM_SCRIPT).unwrap();
    t.exec(
        r#"
        mm = genmatmul(16, 16, 2, 2, 4, double)
        local std = terralib.includec("stdlib.h")
        terra frobenius(p : &double, n : int) : double
            var s = 0.0
            for i = 0, n * n do s = s + p[i] * p[i] end
            return s
        end
        terra run() : double
            var n = 16
            var a = [&double](std.malloc(n * n * 8))
            var b = [&double](std.malloc(n * n * 8))
            var c = [&double](std.malloc(n * n * 8))
            for i = 0, n * n do
                a[i] = 1.0
                b[i] = 0.5
            end
            mm(a, b, c)
            return frobenius(c, n)
        end
        "#,
    )
    .unwrap();
    // (1 * 0.5 summed over k=16) = 8.0 per cell; 256 cells of 8² = 16384.
    assert_eq!(t.call_f64("run", &[]).unwrap(), 16384.0);
}

/// FFI sanity across the whole stack: buffers written from Rust are visible
/// to staged kernels and vice versa.
#[test]
fn rust_terra_shared_memory() {
    let mut t = Terra::new();
    t.exec("terra scale(p : &double, n : int, k : double) for i = 0, n do p[i] = p[i] * k end end")
        .unwrap();
    let buf = t.malloc(8 * 8);
    t.write_f64s(buf, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let f = t.function("scale").unwrap();
    t.invoke(&f, &[Value::Ptr(buf), Value::Int(8), Value::Float(2.5)])
        .unwrap();
    assert_eq!(
        t.read_f64s(buf, 8),
        vec![2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0]
    );
}

/// `saveobj` (the paper's "save to .o and link from C") emits a manifest for
/// a whole program's worth of functions.
#[test]
fn saveobj_manifest_for_generated_code() {
    let mut s = GemmSession::new().unwrap();
    let f = s
        .generated(
            32,
            GemmConfig {
                nb: 16,
                rm: 2,
                rn: 2,
                v: 4,
            },
            Precision::F64,
        )
        .unwrap();
    let _ = f;
    let path = std::env::temp_dir().join("terra_rs_gemm.o");
    let path_str = path.to_string_lossy().replace('\\', "/");
    s.terra()
        .exec(&format!(
            "terralib.saveobj(\"{path_str}\", {{ matmul = __gemm_1 }})"
        ))
        .unwrap();
    let manifest = std::fs::read_to_string(&path).unwrap();
    assert!(manifest.contains("symbol matmul"), "{manifest}");
    std::fs::remove_file(&path).ok();
}

/// A pipeline built from *two* DSL front ends: Orion output fed to a staged
/// reduction written directly in Terra.
#[test]
fn orion_output_consumed_by_custom_terra() {
    let mut t = Terra::new();
    let f = input(0);
    let mut p = Pipeline::new(1);
    p.stage(f.at(0, 0) * 3.0);
    let c = p.compile(&mut t, 16, 16, Schedule::match_c()).unwrap();
    let img = ImageBuf::alloc(&mut t, &c);
    let out = ImageBuf::alloc(&mut t, &c);
    img.write(&mut t, &vec![1.0; 256]);
    c.run(&mut t, &[&img], &out);
    let stride = 16 + 2 * c.padding;
    t.exec(&format!(
        "terra total(p : &float) : double\n\
             var s = 0.0\n\
             for y = 0, 16 do\n\
                 for x = 0, 16 do\n\
                     s = s + p[(y + {p}) * {stride} + x + {p}]\n\
                 end\n\
             end\n\
             return s\n\
         end",
        p = c.padding
    ))
    .unwrap();
    let tf = t.function("total").unwrap();
    let r = t.invoke(&tf, &[Value::Ptr(out.addr)]).unwrap();
    assert_eq!(r, Value::Float(3.0 * 256.0));
}
