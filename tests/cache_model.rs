//! Acceptance tests for the simulated cache hierarchy: the paper's §5
//! locality claims (blocking beats naive GEMM, SoA beats AoS) must hold as
//! *simulated miss rates*, and the locality report must be deterministic.

use terra_autotune::{GemmSession, Precision};
use terra_core::{CacheStats, OptLevel, Terra, Value};

/// Measures one run of `fname` from `src` under the profiler, invoking it
/// with `(ptr, n)` and returning the cache stats.
fn run_kernel(t: &mut Terra, fname: &str, ptr: u64, n: i64) -> CacheStats {
    let f = t.function(fname).unwrap();
    t.set_profile(true);
    t.reset_profile();
    t.invoke(&f, &[Value::Ptr(ptr), Value::Int(n)]).unwrap();
    let stats = t.profile().cache;
    t.set_profile(false);
    stats
}

#[test]
fn blocked_gemm_has_strictly_lower_l1_miss_rate_than_naive() {
    // N=96: each f64 matrix is 72 KiB, past the 32 KiB simulated L1, so the
    // naive k-inner loop re-streams B while the 16x16 blocked variant keeps
    // its three active tiles resident.
    let mut s = GemmSession::new().unwrap();
    let n = 96;
    let ws = s.workspace(n, Precision::F64);
    let naive = s.naive(n, Precision::F64).unwrap();
    let blocked = s.blocked(n, 16, Precision::F64).unwrap();
    let naive_cost = s.measure_cost(&naive, &ws);
    let blocked_cost = s.measure_cost(&blocked, &ws);
    let rate = |misses: u64, loads: u64, stores: u64| misses as f64 / (loads + stores) as f64;
    let naive_rate = rate(naive_cost.l1_misses, naive_cost.loads, naive_cost.stores);
    let blocked_rate = rate(
        blocked_cost.l1_misses,
        blocked_cost.loads,
        blocked_cost.stores,
    );
    assert!(naive_cost.l1_misses > 0, "{naive_cost:?}");
    assert!(
        blocked_rate < naive_rate,
        "blocked {blocked_rate:.4} must be < naive {naive_rate:.4} \
         (naive {naive_cost:?}, blocked {blocked_cost:?})"
    );
    // The weighted cost model sees the locality difference too: same flops,
    // so the miss penalties must separate the variants per retired load.
    assert!(blocked_cost.cost() > blocked_cost.instructions);
}

#[test]
fn soa_sum_has_strictly_lower_l1_miss_rate_than_aos() {
    let mut t = Terra::new();
    t.exec(
        r#"
        terra aos_sum(P : &double, N : int) : double
            var s = 0.0
            for i = 0, N do
                s = s + P[i * 4]
            end
            return s
        end
        terra soa_sum(P : &double, N : int) : double
            var s = 0.0
            for i = 0, N do
                s = s + P[i]
            end
            return s
        end
    "#,
    )
    .unwrap();
    let n = 4096usize;
    let p = t.malloc((n * 4 * 8) as u64);
    t.write_f64s(p, &vec![1.0; n * 4]);
    let aos = run_kernel(&mut t, "aos_sum", p, n as i64);
    let soa = run_kernel(&mut t, "soa_sum", p, n as i64);
    // Stride-4 touches a new 64 B line every other access; unit stride every
    // eighth. Both sweeps are cold (reset_profile cold-resets the tags).
    assert!(
        soa.l1.miss_rate() < aos.l1.miss_rate(),
        "soa {:.4} must be < aos {:.4}",
        soa.l1.miss_rate(),
        aos.l1.miss_rate()
    );
    assert!(aos.l1.miss_rate() > 0.4, "{aos:?}");
}

#[test]
fn locality_report_is_byte_identical_across_runs() {
    let src = r#"
        terra walk(P : &double, N : int) : double
            var s = 0.0
            for i = 0, N do
                s = s + P[i * 3]
            end
            return s
        end
    "#;
    let run = || {
        let mut t = Terra::new();
        t.exec(src).unwrap();
        let p = t.malloc(3 * 2048 * 8);
        t.write_f64s(p, &vec![1.0; 3 * 2048]);
        run_kernel(&mut t, "walk", p, 2048);
        let f = t.function("walk").unwrap();
        t.set_profile(true);
        t.reset_profile();
        t.invoke(&f, &[Value::Ptr(p), Value::Int(2048)]).unwrap();
        t.profile().render_counters()
    };
    let a = run();
    let b = run();
    assert!(a.contains("== locality =="), "{a}");
    assert_eq!(a, b, "locality report must be byte-identical across runs");
}

#[test]
fn locality_identical_at_o0_and_o2_for_straight_line_kernel() {
    // Loads feeding stores to distinct addresses: no CSE/DCE/LICM opportunity
    // touches the access stream, so the simulated locality must be identical
    // at every -O level.
    let src = r#"
        terra shuffle(P : &double, N : int) : double
            P[N] = P[0]
            P[N + 1] = P[1]
            P[N + 2] = P[2]
            return P[N]
        end
    "#;
    let locality_at = |level: OptLevel| {
        let mut t = Terra::new();
        t.set_opt_level(level);
        t.exec(src).unwrap();
        let p = t.malloc(4096 * 8);
        t.write_f64s(p, &[3.0, 4.0, 5.0]);
        let f = t.function("shuffle").unwrap();
        t.set_profile(true);
        t.reset_profile();
        let got = t.invoke(&f, &[Value::Ptr(p), Value::Int(512)]).unwrap();
        assert_eq!(got, Value::Float(3.0));
        t.profile().render_locality()
    };
    let o0 = locality_at(OptLevel::O0);
    let o2 = locality_at(OptLevel::O2);
    assert!(o0.contains("== locality =="), "{o0}");
    assert!(o0.contains("shuffle:"), "{o0}");
    assert_eq!(o0, o2, "optimizer must not change the simulated locality");
}
