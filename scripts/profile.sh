#!/usr/bin/env bash
# Profile a Lua-Terra script on the release VM: prints the per-function /
# opcode / memory counter report and writes a Chrome trace-event JSON file
# (open in about:tracing or https://ui.perfetto.dev).
#
# Usage: ./scripts/profile.sh script.t [trace.json] [script args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
    echo "usage: $0 script.t [trace.json] [script args...]" >&2
    exit 1
fi

script="$1"
shift
trace_out="${1:-trace.json}"
[[ $# -gt 0 ]] && shift

cargo build --release -p terra-core --bins -q
exec ./target/release/terra --profile --trace-out "$trace_out" "$script" "$@"
