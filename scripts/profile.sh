#!/usr/bin/env bash
# Profile a Lua-Terra script on the release VM: prints the per-function /
# opcode / memory / locality counter report and writes a trace file —
# Chrome trace-event JSON by default (open in about:tracing or
# https://ui.perfetto.dev), or folded flamegraph stacks when the output
# path ends in .folded.
#
# Usage: ./scripts/profile.sh script.t [trace.json|trace.folded] [script args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
    echo "usage: $0 script.t [trace.json|trace.folded] [script args...]" >&2
    exit 1
fi

script="$1"
shift
trace_out="${1:-trace.json}"
[[ $# -gt 0 ]] && shift

cargo build --release -p terra-core --bins -q
# Capture the report (it goes to stderr) so an empty profile fails loudly
# instead of looking like a successful run with nothing to say.
set +e
report="$(./target/release/terra --profile --trace-out "$trace_out" "$script" "$@" 2>&1)"
status=$?
set -e
printf '%s\n' "$report"
if [[ $status -ne 0 ]]; then
    exit "$status"
fi
if ! grep -q "== opcode counters ==" <<< "$report"; then
    echo "profile.sh: --profile produced no counter report (profiler broken?)" >&2
    exit 1
fi

# -- telemetry smoke tests ---------------------------------------------------
# These run on fixed fixtures regardless of the profiled script, so a broken
# heap profiler or sampler fails here even when the script above is trivial.

echo "==> heap-profile smoke (examples/leak.t must report its seeded leak)"
heap_report="$(./target/release/terra --heap-profile examples/leak.t 2>&1)"
grep -q "== heap ==" <<< "$heap_report" \
    || { echo "profile.sh: --heap-profile produced no heap section" >&2; exit 1; }
grep -q "leaked allocations" <<< "$heap_report" \
    || { echo "profile.sh: seeded leak in examples/leak.t not reported" >&2; exit 1; }
grep -q "via quote at line" <<< "$heap_report" \
    || { echo "profile.sh: leak report lost its staging provenance chain" >&2; exit 1; }

echo "==> sampling smoke (sampled top-1 must agree with the exact profiler)"
agree="$(./target/release/terra --profile --sample=97 examples/saxpy.t 2>&1)"
exact_top="$(awk '/^== function profile ==/{f=1; next} f && $1 ~ /^[0-9]+$/ {print $4; exit}' \
    <<< "$agree")"
sample_top="$(awk '/^== samples ==/{f=1; next} f && $1 ~ /^[0-9]+$/ {print $3; exit}' \
    <<< "$agree")"
if [[ -z "$exact_top" || "$exact_top" != "$sample_top" ]]; then
    echo "profile.sh: sampled hot function '${sample_top:-?}' disagrees with exact" \
         "profile '${exact_top:-?}'" >&2
    exit 1
fi
echo "profile.sh: sampled and exact profilers agree on '$exact_top'"
