#!/usr/bin/env bash
# Profile a Lua-Terra script on the release VM: prints the per-function /
# opcode / memory / locality counter report and writes a trace file —
# Chrome trace-event JSON by default (open in about:tracing or
# https://ui.perfetto.dev), or folded flamegraph stacks when the output
# path ends in .folded.
#
# Usage: ./scripts/profile.sh script.t [trace.json|trace.folded] [script args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
    echo "usage: $0 script.t [trace.json|trace.folded] [script args...]" >&2
    exit 1
fi

script="$1"
shift
trace_out="${1:-trace.json}"
[[ $# -gt 0 ]] && shift

cargo build --release -p terra-core --bins -q
# Capture the report (it goes to stderr) so an empty profile fails loudly
# instead of looking like a successful run with nothing to say.
set +e
report="$(./target/release/terra --profile --trace-out "$trace_out" "$script" "$@" 2>&1)"
status=$?
set -e
printf '%s\n' "$report"
if [[ $status -ne 0 ]]; then
    exit "$status"
fi
if ! grep -q "== opcode counters ==" <<< "$report"; then
    echo "profile.sh: --profile produced no counter report (profiler broken?)" >&2
    exit 1
fi
