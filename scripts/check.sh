#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, and both test profiles.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (debug: exercises the IR verifier gates)"
cargo test --workspace -q

echo "==> cargo test --release"
cargo test --workspace --release -q

echo "==> profile smoke (terra --profile --trace-out)"
trace_json="$(mktemp)"
trap 'rm -f "$trace_json"' EXIT
# Capture instead of piping into grep -q: with pipefail, grep exiting at the
# first match would otherwise fail the step via SIGPIPE once the report grows
# past the pipe buffer.
report="$(./target/release/terra --profile --trace-out "$trace_json" examples/saxpy.t 2>&1)"
grep -q "== opcode counters ==" <<< "$report" \
    || { echo "profile smoke: no opcode counters in report" >&2; exit 1; }
grep -q '"traceEvents"' "$trace_json" \
    || { echo "profile smoke: trace file is missing traceEvents" >&2; exit 1; }

echo "==> optimizer differential (-O0 vs -O2 stdout must match)"
# Run without --profile: the perf counters examples print are live only under
# the profiler, so plain stdout is level-independent unless codegen is wrong.
for script in examples/*.t; do
    o0="$(./target/release/terra -O0 "$script")"
    o2="$(./target/release/terra -O2 "$script")"
    if [ "$o0" != "$o2" ]; then
        echo "optimizer differential: $script output differs between -O0 and -O2" >&2
        diff <(printf '%s\n' "$o0") <(printf '%s\n' "$o2") >&2 || true
        exit 1
    fi
done

echo "==> perfprobe (writes BENCH_opt.json with -O0/-O2 instruction counts)"
cargo run --release --example perfprobe --quiet
grep -q '"kernels"' BENCH_opt.json \
    || { echo "perfprobe: BENCH_opt.json is missing kernel entries" >&2; exit 1; }

echo "All checks passed."
