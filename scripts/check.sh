#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, and both test profiles.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (debug: exercises the IR verifier gates)"
cargo test --workspace -q

echo "==> cargo test --release"
cargo test --workspace --release -q

echo "All checks passed."
