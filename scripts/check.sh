#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, and both test profiles.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (debug: exercises the IR verifier gates)"
cargo test --workspace -q

echo "==> cargo test --release"
cargo test --workspace --release -q

echo "==> profile smoke (terra --profile --trace-out)"
# --trace-out validates the sink extension, so the temp file needs one.
trace_json="$(mktemp --suffix=.json)"
trap 'rm -f "$trace_json"' EXIT
# Capture instead of piping into grep -q: with pipefail, grep exiting at the
# first match would otherwise fail the step via SIGPIPE once the report grows
# past the pipe buffer.
report="$(./target/release/terra --profile --trace-out "$trace_json" examples/saxpy.t 2>&1)"
grep -q "== opcode counters ==" <<< "$report" \
    || { echo "profile smoke: no opcode counters in report" >&2; exit 1; }
grep -q '"traceEvents"' "$trace_json" \
    || { echo "profile smoke: trace file is missing traceEvents" >&2; exit 1; }

echo "==> cache-report smoke (terra --cache, locality section, .folded export)"
trace_folded="$(mktemp --suffix=.folded)"
trap 'rm -f "$trace_json" "$trace_folded"' EXIT
report="$(./target/release/terra --cache l1=16k,64,4:l2=128k,64,8 \
    --trace-out "$trace_folded" examples/saxpy.t 2>&1)"
grep -q "== locality ==" <<< "$report" \
    || { echo "cache smoke: no locality section in report" >&2; exit 1; }
grep -q "16384B/64B-line/4-way" <<< "$report" \
    || { echo "cache smoke: --cache geometry not reflected in report" >&2; exit 1; }
grep -qE ":[0-9]+$" <(grep -A14 "hot lines" <<< "$report") \
    || { echo "cache smoke: no per-line attribution in hot-lines table" >&2; exit 1; }
[ -s "$trace_folded" ] \
    || { echo "cache smoke: .folded trace file is empty" >&2; exit 1; }
awk 'NF < 2 || $NF !~ /^[0-9]+$/ { bad=1 } END { exit bad }' "$trace_folded" \
    || { echo "cache smoke: malformed folded-stack line" >&2; exit 1; }

echo "==> optimizer differential (-O0 vs -O2 stdout must match)"
# Run without --profile: the perf counters examples print are live only under
# the profiler, so plain stdout is level-independent unless codegen is wrong.
for script in examples/*.t; do
    o0="$(./target/release/terra -O0 "$script")"
    o2="$(./target/release/terra -O2 "$script")"
    if [ "$o0" != "$o2" ]; then
        echo "optimizer differential: $script output differs between -O0 and -O2" >&2
        diff <(printf '%s\n' "$o0") <(printf '%s\n' "$o2") >&2 || true
        exit 1
    fi
done

echo "==> thread differential (--threads=1 vs --threads=4 stdout must match)"
# The parallelfor chunk schedule is a function of the iteration count alone,
# so program output must be independent of the worker-thread count.
for script in examples/*.t; do
    seq_out="$(./target/release/terra --threads=1 "$script")"
    par_out="$(./target/release/terra --threads=4 "$script")"
    if [ "$seq_out" != "$par_out" ]; then
        echo "thread differential: $script output differs between --threads=1 and --threads=4" >&2
        diff <(printf '%s\n' "$seq_out") <(printf '%s\n' "$par_out") >&2 || true
        exit 1
    fi
done
# The deterministic profile sections (function/opcode/memory/cache counters,
# samples, and the new == parallel == section, whose per-chunk shard metrics
# are chunk-indexed and schedule-independent) must also be thread-count
# invariant; only the wall-clock staging timeline above them may differ.
prof_sections() {
    ./target/release/terra --profile --threads="$1" examples/parfill.t 2>&1 \
        | sed -n '/== function profile ==/,$p'
}
if [ "$(prof_sections 1)" != "$(prof_sections 4)" ]; then
    echo "thread differential: deterministic profile sections differ with --threads=4" >&2
    diff <(prof_sections 1) <(prof_sections 4) >&2 || true
    exit 1
fi

echo "==> remarks smoke (terra --remarks / --remarks-out)"
remarks_json="$(mktemp)"
remarks_json2="$(mktemp)"
trap 'rm -f "$trace_json" "$trace_folded" "$remarks_json" "$remarks_json2"' EXIT
report="$(./target/release/terra --remarks -O2 examples/sieve.t 2>&1)"
grep -q "== remarks ==" <<< "$report" \
    || { echo "remarks smoke: no remarks section at -O2" >&2; exit 1; }
grep -qE "^  (inline|licm|cse) +applied" <<< "$report" \
    || { echo "remarks smoke: no applied inline/licm/cse remark at -O2" >&2; exit 1; }
grep -q "via quote at line" <<< "$report" \
    || { echo "remarks smoke: no staging provenance chain in remarks" >&2; exit 1; }
report="$(./target/release/terra --remarks -O0 examples/sieve.t 2>&1)"
grep -qE "^  [a-z]+ +(applied|missed)" <<< "$report" \
    && { echo "remarks smoke: -O0 must produce no remarks" >&2; exit 1; }
./target/release/terra --remarks-out "$remarks_json" -O2 examples/sieve.t > /dev/null 2>&1
./target/release/terra --remarks-out "$remarks_json2" -O2 examples/sieve.t > /dev/null 2>&1
head -c1 "$remarks_json" | grep -q '\[' \
    || { echo "remarks smoke: --remarks-out did not write a JSON array" >&2; exit 1; }
for key in pass kind function line provenance message; do
    grep -q "\"$key\"" "$remarks_json" \
        || { echo "remarks smoke: --remarks-out JSON missing key $key" >&2; exit 1; }
done
cmp -s "$remarks_json" "$remarks_json2" \
    || { echo "remarks smoke: --remarks-out output differs between runs" >&2; exit 1; }

echo "==> perfprobe (writes BENCH_opt.json with -O0/-O2 instruction counts)"
# Snapshot the committed baselines first: perfprobe overwrites them in place,
# and the bench-diff step below compares fresh numbers against the snapshot.
bench_snap="$(mktemp -d)"
trap 'rm -f "$trace_json" "$trace_folded" "$remarks_json" "$remarks_json2"; rm -rf "$bench_snap"' EXIT
cp BENCH_*.json "$bench_snap"/
cargo run --release --example perfprobe --quiet
grep -q '"kernels"' BENCH_opt.json \
    || { echo "perfprobe: BENCH_opt.json is missing kernel entries" >&2; exit 1; }

echo "==> parbench (writes BENCH_parallel.json with 1/2/4/8-thread scaling curves)"
cargo run --release --example parbench --quiet > /dev/null

echo "==> bench diff (fresh BENCH_*.json vs committed baselines, per-metric tolerances)"
for fresh in BENCH_*.json; do
    ./scripts/bench_diff.sh "$bench_snap/$fresh" "$fresh" "$fresh"
done

echo "==> BENCH byte-stability (a second perfprobe run must reproduce every file)"
bench_rerun="$(mktemp -d)"
trap 'rm -f "$trace_json" "$trace_folded" "$remarks_json" "$remarks_json2"; \
     rm -rf "$bench_snap" "$bench_rerun"' EXIT
(cd "$bench_rerun" && "$OLDPWD/target/release/examples/perfprobe" > /dev/null)
for fresh in BENCH_*.json; do
    # BENCH_parallel.json records wall-clock scaling curves: machine-dependent
    # by design, validated by schema + speedup gates below instead.
    [ "$fresh" = "BENCH_parallel.json" ] && continue
    cmp -s "$fresh" "$bench_rerun/$fresh" \
        || { echo "bench stability: $fresh differs between two runs" >&2; exit 1; }
done

echo "==> BENCH_cache.json schema (keys, rates in [0,1], blocked < naive, soa < aos)"
grep -q '"config"' BENCH_cache.json \
    || { echo "BENCH_cache: missing config key" >&2; exit 1; }
for key in l1_accesses l1_misses l1_miss_rate l2_misses l2_miss_rate; do
    grep -q "\"$key\"" BENCH_cache.json \
        || { echo "BENCH_cache: missing key $key" >&2; exit 1; }
done
for kernel in gemm_naive_96 gemm_blocked_96 aos_sum_4096 soa_sum_4096; do
    grep -q "\"$kernel\"" BENCH_cache.json \
        || { echo "BENCH_cache: missing kernel $kernel" >&2; exit 1; }
done
# POSIX-portable rate extraction: one kernel entry per line in the file.
l1_rate() {
    sed -n "s/.*\"name\": \"$1\".*\"l1_miss_rate\": \([0-9.]*\).*/\1/p" BENCH_cache.json
}
for r in $(sed -n 's/.*"l1_miss_rate": \([0-9.]*\).*"l2_miss_rate": \([0-9.]*\).*/\1 \2/p' \
        BENCH_cache.json); do
    awk -v r="$r" 'BEGIN { exit !(r >= 0 && r <= 1) }' \
        || { echo "BENCH_cache: miss rate $r outside [0,1]" >&2; exit 1; }
done
awk -v naive="$(l1_rate gemm_naive_96)" -v blocked="$(l1_rate gemm_blocked_96)" \
    'BEGIN { exit !(blocked < naive) }' \
    || { echo "BENCH_cache: blocked GEMM L1 miss rate must be strictly below naive" >&2; exit 1; }
awk -v aos="$(l1_rate aos_sum_4096)" -v soa="$(l1_rate soa_sum_4096)" \
    'BEGIN { exit !(soa < aos) }' \
    || { echo "BENCH_cache: SoA L1 miss rate must be strictly below AoS" >&2; exit 1; }

echo "==> BENCH_remarks.json schema (kernel entry, per-pass applied/missed counts)"
grep -q '"kernel"' BENCH_remarks.json \
    || { echo "BENCH_remarks: missing kernel key" >&2; exit 1; }
for key in pass applied missed; do
    grep -q "\"$key\"" BENCH_remarks.json \
        || { echo "BENCH_remarks: missing key $key" >&2; exit 1; }
done
grep -qE '"applied": [1-9]' BENCH_remarks.json \
    || { echo "BENCH_remarks: no pass reported an applied remark" >&2; exit 1; }

echo "==> BENCH_parallel.json schema (kernels, thread curve, determinism, speedup gate)"
grep -q '"host_cores"' BENCH_parallel.json \
    || { echo "BENCH_parallel: missing host_cores key" >&2; exit 1; }
for kernel in gemm_parallel_96 stencil_parallel_256; do
    grep -q "\"name\": \"$kernel\"" BENCH_parallel.json \
        || { echo "BENCH_parallel: missing kernel $kernel" >&2; exit 1; }
done
for threads in 1 2 4 8; do
    grep -q "\"threads\": $threads" BENCH_parallel.json \
        || { echo "BENCH_parallel: missing run at $threads thread(s)" >&2; exit 1; }
done
# Every run carries the telemetry verdict: imbalance >= 1 (max/mean chunk
# instructions) and efficiency in (0, 1] (ideal over static-schedule span).
for key in imbalance efficiency; do
    grep -q "\"$key\"" BENCH_parallel.json \
        || { echo "BENCH_parallel: missing key $key" >&2; exit 1; }
done
for v in $(grep -oE '"imbalance": [0-9.]+' BENCH_parallel.json | grep -oE '[0-9.]+$'); do
    awk -v v="$v" 'BEGIN { exit !(v >= 1.0) }' \
        || { echo "BENCH_parallel: imbalance $v below 1.0" >&2; exit 1; }
done
for v in $(grep -oE '"efficiency": [0-9.]+' BENCH_parallel.json | grep -oE '[0-9.]+$'); do
    awk -v v="$v" 'BEGIN { exit !(v > 0 && v <= 1.0) }' \
        || { echo "BENCH_parallel: efficiency $v outside (0, 1]" >&2; exit 1; }
done
grep -q '"deterministic": 0' BENCH_parallel.json \
    && { echo "BENCH_parallel: a kernel reported thread-dependent results" >&2; exit 1; }
# Scaling gate: on hosts with >= 4 cores the 4-thread GEMM must be at least
# 2x the sequential fallback. Single-core CI boxes can only validate
# correctness, not speedup, so the gate is conditional.
cores="$(sed -n 's/.*"host_cores": \([0-9]*\).*/\1/p' BENCH_parallel.json)"
if [ "${cores:-1}" -ge 4 ]; then
    gemm4="$(sed -n 's/.*"name": "gemm_parallel_96".*"threads": 4, "ms": [0-9.]*, "speedup": \([0-9.]*\).*/\1/p' \
        BENCH_parallel.json)"
    awk -v s="${gemm4:-0}" 'BEGIN { exit !(s >= 2.0) }' \
        || { echo "BENCH_parallel: 4-thread GEMM speedup ${gemm4:-?} below 2x on a ${cores}-core host" >&2; exit 1; }
fi

echo "==> lint sweep (terra --lint over examples must stay clean)"
for script in examples/*.t; do
    lint_err="$(./target/release/terra --lint "$script" 2>&1 >/dev/null)"
    if grep -qE "(warning|error)\[" <<< "$lint_err"; then
        echo "lint sweep: $script produced diagnostics:" >&2
        printf '%s\n' "$lint_err" >&2
        exit 1
    fi
done

echo "==> check-elision differential (-O2 vs -O2 --no-checkelim stdout must match)"
for script in examples/*.t; do
    fast="$(./target/release/terra -O2 "$script")"
    slow="$(./target/release/terra -O2 --no-checkelim "$script")"
    if [ "$fast" != "$slow" ]; then
        echo "check-elision differential: $script output differs with --no-checkelim" >&2
        diff <(printf '%s\n' "$fast") <(printf '%s\n' "$slow") >&2 || true
        exit 1
    fi
done

echo "==> BENCH_absint.json schema (kernels, proven_pct threshold, elided < checked)"
for key in instructions_checked instructions_elided accesses_total accesses_elided proven_pct; do
    grep -q "\"$key\"" BENCH_absint.json \
        || { echo "BENCH_absint: missing key $key" >&2; exit 1; }
done
for kernel in gemm_static_24 saxpy_static_4096 stencil_static_1024; do
    grep -q "\"$kernel\"" BENCH_absint.json \
        || { echo "BENCH_absint: missing kernel $kernel" >&2; exit 1; }
done
absint_field() {
    sed -n "s/.*\"name\": \"$1\".*\"$2\": \([0-9.]*\).*/\1/p" BENCH_absint.json
}
awk -v pct="$(absint_field gemm_static_24 proven_pct)" \
    'BEGIN { exit !(pct >= 30) }' \
    || { echo "BENCH_absint: GEMM proven_pct must be at least 30" >&2; exit 1; }
for kernel in gemm_static_24 saxpy_static_4096 stencil_static_1024; do
    awk -v c="$(absint_field "$kernel" instructions_checked)" \
        -v e="$(absint_field "$kernel" instructions_elided)" \
        'BEGIN { exit !(e < c) }' \
        || { echo "BENCH_absint: $kernel elided run must retire fewer instructions" >&2; exit 1; }
done

echo "==> BENCH_heap.json schema (sites, quote provenance, seeded leak)"
for key in func line provenance count bytes peak_bytes live_count live_bytes \
           leaked_allocs leaked_bytes peak_live_bytes; do
    grep -q "\"$key\"" BENCH_heap.json \
        || { echo "BENCH_heap: missing key $key" >&2; exit 1; }
done
grep -q "via quote at line" BENCH_heap.json \
    || { echo "BENCH_heap: no staged-malloc provenance chain" >&2; exit 1; }
grep -q '"leaked_allocs": 1' BENCH_heap.json \
    || { echo "BENCH_heap: seeded leak not reported" >&2; exit 1; }

echo "==> BENCH_replay.json schema (format version, million-instruction footprint)"
for key in format_version retired_instructions effects checkpoints cadence coarse_bytes; do
    grep -q "\"$key\"" BENCH_replay.json \
        || { echo "BENCH_replay: missing key $key" >&2; exit 1; }
done
grep -q '"format_version": 1' BENCH_replay.json \
    || { echo "BENCH_replay: unknown recording format version (gates understand v1 only; a format bump needs a deliberate refresh here)" >&2; exit 1; }
replay_field() { sed -n "s/.*\"$1\": \([0-9.]*\).*/\1/p" BENCH_replay.json; }
awk -v r="$(replay_field retired_instructions)" 'BEGIN { exit !(r >= 1000000) }' \
    || { echo "BENCH_replay: workload must retire at least a million instructions" >&2; exit 1; }
awk -v b="$(replay_field coarse_bytes)" 'BEGIN { exit !(b > 0 && b <= 262144) }' \
    || { echo "BENCH_replay: coarse recording must stay within (0, 256 KiB]" >&2; exit 1; }

echo "==> heap-profile smoke (terra --heap-profile, leak report with provenance)"
report="$(./target/release/terra --heap-profile examples/leak.t 2>&1)"
grep -q "== heap ==" <<< "$report" \
    || { echo "heap smoke: no heap section in report" >&2; exit 1; }
grep -q "leaked allocations" <<< "$report" \
    || { echo "heap smoke: seeded leak not reported" >&2; exit 1; }
grep -q "via quote at line" <<< "$report" \
    || { echo "heap smoke: leak site lost its staging provenance" >&2; exit 1; }

echo "==> sampling smoke (terra --sample, deterministic across runs)"
s1="$(./target/release/terra --sample=100 examples/leak.t 2>&1)"
s2="$(./target/release/terra --sample=100 examples/leak.t 2>&1)"
grep -q "== samples ==" <<< "$s1" \
    || { echo "sampling smoke: no samples section in report" >&2; exit 1; }
[ "$s1" = "$s2" ] \
    || { echo "sampling smoke: sample profile differs between two runs" >&2; exit 1; }

echo "==> event-stream smoke (terra --events-out, valid JSONL, byte-stable)"
events_a="$(mktemp --suffix=.jsonl)"
events_b="$(mktemp --suffix=.jsonl)"
trap 'rm -f "$trace_json" "$trace_folded" "$remarks_json" "$remarks_json2" \
     "$events_a" "$events_b"; rm -rf "$bench_snap" "$bench_rerun"' EXIT
./target/release/terra --events-out "$events_a" --sample=100 examples/leak.t > /dev/null 2>&1
./target/release/terra --events-out "$events_b" --sample=100 examples/leak.t > /dev/null 2>&1
head -c1 "$events_a" | grep -q '{' \
    || { echo "events smoke: stream does not start with a JSON object" >&2; exit 1; }
awk '!/^\{.*\}$/ { bad=1 } END { exit bad }' "$events_a" \
    || { echo "events smoke: non-object line in JSONL stream" >&2; exit 1; }
for type in meta span func mem heap_site leak sample; do
    grep -q "\"type\":\"$type\"" "$events_a" \
        || { echo "events smoke: missing record type $type" >&2; exit 1; }
done
# The meta record versions the JSONL schema; an unknown version means the
# consumer-facing format changed without a deliberate gate update.
grep -q '"type":"meta","version":1' "$events_a" \
    || { echo "events smoke: meta record does not carry schema version 1" >&2; exit 1; }
cmp -s "$events_a" "$events_b" \
    || { echo "events smoke: event stream differs between two runs" >&2; exit 1; }

echo "==> parallel telemetry smoke (== parallel == section, par_* JSONL records)"
# The report's == parallel == section must be byte-stable across runs at a
# fixed thread count (the shard metrics are deterministic instruction counts,
# not wall-clock), and — by construction — identical across thread counts.
par_report() {
    ./target/release/terra --profile --threads="$1" examples/parfill.t 2>&1 \
        | sed -n '/== parallel ==/,/== opcode counters ==/p'
}
par_a="$(par_report 4)"
grep -q "== parallel ==" <<< "$par_a" \
    || { echo "parallel smoke: no == parallel == section in report" >&2; exit 1; }
grep -q "imbalance" <<< "$par_a" \
    || { echo "parallel smoke: no imbalance figure in report" >&2; exit 1; }
grep -q "serial fraction" <<< "$par_a" \
    || { echo "parallel smoke: no serial-fraction estimate in report" >&2; exit 1; }
[ "$par_a" = "$(par_report 4)" ] \
    || { echo "parallel smoke: == parallel == differs between two 4-thread runs" >&2; exit 1; }
[ "$par_a" = "$(par_report 1)" ] \
    || { echo "parallel smoke: == parallel == depends on the thread count" >&2; exit 1; }
# The JSONL stream gains par_site/par_chunk/par_worker records under a
# parallel workload, and stays byte-stable like every other record type.
par_events_a="$(mktemp --suffix=.jsonl)"
par_events_b="$(mktemp --suffix=.jsonl)"
trap 'rm -f "$trace_json" "$trace_folded" "$remarks_json" "$remarks_json2" \
     "$events_a" "$events_b" "$par_events_a" "$par_events_b"; \
     rm -rf "$bench_snap" "$bench_rerun"' EXIT
./target/release/terra --profile --threads=4 --events-out "$par_events_a" \
    examples/parfill.t > /dev/null 2>&1
./target/release/terra --profile --threads=4 --events-out "$par_events_b" \
    examples/parfill.t > /dev/null 2>&1
for type in par_site par_chunk par_worker; do
    grep -q "\"type\":\"$type\"" "$par_events_a" \
        || { echo "parallel smoke: missing JSONL record type $type" >&2; exit 1; }
done
cmp -s "$par_events_a" "$par_events_b" \
    || { echo "parallel smoke: par_* event stream differs between two runs" >&2; exit 1; }

echo "==> trace-sink validation (unknown --trace-out extension must be rejected)"
if ./target/release/terra --trace-out /tmp/trace.csv examples/saxpy.t > /dev/null 2>&1; then
    echo "trace-sink: unsupported extension was silently accepted" >&2; exit 1
fi

echo "==> record/replay smoke (flight recorder over examples/gemm.t)"
rec_o0="$(mktemp --suffix=.rec)"
rec_o2="$(mktemp --suffix=.rec)"
rec_again="$(mktemp --suffix=.rec)"
trap 'rm -f "$trace_json" "$trace_folded" "$remarks_json" "$remarks_json2" \
     "$events_a" "$events_b" "$par_events_a" "$par_events_b" \
     "$rec_o0" "$rec_o2" "$rec_again"; \
     rm -rf "$bench_snap" "$bench_rerun"' EXIT
./target/release/terra --record="$rec_o0" -O0 examples/gemm.t > /dev/null 2>&1
./target/release/terra --record="$rec_o2" -O2 examples/gemm.t > /dev/null 2>&1
# Every recording opens with the exact format-version header; consumers key
# their parsers off it, so an unknown header must fail here, not downstream.
head -1 "$rec_o0" | grep -qx '#terra-rec v1' \
    || { echo "record smoke: recording does not open with '#terra-rec v1'" >&2; exit 1; }
# Cross-level alignment: the -O0 and -O2 effect streams must agree at every
# checkpoint (exit 0 and an explicit zero-divergence verdict).
diff_out="$(./target/release/terra replay-diff "$rec_o0" "$rec_o2")" \
    || { echo "record smoke: replay-diff found a -O0 vs -O2 divergence: $diff_out" >&2; exit 1; }
grep -q "0 divergences" <<< "$diff_out" \
    || { echo "record smoke: replay-diff verdict missing zero-divergence count" >&2; exit 1; }
# Recordings are deterministic artifacts: a re-record at the same level is
# byte-identical, and the thread count must not leak into the bytes at all.
./target/release/terra --record="$rec_again" -O2 examples/gemm.t > /dev/null 2>&1
cmp -s "$rec_o2" "$rec_again" \
    || { echo "record smoke: recording differs between two identical runs" >&2; exit 1; }
./target/release/terra --record="$rec_again" --threads=4 examples/gemm.t > /dev/null 2>&1
cmp -s "$rec_o2" "$rec_again" \
    || { echo "record smoke: recording depends on --threads" >&2; exit 1; }
# Replay re-executes the recorded script and verifies every checkpoint.
./target/release/terra --replay="$rec_o2" > /dev/null 2>&1 \
    || { echo "record smoke: --replay failed to verify its own recording" >&2; exit 1; }
# Strict sink validation, same contract as --trace-out.
if ./target/release/terra --record=/tmp/run.json examples/gemm.t > /dev/null 2>&1; then
    echo "record smoke: unsupported .rec sink extension was silently accepted" >&2; exit 1
fi

echo "All checks passed."
