#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, and both test profiles.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (debug: exercises the IR verifier gates)"
cargo test --workspace -q

echo "==> cargo test --release"
cargo test --workspace --release -q

echo "==> profile smoke (terra --profile --trace-out)"
trace_json="$(mktemp)"
trap 'rm -f "$trace_json"' EXIT
./target/release/terra --profile --trace-out "$trace_json" examples/saxpy.t 2>&1 \
    | grep -q "== opcode counters ==" \
    || { echo "profile smoke: no opcode counters in report" >&2; exit 1; }
grep -q '"traceEvents"' "$trace_json" \
    || { echo "profile smoke: trace file is missing traceEvents" >&2; exit 1; }

echo "All checks passed."
