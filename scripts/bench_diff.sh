#!/usr/bin/env bash
# Compares a freshly generated BENCH_*.json against its committed baseline,
# metric by metric, with per-metric tolerances:
#
#   - keys matching version          exact match required    (schema/format
#                                    versions never drift; an unknown version
#                                    fails loudly and needs a deliberate
#                                    baseline + gate refresh)
#   - keys matching rate/reduction   absolute drift <= 0.02  (rates live in [0,1])
#   - keys matching pct              absolute drift <= 2     (percentages, 0-100)
#   - imbalance / efficiency         absolute drift <= 0.05  (instruction-count
#                                    ratios near 1.0; deterministic at a fixed
#                                    thread count but allowed a little room so a
#                                    kernel tweak does not demand a baseline
#                                    refresh for a harmless third decimal)
#   - ms / speedup / host_cores      skipped (wall-clock and machine-dependent;
#                                    BENCH_parallel.json has its own schema and
#                                    scaling gates in check.sh)
#   - everything else                relative drift <= 5%    (deterministic counts)
#
# The two files must expose the same metric sequence — a schema change (new
# kernel, renamed key, reordered entry) fails the diff so it gets a deliberate
# baseline refresh instead of sliding through.
#
# Usage: bench_diff.sh BASELINE FRESH [NAME]
# Exits 0 when every metric is within tolerance (or the baseline is missing,
# with a note), 1 on drift or schema change.
set -euo pipefail

baseline="$1"
fresh="$2"
name="${3:-$(basename "$baseline")}"

if [ ! -f "$baseline" ]; then
    echo "bench_diff: $name: no committed baseline, skipping" >&2
    exit 0
fi
if [ ! -f "$fresh" ]; then
    echo "bench_diff: $name: fresh benchmark file $fresh is missing" >&2
    exit 1
fi

# Pull out every `"key": <number>` pair, one per line, as `key value`. The
# BENCH writers emit one JSON object per line, so this stays order-faithful.
extract() {
    grep -oE '"[A-Za-z_0-9]+": *-?[0-9][0-9.]*' "$1" | sed 's/"//g; s/: */ /'
}

base_pairs="$(extract "$baseline")"
fresh_pairs="$(extract "$fresh")"

if [ "$(cut -d' ' -f1 <<< "$base_pairs")" != "$(cut -d' ' -f1 <<< "$fresh_pairs")" ]; then
    echo "bench_diff: $name: metric schema changed between baseline and fresh run" >&2
    diff <(cut -d' ' -f1 <<< "$base_pairs") <(cut -d' ' -f1 <<< "$fresh_pairs") >&2 || true
    exit 1
fi

paste -d' ' <(printf '%s\n' "$base_pairs") <(printf '%s\n' "$fresh_pairs") \
    | awk -v name="$name" '
{
    key = $1; old = $2 + 0; cur = $4 + 0
    if (key ~ /version/) {
        if (cur != old) {
            bad = 1
            printf "bench_diff: %s: %s changed %s -> %s (versions must match exactly; an unknown format version needs a deliberate baseline refresh)\n", name, key, old, cur
        }
        next
    }
    if (key == "ms" || key == "speedup" || key == "host_cores") next
    delta = cur - old; if (delta < 0) delta = -delta
    if (key ~ /pct/) {
        if (delta > 2) {
            bad = 1
            printf "bench_diff: %s: %s drifted %s -> %s (abs tol 2)\n", name, key, old, cur
        }
    } else if (key ~ /(rate|reduction)/) {
        if (delta > 0.02) {
            bad = 1
            printf "bench_diff: %s: %s drifted %s -> %s (abs tol 0.02)\n", name, key, old, cur
        }
    } else if (key ~ /(imbalance|efficiency)/) {
        if (delta > 0.05) {
            bad = 1
            printf "bench_diff: %s: %s drifted %s -> %s (abs tol 0.05)\n", name, key, old, cur
        }
    } else {
        denom = (old < 0) ? -old : old
        if (denom == 0) denom = 1
        if (delta / denom > 0.05) {
            bad = 1
            printf "bench_diff: %s: %s drifted %s -> %s (rel tol 5%%)\n", name, key, old, cur
        }
    }
}
END { exit bad }
' >&2 || { echo "bench_diff: $name: drift beyond tolerance" >&2; exit 1; }

echo "bench_diff: $name: within tolerance"
