//! A tiny, dependency-free stand-in for the subset of the `criterion` API
//! this workspace's benches use, so they build and run without network
//! access to crates.io.
//!
//! Measurement model: each `bench_function` runs one warmup call, then
//! `sample_size` timed calls, and prints the minimum/median/mean wall time.
//! There is no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub mod measurement {
    /// Wall-clock measurement marker (the only one supported).
    pub struct WallTime;
}

/// Entry point passed to every benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
    }
}

pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        b.report(&label);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine()); // warmup
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // one warmup + three samples
        assert_eq!(runs, 4);
    }
}
