//! A small, dependency-free stand-in for the subset of the `proptest` API
//! this workspace uses, so the test suite builds and runs without network
//! access to crates.io.
//!
//! Semantics: each `proptest!` test runs its body over `cases` randomly
//! generated inputs from a deterministic per-test seed. Failures report the
//! generated inputs. There is no shrinking — a failing case prints the raw
//! input instead of a minimized one.

use std::rc::Rc;

pub mod rng {
    //! Deterministic splitmix64-based generator; no external crates.

    /// Test-case RNG handed to strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Modulo bias is irrelevant for test-input generation.
            self.next_u64() % n
        }
    }
}

pub use rng::TestRng;

/// Error produced by `prop_assert!`-style macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn new(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values. Unlike real proptest there is no value
/// tree or shrinking; `generate` directly produces a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `depth` levels of `recurse` stacked on
    /// top of `self`, where each level may bottom out early.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(cur.clone()).boxed();
            cur = Union::new(vec![cur, deeper]).boxed();
        }
        cur
    }
}

/// Clonable type-erased strategy (`Rc`-backed; tests are single threaded).
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between strategies of a common value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

// -- regex-ish string strategies -------------------------------------------

/// `&str` literals act as simplified-regex string strategies, covering the
/// patterns this workspace uses: `.` and `[...]` character classes (with
/// ranges and literal chars) each followed by an optional `{m,n}` repeat.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

#[derive(Clone)]
enum Atom {
    /// `.` — any printable ASCII character (plus a few spices).
    Dot,
    /// `[...]` — explicit character set.
    Class(Vec<char>),
}

fn parse_pattern(pat: &str) -> Vec<(Atom, u32, u32)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // ']'
                Atom::Class(set)
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (mut lo, mut hi) = (1u32, 1u32);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
            let body: String = chars[i + 1..close].iter().collect();
            let mut parts = body.splitn(2, ',');
            lo = parts.next().unwrap().trim().parse().unwrap();
            hi = match parts.next() {
                Some(s) => s.trim().parse().unwrap(),
                None => lo,
            };
            i = close + 1;
        }
        out.push((atom, lo, hi));
    }
    out
}

fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
    let mut s = String::new();
    for (atom, lo, hi) in parse_pattern(pat) {
        let n = lo + rng.below((hi - lo + 1) as u64) as u32;
        for _ in 0..n {
            let c = match &atom {
                Atom::Dot => {
                    // Mostly printable ASCII with occasional exotic chars to
                    // keep the lexer honest.
                    match rng.below(20) {
                        0 => '\t',
                        1 => 'λ',
                        2 => '\u{0}',
                        _ => (0x20 + rng.below(0x5f) as u8) as char,
                    }
                }
                Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
            };
            s.push(c);
        }
    }
    s
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vector of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    pub struct Uniform4<S>(S);

    /// `[V; 4]` with each element drawn from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// FNV-1a hash of the test path; gives each test a stable distinct seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::Strategy::boxed($s) ),+ ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                let __vals = ( $( $crate::Strategy::generate(&($strat), &mut __rng), )* );
                let __dbg = format!("{:?}", &__vals);
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            let ($($pat,)*) = __vals;
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __result {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "property '{}' failed on case {}: {}\ninputs: {}",
                        stringify!($name), __case, e, __dbg
                    ),
                    Err(payload) => {
                        eprintln!(
                            "property '{}' panicked on case {}\ninputs: {}",
                            stringify!($name), __case, __dbg
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in -50i64..50, w in 1u64..=4) {
            prop_assert!((-50..50).contains(&v));
            prop_assert!((1..=4).contains(&w));
        }

        #[test]
        fn identifier_pattern_shape(name in "[a-zA-Z_][a-zA-Z0-9_]{0,20}") {
            prop_assert!(!name.is_empty() && name.len() <= 21, "bad: {name:?}");
            let c = name.chars().next().unwrap();
            prop_assert!(c.is_ascii_alphabetic() || c == '_');
        }

        #[test]
        fn recursive_and_oneof_compose(v in leaf().prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner).prop_map(|(a, b)| a.wrapping_add(b)),
                Just(7i64),
            ]
        })) {
            let _ = v;
        }
    }

    fn leaf() -> impl super::Strategy<Value = i64> {
        (-3i64..3).boxed()
    }

    #[test]
    fn vec_and_array_sizes() {
        let mut rng = super::TestRng::new(1);
        for _ in 0..100 {
            let v = super::collection::vec(0u8..5, 1..20).generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            let a = super::array::uniform4(super::any::<u64>()).generate(&mut rng);
            assert_eq!(a.len(), 4);
        }
    }
}
