//! Offline stand-in for the `rayon` crate (this container has no crates.io
//! access). Implements the subset of rayon's fork-join API that terra-rs
//! uses — [`scope`] / [`Scope::spawn`] and [`join`] — directly over
//! [`std::thread::scope`], so call sites read exactly like real rayon and
//! can switch to it by swapping the dependency.
//!
//! Differences from real rayon, acceptable for this use:
//! - No global thread pool: every `scope` spawns fresh OS threads. Callers
//!   here spawn one task per worker thread (coarse-grained chunks), so pool
//!   reuse would save microseconds per parallel region, not more.
//! - No work stealing: tasks are not rebalanced between threads. Work
//!   partitioning is the caller's job (terra-rs uses deterministic static
//!   chunking anyway, precisely so profiles don't depend on scheduling).

use std::thread;

/// A fork-join scope handed to the [`scope`] closure. Tasks spawned on it
/// may borrow from the enclosing stack frame and are all joined before
/// `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope. The task runs on its own thread and
    /// is joined when the scope ends. Panics in tasks propagate out of
    /// [`scope`], matching rayon.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            let nested = Scope { inner };
            f(&nested);
        });
    }
}

/// Creates a fork-join scope: `op` may spawn borrowing tasks on the given
/// [`Scope`]; all of them complete before `scope` returns.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| {
        let wrapper = Scope { inner: s };
        op(&wrapper)
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined task panicked");
        (ra, rb)
    })
}

/// The number of threads the current machine can usefully run — rayon's
/// `current_num_threads` analogue (here: available parallelism, since there
/// is no configured pool).
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_tasks_borrow_disjoint_slices() {
        let mut data = vec![0u64; 64];
        scope(|s| {
            for (i, block) in data.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for x in block.iter_mut() {
                        *x = i as u64 + 1;
                    }
                });
            }
        });
        assert!(data[..16].iter().all(|&x| x == 1));
        assert!(data[48..].iter().all(|&x| x == 4));
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
