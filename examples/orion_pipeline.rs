//! Orion (§6.2): build a stencil pipeline with image-wide operators, then
//! change *only the schedule* and watch the same algorithm speed up — the
//! decoupling the paper demonstrates.
//!
//! Run with: `cargo run --release -p terra-bench --example orion_pipeline`

use std::time::Instant;
use terra_core::Terra;
use terra_orion::{input, stage_ref, ImageBuf, Pipeline, Schedule, Strategy};

fn main() {
    // The algorithm: unsharp masking — blur, then add back the detail.
    let f = input(0);
    let mut p = Pipeline::new(1);
    let blur_y = p.stage((f.at(0, -1) + f.at(0, 0) + f.at(0, 1)) * (1.0 / 3.0));
    let b = stage_ref(blur_y);
    let blur = p.stage((b.at(-1, 0) + b.at(0, 0) + b.at(1, 0)) * (1.0 / 3.0));
    p.stage((input(0) * 2.0 - stage_ref(blur)).clamp(0.0, 255.0));

    let (w, h) = (512, 512);
    let data: Vec<f32> = (0..w * h).map(|i| (i % 251) as f32).collect();

    let mut reference: Option<Vec<f32>> = None;
    for (name, strategy, vectorize) in [
        (
            "materialized, scalar (matches C)",
            Strategy::Materialize,
            false,
        ),
        ("materialized, vectorized", Strategy::Materialize, true),
        ("line-buffered, vectorized", Strategy::LineBuffer, true),
        ("fully inlined, vectorized", Strategy::Inline, true),
    ] {
        let mut t = Terra::new();
        let schedule = Schedule {
            strategy,
            vectorize,
        };
        let c = p.compile(&mut t, w, h, schedule).expect("stage pipeline");
        let img = ImageBuf::alloc(&mut t, &c);
        let out = ImageBuf::alloc(&mut t, &c);
        img.write(&mut t, &data);
        c.run(&mut t, &[&img], &out); // warm + correctness
        let result = out.read(&t);
        match &reference {
            None => reference = Some(result),
            Some(r) => {
                for (i, (a, b)) in r.iter().zip(&result).enumerate() {
                    assert!((a - b).abs() < 1e-3, "schedule changed the result at {i}");
                }
            }
        }
        let start = Instant::now();
        for _ in 0..3 {
            c.run(&mut t, &[&img], &out);
        }
        let ms = start.elapsed().as_secs_f64() / 3.0 * 1e3;
        println!("{name:<36} {ms:>8.1} ms");
    }
    println!("all schedules computed identical images — only the speed changed");
}
