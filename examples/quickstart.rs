//! Quickstart: embed a Lua-Terra session, stage a function from Lua, and
//! call it — the two-language design of the paper in twenty lines.
//!
//! Run with: `cargo run --release -p terra-core --example quickstart`

use terra_core::Terra;

fn main() -> Result<(), terra_core::LuaError> {
    let mut t = Terra::new();

    t.exec(
        r#"
        -- Lua is the meta-language: it runs now, at staging time.
        function makepow(k)
            -- Terra is the object language: this staged function is
            -- specialized for one exponent, with the loop unrolled.
            local function body(x, n)
                if n == 1 then return x end
                return `[body(x, n - 1)] * x
            end
            return terra(x : double) : double
                return [body(x, k)]
            end
        end

        pow3 = makepow(3)
        pow8 = makepow(8)
        "#,
    )?;

    let a = t.call_f64("pow3", &[2.0])?;
    let b = t.call_f64("pow8", &[2.0])?;
    println!("pow3(2) = {a}");
    println!("pow8(2) = {b}");
    assert_eq!(a, 8.0);
    assert_eq!(b, 256.0);

    // Terra code runs separately from Lua: mutating the Lua variable that a
    // staged function captured does not change the compiled code.
    t.exec(
        r#"
        local bias = 10
        terra addbias(x : int) : int return x + bias end
        bias = 99
        "#,
    )?;
    assert_eq!(t.call_i64("addbias", &[1.0])?, 11);
    println!("eager specialization: addbias(1) = 11 (bias captured at definition)");
    Ok(())
}
