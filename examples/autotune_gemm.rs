//! The §6.1 auto-tuner end to end: search kernel configurations, pick the
//! best, verify it, and compare against the baselines — the ATLAS workflow
//! in one process, as the paper argues staging enables.
//!
//! Run with: `cargo run --release -p terra-bench --example autotune_gemm`

use terra_autotune::{autotune, candidate_configs, GemmSession, Precision};

fn main() {
    let n = 128;
    let prec = Precision::F64;
    let mut s = GemmSession::new().expect("load the Figure 5 generator");
    println!(
        "searching {} kernel configurations at N={n}…",
        candidate_configs(n, prec).len()
    );
    let (best, gflops) = autotune(&mut s, n, prec, 2).expect("autotune");
    println!("best configuration: {best} → {gflops:.3} GFLOPS");

    let ws = s.workspace(n, prec);
    let tuned = s.generated(n, best, prec).expect("stage tuned kernel");
    s.run(&tuned, &ws);
    ws.verify(&s);
    println!("tuned kernel verified against a host-side reference multiply");

    let naive = s.naive(n, prec).expect("stage naive");
    let g_naive = s.measure_gflops(&naive, &ws, 2);
    println!(
        "naive: {g_naive:.3} GFLOPS → staged speedup {:.1}x",
        gflops / g_naive
    );
}
