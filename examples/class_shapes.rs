//! The §6.3.1 class system as a user would use it: interfaces, inheritance,
//! virtual dispatch — all built from type reflection, none of it built into
//! the language.
//!
//! Run with: `cargo run --release -p terra-bench --example class_shapes`

use terra_classes::ClassSession;

fn main() {
    let mut s = ClassSession::new().expect("load lib/javalike");
    s.exec(
        r#"
        local std = terralib.includec("stdlib.h")
        local C = terralib.includec("stdio.h")

        Drawable = J.interface { draw = {} -> {} }

        struct Shape { cx : double, cy : double }
        struct Square { side : double }
        struct Circle { radius : double }
        J.extends(Square, Shape)
        J.extends(Circle, Shape)
        J.implements(Square, Drawable)
        J.implements(Circle, Drawable)

        terra Shape:area() : double return 0.0 end
        terra Shape:describe() : {} C.printf("shape at (%g, %g)\n", self.cx, self.cy) end
        terra Square:area() : double return self.side * self.side end
        terra Square:draw() : {} C.printf("[] square, area %g\n", self:area()) end
        terra Circle:area() : double return 3.14159265 * self.radius * self.radius end
        terra Circle:draw() : {} C.printf("() circle, area %g\n", self:area()) end

        terra newsquare(side : double) : &Square
            var s = [&Square](std.malloc(sizeof(Square)))
            s:initclass()
            s.cx, s.cy, s.side = 0.0, 0.0, side
            return s
        end
        terra newcircle(r : double) : &Circle
            var c = [&Circle](std.malloc(sizeof(Circle)))
            c:initclass()
            c.cx, c.cy, c.radius = 1.0, 1.0, r
            return c
        end

        terra drawall(items : &&Drawable, n : int) : {}
            for i = 0, n do
                items[i]:draw()
            end
        end

        terra total_area_via_base(a : &Shape, b : &Shape) : double
            -- virtual dispatch through the base class
            return a:area() + b:area()
        end

        terra run() : double
            var sq = newsquare(3.0)
            var ci = newcircle(2.0)
            sq:describe()
            var items = [&&Drawable](std.malloc(2 * 8))
            items[0] = sq   -- class-to-interface conversion via __cast
            items[1] = ci
            drawall(items, 2)
            return total_area_via_base(sq, ci)
        end
        "#,
    )
    .expect("class definitions stage");
    let total = s.call_f64("run", &[]).expect("run");
    println!("total area via virtual dispatch = {total:.4}");
    assert!((total - (9.0 + std::f64::consts::PI * 4.0)).abs() < 1e-3);
}
