-- GEMM benchmark for the flight recorder: C = A * B over square matrices
-- in heap buffers, with the row loop parallelized. The kernel writes each
-- C row exactly once, so iterations are independent and the result -- and
-- any recording taken with --record -- is bit-identical at every thread
-- count and optimization level.
--
--   terra --record=gemm.rec examples/gemm.t
--   terra --replay=gemm.rec
--   terra replay-diff gemm-O0.rec gemm-O2.rec

local C = terralib.includec("stdlib.h")
local io = terralib.includec("stdio.h")

terra gemm(n : int, a : &double, b : &double, c : &double)
  parallelfor i = 0, n do
    for j = 0, n do
      var acc : double = 0.0
      for k = 0, n do
        acc = acc + a[i * n + k] * b[k * n + j]
      end
      c[i * n + j] = acc
    end
  end
end

terra run(n : int) : int
  var a = [&double](C.malloc(n * n * 8))
  var b = [&double](C.malloc(n * n * 8))
  var c = [&double](C.malloc(n * n * 8))
  -- Deterministic integer-valued inputs: every product and sum below is
  -- exact in a double, so the checksum is reproducible bit-for-bit.
  for i = 0, n * n do
    a[i] = (i % 7) - 3
    b[i] = (i % 5) - 2
  end
  gemm(n, a, b, c)
  var trace : double = 0.0
  var sum : double = 0.0
  for i = 0, n do
    trace = trace + c[i * n + i]
  end
  for i = 0, n * n do
    sum = sum + c[i]
  end
  io.printf("gemm n=%d trace=%.1f sum=%.1f\n", n, trace, sum)
  C.free(a)
  C.free(b)
  C.free(c)
  return 0
end

run(32)
