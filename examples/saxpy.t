-- SAXPY staged from Lua: y = a*x + y over heap buffers, then a checksum.
-- Run it under the profiler to see staging spans, opcode counters, and
-- memory-system counters:
--
--   terra --profile --trace-out trace.json examples/saxpy.t
--
-- The perf table exposes the same counters to the script itself.

local C = terralib.includec("stdlib.h")

terra saxpy(n : int, a : double, x : &double, y : &double)
  for i = 0, n do
    y[i] = a * x[i] + y[i]
  end
end

terra run(n : int) : double
  var x = [&double](C.malloc(n * 8))
  var y = [&double](C.malloc(n * 8))
  for i = 0, n do
    x[i] = i
    y[i] = 2 * i
  end
  saxpy(n, 0.5, x, y)
  var s : double = 0.0
  for i = 0, n do
    s = s + y[i]
  end
  C.free(x)
  C.free(y)
  return s
end

print("saxpy checksum:", run(1024))

-- When invoked with --profile the counters are live; without it
-- perf.counters() raises, so guard on perf.enabled().
if perf.enabled() then
  local c = perf.counters()
  print("saxpy instructions:", c.total_instructions)
end
