//! The worked example of §2 of the paper: a parameterized `Image` type
//! (a Lua function returning a Terra struct — "conceptually similar to a
//! C++ template"), a `laplace` stencil over it, and the `blockedloop`
//! generator that stages a multi-level blocked loop nest.
//!
//! Run with: `cargo run --release -p terra-core --example laplace`

use terra_core::Terra;

const SCRIPT: &str = r#"
local std = terralib.includec("stdlib.h")

function Image(PixelType)
    struct ImageImpl {
        data : &PixelType,
        N : int
    }
    terra ImageImpl:init(N : int) : {}
        self.data = [&PixelType](std.malloc(N * N * sizeof(PixelType)))
        self.N = N
    end
    terra ImageImpl:get(x : int, y : int) : PixelType
        return self.data[x * self.N + y]
    end
    terra ImageImpl:set(x : int, y : int, v : PixelType) : {}
        self.data[x * self.N + y] = v
    end
    terra ImageImpl:free() : {}
        std.free(self.data)
    end
    return ImageImpl
end

GreyscaleImage = Image(float)

terra min(a : int, b : int) : int
    if a < b then return a else return b end
end

-- Figure from §2: generate a loop nest with a parameterizable number of
-- block sizes; the inner body comes from a Lua callback.
function blockedloop(N, blocksizes, bodyfn)
    local function generatelevel(n, ii, jj, bb)
        if n > #blocksizes then
            return bodyfn(ii, jj)
        end
        local blocksize = blocksizes[n]
        return quote
            for i = ii, min(ii + bb, N), blocksize do
                for j = jj, min(jj + bb, N), blocksize do
                    [generatelevel(n + 1, i, j, blocksize)]
                end
            end
        end
    end
    return generatelevel(1, 0, 0, N)
end

terra laplace(img : &GreyscaleImage, out : &GreyscaleImage) : {}
    -- shrink result, do not calculate boundaries
    var newN = img.N - 2
    out:init(newN);
    [blockedloop(newN, {32, 8, 1}, function(i, j)
        return quote
            var v = img:get(i + 0, j + 1) + img:get(i + 2, j + 1)
                  + img:get(i + 1, j + 2) + img:get(i + 1, j + 0)
                  - 4.0f * img:get(i + 1, j + 1)
            out:set(i, j, v)
        end
    end)]
end

terra runlaplace(N : int) : &GreyscaleImage
    var i : GreyscaleImage
    var o : GreyscaleImage
    i:init(N)
    for x = 0, N do
        for y = 0, N do
            i:set(x, y, [float]((x * 7 + y * 3) % 16))
        end
    end
    var result = [&GreyscaleImage](std.malloc(sizeof(GreyscaleImage)))
    laplace(&i, result)
    i:free()
    return result
end

terra getpixel(img : &GreyscaleImage, x : int, y : int) : float
    return img:get(x, y)
end
"#;

fn main() -> Result<(), terra_core::LuaError> {
    let mut t = Terra::new();
    t.exec(SCRIPT)?;
    let n = 66;
    let out = t.call_f64("runlaplace", &[n as f64])?;
    // Check a few pixels against the host-side stencil.
    let host = |x: i64, y: i64| -> f64 { ((x * 7 + y * 3) % 16) as f64 };
    let lap = |x: i64, y: i64| -> f64 {
        host(x, y + 1) + host(x + 2, y + 1) + host(x + 1, y + 2) + host(x + 1, y)
            - 4.0 * host(x + 1, y + 1)
    };
    for (x, y) in [(0i64, 0i64), (5, 9), (30, 17), (63, 63)] {
        let got = t.call_f64("getpixel", &[out, x as f64, y as f64])?;
        assert_eq!(got, lap(x, y), "pixel ({x},{y})");
    }
    println!(
        "laplace on a {n}x{n} image via a 2-level blocked loop nest: verified.\n\
         sample: laplace(5,9) = {}",
        lap(5, 9)
    );
    Ok(())
}
