-- parallelfor demo: a data-parallel fill + stencil over heap buffers.
-- The loop body is outlined into a kernel and run on the worker pool
-- configured with --threads=N (default 1, the sequential fallback).
-- Results are bit-identical at every thread count: the chunk schedule
-- depends only on the iteration count, so this script's output -- and
-- its --profile counters -- never change with --threads.
--
--   terra --threads=4 examples/parfill.t

local C = terralib.includec("stdlib.h")

terra fill(n : int, buf : &double)
  parallelfor i = 0, n do
    buf[i] = i * 0.5
  end
end

terra blur3(n : int, src : &double, dst : &double)
  -- Each iteration owns dst[i]; reads of src overlap but src is never
  -- written, so iterations stay independent.
  parallelfor i = 1, n - 1 do
    dst[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0
  end
end

terra run(n : int) : double
  var src = [&double](C.malloc(n * 8))
  var dst = [&double](C.malloc(n * 8))
  fill(n, src)
  dst[0] = 0.0
  dst[n - 1] = 0.0
  blur3(n, src, dst)
  var s : double = 0.0
  for i = 0, n do
    s = s + dst[i]
  end
  C.free(src)
  C.free(dst)
  return s
end

print("parfill checksum:", run(4096))
