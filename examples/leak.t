-- Heap-profiler fixture: allocates three buffers through staged code and
-- frees only two, so `terra --heap-profile examples/leak.t` reports one
-- leaked allocation. The leaky malloc lives inside a Lua quote, which gives
-- the leak report a staging provenance chain ("allocated at line N,
-- generated via quote at line M") — scripts/check.sh and scripts/profile.sh
-- grep for it. Stdout is deterministic (a checksum only), so the example
-- also participates in the optimizer/check-elision differentials.

local C = terralib.includec("stdlib.h")

-- Staged allocator: expands to a malloc at the splice site, so the heap
-- profiler attributes the allocation to this quote's provenance chain.
local function staged_buffer(dst, n)
  return quote
    dst = [&double](C.malloc(n * 8))
    for i = 0, n do
      dst[i] = i
    end
  end
end

terra checksum(p : &double, n : int) : double
  var s = 0.0
  for i = 0, n do
    s = s + p[i]
  end
  return s
end

terra run(n : int) : double
  -- The semicolon keeps the splice bracket from parsing as an index into
  -- the preceding type annotation.
  var a : &double
  var b : &double
  var keep : &double;
  [staged_buffer(a, n)];
  [staged_buffer(b, n)];
  [staged_buffer(keep, n)]
  var s = checksum(a, n) + checksum(b, n) + checksum(keep, n)
  C.free(a)
  C.free(b)
  -- `keep` is deliberately never freed: the heap profiler's leak report
  -- should attribute it to the staged_buffer quote above.
  return s
end

print("leak checksum:", run(256))
