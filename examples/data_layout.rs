//! The §6.3.2 DataTable: one mesh-processing program, two memory layouts —
//! change a string, keep the interface, move the performance.
//!
//! Run with: `cargo run --release -p terra-bench --example data_layout`

use terra_layout::{HostMesh, Layout, MeshKit};

fn main() {
    let mesh = HostMesh::grid(256, true);
    println!(
        "mesh: {} vertices, {} triangles (shuffled access)",
        mesh.n_verts(),
        mesh.n_tris()
    );
    let expect = mesh.reference_normals();
    for layout in [Layout::Aos, Layout::Soa] {
        let mut kit = MeshKit::new(&mesh, layout).expect("stage mesh kit");
        kit.run_normals();
        let got = kit.normals_vec();
        for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
            assert!((a - b).abs() < 2e-4, "{layout:?}: normal {i} mismatch");
        }
        let gn = kit.measure_normals(1);
        let gt = kit.measure_translate(3);
        println!(
            "{:>3}: gather-heavy normals {gn:.3} GB/s | streaming translate {gt:.3} GB/s",
            layout.name()
        );
    }
    println!("AoS should win the gather benchmark; SoA the streaming one.");
}
