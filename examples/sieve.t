-- Branchy integer workload: a sieve of Eratosthenes plus a Collatz search.
-- Unlike saxpy.t this exercises while-loops, nested ifs, integer div/mod,
-- and a small helper call the -O2 inliner can absorb, so it doubles as the
-- optimizer-differential fixture in scripts/check.sh (stdout must be
-- identical at -O0 and -O2). The Collatz search body is generated through a
-- Lua quote so the optimizer remarks for it carry a staging provenance
-- chain (see `--remarks`), which check.sh's remarks smoke test relies on.

local C = terralib.includec("stdlib.h")

terra is_marked(flags : &int, i : int) : int
  return flags[i]
end

terra sieve(n : int) : int
  var flags = [&int](C.malloc(n * 4))
  for i = 0, n do
    flags[i] = 0
  end
  var count = 0
  var i = 2
  while i < n do
    if is_marked(flags, i) == 0 then
      count = count + 1
      var j = i * i
      while j < n do
        flags[j] = 1
        j = j + i
      end
    end
    i = i + 1
  end
  C.free(flags)
  return count
end

terra collatz_steps(seed : int) : int
  var x = seed
  var steps = 0
  while x ~= 1 do
    if x % 2 == 0 then
      x = x / 2
    else
      x = 3 * x + 1
    end
    steps = steps + 1
  end
  return steps
end

-- Staged helper: builds the loop body as a quote over the caller's
-- variables, so every instruction it expands to is attributed back to this
-- quote (and to the splice site in `longest_collatz`) by the provenance
-- tracker.
local function update_best(seed, best)
  return quote
    var s = collatz_steps(seed)
    if s > best then
      best = s
    end
  end
end

terra longest_collatz(limit : int) : int
  var best = 0
  for seed = 1, limit do
    [update_best(seed, best)]
  end
  return best
end

print("primes below 10000:", sieve(10000))
print("longest collatz under 1000:", longest_collatz(1000))
