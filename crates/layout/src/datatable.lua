-- DataTable (§6.3.2): a type constructor that builds a record container
-- with either array-of-structs or struct-of-arrays layout behind one
-- interface, using Terra's type reflection. Changing the layout of every
-- kernel written against the container is a one-string change.

local std = terralib.includec("stdlib.h")

function DataTable(fields, layout)
  -- Deterministic field order.
  local names = terralib.newlist()
  for k, v in pairs(fields) do
    names:insert(k)
  end
  table.sort(names)

  struct T {}
  T.entries:insert { field = "n", type = int }

  if layout == "AoS" then
    -- One struct per row, rows contiguous.
    struct Row {}
    for i, name in ipairs(names) do
      Row.entries:insert { field = name, type = fields[name] }
    end
    T.entries:insert { field = "data", type = &Row }
    terra T:init(n : int) : {}
      self.n = n
      self.data = [&Row](std.malloc(n * sizeof(Row)))
    end
    terra T:free() : {}
      std.free(self.data)
    end
    for i, name in ipairs(names) do
      local ftype = fields[name]
      T.methods["get_" .. name] = terra(self : &T, i : int) : ftype
        return self.data[i].[name]
      end
      T.methods["set_" .. name] = terra(self : &T, i : int, v : ftype) : {}
        self.data[i].[name] = v
      end
    end
  elseif layout == "SoA" then
    -- One contiguous array per field.
    for i, name in ipairs(names) do
      T.entries:insert { field = name .. "_arr", type = &fields[name] }
    end
    local inits = terralib.newlist()
    local frees = terralib.newlist()
    local selfsym = symbol(&T, "self")
    local nsym = symbol(int, "n")
    for i, name in ipairs(names) do
      local ftype = fields[name]
      inits:insert(quote
        selfsym.[name .. "_arr"] = [&ftype](std.malloc(nsym * sizeof(ftype)))
      end)
      frees:insert(quote
        std.free(selfsym.[name .. "_arr"])
      end)
    end
    T.methods["init"] = terra([selfsym], [nsym] : int) : {}
      selfsym.n = nsym;
      [inits]
    end
    T.methods["free"] = terra([selfsym]) : {}
      [frees]
    end
    for i, name in ipairs(names) do
      local ftype = fields[name]
      T.methods["get_" .. name] = terra(self : &T, i : int) : ftype
        return self.[name .. "_arr"][i]
      end
      T.methods["set_" .. name] = terra(self : &T, i : int, v : ftype) : {}
        self.[name .. "_arr"][i] = v
      end
    end
  else
    error("unknown layout: " .. tostring(layout))
  end
  return T
end
