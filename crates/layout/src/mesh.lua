-- Mesh micro-benchmarks from §6.3.2 (Figure 9), parameterized by data
-- layout. `DataTable` (datatable.lua) provides both runtime accessor
-- methods and compile-time accessors (quote generators), so the kernels
-- below are written once and staged against either layout.

local std = terralib.includec("stdlib.h")
local cmath = terralib.includec("math.h")

-- Compile-time accessor pair for a vertex container of the given layout:
-- read(v, name, i) and write(v, name, i, value) return quotes that index
-- the underlying storage directly (what the paper's compiled methods
-- inline to).
function accessors(layout)
  if layout == "AoS" then
    return {
      read = function(v, name, i)
        return `v.data[i].[name]
      end,
      write = function(v, name, i, value)
        return quote v.data[i].[name] = value end
      end,
    }
  else
    return {
      read = function(v, name, i)
        return `v.[name .. "_arr"][i]
      end,
      write = function(v, name, i, value)
        return quote v.[name .. "_arr"][i] = value end
      end,
    }
  end
end

-- Builds the vertex container type plus the two Figure 9 kernels.
function genmesh(layout)
  local V = DataTable({
    px = float, py = float, pz = float,
    nx = float, ny = float, nz = float,
  }, layout)
  local A = accessors(layout)

  local mk = terra(n : int) : &V
    var v = [&V](std.malloc(sizeof(V)))
    v:init(n)
    return v
  end

  -- Figure 9, row 2: translate every vertex position (streaming access; the
  -- normals share cache lines only in AoS form).
  local translate = terra(v : &V, dx : float, dy : float, dz : float) : {}
    for i = 0, v.n do
      [A.write(v, "px", i, A.read(v, "px", i) + dx)];
      [A.write(v, "py", i, A.read(v, "py", i) + dy)];
      [A.write(v, "pz", i, A.read(v, "pz", i) + dz)];
    end
  end

  -- Figure 9, row 1: average face normals onto vertices (sparse gathers of
  -- positions; AoS keeps a vertex's fields on one cache line).
  local normals = terra(v : &V, tris : &int, nf : int) : {}
    for i = 0, v.n do
      [A.write(v, "nx", i, 0.0)];
      [A.write(v, "ny", i, 0.0)];
      [A.write(v, "nz", i, 0.0)];
    end
    for f = 0, nf do
      var i0 = tris[3 * f]
      var i1 = tris[3 * f + 1]
      var i2 = tris[3 * f + 2]
      var ax = [A.read(v, "px", i1)] - [A.read(v, "px", i0)]
      var ay = [A.read(v, "py", i1)] - [A.read(v, "py", i0)]
      var az = [A.read(v, "pz", i1)] - [A.read(v, "pz", i0)]
      var bx = [A.read(v, "px", i2)] - [A.read(v, "px", i0)]
      var by = [A.read(v, "py", i2)] - [A.read(v, "py", i0)]
      var bz = [A.read(v, "pz", i2)] - [A.read(v, "pz", i0)]
      var fnx = ay * bz - az * by
      var fny = az * bx - ax * bz
      var fnz = ax * by - ay * bx;
      [A.write(v, "nx", i0, A.read(v, "nx", i0) + fnx)];
      [A.write(v, "ny", i0, A.read(v, "ny", i0) + fny)];
      [A.write(v, "nz", i0, A.read(v, "nz", i0) + fnz)];
      [A.write(v, "nx", i1, A.read(v, "nx", i1) + fnx)];
      [A.write(v, "ny", i1, A.read(v, "ny", i1) + fny)];
      [A.write(v, "nz", i1, A.read(v, "nz", i1) + fnz)];
      [A.write(v, "nx", i2, A.read(v, "nx", i2) + fnx)];
      [A.write(v, "ny", i2, A.read(v, "ny", i2) + fny)];
      [A.write(v, "nz", i2, A.read(v, "nz", i2) + fnz)];
    end
    for i = 0, v.n do
      var nx = [A.read(v, "nx", i)]
      var ny = [A.read(v, "ny", i)]
      var nz = [A.read(v, "nz", i)]
      var len = [float](cmath.sqrt(nx * nx + ny * ny + nz * nz))
      if len > 0.0f then
        [A.write(v, "nx", i, nx / len)];
        [A.write(v, "ny", i, ny / len)];
        [A.write(v, "nz", i, nz / len)];
      end
    end
  end

  -- Host I/O helpers, written against the accessor *methods* (so the
  -- method-based interface is exercised too, not just the staged one).
  local upload = terra(v : &V, pos : &float) : {}
    for i = 0, v.n do
      v:set_px(i, pos[3 * i])
      v:set_py(i, pos[3 * i + 1])
      v:set_pz(i, pos[3 * i + 2])
    end
  end
  local readnormals = terra(v : &V, out : &float) : {}
    for i = 0, v.n do
      out[3 * i] = v:get_nx(i)
      out[3 * i + 1] = v:get_ny(i)
      out[3 * i + 2] = v:get_nz(i)
    end
  end
  local readpositions = terra(v : &V, out : &float) : {}
    for i = 0, v.n do
      out[3 * i] = v:get_px(i)
      out[3 * i + 1] = v:get_py(i)
      out[3 * i + 2] = v:get_pz(i)
    end
  end

  return {
    V = V, mk = mk, translate = translate, normals = normals,
    upload = upload, readnormals = readnormals, readpositions = readpositions,
  }
end
