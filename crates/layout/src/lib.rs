//! # terra-layout
//!
//! The data-layout experiment of §6.3.2 (Figure 9): a `DataTable` type
//! constructor — written in the staged language using type reflection —
//! that stores records as either **array-of-structs** or
//! **struct-of-arrays** behind one interface, plus the two mesh
//! micro-benchmarks the paper measures:
//!
//! 1. *Calculate vertex normals*: sparse gathers of vertex positions per
//!    triangle (AoS wins — a vertex's fields share a cache line);
//! 2. *Translate positions*: streaming updates of positions only (SoA wins
//!    — the normals stop wasting bandwidth).
//!
//! Deviation noted in DESIGN.md: the paper's `fd:row(i)` returns a row
//! object by value; this backend does not pass aggregates by value, so the
//! container exposes `get_<field>`/`set_<field>` accessors instead — the
//! interface is still layout-independent, which is the point.

#![warn(missing_docs)]

use std::time::Instant;
use terra_core::{LuaError, Terra, TerraFn, Value};

/// The `DataTable` constructor (combined Lua-Terra source).
pub const DATATABLE_SCRIPT: &str = include_str!("datatable.lua");
/// The mesh kernels parameterized by layout.
pub const MESH_SCRIPT: &str = include_str!("mesh.lua");

/// Record storage layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// All fields of a record contiguous.
    Aos,
    /// Each field stored in its own contiguous array.
    Soa,
}

impl Layout {
    /// The string the Lua-level constructor expects.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Aos => "AoS",
            Layout::Soa => "SoA",
        }
    }
}

/// A host-side triangle mesh used to drive the benchmarks.
#[derive(Debug, Clone)]
pub struct HostMesh {
    /// xyz positions, length `3 * n_verts`.
    pub positions: Vec<f32>,
    /// Vertex indices, 3 per triangle.
    pub indices: Vec<i32>,
}

impl HostMesh {
    /// A `side`×`side` grid mesh with a deterministic height field. When
    /// `shuffle` is set, triangles are visited in pseudo-random order so
    /// vertex gathers are sparse, as in the paper's normals benchmark.
    pub fn grid(side: usize, shuffle: bool) -> HostMesh {
        let n = side * side;
        let mut positions = Vec::with_capacity(3 * n);
        for y in 0..side {
            for x in 0..side {
                positions.push(x as f32);
                positions.push(y as f32);
                positions.push((((x * 31 + y * 17) % 13) as f32) * 0.1);
            }
        }
        let mut tri_list: Vec<[i32; 3]> = Vec::new();
        for y in 0..side - 1 {
            for x in 0..side - 1 {
                let a = (y * side + x) as i32;
                let b = a + 1;
                let c = a + side as i32;
                let d = c + 1;
                tri_list.push([a, b, c]);
                tri_list.push([b, d, c]);
            }
        }
        if shuffle {
            // Deterministic Fisher-Yates over an xorshift stream.
            let mut state = 0x2545F491u64;
            for i in (1..tri_list.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let j = (state % (i as u64 + 1)) as usize;
                tri_list.swap(i, j);
            }
        }
        let indices = tri_list.into_iter().flatten().collect();
        HostMesh { positions, indices }
    }

    /// Vertex count.
    pub fn n_verts(&self) -> usize {
        self.positions.len() / 3
    }

    /// Triangle count.
    pub fn n_tris(&self) -> usize {
        self.indices.len() / 3
    }

    /// Host reference for the normals kernel.
    pub fn reference_normals(&self) -> Vec<f32> {
        let n = self.n_verts();
        let mut acc = vec![0.0f32; 3 * n];
        for t in self.indices.chunks_exact(3) {
            let (i0, i1, i2) = (t[0] as usize, t[1] as usize, t[2] as usize);
            let p = |i: usize| {
                (
                    self.positions[3 * i],
                    self.positions[3 * i + 1],
                    self.positions[3 * i + 2],
                )
            };
            let (x0, y0, z0) = p(i0);
            let (x1, y1, z1) = p(i1);
            let (x2, y2, z2) = p(i2);
            let (ax, ay, az) = (x1 - x0, y1 - y0, z1 - z0);
            let (bx, by, bz) = (x2 - x0, y2 - y0, z2 - z0);
            let fx = ay * bz - az * by;
            let fy = az * bx - ax * bz;
            let fz = ax * by - ay * bx;
            for i in [i0, i1, i2] {
                acc[3 * i] += fx;
                acc[3 * i + 1] += fy;
                acc[3 * i + 2] += fz;
            }
        }
        for i in 0..n {
            let (x, y, z) = (acc[3 * i], acc[3 * i + 1], acc[3 * i + 2]);
            let len = (x * x + y * y + z * z).sqrt();
            if len > 0.0 {
                acc[3 * i] /= len;
                acc[3 * i + 1] /= len;
                acc[3 * i + 2] /= len;
            }
        }
        acc
    }
}

/// A staged mesh-processing kit for one layout: the vertex container plus
/// compiled kernels, with the mesh uploaded.
pub struct MeshKit {
    terra: Terra,
    translate: TerraFn,
    normals: TerraFn,
    readnormals: TerraFn,
    readpositions: TerraFn,
    /// Address of the vertex container (`&V`).
    pub verts: u64,
    /// Address of the triangle index buffer.
    pub tris: u64,
    /// Scratch buffer for host readback (3·n floats).
    io: u64,
    /// Vertex count.
    pub n_verts: usize,
    /// Triangle count.
    pub n_tris: usize,
    /// The layout this kit was staged for.
    pub layout: Layout,
}

impl MeshKit {
    /// Stages `DataTable` + kernels for `layout` and uploads `mesh`.
    ///
    /// # Errors
    ///
    /// Propagates staging errors from the embedded scripts.
    pub fn new(mesh: &HostMesh, layout: Layout) -> Result<MeshKit, LuaError> {
        let mut terra = Terra::new();
        terra.exec(DATATABLE_SCRIPT)?;
        terra.exec(MESH_SCRIPT)?;
        terra.exec(&format!(
            "local kit = genmesh(\"{}\")\n\
             __mk, __translate, __normals = kit.mk, kit.translate, kit.normals\n\
             __upload, __readnormals, __readpositions = kit.upload, kit.readnormals, kit.readpositions",
            layout.name()
        ))?;
        let n_verts = mesh.n_verts();
        let n_tris = mesh.n_tris();
        let verts = terra.call_f64("__mk", &[n_verts as f64])? as u64;
        let translate = terra.function("__translate")?;
        let normals = terra.function("__normals")?;
        let upload = terra.function("__upload")?;
        let readnormals = terra.function("__readnormals")?;
        let readpositions = terra.function("__readpositions")?;
        // Index + IO buffers.
        let tris = terra.malloc((mesh.indices.len() * 4) as u64);
        {
            let mem = &mut terra.interp().ctx.exec.memory;
            for (i, ix) in mesh.indices.iter().enumerate() {
                mem.store_i32(tris + 4 * i as u64, *ix)
                    .expect("index buffer allocated");
            }
        }
        let io = terra.malloc((3 * n_verts * 4) as u64);
        terra.write_f32s(io, &mesh.positions);
        terra
            .invoke(&upload, &[Value::Ptr(verts), Value::Ptr(io)])
            .expect("upload kernel trapped");
        Ok(MeshKit {
            terra,
            translate,
            normals,
            readnormals,
            readpositions,
            verts,
            tris,
            io,
            n_verts,
            n_tris,
            layout,
        })
    }

    /// Runs the translate kernel once.
    pub fn run_translate(&mut self, dx: f32, dy: f32, dz: f32) {
        let f = self.translate.clone();
        self.terra
            .invoke(
                &f,
                &[
                    Value::Ptr(self.verts),
                    Value::Float(dx as f64),
                    Value::Float(dy as f64),
                    Value::Float(dz as f64),
                ],
            )
            .expect("translate kernel trapped");
    }

    /// Runs the normals kernel once.
    pub fn run_normals(&mut self) {
        let f = self.normals.clone();
        self.terra
            .invoke(
                &f,
                &[
                    Value::Ptr(self.verts),
                    Value::Ptr(self.tris),
                    Value::Int(self.n_tris as i64),
                ],
            )
            .expect("normals kernel trapped");
    }

    /// Reads back the vertex normals (xyz interleaved).
    pub fn normals_vec(&mut self) -> Vec<f32> {
        let f = self.readnormals.clone();
        self.terra
            .invoke(&f, &[Value::Ptr(self.verts), Value::Ptr(self.io)])
            .expect("readback trapped");
        self.terra.read_f32s(self.io, 3 * self.n_verts)
    }

    /// Reads back the vertex positions (xyz interleaved).
    pub fn positions_vec(&mut self) -> Vec<f32> {
        let f = self.readpositions.clone();
        self.terra
            .invoke(&f, &[Value::Ptr(self.verts), Value::Ptr(self.io)])
            .expect("readback trapped");
        self.terra.read_f32s(self.io, 3 * self.n_verts)
    }

    /// Times the translate kernel, returning effective GB/s over the bytes
    /// the kernel logically moves (Figure 9's metric).
    pub fn measure_translate(&mut self, reps: usize) -> f64 {
        self.run_translate(0.0, 0.0, 0.0); // warm
        let start = Instant::now();
        for _ in 0..reps {
            self.run_translate(0.1, 0.0, 0.0);
        }
        let dt = start.elapsed().as_secs_f64() / reps as f64;
        let bytes = (self.n_verts * 6 * 4) as f64; // 3 floats read + 3 written
        bytes / dt / 1e9
    }

    /// Times the normals kernel, returning effective GB/s.
    pub fn measure_normals(&mut self, reps: usize) -> f64 {
        self.run_normals(); // warm
        let start = Instant::now();
        for _ in 0..reps {
            self.run_normals();
        }
        let dt = start.elapsed().as_secs_f64() / reps as f64;
        // init pass + per-triangle gathers (9 reads) and scatters
        // (9 read-modify-writes) + normalize pass.
        let bytes = (self.n_verts * 6 * 4 + self.n_tris * 27 * 4) as f64;
        bytes / dt / 1e9
    }

    /// Underlying session.
    pub fn terra(&mut self) -> &mut Terra {
        &mut self.terra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "{what}: index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn upload_roundtrip_both_layouts() {
        let mesh = HostMesh::grid(8, false);
        for layout in [Layout::Aos, Layout::Soa] {
            let mut kit = MeshKit::new(&mesh, layout).unwrap();
            close(
                &kit.positions_vec(),
                &mesh.positions,
                0.0,
                &format!("{layout:?} upload"),
            );
        }
    }

    #[test]
    fn translate_matches_host_both_layouts() {
        let mesh = HostMesh::grid(8, false);
        let expect: Vec<f32> = mesh
            .positions
            .iter()
            .enumerate()
            .map(|(i, v)| match i % 3 {
                0 => v + 1.5,
                1 => v - 0.5,
                _ => v + 0.25,
            })
            .collect();
        for layout in [Layout::Aos, Layout::Soa] {
            let mut kit = MeshKit::new(&mesh, layout).unwrap();
            kit.run_translate(1.5, -0.5, 0.25);
            close(
                &kit.positions_vec(),
                &expect,
                1e-5,
                &format!("{layout:?} translate"),
            );
        }
    }

    #[test]
    fn normals_match_host_both_layouts() {
        let mesh = HostMesh::grid(8, true);
        let expect = mesh.reference_normals();
        for layout in [Layout::Aos, Layout::Soa] {
            let mut kit = MeshKit::new(&mesh, layout).unwrap();
            kit.run_normals();
            close(
                &kit.normals_vec(),
                &expect,
                2e-4,
                &format!("{layout:?} normals"),
            );
        }
    }

    #[test]
    fn layouts_have_different_storage_but_same_interface() {
        // Same script, one string changed — the paper's claim.
        let mesh = HostMesh::grid(4, false);
        let mut a = MeshKit::new(&mesh, Layout::Aos).unwrap();
        let mut b = MeshKit::new(&mesh, Layout::Soa).unwrap();
        a.run_normals();
        b.run_normals();
        close(&a.normals_vec(), &b.normals_vec(), 1e-6, "cross-layout");
    }

    #[test]
    fn grid_mesh_shapes() {
        let m = HostMesh::grid(5, false);
        assert_eq!(m.n_verts(), 25);
        assert_eq!(m.n_tris(), 32);
        let shuffled = HostMesh::grid(5, true);
        assert_eq!(shuffled.n_tris(), 32);
        assert_ne!(m.indices, shuffled.indices);
        let sorted_a = m.indices.clone();
        let sorted_b = shuffled.indices.clone();
        // Same triangles as sets of 3.
        let tri = |v: &Vec<i32>| {
            let mut t: Vec<[i32; 3]> = v.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
            t.sort();
            t
        };
        assert_eq!(tri(&mut sorted_a.to_vec()), tri(&mut sorted_b.to_vec()));
    }
}
