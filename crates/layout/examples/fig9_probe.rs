//! Development probe for Figure 9's AoS/SoA crossover.
use terra_layout::*;

fn main() {
    let mesh = HostMesh::grid(512, true); // 262k verts, 522k tris
    for layout in [Layout::Aos, Layout::Soa] {
        let mut kit = MeshKit::new(&mesh, layout).unwrap();
        let gn = kit.measure_normals(2);
        let gt = kit.measure_translate(5);
        println!("{:?}: normals {gn:.3} GB/s, translate {gt:.3} GB/s", layout);
    }
}
