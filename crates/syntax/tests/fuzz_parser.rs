//! Robustness properties for the front end: the lexer and parser must never
//! panic — on arbitrary bytes they either parse or return a `SyntaxError`.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings never panic the lexer or parser.
    #[test]
    fn parser_total_on_arbitrary_strings(src in ".{0,200}") {
        let _ = terra_syntax::parse(&src);
    }

    /// Arbitrary *token-ish* soup (keywords, symbols, numbers) never panics.
    #[test]
    fn parser_total_on_token_soup(toks in proptest::collection::vec(
        prop_oneof![
            Just("terra"), Just("quote"), Just("end"), Just("function"),
            Just("var"), Just("struct"), Just("for"), Just("do"), Just("in"),
            Just("["), Just("]"), Just("("), Just(")"), Just("{"), Just("}"),
            Just("="), Just("=="), Just(","), Just(":"), Just(";"), Just("+"),
            Just("-"), Just("*"), Just("@"), Just("&"), Just("`"), Just("->"),
            Just("x"), Just("y"), Just("42"), Just("1.5"), Just("\"s\""),
            Just("return"), Just("if"), Just("then"), Just("else"),
            Just("local"), Just("nil"), Just("..."), Just(".."),
        ],
        0..60,
    )) {
        let src = toks.join(" ");
        let _ = terra_syntax::parse(&src);
    }

    /// Valid numeric literals always lex to a single literal token + EOF.
    #[test]
    fn numeric_literals_lex(v in any::<u32>()) {
        let toks = terra_syntax::lex(&format!("{v}")).unwrap();
        prop_assert_eq!(toks.len(), 2);
        let toks = terra_syntax::lex(&format!("{v}.5")).unwrap();
        prop_assert_eq!(toks.len(), 2);
        let toks = terra_syntax::lex(&format!("0x{v:x}")).unwrap();
        prop_assert_eq!(toks.len(), 2);
    }

    /// Any identifier-shaped string round-trips through the lexer.
    #[test]
    fn identifiers_lex(name in "[a-zA-Z_][a-zA-Z0-9_]{0,20}") {
        let toks = terra_syntax::lex(&name).unwrap();
        prop_assert_eq!(toks.len(), 2);
    }

    /// Escaped string literals round-trip their content.
    #[test]
    fn strings_roundtrip(content in "[a-zA-Z0-9 _.,;!?-]{0,40}") {
        let src = format!("{content:?}"); // rust debug quoting == lua-compatible here
        let toks = terra_syntax::lex(&src).unwrap();
        match &toks[0].tok {
            terra_syntax::Tok::Str(s) => prop_assert_eq!(s.as_ref(), content.as_str()),
            other => prop_assert!(false, "expected string, got {other:?}"),
        }
    }

    /// Generated well-formed terra functions always parse.
    #[test]
    fn wellformed_terra_parses(nparams in 1usize..5, nstmts in 0usize..6) {
        let params: Vec<String> =
            (0..nparams).map(|i| format!("p{i} : int")).collect();
        let mut body = String::new();
        for i in 0..nstmts {
            body.push_str(&format!("var v{i} = p0 + {i}\n"));
        }
        let src = format!(
            "terra f({}) : int\n{body}return p0 end",
            params.join(", ")
        );
        let chunk = terra_syntax::parse(&src).unwrap();
        prop_assert_eq!(chunk.stmts.len(), 1);
    }
}
