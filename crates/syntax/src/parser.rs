//! Recursive-descent parser for the combined Lua-Terra grammar.
//!
//! The parser mirrors the architecture described in §5 of the paper: a single
//! front end parses Lua source in which Terra functions, quotations, and
//! struct declarations are embedded. Terra type annotations are parsed as Lua
//! expressions (types are Lua values, evaluated during specialization), with
//! the Terra type operators `&T`, `{T,…} -> {T,…}` accepted in expression
//! position.

use crate::ast::*;
use crate::error::{Result, SyntaxError};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Tok, Token};
use std::rc::Rc;

/// Parses a complete combined Lua-Terra chunk.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), terra_syntax::SyntaxError> {
/// let chunk = terra_syntax::parse(
///     "terra add(a : int, b : int) : int return a + b end",
/// )?;
/// assert_eq!(chunk.stmts.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Block> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    let block = p.block()?;
    p.expect(Tok::Eof)?;
    Ok(block)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<Token> {
        if self.peek() == &t {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {} but found {}", t, self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> SyntaxError {
        SyntaxError::new(msg, self.span())
    }

    fn name(&mut self) -> Result<Name> {
        match self.peek().clone() {
            Tok::Name(n) => {
                self.bump();
                Ok(n)
            }
            other => Err(self.err(format!("expected identifier but found {other}"))),
        }
    }

    // -----------------------------------------------------------------------
    // Lua blocks and statements
    // -----------------------------------------------------------------------

    fn block_ends(&self) -> bool {
        matches!(
            self.peek(),
            Tok::End | Tok::Else | Tok::Elseif | Tok::Until | Tok::Eof
        )
    }

    fn block(&mut self) -> Result<Block> {
        let mut stmts = Vec::new();
        loop {
            while self.check(&Tok::Semi) {}
            if self.block_ends() {
                break;
            }
            let stmt = self.statement()?;
            let is_return = matches!(stmt, LuaStmt::Return { .. });
            stmts.push(stmt);
            if is_return {
                while self.check(&Tok::Semi) {}
                break;
            }
        }
        Ok(Block { stmts })
    }

    fn statement(&mut self) -> Result<LuaStmt> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Local => {
                self.bump();
                match self.peek().clone() {
                    Tok::Function => {
                        self.bump();
                        let name = self.name()?;
                        let body = self.lua_function_body(span)?;
                        Ok(LuaStmt::LocalFunction {
                            name,
                            body: Rc::new(body),
                        })
                    }
                    Tok::Terra => {
                        self.bump();
                        self.terra_named_def(span, true)
                    }
                    Tok::Struct => {
                        self.bump();
                        self.struct_named_def(span, true)
                    }
                    _ => {
                        let mut names = vec![self.name()?];
                        while self.check(&Tok::Comma) {
                            names.push(self.name()?);
                        }
                        let exprs = if self.check(&Tok::Assign) {
                            self.exprlist()?
                        } else {
                            Vec::new()
                        };
                        Ok(LuaStmt::Local { names, exprs, span })
                    }
                }
            }
            Tok::If => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.expr()?;
                self.expect(Tok::Then)?;
                let body = self.block()?;
                arms.push((cond, body));
                let mut else_body = None;
                loop {
                    match self.peek() {
                        Tok::Elseif => {
                            self.bump();
                            let c = self.expr()?;
                            self.expect(Tok::Then)?;
                            let b = self.block()?;
                            arms.push((c, b));
                        }
                        Tok::Else => {
                            self.bump();
                            else_body = Some(self.block()?);
                            self.expect(Tok::End)?;
                            break;
                        }
                        Tok::End => {
                            self.bump();
                            break;
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected 'elseif', 'else' or 'end' but found {other}"
                            )))
                        }
                    }
                }
                Ok(LuaStmt::If { arms, else_body })
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::Do)?;
                let body = self.block()?;
                self.expect(Tok::End)?;
                Ok(LuaStmt::While { cond, body })
            }
            Tok::Repeat => {
                self.bump();
                let body = self.block()?;
                self.expect(Tok::Until)?;
                let cond = self.expr()?;
                Ok(LuaStmt::Repeat { body, cond })
            }
            Tok::Do => {
                self.bump();
                let body = self.block()?;
                self.expect(Tok::End)?;
                Ok(LuaStmt::Do(body))
            }
            Tok::For => {
                self.bump();
                let first = self.name()?;
                if self.check(&Tok::Assign) {
                    let start = self.expr()?;
                    self.expect(Tok::Comma)?;
                    let stop = self.expr()?;
                    let step = if self.check(&Tok::Comma) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(Tok::Do)?;
                    let body = self.block()?;
                    self.expect(Tok::End)?;
                    Ok(LuaStmt::NumericFor {
                        var: first,
                        start,
                        stop,
                        step,
                        body,
                    })
                } else {
                    let mut vars = vec![first];
                    while self.check(&Tok::Comma) {
                        vars.push(self.name()?);
                    }
                    self.expect(Tok::In)?;
                    let exprs = self.exprlist()?;
                    self.expect(Tok::Do)?;
                    let body = self.block()?;
                    self.expect(Tok::End)?;
                    Ok(LuaStmt::GenericFor { vars, exprs, body })
                }
            }
            Tok::Function => {
                self.bump();
                let mut path = vec![self.name()?];
                while self.check(&Tok::Dot) {
                    path.push(self.name()?);
                }
                let method = if self.check(&Tok::Colon) {
                    Some(self.name()?)
                } else {
                    None
                };
                let body = self.lua_function_body(span)?;
                Ok(LuaStmt::FunctionDecl {
                    path,
                    method,
                    body: Rc::new(body),
                    span,
                })
            }
            Tok::Return => {
                self.bump();
                let exprs = if self.block_ends() || self.peek() == &Tok::Semi {
                    Vec::new()
                } else {
                    self.exprlist()?
                };
                Ok(LuaStmt::Return { exprs, span })
            }
            Tok::Break => {
                self.bump();
                Ok(LuaStmt::Break(span))
            }
            Tok::Terra if matches!(self.peek2(), Tok::Name(_)) => {
                self.bump();
                self.terra_named_def(span, false)
            }
            Tok::Struct if matches!(self.peek2(), Tok::Name(_)) => {
                self.bump();
                self.struct_named_def(span, false)
            }
            _ => {
                // Expression statement or assignment.
                let first = self.suffixed_expr()?;
                if self.peek() == &Tok::Assign || self.peek() == &Tok::Comma {
                    let mut targets = vec![first];
                    while self.check(&Tok::Comma) {
                        targets.push(self.suffixed_expr()?);
                    }
                    for t in &targets {
                        if !matches!(t, LuaExpr::Var(..) | LuaExpr::Index { .. }) {
                            return Err(SyntaxError::new(
                                "cannot assign to this expression",
                                t.span(),
                            ));
                        }
                    }
                    self.expect(Tok::Assign)?;
                    let exprs = self.exprlist()?;
                    Ok(LuaStmt::Assign {
                        targets,
                        exprs,
                        span,
                    })
                } else {
                    match &first {
                        LuaExpr::Call { .. } | LuaExpr::MethodCall { .. } => {
                            Ok(LuaStmt::Expr(first))
                        }
                        _ => Err(SyntaxError::new(
                            "syntax error: expression is not a statement",
                            first.span(),
                        )),
                    }
                }
            }
        }
    }

    /// Parses `terra` definitions in statement position, after the `terra`
    /// keyword has been consumed: `terra path.to.f(params) : ret body end` or
    /// `terra Type:method(params) … end`.
    fn terra_named_def(&mut self, span: Span, is_local: bool) -> Result<LuaStmt> {
        let mut path = vec![self.name()?];
        while self.check(&Tok::Dot) {
            path.push(self.name()?);
        }
        let method = if self.check(&Tok::Colon) {
            Some(self.name()?)
        } else {
            None
        };
        let mut def = self.terra_function_tail(span)?;
        def.name_hint = Some(match &method {
            Some(m) => Rc::from(format!("{}:{}", path.join("."), m).as_str()),
            None => Rc::from(path.join(".").as_str()),
        });
        Ok(LuaStmt::TerraDef {
            path,
            method,
            def: Rc::new(def),
            is_local,
            span,
        })
    }

    fn struct_named_def(&mut self, span: Span, is_local: bool) -> Result<LuaStmt> {
        let mut path = vec![self.name()?];
        while self.check(&Tok::Dot) {
            path.push(self.name()?);
        }
        let entries = self.struct_body()?;
        Ok(LuaStmt::StructDef {
            path,
            entries,
            is_local,
            span,
        })
    }

    fn struct_body(&mut self) -> Result<Vec<StructEntry>> {
        self.expect(Tok::LBrace)?;
        let mut entries = Vec::new();
        while self.peek() != &Tok::RBrace {
            let span = self.span();
            let name = self.name()?;
            self.expect(Tok::Colon)?;
            let ty = self.expr()?;
            entries.push(StructEntry { name, ty, span });
            if !(self.check(&Tok::Comma) || self.check(&Tok::Semi)) {
                break;
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(entries)
    }

    fn lua_function_body(&mut self, span: Span) -> Result<LuaFunctionBody> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        let mut is_vararg = false;
        if self.peek() != &Tok::RParen {
            loop {
                match self.peek().clone() {
                    Tok::Ellipsis => {
                        self.bump();
                        is_vararg = true;
                        break;
                    }
                    Tok::Name(n) => {
                        self.bump();
                        params.push(n);
                    }
                    other => {
                        return Err(self.err(format!("expected parameter name but found {other}")))
                    }
                }
                if !self.check(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        self.expect(Tok::End)?;
        Ok(LuaFunctionBody {
            params,
            is_vararg,
            body,
            span,
        })
    }

    fn exprlist(&mut self) -> Result<Vec<LuaExpr>> {
        let mut v = vec![self.expr()?];
        while self.check(&Tok::Comma) {
            v.push(self.expr()?);
        }
        Ok(v)
    }

    // -----------------------------------------------------------------------
    // Lua expressions (Pratt parser)
    // -----------------------------------------------------------------------

    fn expr(&mut self) -> Result<LuaExpr> {
        let e = self.binary_expr(0)?;
        // Terra function-type operator: `params -> returns`, right-assoc.
        if self.peek() == &Tok::Arrow {
            let span = self.span();
            self.bump();
            let rhs = self.expr()?;
            let params = flatten_type_list(e);
            let returns = flatten_type_list(rhs);
            return Ok(LuaExpr::FuncType {
                params,
                returns,
                span,
            });
        }
        Ok(e)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<LuaExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, lprec, rprec) = match self.peek() {
                Tok::Or => (BinOp::Or, 1, 2),
                Tok::And => (BinOp::And, 3, 4),
                Tok::Lt => (BinOp::Lt, 5, 6),
                Tok::Gt => (BinOp::Gt, 5, 6),
                Tok::Le => (BinOp::Le, 5, 6),
                Tok::Ge => (BinOp::Ge, 5, 6),
                Tok::Ne => (BinOp::Ne, 5, 6),
                Tok::Eq => (BinOp::Eq, 5, 6),
                Tok::Shl => (BinOp::Shl, 7, 8),
                Tok::Shr => (BinOp::Shr, 7, 8),
                Tok::DotDot => (BinOp::Concat, 10, 9), // right associative
                Tok::Plus => (BinOp::Add, 11, 12),
                Tok::Minus => (BinOp::Sub, 11, 12),
                Tok::Star => (BinOp::Mul, 13, 14),
                Tok::Slash => (BinOp::Div, 13, 14),
                Tok::Percent => (BinOp::Mod, 13, 14),
                Tok::Caret => (BinOp::Pow, 18, 17), // right assoc, above unary
                _ => break,
            };
            if lprec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary_expr(rprec)?;
            lhs = LuaExpr::BinOp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<LuaExpr> {
        let span = self.span();
        match self.peek() {
            Tok::Not => {
                self.bump();
                let e = self.binary_expr(15)?;
                Ok(LuaExpr::UnOp {
                    op: UnOp::Not,
                    expr: Box::new(e),
                    span,
                })
            }
            Tok::Minus => {
                self.bump();
                let e = self.binary_expr(15)?;
                Ok(LuaExpr::UnOp {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                    span,
                })
            }
            Tok::Hash => {
                self.bump();
                let e = self.binary_expr(15)?;
                Ok(LuaExpr::UnOp {
                    op: UnOp::Len,
                    expr: Box::new(e),
                    span,
                })
            }
            Tok::Amp => {
                // Terra type operator: pointer type.
                self.bump();
                let e = self.binary_expr(15)?;
                Ok(LuaExpr::PtrType(Box::new(e), span))
            }
            _ => self.suffixed_expr(),
        }
    }

    fn suffixed_expr(&mut self) -> Result<LuaExpr> {
        let mut e = self.primary_expr()?;
        loop {
            let span = self.span();
            match self.peek().clone() {
                Tok::Dot => {
                    self.bump();
                    let n = self.name()?;
                    e = LuaExpr::Index {
                        obj: Box::new(e),
                        index: Box::new(LuaExpr::Str(n, span)),
                        span,
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = LuaExpr::Index {
                        obj: Box::new(e),
                        index: Box::new(idx),
                        span,
                    };
                }
                Tok::Colon => {
                    // method call: obj:name(args)
                    if !matches!(self.peek2(), Tok::Name(_)) {
                        break;
                    }
                    self.bump();
                    let n = self.name()?;
                    let args = self.call_args()?;
                    e = LuaExpr::MethodCall {
                        obj: Box::new(e),
                        name: n,
                        args,
                        span,
                    };
                }
                Tok::LParen | Tok::Str(_) | Tok::LBrace => {
                    let args = self.call_args()?;
                    e = LuaExpr::Call {
                        func: Box::new(e),
                        args,
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<LuaExpr>> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let args = if self.peek() == &Tok::RParen {
                    Vec::new()
                } else {
                    self.exprlist()?
                };
                self.expect(Tok::RParen)?;
                Ok(args)
            }
            Tok::Str(s) => {
                let span = self.span();
                self.bump();
                Ok(vec![LuaExpr::Str(s, span)])
            }
            Tok::LBrace => Ok(vec![self.table_constructor()?]),
            other => Err(self.err(format!("expected call arguments but found {other}"))),
        }
    }

    fn table_constructor(&mut self) -> Result<LuaExpr> {
        let span = self.span();
        self.expect(Tok::LBrace)?;
        let mut items = Vec::new();
        while self.peek() != &Tok::RBrace {
            match self.peek().clone() {
                Tok::Name(n) if self.peek2() == &Tok::Assign => {
                    self.bump();
                    self.bump();
                    let v = self.expr()?;
                    items.push(TableItem::Named(n, v));
                }
                Tok::LBracket => {
                    self.bump();
                    let k = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    self.expect(Tok::Assign)?;
                    let v = self.expr()?;
                    items.push(TableItem::Keyed(k, v));
                }
                _ => {
                    items.push(TableItem::Positional(self.expr()?));
                }
            }
            if !(self.check(&Tok::Comma) || self.check(&Tok::Semi)) {
                break;
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(LuaExpr::Table { items, span })
    }

    fn primary_expr(&mut self) -> Result<LuaExpr> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Nil => {
                self.bump();
                Ok(LuaExpr::Nil(span))
            }
            Tok::True => {
                self.bump();
                Ok(LuaExpr::True(span))
            }
            Tok::False => {
                self.bump();
                Ok(LuaExpr::False(span))
            }
            Tok::Int(v, _) => {
                self.bump();
                Ok(LuaExpr::Number(v as f64, span))
            }
            Tok::Float(v, _) => {
                self.bump();
                Ok(LuaExpr::Number(v, span))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(LuaExpr::Str(s, span))
            }
            Tok::Ellipsis => {
                self.bump();
                Ok(LuaExpr::Vararg(span))
            }
            Tok::Name(n) => {
                self.bump();
                Ok(LuaExpr::Var(n, span))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => self.table_constructor(),
            Tok::Function => {
                self.bump();
                let body = self.lua_function_body(span)?;
                Ok(LuaExpr::Function(Rc::new(body)))
            }
            Tok::Terra => {
                self.bump();
                let def = self.terra_function_tail(span)?;
                Ok(LuaExpr::TerraFunction(Rc::new(def)))
            }
            Tok::Struct => {
                self.bump();
                let entries = self.struct_body()?;
                Ok(LuaExpr::AnonStruct { entries, span })
            }
            Tok::Quote => {
                self.bump();
                let q = self.quote_body(span)?;
                Ok(LuaExpr::Quote(Rc::new(q)))
            }
            Tok::Backtick => {
                self.bump();
                let e = self.terra_expr()?;
                Ok(LuaExpr::Quote(Rc::new(TerraQuote {
                    stmts: Vec::new(),
                    exprs: vec![e],
                    span,
                })))
            }
            other => Err(self.err(format!("unexpected {other} in expression"))),
        }
    }

    // -----------------------------------------------------------------------
    // Terra functions, quotes, statements
    // -----------------------------------------------------------------------

    /// Parses `(params) : ret body end` after the `terra` keyword (and any
    /// name) has been consumed.
    fn terra_function_tail(&mut self, span: Span) -> Result<TerraFuncDef> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let pspan = self.span();
                let name = match self.peek().clone() {
                    Tok::LBracket => {
                        self.bump();
                        let e = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        DeclName::Escape(e, pspan)
                    }
                    Tok::Name(n) => {
                        self.bump();
                        DeclName::Ident(n, pspan)
                    }
                    other => {
                        return Err(self.err(format!("expected parameter name but found {other}")))
                    }
                };
                let ty = if self.check(&Tok::Colon) {
                    Some(self.expr()?)
                } else {
                    None
                };
                if ty.is_none() {
                    if let DeclName::Ident(n, _) = &name {
                        return Err(SyntaxError::new(
                            format!("parameter '{n}' requires a type annotation"),
                            pspan,
                        ));
                    }
                }
                params.push(TerraParam { name, ty });
                if !self.check(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let ret = if self.check(&Tok::Colon) {
            Some(self.return_type_expr()?)
        } else {
            None
        };
        let body = self.terra_block()?;
        self.expect(Tok::End)?;
        Ok(TerraFuncDef {
            params,
            ret,
            body,
            span,
            name_hint: None,
        })
    }

    /// Parses a return-type annotation. Like a Lua expression, but without
    /// the `[…]` / `{…}` / string call-sugar suffixes that would swallow the
    /// first body statement.
    fn return_type_expr(&mut self) -> Result<LuaExpr> {
        let span = self.span();
        match self.peek().clone() {
            Tok::LBrace => {
                // `{}` or `{T, T}` tuple annotation.
                self.bump();
                let mut items = Vec::new();
                while self.peek() != &Tok::RBrace {
                    items.push(TableItem::Positional(self.expr()?));
                    if !self.check(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(LuaExpr::Table { items, span })
            }
            Tok::Amp => {
                self.bump();
                let inner = self.return_type_expr()?;
                Ok(LuaExpr::PtrType(Box::new(inner), span))
            }
            Tok::LBracket => {
                // Escaped return type `[luaexpr]`.
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RBracket)?;
                Ok(e)
            }
            _ => {
                let mut e = LuaExpr::Var(self.name()?, span);
                loop {
                    let sp = self.span();
                    match self.peek().clone() {
                        Tok::Dot => {
                            self.bump();
                            let n = self.name()?;
                            e = LuaExpr::Index {
                                obj: Box::new(e),
                                index: Box::new(LuaExpr::Str(n, sp)),
                                span: sp,
                            };
                        }
                        Tok::LParen => {
                            self.bump();
                            let args = if self.peek() == &Tok::RParen {
                                Vec::new()
                            } else {
                                self.exprlist()?
                            };
                            self.expect(Tok::RParen)?;
                            e = LuaExpr::Call {
                                func: Box::new(e),
                                args,
                                span: sp,
                            };
                        }
                        _ => break,
                    }
                }
                Ok(e)
            }
        }
    }

    fn quote_body(&mut self, span: Span) -> Result<TerraQuote> {
        let stmts = self.terra_block()?;
        let exprs = if self.check(&Tok::In) {
            let mut v = vec![self.terra_expr()?];
            while self.check(&Tok::Comma) {
                v.push(self.terra_expr()?);
            }
            v
        } else {
            Vec::new()
        };
        self.expect(Tok::End)?;
        Ok(TerraQuote { stmts, exprs, span })
    }

    fn terra_block_ends(&self) -> bool {
        matches!(
            self.peek(),
            Tok::End | Tok::Else | Tok::Elseif | Tok::Until | Tok::In | Tok::Eof
        )
    }

    fn terra_block(&mut self) -> Result<Vec<TerraStmt>> {
        let mut stmts = Vec::new();
        loop {
            while self.check(&Tok::Semi) {}
            if self.terra_block_ends() {
                break;
            }
            stmts.push(self.terra_stmt()?);
        }
        Ok(stmts)
    }

    fn decl_name(&mut self) -> Result<DeclName> {
        let span = self.span();
        match self.peek().clone() {
            Tok::LBracket => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RBracket)?;
                Ok(DeclName::Escape(e, span))
            }
            Tok::Name(n) => {
                self.bump();
                Ok(DeclName::Ident(n, span))
            }
            other => Err(self.err(format!("expected name but found {other}"))),
        }
    }

    fn terra_stmt(&mut self) -> Result<TerraStmt> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Var => {
                self.bump();
                let mut decls = Vec::new();
                loop {
                    let name = self.decl_name()?;
                    let ty = if self.check(&Tok::Colon) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    decls.push((name, ty));
                    if !self.check(&Tok::Comma) {
                        break;
                    }
                }
                let inits = if self.check(&Tok::Assign) {
                    self.terra_exprlist()?
                } else {
                    Vec::new()
                };
                Ok(TerraStmt::Var { decls, inits, span })
            }
            Tok::If => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.terra_expr()?;
                self.expect(Tok::Then)?;
                let body = self.terra_block()?;
                arms.push((cond, body));
                let mut else_body = None;
                loop {
                    match self.peek() {
                        Tok::Elseif => {
                            self.bump();
                            let c = self.terra_expr()?;
                            self.expect(Tok::Then)?;
                            arms.push((c, self.terra_block()?));
                        }
                        Tok::Else => {
                            self.bump();
                            else_body = Some(self.terra_block()?);
                            self.expect(Tok::End)?;
                            break;
                        }
                        Tok::End => {
                            self.bump();
                            break;
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected 'elseif', 'else' or 'end' but found {other}"
                            )))
                        }
                    }
                }
                Ok(TerraStmt::If {
                    arms,
                    else_body,
                    span,
                })
            }
            Tok::While => {
                self.bump();
                let cond = self.terra_expr()?;
                self.expect(Tok::Do)?;
                let body = self.terra_block()?;
                self.expect(Tok::End)?;
                Ok(TerraStmt::While { cond, body, span })
            }
            Tok::Repeat => {
                self.bump();
                let body = self.terra_block()?;
                self.expect(Tok::Until)?;
                let cond = self.terra_expr()?;
                Ok(TerraStmt::Repeat { body, cond, span })
            }
            Tok::For => {
                self.bump();
                let var = self.decl_name()?;
                let ty = if self.check(&Tok::Colon) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Assign)?;
                let start = self.terra_expr()?;
                self.expect(Tok::Comma)?;
                let stop = self.terra_expr()?;
                let step = if self.check(&Tok::Comma) {
                    Some(self.terra_expr()?)
                } else {
                    None
                };
                self.expect(Tok::Do)?;
                let body = self.terra_block()?;
                self.expect(Tok::End)?;
                Ok(TerraStmt::ForNum {
                    var,
                    ty,
                    start,
                    stop,
                    step,
                    body,
                    span,
                })
            }
            Tok::Parallelfor => {
                self.bump();
                let var = self.decl_name()?;
                let ty = if self.check(&Tok::Colon) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Assign)?;
                let start = self.terra_expr()?;
                self.expect(Tok::Comma)?;
                let stop = self.terra_expr()?;
                self.expect(Tok::Do)?;
                let body = self.terra_block()?;
                self.expect(Tok::End)?;
                Ok(TerraStmt::ParallelFor {
                    var,
                    ty,
                    start,
                    stop,
                    body,
                    span,
                })
            }
            Tok::Do => {
                self.bump();
                let body = self.terra_block()?;
                self.expect(Tok::End)?;
                Ok(TerraStmt::Block(body, span))
            }
            Tok::Return => {
                self.bump();
                let exprs = if self.terra_block_ends() || self.peek() == &Tok::Semi {
                    Vec::new()
                } else {
                    self.terra_exprlist()?
                };
                Ok(TerraStmt::Return { exprs, span })
            }
            Tok::Break => {
                self.bump();
                Ok(TerraStmt::Break(span))
            }
            Tok::Defer => {
                self.bump();
                let e = self.terra_expr()?;
                Ok(TerraStmt::Defer(e, span))
            }
            _ => {
                let first = if self.peek() == &Tok::At {
                    // `@ptr = value` — a store through a pointer.
                    self.bump();
                    let inner = self.terra_suffixed_expr()?;
                    TerraExpr::Deref(Box::new(inner), span)
                } else {
                    self.terra_suffixed_expr()?
                };
                if self.peek() == &Tok::Assign || self.peek() == &Tok::Comma {
                    let mut targets = vec![first];
                    while self.check(&Tok::Comma) {
                        let tspan = self.span();
                        if self.check(&Tok::At) {
                            let inner = self.terra_suffixed_expr()?;
                            targets.push(TerraExpr::Deref(Box::new(inner), tspan));
                        } else {
                            targets.push(self.terra_suffixed_expr()?);
                        }
                    }
                    self.expect(Tok::Assign)?;
                    let exprs = self.terra_exprlist()?;
                    Ok(TerraStmt::Assign {
                        targets,
                        exprs,
                        span,
                    })
                } else {
                    match first {
                        TerraExpr::EscapeExpr(e, s) => Ok(TerraStmt::Escape(*e, s)),
                        e @ (TerraExpr::Call { .. }
                        | TerraExpr::MethodCall { .. }
                        | TerraExpr::DynMethodCall { .. }) => Ok(TerraStmt::Expr(e)),
                        e => Err(SyntaxError::new(
                            "syntax error: Terra expression is not a statement",
                            e.span(),
                        )),
                    }
                }
            }
        }
    }

    fn terra_exprlist(&mut self) -> Result<Vec<TerraExpr>> {
        let mut v = vec![self.terra_expr()?];
        while self.check(&Tok::Comma) {
            v.push(self.terra_expr()?);
        }
        Ok(v)
    }

    fn terra_expr(&mut self) -> Result<TerraExpr> {
        self.terra_binary_expr(0)
    }

    fn terra_binary_expr(&mut self, min_prec: u8) -> Result<TerraExpr> {
        let mut lhs = self.terra_unary_expr()?;
        loop {
            let (op, lprec, rprec) = match self.peek() {
                Tok::Or => (BinOp::Or, 1, 2),
                Tok::And => (BinOp::And, 3, 4),
                Tok::Lt => (BinOp::Lt, 5, 6),
                Tok::Gt => (BinOp::Gt, 5, 6),
                Tok::Le => (BinOp::Le, 5, 6),
                Tok::Ge => (BinOp::Ge, 5, 6),
                Tok::Ne => (BinOp::Ne, 5, 6),
                Tok::Eq => (BinOp::Eq, 5, 6),
                Tok::Shl => (BinOp::Shl, 7, 8),
                Tok::Shr => (BinOp::Shr, 7, 8),
                Tok::Plus => (BinOp::Add, 11, 12),
                Tok::Minus => (BinOp::Sub, 11, 12),
                Tok::Star => (BinOp::Mul, 13, 14),
                Tok::Slash => (BinOp::Div, 13, 14),
                Tok::Percent => (BinOp::Mod, 13, 14),
                Tok::Caret => (BinOp::Pow, 18, 17),
                _ => break,
            };
            if lprec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.terra_binary_expr(rprec)?;
            lhs = TerraExpr::BinOp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn terra_unary_expr(&mut self) -> Result<TerraExpr> {
        let span = self.span();
        match self.peek() {
            Tok::Not => {
                self.bump();
                let e = self.terra_binary_expr(15)?;
                Ok(TerraExpr::UnOp {
                    op: UnOp::Not,
                    expr: Box::new(e),
                    span,
                })
            }
            Tok::Minus => {
                self.bump();
                let e = self.terra_binary_expr(15)?;
                Ok(TerraExpr::UnOp {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                    span,
                })
            }
            Tok::At => {
                self.bump();
                let e = self.terra_binary_expr(15)?;
                Ok(TerraExpr::Deref(Box::new(e), span))
            }
            Tok::Amp => {
                self.bump();
                let e = self.terra_binary_expr(15)?;
                Ok(TerraExpr::AddrOf(Box::new(e), span))
            }
            _ => self.terra_suffixed_expr(),
        }
    }

    fn terra_suffixed_expr(&mut self) -> Result<TerraExpr> {
        let mut e = self.terra_primary_expr()?;
        loop {
            let span = self.span();
            match self.peek().clone() {
                Tok::Dot => {
                    self.bump();
                    if self.check(&Tok::LBracket) {
                        let name = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        e = TerraExpr::DynField {
                            obj: Box::new(e),
                            name,
                            span,
                        };
                    } else {
                        let n = self.name()?;
                        e = TerraExpr::Field {
                            obj: Box::new(e),
                            name: n,
                            span,
                        };
                    }
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.terra_expr()?;
                    self.expect(Tok::RBracket)?;
                    e = TerraExpr::Index {
                        obj: Box::new(e),
                        index: Box::new(idx),
                        span,
                    };
                }
                Tok::Colon => match self.peek2().clone() {
                    Tok::Name(n) => {
                        self.bump();
                        self.bump();
                        let args = self.terra_call_args()?;
                        e = TerraExpr::MethodCall {
                            obj: Box::new(e),
                            name: n,
                            args,
                            span,
                        };
                    }
                    Tok::LBracket => {
                        self.bump();
                        self.bump();
                        let name = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        let args = self.terra_call_args()?;
                        e = TerraExpr::DynMethodCall {
                            obj: Box::new(e),
                            name,
                            args,
                            span,
                        };
                    }
                    _ => break,
                },
                Tok::LParen => {
                    self.bump();
                    let args = if self.peek() == &Tok::RParen {
                        Vec::new()
                    } else {
                        self.terra_exprlist()?
                    };
                    self.expect(Tok::RParen)?;
                    e = TerraExpr::Call {
                        func: Box::new(e),
                        args,
                        span,
                    };
                }
                Tok::LBrace => {
                    // Struct literal `Type { a, b }` / `Type { x = a }`.
                    self.bump();
                    let mut args = Vec::new();
                    while self.peek() != &Tok::RBrace {
                        match self.peek().clone() {
                            Tok::Name(n) if self.peek2() == &Tok::Assign => {
                                self.bump();
                                self.bump();
                                let v = self.terra_expr()?;
                                args.push((Some(n), v));
                            }
                            _ => {
                                args.push((None, self.terra_expr()?));
                            }
                        }
                        if !(self.check(&Tok::Comma) || self.check(&Tok::Semi)) {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                    e = TerraExpr::StructInit {
                        ty: Box::new(e),
                        args,
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn terra_call_args(&mut self) -> Result<Vec<TerraExpr>> {
        self.expect(Tok::LParen)?;
        let args = if self.peek() == &Tok::RParen {
            Vec::new()
        } else {
            self.terra_exprlist()?
        };
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn terra_primary_expr(&mut self) -> Result<TerraExpr> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(v, suffix) => {
                self.bump();
                Ok(TerraExpr::Int {
                    value: v,
                    suffix,
                    span,
                })
            }
            Tok::Float(v, is_f32) => {
                self.bump();
                Ok(TerraExpr::Float {
                    value: v,
                    is_f32,
                    span,
                })
            }
            Tok::True => {
                self.bump();
                Ok(TerraExpr::Bool(true, span))
            }
            Tok::False => {
                self.bump();
                Ok(TerraExpr::Bool(false, span))
            }
            Tok::Nil => {
                self.bump();
                Ok(TerraExpr::Nil(span))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(TerraExpr::Str(s, span))
            }
            Tok::Name(n) => {
                self.bump();
                Ok(TerraExpr::Ident(n, span))
            }
            Tok::LParen => {
                self.bump();
                let e = self.terra_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RBracket)?;
                Ok(TerraExpr::EscapeExpr(Box::new(e), span))
            }
            Tok::Terra => {
                self.bump();
                let def = self.terra_function_tail(span)?;
                Ok(TerraExpr::TerraFunction(Rc::new(def)))
            }
            other => Err(self.err(format!("unexpected {other} in Terra expression"))),
        }
    }
}

/// Converts the left/right side of a `->` type operator into a list of type
/// expressions: `{A, B}` becomes `[A, B]`, a single expression becomes a
/// one-element list, and `{}` becomes the empty list.
fn flatten_type_list(e: LuaExpr) -> Vec<LuaExpr> {
    match e {
        LuaExpr::Table { items, .. } => items
            .into_iter()
            .filter_map(|it| match it {
                TableItem::Positional(e) => Some(e),
                _ => None,
            })
            .collect(),
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Block {
        match parse(src) {
            Ok(b) => b,
            Err(e) => panic!("parse failed for {src:?}: {e}"),
        }
    }

    #[test]
    fn parses_locals_and_calls() {
        let b = parse_ok("local x, y = 1, 2\nprint(x + y)");
        assert_eq!(b.stmts.len(), 2);
        assert!(matches!(b.stmts[0], LuaStmt::Local { .. }));
        assert!(matches!(b.stmts[1], LuaStmt::Expr(LuaExpr::Call { .. })));
    }

    #[test]
    fn parses_control_flow() {
        parse_ok("if a then b() elseif c then d() else e() end");
        parse_ok("while x < 10 do x = x + 1 end");
        parse_ok("repeat f() until done");
        parse_ok("for i = 1, 10, 2 do print(i) end");
        parse_ok("for k, v in pairs(t) do print(k, v) end");
        parse_ok("do local x = 1 end");
    }

    #[test]
    fn parses_functions_and_methods() {
        let b = parse_ok("function a.b.c:m(x, ...) return x end");
        match &b.stmts[0] {
            LuaStmt::FunctionDecl {
                path, method, body, ..
            } => {
                assert_eq!(path.len(), 3);
                assert_eq!(method.as_deref(), Some("m"));
                assert!(body.is_vararg);
            }
            other => panic!("unexpected {other:?}"),
        }
        parse_ok("local function fact(n) if n == 0 then return 1 end return n * fact(n-1) end");
    }

    #[test]
    fn parses_terra_definition() {
        let b = parse_ok(
            "terra min(a: int, b: int) : int if a < b then return a else return b end end",
        );
        match &b.stmts[0] {
            LuaStmt::TerraDef {
                path, method, def, ..
            } => {
                assert_eq!(path[0].as_ref(), "min");
                assert!(method.is_none());
                assert_eq!(def.params.len(), 2);
                assert!(def.ret.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_terra_method_definition() {
        let b = parse_ok("terra Image:get(x: int) : float return self.data[x] end");
        match &b.stmts[0] {
            LuaStmt::TerraDef { path, method, .. } => {
                assert_eq!(path[0].as_ref(), "Image");
                assert_eq!(method.as_deref(), Some("get"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_struct() {
        let b = parse_ok("struct Image { data : &float; N : int }");
        match &b.stmts[0] {
            LuaStmt::StructDef { entries, .. } => {
                assert_eq!(entries.len(), 2);
                assert!(matches!(entries[0].ty, LuaExpr::PtrType(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
        parse_ok("struct Empty {}");
    }

    #[test]
    fn parses_quote_and_escape() {
        let b = parse_ok("local q = quote var x = 1 in x end");
        match &b.stmts[0] {
            LuaStmt::Local { exprs, .. } => {
                let LuaExpr::Quote(q) = &exprs[0] else {
                    panic!("expected quote")
                };
                assert_eq!(q.stmts.len(), 1);
                assert_eq!(q.exprs.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        parse_ok("local e = `x + 1");
        parse_ok("terra f() : int return [compute()] end");
    }

    #[test]
    fn parses_statement_escape_and_symbol_decl() {
        let src = r#"
            terra f(a : int) : int
                var [s] = a;
                [body];
                return [s]
            end
        "#;
        let b = parse_ok(src);
        match &b.stmts[0] {
            LuaStmt::TerraDef { def, .. } => {
                assert!(matches!(
                    def.body[0],
                    TerraStmt::Var { ref decls, .. } if matches!(decls[0].0, DeclName::Escape(..))
                ));
                assert!(matches!(def.body[1], TerraStmt::Escape(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_escaped_params() {
        let src = "local k = terra([A] : &double, [B] : &double, n : int) : int return n end";
        parse_ok(src);
        // Whole-parameter-list escape (class system stub pattern).
        parse_ok("local s = terra([params]) : int return 0 end");
    }

    #[test]
    fn parses_terra_for_and_prefetch_like_calls() {
        let src = r#"
            terra k(A : &double, N : int)
                for i = 0, N, 4 do
                    prefetch(A + 4, 0, 3, 1)
                    A[i] = A[i] * 2.0
                end
            end
        "#;
        parse_ok(src);
    }

    #[test]
    fn parses_struct_literal_and_cast() {
        parse_ok("terra f() : {} var i = GreyscaleImage {} end");
        parse_ok("local q = `Complex { exp, 0.f }");
        parse_ok("terra g(x : double) self.data = [&float](std.malloc(8)) end");
    }

    #[test]
    fn parses_deref_and_addrof() {
        let src = "terra f(p : &double) : double return @p + @(p + 1) end";
        parse_ok(src);
        parse_ok("terra g() laplace(&i, &o) end");
    }

    #[test]
    fn parses_vector_store_pattern() {
        // From the genkernel figure: assignment through a casted vector pointer.
        let src = r#"
            terra f()
                @vector_pointer([caddr]) = [c]
                var [v] = alpha * @vector_pointer([caddr])
            end
        "#;
        parse_ok(src);
    }

    #[test]
    fn parses_method_sugar_in_terra() {
        parse_ok("terra f(img : &Image) : float return img:get(1, 2) + img.N end");
        parse_ok("terra f(self : &C) return self.__vtable.[methodname]([params]) end");
        parse_ok("terra f(o : &O) return o:[mname](1) end");
    }

    #[test]
    fn parses_function_type_annotations() {
        let b = parse_ok("local Drawable = J.interface { draw = {} -> {} }");
        // Just shape-check: the table contains a Named item whose value is a FuncType.
        match &b.stmts[0] {
            LuaStmt::Local { exprs, .. } => {
                let LuaExpr::Call { args, .. } = &exprs[0] else {
                    panic!("expected call")
                };
                let LuaExpr::Table { items, .. } = &args[0] else {
                    panic!("expected table")
                };
                let TableItem::Named(n, v) = &items[0] else {
                    panic!("expected named")
                };
                assert_eq!(n.as_ref(), "draw");
                assert!(matches!(v, LuaExpr::FuncType { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        parse_ok("local t = {int, double} -> bool");
    }

    #[test]
    fn parses_nested_staging_example() {
        // The blockedloop generator from §2 of the paper (abridged).
        let src = r#"
            function blockedloop(N, blocksizes, bodyfn)
                local function generatelevel(n, ii, jj, bb)
                    if n > #blocksizes then
                        return bodyfn(ii, jj)
                    end
                    local blocksize = blocksizes[n]
                    return quote
                        for i = ii, min(ii + bb, N), blocksize do
                            for j = jj, min(jj + bb, N), blocksize do
                                [generatelevel(n + 1, i, j, blocksize)]
                            end
                        end
                    end
                end
                return generatelevel(1, 0, 0, N)
            end
        "#;
        parse_ok(src);
    }

    #[test]
    fn parses_table_and_call_sugar() {
        parse_ok(r#"local t = { field = "real", type = float }"#);
        parse_ok(r#"Complex.entries:insert { field = "imag", type = float }"#);
        parse_ok(r#"local s = require "lib""#);
    }

    #[test]
    fn parses_operator_precedence() {
        let b = parse_ok("return 1 + 2 * 3");
        match &b.stmts[0] {
            LuaStmt::Return { exprs, .. } => match &exprs[0] {
                LuaExpr::BinOp {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, LuaExpr::BinOp { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // Concat is right-associative.
        let b = parse_ok(r#"return "a" .. "b" .. "c""#);
        match &b.stmts[0] {
            LuaStmt::Return { exprs, .. } => match &exprs[0] {
                LuaExpr::BinOp {
                    op: BinOp::Concat,
                    rhs,
                    ..
                } => {
                    assert!(matches!(
                        **rhs,
                        LuaExpr::BinOp {
                            op: BinOp::Concat,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse("local = 3").is_err());
        assert!(parse("terra f(x) end").is_err()); // missing type annotation
        assert!(parse("if x then").is_err());
        assert!(parse("x +").is_err());
        assert!(parse("1 + 2").is_err()); // expression is not a statement
    }

    #[test]
    fn parses_defer() {
        parse_ok("terra f() defer free(p) end");
    }

    #[test]
    fn parses_anonymous_terra_and_struct_exprs() {
        parse_ok("ImageImpl.methods.init = terra(self : &ImageImpl, N : int) : {} end");
        parse_ok("local S = struct { x : int }");
    }

    #[test]
    fn parses_multiline_paper_example() {
        let src = r#"
            function Image(PixelType)
                struct ImageImpl {
                    data : &PixelType,
                    N : int
                }
                terra ImageImpl:init(N : int) : {}
                    self.data = [&PixelType](std.malloc(N * N * sizeof(PixelType)))
                    self.N = N
                end
                terra ImageImpl:get(x : int, y : int) : PixelType
                    return self.data[x * self.N + y]
                end
                return ImageImpl
            end
            GreyscaleImage = Image(float)
        "#;
        parse_ok(src);
    }
}
