//! # terra-syntax
//!
//! Lexer, parser, and abstract syntax trees for the combined Lua-Terra
//! language of *Terra: A Multi-Stage Language for High-Performance Computing*
//! (DeVito et al., PLDI 2013).
//!
//! A combined chunk is Lua source in which Terra entities are embedded as
//! expressions and statements:
//!
//! - `terra f(x : int) : int … end` — Terra function definitions;
//! - `struct S { x : int }` — Terra struct declarations;
//! - `quote … end` / `` `expr `` — quotations;
//! - `[e]` — escapes that splice Lua values into Terra code.
//!
//! The entry point is [`parse`], which produces a [`Block`] of Lua statements
//! with embedded Terra ASTs, consumed by the `terra-eval` crate.
//!
//! ```
//! # fn main() -> Result<(), terra_syntax::SyntaxError> {
//! let chunk = terra_syntax::parse("terra double(x : int) : int return 2 * x end")?;
//! assert_eq!(chunk.stmts.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod parser;
mod prov;
mod span;
mod token;

pub use ast::{
    BinOp, Block, DeclName, LuaExpr, LuaFunctionBody, LuaStmt, Name, StructEntry, TableItem,
    TerraExpr, TerraFuncDef, TerraParam, TerraQuote, TerraStmt, UnOp,
};
pub use error::{Result, SyntaxError};
pub use lexer::lex;
pub use parser::parse;
pub use prov::{ProvKind, Provenance};
pub use span::Span;
pub use token::{IntSuffix, Tok, Token};
