//! Syntax errors produced by the lexer and parser.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// An error encountered while lexing or parsing combined Lua-Terra source.
///
/// # Examples
///
/// ```
/// use terra_syntax::{SyntaxError, Span};
/// let e = SyntaxError::new("unexpected symbol", Span::new(0, 1, 3));
/// assert!(e.to_string().contains("line 3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    message: String,
    span: Span,
}

impl SyntaxError {
    /// Creates a new error with the given message anchored at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            message: message.into(),
            span,
        }
    }

    /// Human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the source the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.span)
    }
}

impl Error for SyntaxError {}

/// Convenient result alias for syntax-phase operations.
pub type Result<T> = std::result::Result<T, SyntaxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = SyntaxError::new("bad token", Span::new(5, 6, 42));
        assert_eq!(e.to_string(), "bad token (line 42)");
        assert_eq!(e.message(), "bad token");
        assert_eq!(e.span().line, 42);
    }
}
