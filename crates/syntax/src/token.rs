//! Tokens of the combined Lua-Terra grammar.

use crate::span::Span;
use std::fmt;
use std::rc::Rc;

/// Suffix attached to an integer literal, mirroring C/Terra literal suffixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntSuffix {
    /// No suffix: default `int` (i32) in Terra, plain number in Lua.
    None,
    /// `u` / `U`: `uint` (u32).
    U,
    /// `ll` / `LL` / `l` / `L`: `int64`.
    LL,
    /// `ull` / `ULL`: `uint64`.
    ULL,
}

/// A lexical token. Keywords of both Lua and Terra are distinguished from
/// identifiers; Terra-only keywords (`terra`, `quote`, `var`, `struct`,
/// `emit`, `defer`) are tokens too so the parser can switch grammars.
/// Keyword and symbol variants are self-describing.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Tok {
    // Literals
    /// Integer literal with its suffix; overflowing literals are rejected by
    /// the lexer.
    Int(i64, IntSuffix),
    /// Floating literal; the flag is `true` for `f`-suffixed (f32) literals.
    Float(f64, bool),
    /// String literal (escapes already processed).
    Str(Rc<str>),
    /// Identifier.
    Name(Rc<str>),

    // Lua keywords
    And,
    Break,
    Do,
    Else,
    Elseif,
    End,
    False,
    For,
    Function,
    Goto,
    If,
    In,
    Local,
    Nil,
    Not,
    Or,
    Repeat,
    Return,
    Then,
    True,
    Until,
    While,

    // Terra keywords
    Terra,
    Quote,
    Var,
    Struct,
    Defer,
    Emit,
    Escape,
    Parallelfor,

    // Symbols
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Caret,
    Hash,
    Amp,
    Tilde,
    Pipe,
    Shl,
    Shr,
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    Assign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    DotDot,
    Ellipsis,
    At,
    Backtick,
    Arrow,
    /// End of input.
    Eof,
}

impl Tok {
    /// Returns the keyword token for `word`, if it is a keyword.
    pub fn keyword(word: &str) -> Option<Tok> {
        Some(match word {
            "and" => Tok::And,
            "break" => Tok::Break,
            "do" => Tok::Do,
            "else" => Tok::Else,
            "elseif" => Tok::Elseif,
            "end" => Tok::End,
            "false" => Tok::False,
            "for" => Tok::For,
            "function" => Tok::Function,
            "goto" => Tok::Goto,
            "if" => Tok::If,
            "in" => Tok::In,
            "local" => Tok::Local,
            "nil" => Tok::Nil,
            "not" => Tok::Not,
            "or" => Tok::Or,
            "repeat" => Tok::Repeat,
            "return" => Tok::Return,
            "then" => Tok::Then,
            "true" => Tok::True,
            "until" => Tok::Until,
            "while" => Tok::While,
            "terra" => Tok::Terra,
            "quote" => Tok::Quote,
            "var" => Tok::Var,
            "struct" => Tok::Struct,
            "defer" => Tok::Defer,
            "parallelfor" => Tok::Parallelfor,
            "emit" => Tok::Emit,
            "escape" => Tok::Escape,
            _ => return None,
        })
    }

    /// Short printable description, used in parser error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Int(v, _) => format!("integer '{v}'"),
            Tok::Float(v, _) => format!("number '{v}'"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Name(n) => format!("identifier '{n}'"),
            Tok::Eof => "end of input".to_string(),
            other => format!("'{}'", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            Tok::And => "and",
            Tok::Break => "break",
            Tok::Do => "do",
            Tok::Else => "else",
            Tok::Elseif => "elseif",
            Tok::End => "end",
            Tok::False => "false",
            Tok::For => "for",
            Tok::Function => "function",
            Tok::Goto => "goto",
            Tok::If => "if",
            Tok::In => "in",
            Tok::Local => "local",
            Tok::Nil => "nil",
            Tok::Not => "not",
            Tok::Or => "or",
            Tok::Repeat => "repeat",
            Tok::Return => "return",
            Tok::Then => "then",
            Tok::True => "true",
            Tok::Until => "until",
            Tok::While => "while",
            Tok::Terra => "terra",
            Tok::Quote => "quote",
            Tok::Var => "var",
            Tok::Struct => "struct",
            Tok::Defer => "defer",
            Tok::Parallelfor => "parallelfor",
            Tok::Emit => "emit",
            Tok::Escape => "escape",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Caret => "^",
            Tok::Hash => "#",
            Tok::Amp => "&",
            Tok::Tilde => "~",
            Tok::Pipe => "|",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::Eq => "==",
            Tok::Ne => "~=",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Assign => "=",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Comma => ",",
            Tok::Dot => ".",
            Tok::DotDot => "..",
            Tok::Ellipsis => "...",
            Tok::At => "@",
            Tok::Backtick => "`",
            Tok::Arrow => "->",
            _ => "?",
        }
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(Tok::keyword("terra"), Some(Tok::Terra));
        assert_eq!(Tok::keyword("while"), Some(Tok::While));
        assert_eq!(Tok::keyword("laplace"), None);
    }

    #[test]
    fn describe_is_nonempty() {
        for t in [
            Tok::Arrow,
            Tok::Eof,
            Tok::Name("x".into()),
            Tok::Int(3, IntSuffix::None),
        ] {
            assert!(!t.describe().is_empty());
        }
    }
}
