//! Provenance chains: where staged code came from.
//!
//! Terra code is *generated* — a statement in a compiled function may have
//! been written inline, spliced from a `quote` built somewhere else entirely,
//! or copied in by the inliner. A [`Provenance`] records that history as a
//! linked chain of frames, innermost origin first: each frame says *how* the
//! code arrived ([`ProvKind`]) and *at which source line* that staging step
//! happened. Chains are immutable and shared (`Rc`), so stamping thousands of
//! IR statements with the same splice chain costs one pointer clone each.

use std::fmt;
use std::rc::Rc;

/// How one staging step introduced a piece of code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProvKind {
    /// Spliced from a `quote` by an escape (`[e]`) or implicit splice.
    Quote,
    /// Produced by a Lua macro expansion.
    Macro,
    /// Copied into the caller by the mid-end inliner.
    Inline,
}

impl ProvKind {
    /// Human-readable verb for report rendering.
    pub fn verb(self) -> &'static str {
        match self {
            ProvKind::Quote => "via quote at line",
            ProvKind::Macro => "via macro at line",
            ProvKind::Inline => "inlined at line",
        }
    }
}

#[derive(Debug, PartialEq, Eq, Hash)]
struct ProvNode {
    kind: ProvKind,
    /// 1-based source line where this staging step happened (the splice
    /// site, or the call site for inlining). 0 = unknown.
    line: u32,
    prev: Option<Provenance>,
}

/// An immutable, shareable chain of staging steps, innermost origin first.
///
/// `Provenance::quote(12)` reads "this code was spliced by the escape at
/// line 12"; extending it with [`Provenance::extended`] appends *outer*
/// steps (a later splice of the surrounding quote, or an inline).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Provenance(Rc<ProvNode>);

impl Provenance {
    /// A single-frame chain.
    pub fn new(kind: ProvKind, line: u32) -> Self {
        Provenance(Rc::new(ProvNode {
            kind,
            line,
            prev: None,
        }))
    }

    /// A single quote-splice frame (the common case).
    pub fn quote(line: u32) -> Self {
        Self::new(ProvKind::Quote, line)
    }

    /// Returns this chain with one more (outer) staging step appended.
    pub fn extended(&self, kind: ProvKind, line: u32) -> Self {
        Provenance(Rc::new(ProvNode {
            kind,
            line,
            prev: Some(self.clone()),
        }))
    }

    /// Returns this chain with one more (inner) staging step prepended.
    ///
    /// The typechecker lowers outside-in, so it sees the *outer* splice of a
    /// nested quote before the inner one; the inner step happened earlier in
    /// staging order and becomes the new origin. Rebuilds the spine (chains
    /// are short), sharing nothing with `self`.
    pub fn with_inner(&self, kind: ProvKind, line: u32) -> Self {
        let mut frames = Vec::new();
        let mut cur = Some(&self.0);
        while let Some(node) = cur {
            frames.push((node.kind, node.line));
            cur = node.prev.as_ref().map(|p| &p.0);
        }
        let mut p = Provenance::new(kind, line);
        for (k, l) in frames.into_iter().rev() {
            p = p.extended(k, l);
        }
        p
    }

    /// The latest (outermost) staging step's kind.
    pub fn kind(&self) -> ProvKind {
        self.0.kind
    }

    /// The latest (outermost) staging step's line.
    pub fn line(&self) -> u32 {
        self.0.line
    }

    /// Number of frames in the chain.
    pub fn depth(&self) -> usize {
        let mut n = 1;
        let mut cur = &self.0;
        while let Some(prev) = &cur.prev {
            n += 1;
            cur = &prev.0;
        }
        n
    }

    /// Renders the chain innermost-first, e.g.
    /// `"via quote at line 41, inlined at line 30"`.
    pub fn describe(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The list head is the *latest* step; rendering is innermost-first.
        let mut frames = Vec::new();
        let mut cur = Some(&self.0);
        while let Some(node) = cur {
            frames.push((node.kind, node.line));
            cur = node.prev.as_ref().map(|p| &p.0);
        }
        for (i, (kind, line)) in frames.into_iter().rev().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", kind.verb(), line)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_describes_itself() {
        assert_eq!(Provenance::quote(41).describe(), "via quote at line 41");
        assert_eq!(
            Provenance::new(ProvKind::Macro, 7).describe(),
            "via macro at line 7"
        );
    }

    #[test]
    fn chains_render_innermost_first() {
        let p = Provenance::quote(41).extended(ProvKind::Inline, 30);
        assert_eq!(p.describe(), "via quote at line 41, inlined at line 30");
        assert_eq!(p.depth(), 2);
        assert_eq!(p.kind(), ProvKind::Inline);
        assert_eq!(p.line(), 30);
    }

    #[test]
    fn with_inner_prepends_the_origin() {
        let outer = Provenance::quote(12).extended(ProvKind::Inline, 30);
        let p = outer.with_inner(ProvKind::Quote, 41);
        assert_eq!(
            p.describe(),
            "via quote at line 41, via quote at line 12, inlined at line 30"
        );
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn extension_shares_the_tail() {
        let base = Provenance::quote(5);
        let a = base.extended(ProvKind::Inline, 9);
        let b = base.extended(ProvKind::Inline, 9);
        assert_eq!(a, b);
        assert_ne!(a, base.extended(ProvKind::Inline, 10));
    }
}
