//! Lexer for the combined Lua-Terra grammar.
//!
//! One lexer serves both languages: the token set is the union of Lua's and
//! Terra's. Numeric literals keep the integer/float distinction (and C-style
//! suffixes) that Terra needs; the Lua evaluator simply converts integer
//! tokens to doubles.

use crate::error::{Result, SyntaxError};
use crate::span::Span;
use crate::token::{IntSuffix, Tok, Token};
use std::rc::Rc;

/// Lexes `src` completely into a token vector terminated by [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`SyntaxError`] on malformed literals, unterminated strings or
/// comments, or characters outside the grammar.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), terra_syntax::SyntaxError> {
/// let toks = terra_syntax::lex("terra f(x : int) return x end")?;
/// assert!(toks.len() > 5);
/// # Ok(())
/// # }
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn err(&self, msg: impl Into<String>, start: usize) -> SyntaxError {
        SyntaxError::new(msg, Span::new(start as u32, self.pos as u32, self.line))
    }

    fn push(&mut self, tok: Tok, start: usize, line: u32) {
        self.out.push(Token {
            tok,
            span: Span::new(start as u32, self.pos as u32, line),
        });
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let line = self.line;
            if self.pos >= self.bytes.len() {
                self.push(Tok::Eof, start, line);
                return Ok(self.out);
            }
            let c = self.peek();
            let tok = match c {
                b'0'..=b'9' => self.number(start)?,
                b'"' | b'\'' => self.short_string(start)?,
                b'[' if self.peek2() == b'[' || self.peek2() == b'=' => {
                    if let Some(s) = self.try_long_string(start)? {
                        s
                    } else {
                        self.bump();
                        Tok::LBracket
                    }
                }
                c if c == b'_' || c.is_ascii_alphabetic() => self.name(),
                b'.' if self.peek2().is_ascii_digit() => self.number(start)?,
                _ => self.symbol(start)?,
            };
            self.push(tok, start, line);
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'-' if self.peek2() == b'-' => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    if self.peek() == b'['
                        && (self.peek2() == b'[' || self.peek2() == b'=')
                        && self.try_long_string(start)?.is_some()
                    {
                        continue;
                    }
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn name(&mut self) -> Tok {
        let start = self.pos;
        while {
            let c = self.peek();
            c == b'_' || c.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        let word = &self.src[start..self.pos];
        Tok::keyword(word).unwrap_or_else(|| Tok::Name(Rc::from(word)))
    }

    fn number(&mut self, start: usize) -> Result<Tok> {
        // Hex literal
        if self.peek() == b'0' && (self.peek2() | 0x20) == b'x' {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            if self.pos == digits_start {
                return Err(self.err("malformed hexadecimal literal", start));
            }
            let text = &self.src[digits_start..self.pos];
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| self.err("hexadecimal literal out of range", start))?;
            let suffix = self.int_suffix();
            return Ok(Tok::Int(value as i64, suffix));
        }

        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if (self.peek() | 0x20) == b'e'
            && (self.peek2().is_ascii_digit()
                || ((self.peek2() == b'+' || self.peek2() == b'-')
                    && self
                        .bytes
                        .get(self.pos + 2)
                        .is_some_and(|c| c.is_ascii_digit())))
        {
            is_float = true;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text = &self.src[start..self.pos];
        // `f` suffix forces a float literal (e.g. `0.f`, `4f`).
        if (self.peek() | 0x20) == b'f'
            && !self.peek2().is_ascii_alphanumeric()
            && self.peek2() != b'_'
        {
            self.bump();
            let v: f64 = text
                .parse()
                .map_err(|_| self.err("malformed number", start))?;
            return Ok(Tok::Float(v, true));
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err("malformed number", start))?;
            Ok(Tok::Float(v, false))
        } else {
            let suffix = self.int_suffix();
            let v: i64 = text
                .parse()
                .map_err(|_| self.err("integer literal out of range", start))?;
            Ok(Tok::Int(v, suffix))
        }
    }

    fn int_suffix(&mut self) -> IntSuffix {
        let mut unsigned = false;
        let mut long = 0;
        loop {
            match self.peek() | 0x20 {
                b'u' if !unsigned => {
                    unsigned = true;
                    self.bump();
                }
                b'l' if long < 2 => {
                    long += 1;
                    self.bump();
                }
                _ => break,
            }
        }
        match (unsigned, long > 0) {
            (false, false) => IntSuffix::None,
            (true, false) => IntSuffix::U,
            (false, true) => IntSuffix::LL,
            (true, true) => IntSuffix::ULL,
        }
    }

    fn short_string(&mut self, start: usize) -> Result<Tok> {
        let quote = self.bump();
        let mut s = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated string literal", start));
            }
            let c = self.bump();
            if c == quote {
                break;
            }
            if c == b'\n' {
                return Err(self.err("unterminated string literal", start));
            }
            if c == b'\\' {
                let e = self.bump();
                match e {
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'a' => s.push('\x07'),
                    b'b' => s.push('\x08'),
                    b'f' => s.push('\x0c'),
                    b'v' => s.push('\x0b'),
                    b'0'..=b'9' => {
                        let mut v = (e - b'0') as u32;
                        for _ in 0..2 {
                            if self.peek().is_ascii_digit() {
                                v = v * 10 + (self.bump() - b'0') as u32;
                            }
                        }
                        if v > 255 {
                            return Err(self.err("decimal escape out of range", start));
                        }
                        s.push(v as u8 as char);
                    }
                    b'\\' | b'"' | b'\'' => s.push(e as char),
                    b'\n' => s.push('\n'),
                    _ => return Err(self.err("invalid escape sequence", start)),
                }
            } else {
                s.push(c as char);
            }
        }
        Ok(Tok::Str(Rc::from(s.as_str())))
    }

    /// Attempts `[[ … ]]` / `[=[ … ]=]`. Returns `Ok(None)` if the bracket is
    /// not actually a long-string opener (so the caller can emit `[`).
    fn try_long_string(&mut self, start: usize) -> Result<Option<Tok>> {
        let save_pos = self.pos;
        let save_line = self.line;
        debug_assert_eq!(self.peek(), b'[');
        self.bump();
        let mut level = 0;
        while self.peek() == b'=' {
            level += 1;
            self.bump();
        }
        if self.peek() != b'[' {
            self.pos = save_pos;
            self.line = save_line;
            return Ok(None);
        }
        self.bump();
        if self.peek() == b'\n' {
            self.bump();
        }
        let body_start = self.pos;
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated long string", start));
            }
            if self.peek() == b']' {
                let close_start = self.pos;
                self.bump();
                let mut eq = 0;
                while self.peek() == b'=' {
                    eq += 1;
                    self.bump();
                }
                if eq == level && self.peek() == b']' {
                    self.bump();
                    let body = &self.src[body_start..close_start];
                    return Ok(Some(Tok::Str(Rc::from(body))));
                }
            } else {
                self.bump();
            }
        }
    }

    fn symbol(&mut self, start: usize) -> Result<Tok> {
        let c = self.bump();
        Ok(match c {
            b'+' => Tok::Plus,
            b'-' => {
                if self.peek() == b'>' {
                    self.bump();
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'^' => Tok::Caret,
            b'#' => Tok::Hash,
            b'&' => Tok::Amp,
            b'|' => Tok::Pipe,
            b'~' => {
                if self.peek() == b'=' {
                    self.bump();
                    Tok::Ne
                } else {
                    Tok::Tilde
                }
            }
            b'<' => match self.peek() {
                b'=' => {
                    self.bump();
                    Tok::Le
                }
                b'<' => {
                    self.bump();
                    Tok::Shl
                }
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.bump();
                    Tok::Ge
                }
                b'>' => {
                    self.bump();
                    Tok::Shr
                }
                _ => Tok::Gt,
            },
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    Tok::Eq
                } else {
                    Tok::Assign
                }
            }
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b':' => Tok::Colon,
            b',' => Tok::Comma,
            b'.' => {
                if self.peek() == b'.' {
                    self.bump();
                    if self.peek() == b'.' {
                        self.bump();
                        Tok::Ellipsis
                    } else {
                        Tok::DotDot
                    }
                } else {
                    Tok::Dot
                }
            }
            b'@' => Tok::At,
            b'`' => Tok::Backtick,
            _ => return Err(self.err(format!("unexpected character '{}'", c as char), start)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_names() {
        let ts = kinds("terra min(a: int) end");
        assert_eq!(ts[0], Tok::Terra);
        assert_eq!(ts[1], Tok::Name("min".into()));
        assert_eq!(ts[2], Tok::LParen);
        assert!(matches!(ts.last(), Some(Tok::Eof)));
    }

    #[test]
    fn integer_and_float_literals() {
        assert_eq!(kinds("42")[0], Tok::Int(42, IntSuffix::None));
        assert_eq!(kinds("42ULL")[0], Tok::Int(42, IntSuffix::ULL));
        assert_eq!(kinds("42LL")[0], Tok::Int(42, IntSuffix::LL));
        assert_eq!(kinds("0x10")[0], Tok::Int(16, IntSuffix::None));
        assert_eq!(kinds("3.5")[0], Tok::Float(3.5, false));
        assert_eq!(kinds("1e3")[0], Tok::Float(1000.0, false));
        assert_eq!(kinds("0.f")[0], Tok::Float(0.0, true));
        assert_eq!(kinds("4.f")[0], Tok::Float(4.0, true));
    }

    #[test]
    fn float_suffix_does_not_eat_identifiers() {
        // `4for` should not lex `4f` + `or`.
        let ts = kinds("for i = 0,4 do end");
        assert_eq!(ts[0], Tok::For);
    }

    #[test]
    fn range_dots_after_int() {
        let ts = kinds("0 .. 3");
        assert_eq!(ts[0], Tok::Int(0, IntSuffix::None));
        assert_eq!(ts[1], Tok::DotDot);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#)[0], Tok::Str("a\nb".into()));
        assert_eq!(kinds(r#"'q'"#)[0], Tok::Str("q".into()));
        assert_eq!(kinds(r#""\65""#)[0], Tok::Str("A".into()));
    }

    #[test]
    fn long_strings_and_comments() {
        assert_eq!(kinds("[[hello]]")[0], Tok::Str("hello".into()));
        assert_eq!(kinds("[==[a]b]==]")[0], Tok::Str("a]b".into()));
        let ts = kinds("1 --[[ block\ncomment ]] 2");
        assert_eq!(ts[0], Tok::Int(1, IntSuffix::None));
        assert_eq!(ts[1], Tok::Int(2, IntSuffix::None));
        let ts = kinds("1 -- line comment\n2");
        assert_eq!(ts[1], Tok::Int(2, IntSuffix::None));
    }

    #[test]
    fn bracket_not_long_string() {
        // `[ [` with a space is two brackets; `[x]` is brackets around a name.
        let ts = kinds("a[1]");
        assert_eq!(ts[1], Tok::LBracket);
        assert_eq!(ts[3], Tok::RBracket);
        let ts = kinds("[=x");
        assert_eq!(ts[0], Tok::LBracket);
    }

    #[test]
    fn operators() {
        let ts = kinds("a ~= b == c <= d >= e < f > g .. h -> i");
        assert!(ts.contains(&Tok::Ne));
        assert!(ts.contains(&Tok::Eq));
        assert!(ts.contains(&Tok::Le));
        assert!(ts.contains(&Tok::Ge));
        assert!(ts.contains(&Tok::DotDot));
        assert!(ts.contains(&Tok::Arrow));
    }

    #[test]
    fn terra_specific_symbols() {
        let ts = kinds("@p &x `e");
        assert_eq!(ts[0], Tok::At);
        assert_eq!(ts[2], Tok::Amp);
        assert_eq!(ts[4], Tok::Backtick);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("$").is_err());
        assert!(lex("[[never closed").is_err());
    }
}
