//! Abstract syntax trees for the combined Lua-Terra language.
//!
//! The file-level program is a Lua block. Terra fragments (`terra`
//! definitions, `struct` declarations, `quote … end`, backtick quotations)
//! appear *inside* Lua expressions and statements, mirroring the paper's
//! design where Terra entities are first-class Lua values.
//!
//! Type annotations inside Terra code (`x : int`, `: {}`) are **Lua
//! expressions** evaluated during specialization — types are Lua values. The
//! parser additionally accepts the Terra type operators `&T` (pointer),
//! `{T, …}` (tuple) and `P -> R` (function type) inside annotation position
//! and inside escapes; these surface as dedicated [`LuaExpr`] variants.

use crate::span::Span;
use std::rc::Rc;

/// An interned-ish name (shared string).
pub type Name = Rc<str>;

/// A block of Lua statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<LuaStmt>,
}

/// Binary operators shared by Lua and Terra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^` (exponentiation in Lua; bitwise xor in Terra)
    Pow,
    /// `..` string concatenation (Lua only)
    Concat,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `<<` (Terra only)
    Shl,
    /// `>>` (Terra only)
    Shr,
}

/// Unary operators shared by Lua and Terra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `not`
    Not,
    /// `#` length (Lua only)
    Len,
}

// ---------------------------------------------------------------------------
// Lua
// ---------------------------------------------------------------------------

/// A Lua statement.
#[derive(Debug, Clone, PartialEq)]
pub enum LuaStmt {
    /// `local a, b = e1, e2`
    Local {
        /// Declared names.
        names: Vec<Name>,
        /// Initializers (may be shorter or longer than `names`).
        exprs: Vec<LuaExpr>,
        /// Statement location.
        span: Span,
    },
    /// `a, b.c[d] = e1, e2`
    Assign {
        /// Assignment targets (`Var`, `Index`).
        targets: Vec<LuaExpr>,
        /// Right-hand sides.
        exprs: Vec<LuaExpr>,
        /// Statement location.
        span: Span,
    },
    /// An expression statement (function or method call).
    Expr(LuaExpr),
    /// `do … end`
    Do(Block),
    /// `while cond do body end`
    While {
        /// Loop condition.
        cond: LuaExpr,
        /// Loop body.
        body: Block,
    },
    /// `repeat body until cond`
    Repeat {
        /// Loop body.
        body: Block,
        /// Exit condition (checked after the body, in the body's scope).
        cond: LuaExpr,
    },
    /// `if … then … elseif … else … end`
    If {
        /// `(condition, body)` pairs for `if`/`elseif`.
        arms: Vec<(LuaExpr, Block)>,
        /// The `else` body, if present.
        else_body: Option<Block>,
    },
    /// `for v = start, stop [, step] do body end`
    NumericFor {
        /// Loop variable.
        var: Name,
        /// Start expression.
        start: LuaExpr,
        /// Inclusive stop expression.
        stop: LuaExpr,
        /// Optional step expression (defaults to 1).
        step: Option<LuaExpr>,
        /// Loop body.
        body: Block,
    },
    /// `for a, b in e do body end`
    GenericFor {
        /// Loop variables.
        vars: Vec<Name>,
        /// Iterator expressions.
        exprs: Vec<LuaExpr>,
        /// Loop body.
        body: Block,
    },
    /// `function a.b.c[:m](…) … end`
    FunctionDecl {
        /// Dotted path of the target (`a`, `b`, `c`).
        path: Vec<Name>,
        /// Method name if declared with `:`; adds implicit `self`.
        method: Option<Name>,
        /// The function itself.
        body: Rc<LuaFunctionBody>,
        /// Statement location.
        span: Span,
    },
    /// `local function f(…) … end`
    LocalFunction {
        /// Declared local name (in scope inside the body, for recursion).
        name: Name,
        /// The function.
        body: Rc<LuaFunctionBody>,
    },
    /// `return e1, e2`
    Return {
        /// Returned expressions.
        exprs: Vec<LuaExpr>,
        /// Statement location.
        span: Span,
    },
    /// `break`
    Break(Span),
    /// `terra f(…) : R … end` or `terra Obj:method(…) … end` as a statement;
    /// also covers bare declarations `terra f :: type`? (not supported) and
    /// assigns the created Terra function to the named path.
    TerraDef {
        /// Dotted path being assigned (e.g. `ImageImpl`, `methods`, `init`).
        path: Vec<Name>,
        /// Method name if declared with `:` — sugar for
        /// `path.methods.<name>` with implicit `self : &Path`.
        method: Option<Name>,
        /// The Terra function literal.
        def: Rc<TerraFuncDef>,
        /// Whether the statement was prefixed with `local`.
        is_local: bool,
        /// Statement location.
        span: Span,
    },
    /// `struct Name { field : T, … }` as a statement; assigns a new struct
    /// type to `path`.
    StructDef {
        /// Dotted path being assigned.
        path: Vec<Name>,
        /// Declared entries.
        entries: Vec<StructEntry>,
        /// Whether the statement was prefixed with `local`.
        is_local: bool,
        /// Statement location.
        span: Span,
    },
}

/// One `name : type` entry of a struct declaration. The type is a Lua
/// expression evaluated at declaration time.
#[derive(Debug, Clone, PartialEq)]
pub struct StructEntry {
    /// Field name.
    pub name: Name,
    /// Field type annotation (a Lua expression producing a Terra type).
    pub ty: LuaExpr,
    /// Source location.
    pub span: Span,
}

/// The body of a Lua `function` literal.
#[derive(Debug, Clone, PartialEq)]
pub struct LuaFunctionBody {
    /// Parameter names (without the implicit `self`, which the parser adds
    /// explicitly for method declarations).
    pub params: Vec<Name>,
    /// Whether the parameter list ends with `...`.
    pub is_vararg: bool,
    /// Function body.
    pub body: Block,
    /// Definition location.
    pub span: Span,
}

/// A Lua expression.
#[derive(Debug, Clone, PartialEq)]
pub enum LuaExpr {
    /// `nil`
    Nil(Span),
    /// `true`
    True(Span),
    /// `false`
    False(Span),
    /// Number literal (Lua numbers are doubles).
    Number(f64, Span),
    /// String literal.
    Str(Name, Span),
    /// `...`
    Vararg(Span),
    /// Variable reference.
    Var(Name, Span),
    /// `e[i]` or `e.name` (the latter with a string index).
    Index {
        /// Indexed object.
        obj: Box<LuaExpr>,
        /// Index expression.
        index: Box<LuaExpr>,
        /// Location.
        span: Span,
    },
    /// `f(args…)`, `f "str"`, `f {table}`
    Call {
        /// Callee.
        func: Box<LuaExpr>,
        /// Arguments.
        args: Vec<LuaExpr>,
        /// Location.
        span: Span,
    },
    /// `obj:name(args…)`
    MethodCall {
        /// Receiver.
        obj: Box<LuaExpr>,
        /// Method name.
        name: Name,
        /// Arguments.
        args: Vec<LuaExpr>,
        /// Location.
        span: Span,
    },
    /// Binary operation.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<LuaExpr>,
        /// Right operand.
        rhs: Box<LuaExpr>,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    UnOp {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<LuaExpr>,
        /// Location.
        span: Span,
    },
    /// `function (…) … end`
    Function(Rc<LuaFunctionBody>),
    /// `{ a, b; k = v, [e] = v }`
    Table {
        /// Items in source order.
        items: Vec<TableItem>,
        /// Location.
        span: Span,
    },
    /// An anonymous `terra (…) … end` literal.
    TerraFunction(Rc<TerraFuncDef>),
    /// `quote … end` or `` `expr ``.
    Quote(Rc<TerraQuote>),
    /// An anonymous `struct { … }` literal.
    AnonStruct {
        /// Declared entries.
        entries: Vec<StructEntry>,
        /// Location.
        span: Span,
    },
    /// Terra type operator `&T` — pointer to `T`.
    PtrType(Box<LuaExpr>, Span),
    /// Terra type operator `{T1, T2, …}` in annotation position — tuple type.
    TupleType(Vec<LuaExpr>, Span),
    /// Terra type operator `params -> returns` — function pointer type.
    FuncType {
        /// Parameter types.
        params: Vec<LuaExpr>,
        /// Return types.
        returns: Vec<LuaExpr>,
        /// Location.
        span: Span,
    },
}

/// One item of a Lua table constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum TableItem {
    /// Positional item (appended to the array part).
    Positional(LuaExpr),
    /// `name = value`
    Named(Name, LuaExpr),
    /// `[key] = value`
    Keyed(LuaExpr, LuaExpr),
}

impl LuaExpr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            LuaExpr::Nil(s)
            | LuaExpr::True(s)
            | LuaExpr::False(s)
            | LuaExpr::Number(_, s)
            | LuaExpr::Str(_, s)
            | LuaExpr::Vararg(s)
            | LuaExpr::Var(_, s)
            | LuaExpr::PtrType(_, s)
            | LuaExpr::TupleType(_, s) => *s,
            LuaExpr::Index { span, .. }
            | LuaExpr::Call { span, .. }
            | LuaExpr::MethodCall { span, .. }
            | LuaExpr::BinOp { span, .. }
            | LuaExpr::UnOp { span, .. }
            | LuaExpr::Table { span, .. }
            | LuaExpr::AnonStruct { span, .. }
            | LuaExpr::FuncType { span, .. } => *span,
            LuaExpr::Function(b) => b.span,
            LuaExpr::TerraFunction(d) => d.span,
            LuaExpr::Quote(q) => q.span,
        }
    }
}

// ---------------------------------------------------------------------------
// Terra
// ---------------------------------------------------------------------------

/// A declared name in Terra code: either a plain identifier or an escape
/// `[e]` that must evaluate to a symbol (paper: `symbol()` / `symmat`).
#[derive(Debug, Clone, PartialEq)]
pub enum DeclName {
    /// Plain identifier, hygienically renamed at specialization.
    Ident(Name, Span),
    /// `[lua-expr]` evaluating to a symbol (or list of symbols in parameter
    /// position).
    Escape(LuaExpr, Span),
}

impl DeclName {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            DeclName::Ident(_, s) | DeclName::Escape(_, s) => *s,
        }
    }
}

/// One Terra function parameter: `name : type`.
#[derive(Debug, Clone, PartialEq)]
pub struct TerraParam {
    /// Parameter name (identifier or symbol escape).
    pub name: DeclName,
    /// Type annotation, a Lua expression; `None` only for escape parameters
    /// whose symbols carry their own types.
    pub ty: Option<LuaExpr>,
}

/// A Terra function literal: `terra (params) : ret body end`.
#[derive(Debug, Clone, PartialEq)]
pub struct TerraFuncDef {
    /// Declared parameters.
    pub params: Vec<TerraParam>,
    /// Optional return type annotation (Lua expression; `{}` means void).
    pub ret: Option<LuaExpr>,
    /// Body statements.
    pub body: Vec<TerraStmt>,
    /// Definition location.
    pub span: Span,
    /// Name hint for diagnostics (filled for named definitions).
    pub name_hint: Option<Name>,
}

/// A `quote … end` (statement quote, with optional `in` expressions) or a
/// backtick single-expression quote.
#[derive(Debug, Clone, PartialEq)]
pub struct TerraQuote {
    /// Quoted statements (empty for backtick quotes).
    pub stmts: Vec<TerraStmt>,
    /// Trailing expressions after `in` (or the single backtick expression).
    pub exprs: Vec<TerraExpr>,
    /// Location.
    pub span: Span,
}

/// A Terra statement.
///
/// Statement vectors own their elements directly; the size skew from the
/// `For` variant is acceptable for an AST that is built once per chunk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum TerraStmt {
    /// `var a : T, b = e1, e2`
    Var {
        /// Declared names with optional type annotations.
        decls: Vec<(DeclName, Option<LuaExpr>)>,
        /// Initializers (may be empty for default initialization).
        inits: Vec<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// `lhs1, lhs2 = r1, r2`
    Assign {
        /// L-value expressions.
        targets: Vec<TerraExpr>,
        /// Right-hand sides.
        exprs: Vec<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// `if … then … elseif … else … end`
    If {
        /// `(cond, body)` pairs.
        arms: Vec<(TerraExpr, Vec<TerraStmt>)>,
        /// Optional `else` body.
        else_body: Option<Vec<TerraStmt>>,
        /// Location.
        span: Span,
    },
    /// `while cond do body end`
    While {
        /// Condition.
        cond: TerraExpr,
        /// Body.
        body: Vec<TerraStmt>,
        /// Location.
        span: Span,
    },
    /// `repeat body until cond`
    Repeat {
        /// Body.
        body: Vec<TerraStmt>,
        /// Condition.
        cond: TerraExpr,
        /// Location.
        span: Span,
    },
    /// `for v = start, stop [, step] do body end` (half-open, like Terra).
    ForNum {
        /// Loop variable.
        var: DeclName,
        /// Optional loop-variable type annotation.
        ty: Option<LuaExpr>,
        /// Start expression.
        start: TerraExpr,
        /// Exclusive stop expression.
        stop: TerraExpr,
        /// Optional step.
        step: Option<TerraExpr>,
        /// Body.
        body: Vec<TerraStmt>,
        /// Location.
        span: Span,
    },
    /// `parallelfor v = start, stop do body end` — a data-parallel numeric
    /// loop: iterations may execute concurrently across worker threads (no
    /// step; the body is extracted into a kernel function at typechecking).
    ParallelFor {
        /// Loop variable.
        var: DeclName,
        /// Optional loop-variable type annotation.
        ty: Option<LuaExpr>,
        /// Start expression.
        start: TerraExpr,
        /// Exclusive stop expression.
        stop: TerraExpr,
        /// Body.
        body: Vec<TerraStmt>,
        /// Location.
        span: Span,
    },
    /// `return e1, e2`
    Return {
        /// Returned expressions.
        exprs: Vec<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// `break`
    Break(Span),
    /// `do … end`
    Block(Vec<TerraStmt>, Span),
    /// An expression statement (call).
    Expr(TerraExpr),
    /// A statement-position escape `[e]`: splices a quote, a list of quotes,
    /// or statements produced by Lua code.
    Escape(LuaExpr, Span),
    /// `defer f(args)` — run the call when the scope exits.
    Defer(TerraExpr, Span),
}

impl TerraStmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            TerraStmt::Var { span, .. }
            | TerraStmt::Assign { span, .. }
            | TerraStmt::If { span, .. }
            | TerraStmt::While { span, .. }
            | TerraStmt::Repeat { span, .. }
            | TerraStmt::ForNum { span, .. }
            | TerraStmt::ParallelFor { span, .. }
            | TerraStmt::Return { span, .. }
            | TerraStmt::Block(_, span)
            | TerraStmt::Escape(_, span)
            | TerraStmt::Defer(_, span)
            | TerraStmt::Break(span) => *span,
            TerraStmt::Expr(e) => e.span(),
        }
    }
}

/// A Terra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TerraExpr {
    /// Integer literal with suffix-derived width.
    Int {
        /// Value (bit pattern for unsigned).
        value: i64,
        /// Literal suffix.
        suffix: crate::token::IntSuffix,
        /// Location.
        span: Span,
    },
    /// Floating literal; `is_f32` for `f`-suffixed literals.
    Float {
        /// Value.
        value: f64,
        /// Whether the literal is a `float` (f32) rather than `double`.
        is_f32: bool,
        /// Location.
        span: Span,
    },
    /// `true` / `false`
    Bool(bool, Span),
    /// `nil` — the null pointer.
    Nil(Span),
    /// String literal (becomes `rawstring`).
    Str(Name, Span),
    /// Identifier; resolution (Terra local vs. Lua value) happens during
    /// specialization.
    Ident(Name, Span),
    /// `e.name` — struct field access or Lua table select.
    Field {
        /// Object.
        obj: Box<TerraExpr>,
        /// Field name.
        name: Name,
        /// Location.
        span: Span,
    },
    /// `e.[lua-expr]` — computed field access (paper: `self.__vtable.[methodname]`).
    DynField {
        /// Object.
        obj: Box<TerraExpr>,
        /// Lua expression producing the field name or symbol.
        name: LuaExpr,
        /// Location.
        span: Span,
    },
    /// `e[i]`
    Index {
        /// Indexed pointer or array.
        obj: Box<TerraExpr>,
        /// Index expression.
        index: Box<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// `f(args)` — also covers casts `T(e)` and struct constructors when the
    /// callee specializes to a type.
    Call {
        /// Callee.
        func: Box<TerraExpr>,
        /// Arguments.
        args: Vec<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// `obj:name(args)`
    MethodCall {
        /// Receiver.
        obj: Box<TerraExpr>,
        /// Method name.
        name: Name,
        /// Arguments.
        args: Vec<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// `obj:[lua-expr](args)` — computed method call.
    DynMethodCall {
        /// Receiver.
        obj: Box<TerraExpr>,
        /// Lua expression producing the method name.
        name: LuaExpr,
        /// Arguments.
        args: Vec<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// `TypeExpr { a, b, … }` / `TypeExpr { x = a }` — struct literal. The
    /// callee must specialize to a struct type.
    StructInit {
        /// Type expression.
        ty: Box<TerraExpr>,
        /// Positional initializers.
        args: Vec<(Option<Name>, TerraExpr)>,
        /// Location.
        span: Span,
    },
    /// Anonymous tuple/array literal `{a, b}` in expression position? Not in
    /// core Terra; retained as `arrayof`-style literal via builtins instead.
    /// Binary operation.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<TerraExpr>,
        /// Right operand.
        rhs: Box<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    UnOp {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<TerraExpr>,
        /// Location.
        span: Span,
    },
    /// `@e` — pointer dereference.
    Deref(Box<TerraExpr>, Span),
    /// `&e` — address of an l-value.
    AddrOf(Box<TerraExpr>, Span),
    /// `[lua-expr]` — expression escape; the Lua value is spliced in.
    EscapeExpr(Box<LuaExpr>, Span),
    /// `e and e2` / `e or e2` use `BinOp`; `select(cond, a, b)` via builtin.
    /// An inline anonymous terra function used as a value.
    TerraFunction(Rc<TerraFuncDef>),
}

impl TerraExpr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            TerraExpr::Int { span, .. }
            | TerraExpr::Float { span, .. }
            | TerraExpr::Bool(_, span)
            | TerraExpr::Nil(span)
            | TerraExpr::Str(_, span)
            | TerraExpr::Ident(_, span)
            | TerraExpr::Field { span, .. }
            | TerraExpr::DynField { span, .. }
            | TerraExpr::Index { span, .. }
            | TerraExpr::Call { span, .. }
            | TerraExpr::MethodCall { span, .. }
            | TerraExpr::DynMethodCall { span, .. }
            | TerraExpr::StructInit { span, .. }
            | TerraExpr::BinOp { span, .. }
            | TerraExpr::UnOp { span, .. }
            | TerraExpr::Deref(_, span)
            | TerraExpr::AddrOf(_, span)
            | TerraExpr::EscapeExpr(_, span) => *span,
            TerraExpr::TerraFunction(d) => d.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accessible() {
        let e = LuaExpr::Number(1.0, Span::new(0, 1, 1));
        assert_eq!(e.span().line, 1);
        let t = TerraExpr::Bool(true, Span::new(0, 4, 2));
        assert_eq!(t.span().line, 2);
        let s = TerraStmt::Break(Span::new(0, 5, 3));
        assert_eq!(s.span().line, 3);
    }
}
