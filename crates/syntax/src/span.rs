//! Source positions and spans.
//!
//! Every token and AST node produced by this crate carries a [`Span`] so that
//! later pipeline stages (specialization, typechecking, the VM) can report
//! errors in terms of the original combined Lua-Terra source.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer, plus the
/// 1-based line on which it starts.
///
/// # Examples
///
/// ```
/// use terra_syntax::Span;
/// let s = Span::new(0, 5, 1);
/// assert_eq!(s.len(), 5);
/// assert!(!s.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a span covering `[start, end)` on `line`.
    pub fn new(start: u32, end: u32, line: u32) -> Self {
        Span { start, end, line }
    }

    /// A zero-width placeholder span (used for synthesized nodes).
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line).max(1),
        }
    }

    /// Extracts the spanned slice from `src`, if in bounds.
    pub fn slice<'a>(&self, src: &'a str) -> Option<&'a str> {
        src.get(self.start as usize..self.end as usize)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7, 1);
        let b = Span::new(10, 12, 2);
        let m = a.merge(b);
        assert_eq!((m.start, m.end), (3, 12));
        assert_eq!(m.line, 1);
    }

    #[test]
    fn slice_extracts() {
        let src = "hello world";
        let s = Span::new(6, 11, 1);
        assert_eq!(s.slice(src), Some("world"));
        assert_eq!(Span::new(6, 99, 1).slice(src), None);
    }

    #[test]
    fn synthetic_is_empty() {
        assert!(Span::synthetic().is_empty());
        assert_eq!(Span::new(2, 2, 1).len(), 0);
    }
}
