//! Errors raised during Lua evaluation, specialization, typechecking, or
//! Terra execution.

use std::error::Error;
use std::fmt;
use terra_syntax::Span;

/// Which phase produced the error. The paper (§4.1) is explicit about *when*
/// each class of error can occur: specialization errors happen at definition
/// time, type and linking errors at first call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Ordinary Lua runtime error (`error(...)`, bad arithmetic, etc.).
    Lua,
    /// Error while eagerly specializing a Terra function or quote.
    Specialize,
    /// Error while lazily typechecking a Terra function.
    Typecheck,
    /// Error while linking (e.g. calling a declared-but-undefined function).
    Link,
    /// A trap during Terra execution.
    Execution,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lua => "runtime error",
            Phase::Specialize => "specialization error",
            Phase::Typecheck => "type error",
            Phase::Link => "link error",
            Phase::Execution => "terra runtime error",
        };
        f.write_str(s)
    }
}

/// An error in the combined Lua-Terra system.
#[derive(Debug, Clone)]
pub struct LuaError {
    /// What failed.
    pub message: String,
    /// Where (if known).
    pub span: Option<Span>,
    /// Which phase failed.
    pub phase: Phase,
    /// Call-stack context, innermost first.
    pub trace: Vec<String>,
}

impl LuaError {
    /// A plain Lua runtime error.
    pub fn msg(message: impl Into<String>) -> LuaError {
        LuaError {
            message: message.into(),
            span: None,
            phase: Phase::Lua,
            trace: Vec::new(),
        }
    }

    /// An error at a specific location.
    pub fn at(message: impl Into<String>, span: Span) -> LuaError {
        LuaError {
            message: message.into(),
            span: Some(span),
            phase: Phase::Lua,
            trace: Vec::new(),
        }
    }

    /// Tags the error with a phase.
    pub fn phase(mut self, phase: Phase) -> LuaError {
        self.phase = phase;
        self
    }

    /// Adds a stack-frame note.
    pub fn traced(mut self, frame: impl Into<String>) -> LuaError {
        self.trace.push(frame.into());
        self
    }
}

impl fmt::Display for LuaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.phase, self.message)?;
        if let Some(span) = self.span {
            write!(f, " ({span})")?;
        }
        for t in &self.trace {
            write!(f, "\n  in {t}")?;
        }
        Ok(())
    }
}

impl Error for LuaError {}

impl From<terra_syntax::SyntaxError> for LuaError {
    fn from(e: terra_syntax::SyntaxError) -> Self {
        LuaError::at(e.message().to_string(), e.span())
    }
}

impl From<terra_vm::Trap> for LuaError {
    fn from(t: terra_vm::Trap) -> Self {
        LuaError::msg(t.to_string()).phase(Phase::Execution)
    }
}

/// Result alias for evaluation.
pub type EvalResult<T> = Result<T, LuaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_trace() {
        let e = LuaError::msg("boom")
            .phase(Phase::Typecheck)
            .traced("function 'laplace'");
        let s = e.to_string();
        assert!(s.contains("type error"));
        assert!(s.contains("boom"));
        assert!(s.contains("laplace"));
    }
}
