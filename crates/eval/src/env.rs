//! The shared lexical environment.
//!
//! One environment chain serves both Lua evaluation and Terra
//! specialization — the paper's *shared lexical environment* (`Γ` in Terra
//! Core). During specialization, Terra-introduced variables are bound here
//! as [`LuaValue::Symbol`]s, so escaped Lua code sees them, and Lua
//! variables are visible to Terra code without explicit escapes.

use crate::value::LuaValue;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use terra_syntax::Name;

#[derive(Debug, Default)]
struct Scope {
    vars: HashMap<Name, LuaValue>,
    parent: Option<Env>,
}

/// A lexical scope; cheap to clone (shared).
#[derive(Debug, Clone, Default)]
pub struct Env(Rc<RefCell<Scope>>);

impl Env {
    /// Creates a root scope.
    pub fn new() -> Env {
        Env::default()
    }

    /// Creates a child scope.
    pub fn child(&self) -> Env {
        Env(Rc::new(RefCell::new(Scope {
            vars: HashMap::new(),
            parent: Some(self.clone()),
        })))
    }

    /// Looks a name up through the scope chain.
    pub fn get(&self, name: &str) -> Option<LuaValue> {
        let scope = self.0.borrow();
        if let Some(v) = scope.vars.get(name) {
            return Some(v.clone());
        }
        scope.parent.as_ref().and_then(|p| p.get(name))
    }

    /// Declares a name in *this* scope (Lua `local`).
    pub fn declare(&self, name: Name, value: LuaValue) {
        self.0.borrow_mut().vars.insert(name, value);
    }

    /// Assigns to an existing binding up the chain; returns `false` if the
    /// name is not bound anywhere (caller then writes the global scope).
    pub fn assign(&self, name: &str, value: LuaValue) -> bool {
        let mut scope = self.0.borrow_mut();
        if let Some(slot) = scope.vars.get_mut(name) {
            *slot = value;
            return true;
        }
        match &scope.parent {
            Some(p) => p.assign(name, value),
            None => false,
        }
    }

    /// Whether two env handles are the same scope.
    pub fn ptr_eq(&self, other: &Env) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }

    /// The root (global) scope of this chain.
    pub fn root(&self) -> Env {
        let parent = self.0.borrow().parent.clone();
        match parent {
            Some(p) => p.root(),
            None => self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_lookup_and_shadowing() {
        let root = Env::new();
        root.declare("x".into(), LuaValue::Number(1.0));
        let inner = root.child();
        assert!(matches!(inner.get("x"), Some(LuaValue::Number(n)) if n == 1.0));
        inner.declare("x".into(), LuaValue::Number(2.0));
        assert!(matches!(inner.get("x"), Some(LuaValue::Number(n)) if n == 2.0));
        assert!(matches!(root.get("x"), Some(LuaValue::Number(n)) if n == 1.0));
    }

    #[test]
    fn assignment_walks_up() {
        let root = Env::new();
        root.declare("x".into(), LuaValue::Number(1.0));
        let inner = root.child().child();
        assert!(inner.assign("x", LuaValue::Number(5.0)));
        assert!(matches!(root.get("x"), Some(LuaValue::Number(n)) if n == 5.0));
        assert!(!inner.assign("missing", LuaValue::Nil));
    }

    #[test]
    fn root_finds_global_scope() {
        let root = Env::new();
        let deep = root.child().child().child();
        assert!(deep.root().ptr_eq(&root));
    }
}
