//! The Lua interpreter (the `→L` judgment of Terra Core).
//!
//! A tree-walking evaluator for the Lua dialect, extended with the Terra
//! staging constructs: evaluating a `terra` definition eagerly specializes
//! it (LTDEFN), evaluating a `quote` specializes a quotation (LTQUOTE), and
//! calling a Terra function from Lua triggers lazy typechecking +
//! compilation and crosses the FFI boundary (LTAPP).

use crate::context::Context;
use crate::env::Env;
use crate::error::{EvalResult, LuaError, Phase};
use crate::reflect;
use crate::spec::{SpecFunc, Specializer};
use crate::value::{LuaClosure, LuaValue, Table, TableRef};
use std::cell::RefCell;
use std::rc::Rc;
use terra_ir::{FuncId, FuncTy, ScalarTy, StructId, Ty};
use terra_syntax::{
    BinOp, Block, LuaExpr, LuaStmt, Name, Span, StructEntry, TableItem, TerraFuncDef, UnOp,
};
use terra_vm::{OutputSink, Value};

/// Control flow escaping a Lua block.
pub enum Flow {
    /// Fell through.
    Normal,
    /// `break`
    Break,
    /// `return v1, v2, …`
    Return(Vec<LuaValue>),
}

/// Lua call-depth limit. Debug builds have much larger interpreter frames,
/// so the guard must trip well before the host thread's stack runs out.
const MAX_DEPTH: usize = if cfg!(debug_assertions) { 48 } else { 200 };

/// The combined Lua-Terra interpreter and staging engine.
pub struct Interp {
    /// Shared staging state (types, program, VM, function metadata).
    pub ctx: Context,
    /// The global environment.
    pub globals: Env,
    depth: usize,
    /// Registered modules for `require`.
    pub modules: std::collections::HashMap<String, LuaValue>,
    /// Sources registered for `require` but not yet loaded.
    pub module_sources: std::collections::HashMap<String, String>,
    /// When set, every function compiled from here on is also run through
    /// the full IR analysis suite (dataflow + bounds lints) and the
    /// resulting warnings accumulate in [`Interp::diagnostics`].
    pub lint: bool,
    /// Warnings collected by lint mode; drain with [`Interp::take_diagnostics`].
    pub diagnostics: Vec<terra_ir::Diagnostic>,
    /// Mid-end optimization level applied when functions are compiled.
    /// Changing it affects functions compiled after the change; already-
    /// compiled functions keep their code.
    pub opt: terra_ir::OptLevel,
    /// Whether the `-O2` pipeline may elide bounds checks the abstract
    /// interpreter proves redundant (`--no-checkelim` clears it). The VM
    /// additionally ignores elisions at runtime under the sanitizer.
    pub elide_checks: bool,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// Creates an interpreter with the standard library installed.
    pub fn new() -> Self {
        let mut interp = Interp {
            ctx: Context::new(),
            globals: Env::new(),
            depth: 0,
            modules: std::collections::HashMap::new(),
            module_sources: std::collections::HashMap::new(),
            lint: false,
            diagnostics: Vec::new(),
            opt: terra_ir::OptLevel::default(),
            elide_checks: true,
        };
        crate::stdlib::install(&mut interp);
        interp
    }

    /// Takes the warnings accumulated by lint mode (see [`Interp::lint`]).
    pub fn take_diagnostics(&mut self) -> Vec<terra_ir::Diagnostic> {
        std::mem::take(&mut self.diagnostics)
    }

    /// Captures Terra/Lua `print`/`printf` output instead of writing stdout.
    pub fn capture_output(&mut self) {
        self.ctx.exec.output = OutputSink::Capture(String::new());
    }

    /// Takes captured output.
    pub fn take_output(&mut self) -> String {
        self.ctx.exec.take_output()
    }

    /// Parses and evaluates a combined Lua-Terra chunk. Returns the chunk's
    /// return values (empty if it does not return).
    ///
    /// # Errors
    ///
    /// Propagates syntax errors, Lua runtime errors, and staging errors.
    pub fn exec(&mut self, src: &str) -> EvalResult<Vec<LuaValue>> {
        let t0 = self.ctx.exec.trace.now_us();
        let block = terra_syntax::parse(src)?;
        self.ctx
            .exec
            .trace
            .record(terra_trace::Stage::Parse, "chunk", t0);
        let env = self.globals.child();
        match self.eval_block(&block, &env)? {
            Flow::Return(vs) => Ok(vs),
            _ => Ok(Vec::new()),
        }
    }

    /// Looks up a global variable.
    pub fn global(&self, name: &str) -> LuaValue {
        self.globals.get(name).unwrap_or(LuaValue::Nil)
    }

    /// Sets a global variable.
    pub fn set_global(&mut self, name: &str, v: LuaValue) {
        self.globals.declare(Rc::from(name), v);
    }

    // -----------------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------------

    /// Evaluates a block in a fresh child scope.
    pub fn eval_block(&mut self, block: &Block, env: &Env) -> EvalResult<Flow> {
        for stmt in &block.stmts {
            match self.eval_stmt(stmt, env)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn eval_stmt(&mut self, stmt: &LuaStmt, env: &Env) -> EvalResult<Flow> {
        match stmt {
            LuaStmt::Local {
                names,
                exprs,
                span: _,
            } => {
                let values = self.eval_exprlist(exprs, env, names.len())?;
                for (n, v) in names.iter().zip(values) {
                    env.declare(n.clone(), v);
                }
                Ok(Flow::Normal)
            }
            LuaStmt::Assign { targets, exprs, .. } => {
                let values = self.eval_exprlist(exprs, env, targets.len())?;
                for (t, v) in targets.iter().zip(values) {
                    self.assign_target(t, v, env)?;
                }
                Ok(Flow::Normal)
            }
            LuaStmt::Expr(e) => {
                self.eval_expr_multi(e, env)?;
                Ok(Flow::Normal)
            }
            LuaStmt::Do(b) => {
                let child = env.child();
                self.eval_block(b, &child)
            }
            LuaStmt::While { cond, body } => {
                loop {
                    if !self.eval_expr(cond, env)?.truthy() {
                        break;
                    }
                    let child = env.child();
                    match self.eval_block(body, &child)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            LuaStmt::Repeat { body, cond } => {
                loop {
                    let child = env.child();
                    match self.eval_block(body, &child)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if self.eval_expr(cond, &child)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            LuaStmt::If { arms, else_body } => {
                for (cond, body) in arms {
                    if self.eval_expr(cond, env)?.truthy() {
                        let child = env.child();
                        return self.eval_block(body, &child);
                    }
                }
                if let Some(body) = else_body {
                    let child = env.child();
                    return self.eval_block(body, &child);
                }
                Ok(Flow::Normal)
            }
            LuaStmt::NumericFor {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let start = self.expect_number(start, env)?;
                let stop = self.expect_number(stop, env)?;
                let step = match step {
                    Some(e) => self.expect_number(e, env)?,
                    None => 1.0,
                };
                if step == 0.0 {
                    return Err(LuaError::msg("'for' step is zero"));
                }
                let mut i = start;
                while (step > 0.0 && i <= stop) || (step < 0.0 && i >= stop) {
                    let child = env.child();
                    child.declare(var.clone(), LuaValue::Number(i));
                    match self.eval_block(body, &child)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    i += step;
                }
                Ok(Flow::Normal)
            }
            LuaStmt::GenericFor { vars, exprs, body } => {
                let mut vals = self.eval_exprlist(exprs, env, 3)?;
                let ctrl0 = vals.pop().unwrap_or(LuaValue::Nil);
                let state = vals.pop().unwrap_or(LuaValue::Nil);
                let func = vals.pop().unwrap_or(LuaValue::Nil);
                let mut control = ctrl0;
                loop {
                    let rets = self.call_value(
                        func.clone(),
                        vec![state.clone(), control.clone()],
                        Span::synthetic(),
                    )?;
                    let first = rets.first().cloned().unwrap_or(LuaValue::Nil);
                    if matches!(first, LuaValue::Nil) {
                        break;
                    }
                    control = first.clone();
                    let child = env.child();
                    for (i, v) in vars.iter().enumerate() {
                        child.declare(v.clone(), rets.get(i).cloned().unwrap_or(LuaValue::Nil));
                    }
                    match self.eval_block(body, &child)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            LuaStmt::FunctionDecl {
                path,
                method,
                body,
                span,
            } => {
                let closure = LuaValue::Function(Rc::new(LuaClosure {
                    body: body.clone(),
                    env: env.clone(),
                    name: RefCell::new(Rc::from(path.join(".").as_str())),
                }));
                // Method declarations add an implicit `self` parameter.
                let closure = if method.is_some() {
                    let mut fb = (**body).clone();
                    let mut params = vec![Rc::from("self") as Name];
                    params.extend(fb.params);
                    fb.params = params;
                    LuaValue::Function(Rc::new(LuaClosure {
                        body: Rc::new(fb),
                        env: env.clone(),
                        name: RefCell::new(Rc::from(
                            format!("{}:{}", path.join("."), method.as_deref().unwrap_or(""))
                                .as_str(),
                        )),
                    }))
                } else {
                    closure
                };
                let full: Vec<Name> = match method {
                    Some(m) => path.iter().cloned().chain([m.clone()]).collect(),
                    None => path.to_vec(),
                };
                self.assign_path(&full, closure, env, *span)?;
                Ok(Flow::Normal)
            }
            LuaStmt::LocalFunction { name, body } => {
                // Declare first so the body can recurse.
                env.declare(name.clone(), LuaValue::Nil);
                let closure = LuaValue::Function(Rc::new(LuaClosure {
                    body: body.clone(),
                    env: env.clone(),
                    name: RefCell::new(name.clone()),
                }));
                env.assign(name, closure);
                Ok(Flow::Normal)
            }
            LuaStmt::Return { exprs, .. } => {
                let vs = self.eval_exprlist_exact(exprs, env)?;
                Ok(Flow::Return(vs))
            }
            LuaStmt::Break(_) => Ok(Flow::Break),
            LuaStmt::TerraDef {
                path,
                method,
                def,
                is_local,
                span,
            } => {
                self.eval_terra_def(path, method.as_ref(), def, *is_local, env, *span)?;
                Ok(Flow::Normal)
            }
            LuaStmt::StructDef {
                path,
                entries,
                is_local,
                span,
            } => {
                let name: Rc<str> = Rc::from(path.join(".").as_str());
                let ty = self.eval_struct_def(&name, entries, env)?;
                if *is_local && path.len() == 1 {
                    env.declare(path[0].clone(), LuaValue::Type(ty));
                } else {
                    self.assign_path(path, LuaValue::Type(ty), env, *span)?;
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn assign_target(&mut self, target: &LuaExpr, v: LuaValue, env: &Env) -> EvalResult<()> {
        match target {
            LuaExpr::Var(n, _) => {
                if !env.assign(n, v.clone()) {
                    // Undeclared: create a global.
                    self.globals.declare(n.clone(), v);
                }
                Ok(())
            }
            LuaExpr::Index { obj, index, span } => {
                let o = self.eval_expr(obj, env)?;
                let k = self.eval_expr(index, env)?;
                self.setindex_value(&o, k, v, *span)
            }
            other => Err(LuaError::at(
                "cannot assign to this expression",
                other.span(),
            )),
        }
    }

    fn assign_path(&mut self, path: &[Name], v: LuaValue, env: &Env, span: Span) -> EvalResult<()> {
        if path.len() == 1 {
            if !env.assign(&path[0], v.clone()) {
                self.globals.declare(path[0].clone(), v);
            }
            return Ok(());
        }
        let mut obj = env
            .get(&path[0])
            .ok_or_else(|| LuaError::at(format!("undefined variable '{}'", path[0]), span))?;
        for part in &path[1..path.len() - 1] {
            obj = self.index_value(&obj, &LuaValue::Str(part.clone()), span)?;
        }
        self.setindex_value(&obj, LuaValue::Str(path[path.len() - 1].clone()), v, span)
    }

    // -----------------------------------------------------------------------
    // Terra definitions (LTDECL / LTDEFN / struct declarations)
    // -----------------------------------------------------------------------

    /// Declares-and/or-defines a named `terra` function or method.
    fn eval_terra_def(
        &mut self,
        path: &[Name],
        method: Option<&Name>,
        def: &Rc<TerraFuncDef>,
        is_local: bool,
        env: &Env,
        span: Span,
    ) -> EvalResult<()> {
        if let Some(mname) = method {
            // `terra Type:method(...)` — sugar for Type.methods.method with
            // implicit `self : &Type`.
            let mut obj = env
                .get(&path[0])
                .ok_or_else(|| LuaError::at(format!("undefined variable '{}'", path[0]), span))?;
            for part in &path[1..] {
                obj = self.index_value(&obj, &LuaValue::Str(part.clone()), span)?;
            }
            let LuaValue::Type(Ty::Struct(sid)) = obj else {
                return Err(LuaError::at(
                    "method definitions require a struct type",
                    span,
                ));
            };
            let fname: Rc<str> = Rc::from(format!("{}:{}", path.join("."), mname).as_str());
            let id = self.ctx.declare_func(fname.clone());
            let self_ty = Ty::Struct(sid).ptr_to();
            let spec = self.specialize_function(def, env, fname, Some(self_ty))?;
            self.finish_define(id, spec, span)?;
            self.ctx.structs[sid.0 as usize]
                .methods
                .borrow_mut()
                .set_str(mname, LuaValue::TerraFunc(id));
            return Ok(());
        }

        let fname: Rc<str> = Rc::from(path.join(".").as_str());
        // If the name is already bound to a declared-but-undefined Terra
        // function, this definition fills it in (mutual recursion support).
        let existing = if path.len() == 1 {
            env.get(&path[0])
        } else {
            let mut obj = env.get(&path[0]);
            if let Some(mut o) = obj.take() {
                for part in &path[1..] {
                    o = self.index_value(&o, &LuaValue::Str(part.clone()), span)?;
                }
                Some(o)
            } else {
                None
            }
        };
        let id = match existing {
            Some(LuaValue::TerraFunc(id)) if self.ctx.funcs[id.0 as usize].spec.is_none() => id,
            _ => {
                let id = self.ctx.declare_func(fname.clone());
                if is_local && path.len() == 1 {
                    env.declare(path[0].clone(), LuaValue::TerraFunc(id));
                } else {
                    self.assign_path(path, LuaValue::TerraFunc(id), env, span)?;
                }
                id
            }
        };
        // Bind before specializing so the body can refer to itself.
        let spec = self.specialize_function(def, env, fname, None)?;
        self.finish_define(id, spec, span)
    }

    fn finish_define(&mut self, id: FuncId, spec: SpecFunc, span: Span) -> EvalResult<()> {
        if !self.ctx.define_func(id, Rc::new(spec)) {
            return Err(LuaError::at(
                format!(
                    "terra function '{}' is already defined (definitions are write-once)",
                    self.ctx.funcs[id.0 as usize].name
                ),
                span,
            )
            .phase(Phase::Specialize));
        }
        Ok(())
    }

    fn specialize_function(
        &mut self,
        def: &TerraFuncDef,
        env: &Env,
        name: Rc<str>,
        implicit_self: Option<Ty>,
    ) -> EvalResult<SpecFunc> {
        let t0 = self.ctx.exec.trace.now_us();
        let spec = if let Some(self_ty) = implicit_self {
            // Prepend `self` by specializing in an env where `self` is bound
            // to a fresh symbol, and adding it to the parameter list.
            let menv = env.child();
            let sym = self.ctx.fresh_symbol("self", Some(self_ty.clone()));
            menv.declare(Rc::from("self"), LuaValue::Symbol(sym.clone()));
            let mut spec = Specializer::new(self, menv).function(def, name)?;
            spec.params.insert(0, (sym, self_ty));
            spec
        } else {
            Specializer::new(self, env.clone()).function(def, name)?
        };
        self.ctx
            .exec
            .trace
            .record(terra_trace::Stage::Specialize, &spec.name, t0);
        Ok(spec)
    }

    /// Defines an anonymous `terra` function value (used for expressions and
    /// by the specializer for nested literals).
    pub fn define_terra_function(
        &mut self,
        def: &TerraFuncDef,
        env: &Env,
        name: Rc<str>,
    ) -> EvalResult<FuncId> {
        let id = self.ctx.declare_func(name.clone());
        let spec = self.specialize_function(def, env, name, None)?;
        self.finish_define(id, spec, def.span)?;
        Ok(id)
    }

    /// Creates a struct type from declared entries, recording them in the
    /// reflection `entries` table (layout is finalized lazily, on first use).
    fn eval_struct_def(
        &mut self,
        name: &Rc<str>,
        entries: &[StructEntry],
        env: &Env,
    ) -> EvalResult<Ty> {
        let sid = self.new_struct(name.clone());
        for e in entries {
            let v = self.eval_expr(&e.ty, env)?;
            let ty = self.value_to_type(v, e.span)?;
            let entry = Table::new();
            let entry_ref: TableRef = Rc::new(RefCell::new(entry));
            entry_ref
                .borrow_mut()
                .set_str("field", LuaValue::Str(e.name.clone()));
            entry_ref.borrow_mut().set_str("type", LuaValue::Type(ty));
            self.ctx.structs[sid.0 as usize]
                .entries
                .borrow_mut()
                .push(LuaValue::Table(entry_ref));
        }
        Ok(Ty::Struct(sid))
    }

    /// Creates a struct type whose reflection tables have the list metatable
    /// attached (so `S.entries:insert{…}` works).
    pub fn new_struct(&mut self, name: impl Into<Rc<str>>) -> StructId {
        let sid = self.ctx.new_struct(name);
        let entries = self.ctx.structs[sid.0 as usize].entries.clone();
        crate::stdlib::attach_list_meta(self, &entries);
        sid
    }

    /// Lazily computes a struct's layout from its (possibly user-mutated)
    /// `entries` table, running the `__finalizelayout` metamethod first if
    /// present. Idempotent.
    pub fn finalize_struct(&mut self, sid: StructId, span: Span) -> EvalResult<()> {
        if self.ctx.types.is_finalized(sid) {
            return Ok(());
        }
        let mm = self.ctx.structs[sid.0 as usize]
            .metamethods
            .borrow()
            .get_str("__finalizelayout");
        if mm.truthy() {
            self.call_value(mm, vec![LuaValue::Type(Ty::Struct(sid))], span)?;
        }
        if self.ctx.types.is_finalized(sid) {
            return Ok(());
        }
        let entries: Vec<LuaValue> = self.ctx.structs[sid.0 as usize]
            .entries
            .borrow()
            .iter_array()
            .cloned()
            .collect();
        for e in entries {
            let LuaValue::Table(t) = e else {
                return Err(
                    LuaError::at("struct entries must be {field=…, type=…} tables", span)
                        .phase(Phase::Typecheck),
                );
            };
            let (fname, fty) = {
                let t = t.borrow();
                (t.get_str("field"), t.get_str("type"))
            };
            let LuaValue::Str(fname) = fname else {
                return Err(
                    LuaError::at("struct entry is missing 'field'", span).phase(Phase::Typecheck)
                );
            };
            let ty = self.value_to_type(fty, span)?;
            // Nested struct types must go through the reflection-aware
            // finalization path before layout is computed.
            let mut nested = Vec::new();
            collect_struct_ids(&ty, &mut nested);
            for inner in nested {
                if inner != sid {
                    self.finalize_struct(inner, span)?;
                }
            }
            self.ctx.types.add_field(sid, &*fname, ty);
        }
        self.ctx.types.finalize(sid);
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------------

    fn expect_number(&mut self, e: &LuaExpr, env: &Env) -> EvalResult<f64> {
        let v = self.eval_expr(e, env)?;
        v.as_number().ok_or_else(|| {
            LuaError::at(format!("expected number, got {}", v.type_name()), e.span())
        })
    }

    /// Evaluates an expression list with Lua's adjustment rules: the last
    /// expression expands to multiple values, earlier ones are truncated to
    /// one; the result is padded with `nil`/truncated to `want`.
    fn eval_exprlist(
        &mut self,
        exprs: &[LuaExpr],
        env: &Env,
        want: usize,
    ) -> EvalResult<Vec<LuaValue>> {
        let mut out = self.eval_exprlist_exact(exprs, env)?;
        while out.len() < want {
            out.push(LuaValue::Nil);
        }
        out.truncate(want.max(exprs.len().min(out.len())));
        out.truncate(want);
        Ok(out)
    }

    /// Evaluates an expression list, expanding the final multi-value
    /// expression.
    pub fn eval_exprlist_exact(
        &mut self,
        exprs: &[LuaExpr],
        env: &Env,
    ) -> EvalResult<Vec<LuaValue>> {
        let mut out = Vec::with_capacity(exprs.len());
        for (i, e) in exprs.iter().enumerate() {
            if i + 1 == exprs.len() {
                out.extend(self.eval_expr_multi(e, env)?);
            } else {
                out.push(self.eval_expr(e, env)?);
            }
        }
        Ok(out)
    }

    /// Evaluates to exactly one value.
    pub fn eval_expr(&mut self, e: &LuaExpr, env: &Env) -> EvalResult<LuaValue> {
        Ok(self
            .eval_expr_multi(e, env)?
            .into_iter()
            .next()
            .unwrap_or(LuaValue::Nil))
    }

    /// Evaluates, preserving multiple results for calls and `...`.
    pub fn eval_expr_multi(&mut self, e: &LuaExpr, env: &Env) -> EvalResult<Vec<LuaValue>> {
        match e {
            LuaExpr::Nil(_) => Ok(vec![LuaValue::Nil]),
            LuaExpr::True(_) => Ok(vec![LuaValue::Bool(true)]),
            LuaExpr::False(_) => Ok(vec![LuaValue::Bool(false)]),
            LuaExpr::Number(n, _) => Ok(vec![LuaValue::Number(*n)]),
            LuaExpr::Str(s, _) => Ok(vec![LuaValue::Str(s.clone())]),
            LuaExpr::Vararg(span) => match env.get("...") {
                Some(LuaValue::Table(t)) => Ok(t.borrow().iter_array().cloned().collect()),
                _ => Err(LuaError::at(
                    "cannot use '...' outside a vararg function",
                    *span,
                )),
            },
            LuaExpr::Var(n, _span) => Ok(vec![env.get(n).unwrap_or(LuaValue::Nil)]),
            LuaExpr::Index { obj, index, span } => {
                let o = self.eval_expr(obj, env)?;
                let k = self.eval_expr(index, env)?;
                Ok(vec![self.index_value(&o, &k, *span)?])
            }
            LuaExpr::Call { func, args, span } => {
                let f = self.eval_expr(func, env)?;
                let argv = self.eval_exprlist_exact(args, env)?;
                self.call_value(f, argv, *span)
            }
            LuaExpr::MethodCall {
                obj,
                name,
                args,
                span,
            } => {
                let o = self.eval_expr(obj, env)?;
                let argv = self.eval_exprlist_exact(args, env)?;
                self.method_call_multi(o, name, argv, *span)
            }
            LuaExpr::BinOp { op, lhs, rhs, span } => {
                Ok(vec![self.eval_binop(*op, lhs, rhs, env, *span)?])
            }
            LuaExpr::UnOp { op, expr, span } => {
                let v = self.eval_expr(expr, env)?;
                Ok(vec![self.eval_unop(*op, v, *span)?])
            }
            LuaExpr::Function(body) => Ok(vec![LuaValue::Function(Rc::new(LuaClosure {
                body: body.clone(),
                env: env.clone(),
                name: RefCell::new(Rc::from("anonymous")),
            }))]),
            LuaExpr::Table { items, span: _ } => {
                let t = Rc::new(RefCell::new(Table::new()));
                for (i, item) in items.iter().enumerate() {
                    match item {
                        TableItem::Positional(e) => {
                            if i + 1 == items.len() {
                                for v in self.eval_expr_multi(e, env)? {
                                    t.borrow_mut().push(v);
                                }
                            } else {
                                let v = self.eval_expr(e, env)?;
                                t.borrow_mut().push(v);
                            }
                        }
                        TableItem::Named(n, e) => {
                            let v = self.eval_expr(e, env)?;
                            t.borrow_mut().set_str(n, v);
                        }
                        TableItem::Keyed(k, e) => {
                            let k = self.eval_expr(k, env)?;
                            let v = self.eval_expr(e, env)?;
                            t.borrow_mut().set(k, v);
                        }
                    }
                }
                Ok(vec![LuaValue::Table(t)])
            }
            LuaExpr::TerraFunction(def) => {
                let name: Rc<str> = def
                    .name_hint
                    .clone()
                    .unwrap_or_else(|| Rc::from("anonymous"));
                let id = self.define_terra_function(def, env, name)?;
                Ok(vec![LuaValue::TerraFunc(id)])
            }
            LuaExpr::Quote(q) => {
                let spec = Specializer::new(self, env.clone()).quote(q)?;
                Ok(vec![LuaValue::Quote(Rc::new(spec))])
            }
            LuaExpr::AnonStruct { entries, span: _ } => {
                let ty = self.eval_struct_def(&Rc::from("anon"), entries, env)?;
                Ok(vec![LuaValue::Type(ty)])
            }
            LuaExpr::PtrType(inner, span) => {
                let v = self.eval_expr(inner, env)?;
                let ty = self.value_to_type(v, *span)?;
                Ok(vec![LuaValue::Type(ty.ptr_to())])
            }
            LuaExpr::TupleType(items, span) => {
                let mut tys = Vec::with_capacity(items.len());
                for it in items {
                    let v = self.eval_expr(it, env)?;
                    tys.push(self.value_to_type(v, *span)?);
                }
                let ty = match tys.len() {
                    0 => Ty::Unit,
                    1 => tys.pop().expect("len checked"),
                    _ => {
                        return Err(LuaError::at(
                            "tuple types with more than one element are not supported",
                            *span,
                        ))
                    }
                };
                Ok(vec![LuaValue::Type(ty)])
            }
            LuaExpr::FuncType {
                params,
                returns,
                span,
            } => {
                let mut ptys = Vec::with_capacity(params.len());
                for p in params {
                    let v = self.eval_expr(p, env)?;
                    ptys.push(self.value_to_type(v, *span)?);
                }
                let ret = match returns.len() {
                    0 => Ty::Unit,
                    1 => {
                        let v = self.eval_expr(&returns[0], env)?;
                        self.value_to_type(v, *span)?
                    }
                    _ => {
                        return Err(LuaError::at(
                            "multiple return types are not supported",
                            *span,
                        ))
                    }
                };
                Ok(vec![LuaValue::Type(Ty::Func(std::sync::Arc::new(
                    FuncTy { params: ptys, ret },
                )))])
            }
        }
    }

    fn eval_binop(
        &mut self,
        op: BinOp,
        lhs: &LuaExpr,
        rhs: &LuaExpr,
        env: &Env,
        span: Span,
    ) -> EvalResult<LuaValue> {
        // Short-circuit logic first.
        match op {
            BinOp::And => {
                let l = self.eval_expr(lhs, env)?;
                if !l.truthy() {
                    return Ok(l);
                }
                return self.eval_expr(rhs, env);
            }
            BinOp::Or => {
                let l = self.eval_expr(lhs, env)?;
                if l.truthy() {
                    return Ok(l);
                }
                return self.eval_expr(rhs, env);
            }
            _ => {}
        }
        let l = self.eval_expr(lhs, env)?;
        let r = self.eval_expr(rhs, env)?;
        self.binop_values(op, l, r, span)
    }

    /// Applies a binary operator to two values (with metamethods).
    pub fn binop_values(
        &mut self,
        op: BinOp,
        l: LuaValue,
        r: LuaValue,
        span: Span,
    ) -> EvalResult<LuaValue> {
        use BinOp::*;
        match op {
            Eq | Ne => {
                let mut eq = l.raw_eq(&r);
                if !eq {
                    if let (LuaValue::Table(a), LuaValue::Table(b)) = (&l, &r) {
                        if let Some(mm) = self
                            .meta_of_table(a, "__eq")
                            .or_else(|| self.meta_of_table(b, "__eq"))
                        {
                            eq = self
                                .call_value(mm, vec![l.clone(), r.clone()], span)?
                                .first()
                                .map(|v| v.truthy())
                                .unwrap_or(false);
                        }
                    }
                }
                Ok(LuaValue::Bool(if op == Eq { eq } else { !eq }))
            }
            Lt | Le | Gt | Ge => {
                // Normalize Gt/Ge by swapping.
                let (op, l, r) = match op {
                    Gt => (Lt, r, l),
                    Ge => (Le, r, l),
                    o => (o, l, r),
                };
                match (&l, &r) {
                    (LuaValue::Number(a), LuaValue::Number(b)) => {
                        Ok(LuaValue::Bool(if op == Lt { a < b } else { a <= b }))
                    }
                    (LuaValue::Str(a), LuaValue::Str(b)) => {
                        Ok(LuaValue::Bool(if op == Lt { a < b } else { a <= b }))
                    }
                    _ => {
                        let name = if op == Lt { "__lt" } else { "__le" };
                        if let Some(mm) =
                            self.meta_for(&l, name).or_else(|| self.meta_for(&r, name))
                        {
                            let v = self.call_value(mm, vec![l, r], span)?;
                            return Ok(LuaValue::Bool(
                                v.first().map(|x| x.truthy()).unwrap_or(false),
                            ));
                        }
                        Err(LuaError::at(
                            format!(
                                "attempt to compare {} with {}",
                                l.type_name(),
                                r.type_name()
                            ),
                            span,
                        ))
                    }
                }
            }
            Concat => match (&l, &r) {
                (
                    LuaValue::Str(_) | LuaValue::Number(_),
                    LuaValue::Str(_) | LuaValue::Number(_),
                ) => Ok(LuaValue::str(format!(
                    "{}{}",
                    self.tostring_value(&l, span)?,
                    self.tostring_value(&r, span)?
                ))),
                _ => {
                    if let Some(mm) = self
                        .meta_for(&l, "__concat")
                        .or_else(|| self.meta_for(&r, "__concat"))
                    {
                        let v = self.call_value(mm, vec![l, r], span)?;
                        return Ok(v.into_iter().next().unwrap_or(LuaValue::Nil));
                    }
                    Err(LuaError::at(
                        format!("attempt to concatenate a {} value", l.type_name()),
                        span,
                    ))
                }
            },
            Add | Sub | Mul | Div | Mod | Pow => {
                // Operator overloading on staged values: arithmetic between
                // quotes/symbols (and numbers) builds a new quotation, as in
                // the real system.
                if is_staged(&l) || is_staged(&r) {
                    let le = crate::spec::lua_to_spec(self, l, span)?;
                    let re = crate::spec::lua_to_spec(self, r, span)?;
                    let kind = crate::spec::SpecExprKind::Bin(op, Box::new(le), Box::new(re));
                    return Ok(LuaValue::Quote(Rc::new(crate::spec::SpecQuote {
                        stmts: vec![],
                        exprs: vec![crate::spec::SpecExpr::new(kind, span)],
                        span,
                    })));
                }
                if let (Some(a), Some(b)) = (l.as_number(), r.as_number()) {
                    let v = match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => a / b,
                        Mod => a - (a / b).floor() * b,
                        Pow => a.powf(b),
                        _ => unreachable!(),
                    };
                    return Ok(LuaValue::Number(v));
                }
                let name = match op {
                    Add => "__add",
                    Sub => "__sub",
                    Mul => "__mul",
                    Div => "__div",
                    Mod => "__mod",
                    Pow => "__pow",
                    _ => unreachable!(),
                };
                if let Some(mm) = self.meta_for(&l, name).or_else(|| self.meta_for(&r, name)) {
                    let v = self.call_value(mm, vec![l, r], span)?;
                    return Ok(v.into_iter().next().unwrap_or(LuaValue::Nil));
                }
                Err(LuaError::at(
                    format!(
                        "attempt to perform arithmetic on a {} value",
                        if l.as_number().is_none() {
                            l.type_name()
                        } else {
                            r.type_name()
                        }
                    ),
                    span,
                ))
            }
            Shl | Shr => {
                let (Some(a), Some(b)) = (l.as_number(), r.as_number()) else {
                    return Err(LuaError::at("bitwise shift requires numbers", span));
                };
                let v = if op == Shl {
                    ((a as i64) << (b as i64 & 63)) as f64
                } else {
                    ((a as i64) >> (b as i64 & 63)) as f64
                };
                Ok(LuaValue::Number(v))
            }
            And | Or => unreachable!("handled before value evaluation"),
        }
    }

    fn eval_unop(&mut self, op: UnOp, v: LuaValue, span: Span) -> EvalResult<LuaValue> {
        match op {
            UnOp::Not => Ok(LuaValue::Bool(!v.truthy())),
            UnOp::Neg => {
                if is_staged(&v) {
                    let e = crate::spec::lua_to_spec(self, v, span)?;
                    let kind = crate::spec::SpecExprKind::Un(UnOp::Neg, Box::new(e));
                    return Ok(LuaValue::Quote(Rc::new(crate::spec::SpecQuote {
                        stmts: vec![],
                        exprs: vec![crate::spec::SpecExpr::new(kind, span)],
                        span,
                    })));
                }
                if let Some(n) = v.as_number() {
                    Ok(LuaValue::Number(-n))
                } else if let Some(mm) = self.meta_for(&v, "__unm") {
                    let r = self.call_value(mm, vec![v], span)?;
                    Ok(r.into_iter().next().unwrap_or(LuaValue::Nil))
                } else {
                    Err(LuaError::at(
                        format!("attempt to negate a {} value", v.type_name()),
                        span,
                    ))
                }
            }
            UnOp::Len => match &v {
                LuaValue::Str(s) => Ok(LuaValue::Number(s.len() as f64)),
                LuaValue::Table(t) => Ok(LuaValue::Number(t.borrow().len() as f64)),
                _ => Err(LuaError::at(
                    format!("attempt to get length of a {} value", v.type_name()),
                    span,
                )),
            },
        }
    }

    // -----------------------------------------------------------------------
    // Indexing, calling, metamethods
    // -----------------------------------------------------------------------

    fn meta_of_table(&self, t: &TableRef, name: &str) -> Option<LuaValue> {
        let meta = t.borrow().meta.clone()?;
        let v = meta.borrow().get_str(name);
        v.truthy().then_some(v)
    }

    fn meta_for(&self, v: &LuaValue, name: &str) -> Option<LuaValue> {
        match v {
            LuaValue::Table(t) => self.meta_of_table(t, name),
            _ => None,
        }
    }

    /// Indexes any value (tables with `__index`, plus the reflection API on
    /// Terra entities).
    pub fn index_value(
        &mut self,
        obj: &LuaValue,
        key: &LuaValue,
        span: Span,
    ) -> EvalResult<LuaValue> {
        match obj {
            LuaValue::Table(t) => {
                let raw = t.borrow().get(key);
                if raw.truthy() || !matches!(raw, LuaValue::Nil) {
                    return Ok(raw);
                }
                if let Some(mm) = self.meta_of_table(t, "__index") {
                    return match mm {
                        LuaValue::Function(_) | LuaValue::Native(_) => {
                            let r = self.call_value(mm, vec![obj.clone(), key.clone()], span)?;
                            Ok(r.into_iter().next().unwrap_or(LuaValue::Nil))
                        }
                        other => self.index_value(&other, key, span),
                    };
                }
                Ok(LuaValue::Nil)
            }
            LuaValue::Str(s) => {
                // Minimal string indexing: the string library as methods.
                let lib = self.global("string");
                if let LuaValue::Table(_) = lib {
                    let m = self.index_value(&lib, key, span)?;
                    if m.truthy() {
                        return Ok(m);
                    }
                }
                Err(LuaError::at(
                    format!("cannot index string '{s}' with this key"),
                    span,
                ))
            }
            LuaValue::Type(_)
            | LuaValue::TerraFunc(_)
            | LuaValue::Quote(_)
            | LuaValue::Symbol(_)
            | LuaValue::Global(_) => reflect::index_terra_value(self, obj, key, span),
            other => Err(LuaError::at(
                format!("attempt to index a {} value", other.type_name()),
                span,
            )),
        }
    }

    /// Sets `obj[key] = value` (with `__newindex` and reflection hooks).
    pub fn setindex_value(
        &mut self,
        obj: &LuaValue,
        key: LuaValue,
        value: LuaValue,
        span: Span,
    ) -> EvalResult<()> {
        match obj {
            LuaValue::Table(t) => {
                let exists = !matches!(t.borrow().get(&key), LuaValue::Nil);
                if !exists {
                    if let Some(mm) = self.meta_of_table(t, "__newindex") {
                        return match mm {
                            LuaValue::Function(_) | LuaValue::Native(_) => {
                                self.call_value(mm, vec![obj.clone(), key, value], span)?;
                                Ok(())
                            }
                            other => self.setindex_value(&other, key, value, span),
                        };
                    }
                }
                t.borrow_mut().set(key, value);
                Ok(())
            }
            LuaValue::Type(_) => reflect::setindex_terra_value(self, obj, key, value, span),
            other => Err(LuaError::at(
                format!("attempt to index a {} value", other.type_name()),
                span,
            )),
        }
    }

    /// Calls any callable value with the given arguments.
    pub fn call_value(
        &mut self,
        f: LuaValue,
        args: Vec<LuaValue>,
        span: Span,
    ) -> EvalResult<Vec<LuaValue>> {
        if self.depth >= MAX_DEPTH {
            return Err(LuaError::at("lua stack overflow", span));
        }
        self.depth += 1;
        let result = self.call_value_inner(f, args, span);
        self.depth -= 1;
        result
    }

    fn call_value_inner(
        &mut self,
        f: LuaValue,
        args: Vec<LuaValue>,
        span: Span,
    ) -> EvalResult<Vec<LuaValue>> {
        match f {
            LuaValue::Function(closure) => {
                let call_env = closure.env.child();
                let nparams = closure.body.params.len();
                for (i, p) in closure.body.params.iter().enumerate() {
                    call_env.declare(p.clone(), args.get(i).cloned().unwrap_or(LuaValue::Nil));
                }
                if closure.body.is_vararg {
                    let rest = Rc::new(RefCell::new(Table::new()));
                    for v in args.into_iter().skip(nparams) {
                        rest.borrow_mut().push(v);
                    }
                    call_env.declare(Rc::from("..."), LuaValue::Table(rest));
                }
                match self
                    .eval_block(&closure.body.body, &call_env)
                    .map_err(|e| e.traced(format!("function '{}'", closure.name.borrow())))?
                {
                    Flow::Return(vs) => Ok(vs),
                    _ => Ok(Vec::new()),
                }
            }
            LuaValue::Native(b) => (b.f)(self, args),
            LuaValue::TerraFunc(id) => self.call_terra(id, args, span),
            LuaValue::Table(ref t) => {
                if let Some(mm) = self.meta_of_table(t, "__call") {
                    let mut full = vec![f.clone()];
                    full.extend(args);
                    return self.call_value(mm, full, span);
                }
                Err(LuaError::at("attempt to call a table value", span))
            }
            LuaValue::Intrinsic(i) => crate::stdlib::call_intrinsic_from_lua(self, i, args, span),
            other => Err(LuaError::at(
                format!("attempt to call a {} value", other.type_name()),
                span,
            )),
        }
    }

    fn method_call_multi(
        &mut self,
        obj: LuaValue,
        name: &Name,
        args: Vec<LuaValue>,
        span: Span,
    ) -> EvalResult<Vec<LuaValue>> {
        match &obj {
            LuaValue::Table(_) | LuaValue::Str(_) => {
                let m = self.index_value(&obj, &LuaValue::Str(name.clone()), span)?;
                if matches!(m, LuaValue::Nil) {
                    return Err(LuaError::at(format!("method '{name}' not found"), span));
                }
                let mut full = vec![obj];
                full.extend(args);
                self.call_value(m, full, span)
            }
            _ => Ok(vec![reflect::method_call_terra_value(
                self, obj, name, args, span,
            )?]),
        }
    }

    /// Calls a value's method (used by the specializer and reflection).
    pub fn method_call_value(
        &mut self,
        obj: LuaValue,
        name: &Name,
        args: Vec<LuaValue>,
        span: Span,
    ) -> EvalResult<LuaValue> {
        Ok(self
            .method_call_multi(obj, name, args, span)?
            .into_iter()
            .next()
            .unwrap_or(LuaValue::Nil))
    }

    // -----------------------------------------------------------------------
    // Lua ⇄ Terra FFI (rule LTAPP)
    // -----------------------------------------------------------------------

    /// Calls a Terra function from Lua: lazily typechecks/links/compiles it,
    /// converts arguments by the signature, runs it on the VM, and converts
    /// the result back.
    pub fn call_terra(
        &mut self,
        id: FuncId,
        args: Vec<LuaValue>,
        span: Span,
    ) -> EvalResult<Vec<LuaValue>> {
        crate::typecheck::ensure_compiled(self, id, span)?;
        let sig = self.ctx.funcs[id.0 as usize]
            .sig
            .clone()
            .expect("compiled function has a signature");
        if args.len() != sig.params.len() {
            return Err(LuaError::at(
                format!(
                    "terra function '{}' expects {} argument(s), got {}",
                    self.ctx.funcs[id.0 as usize].name,
                    sig.params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut ffi_args = Vec::with_capacity(args.len());
        for (v, ty) in args.into_iter().zip(&sig.params) {
            ffi_args.push(self.lua_to_ffi(v, ty, span)?);
        }
        let result = self
            .ctx
            .exec
            .call(id, &ffi_args)
            .map_err(|t| LuaError::at(t.to_string(), span).phase(Phase::Execution))?;
        Ok(vec![self.ffi_to_lua(result)])
    }

    /// Converts a Lua value to an FFI value of the given Terra type.
    pub fn lua_to_ffi(&mut self, v: LuaValue, ty: &Ty, span: Span) -> EvalResult<Value> {
        Ok(match (&v, ty) {
            (LuaValue::Number(n), Ty::Scalar(s)) if s.is_integer() => Value::Int(*n as i64),
            (LuaValue::Number(n), Ty::Scalar(ScalarTy::F32)) => Value::Float(*n as f32 as f64),
            (LuaValue::Number(n), Ty::Scalar(ScalarTy::F64)) => Value::Float(*n),
            (LuaValue::Number(n), Ty::Scalar(ScalarTy::Bool)) => Value::Bool(*n != 0.0),
            (LuaValue::Bool(b), Ty::Scalar(ScalarTy::Bool)) => Value::Bool(*b),
            (LuaValue::Bool(b), Ty::Scalar(s)) if s.is_integer() => Value::Int(*b as i64),
            (LuaValue::Str(s), Ty::Ptr(_)) => Value::Ptr(self.ctx.exec.intern_string(s)),
            (LuaValue::Number(n), Ty::Ptr(_)) => Value::Ptr(*n as u64),
            (LuaValue::Nil, Ty::Ptr(_)) => Value::Ptr(0),
            (LuaValue::TerraFunc(f), Ty::Func(_)) => {
                let f = *f;
                crate::typecheck::ensure_compiled(self, f, span)?;
                Value::Func(f)
            }
            (LuaValue::Global(g), Ty::Ptr(_)) => Value::Ptr(self.ctx.globals[g.0 as usize].addr),
            _ => {
                return Err(LuaError::at(
                    format!(
                        "cannot convert Lua {} to Terra type {}",
                        v.type_name(),
                        ty.display(&self.ctx.types)
                    ),
                    span,
                ))
            }
        })
    }

    /// Converts an FFI result back to a Lua value.
    pub fn ffi_to_lua(&self, v: Value) -> LuaValue {
        match v {
            Value::Unit => LuaValue::Nil,
            Value::Int(i) => LuaValue::Number(i as f64),
            Value::Float(f) => LuaValue::Number(f),
            Value::Bool(b) => LuaValue::Bool(b),
            Value::Ptr(p) => LuaValue::Number(p as f64),
            Value::Func(f) => LuaValue::TerraFunc(f),
        }
    }

    // -----------------------------------------------------------------------
    // Conversions / printing
    // -----------------------------------------------------------------------

    /// Converts a Lua value to a Terra type (annotation evaluation).
    pub fn value_to_type(&mut self, v: LuaValue, span: Span) -> EvalResult<Ty> {
        match v {
            LuaValue::Type(t) => Ok(t),
            LuaValue::Table(t) => {
                // `{}` or `{T}` tuple annotations.
                let items: Vec<LuaValue> = t.borrow().iter_array().cloned().collect();
                match items.len() {
                    0 => Ok(Ty::Unit),
                    1 => self.value_to_type(items.into_iter().next().expect("len checked"), span),
                    _ => Err(LuaError::at(
                        "functions returning multiple values are not supported; return a struct",
                        span,
                    )),
                }
            }
            other => Err(LuaError::at(
                format!("expected a terra type, got {}", other.type_name()),
                span,
            )),
        }
    }

    /// `tostring` with metamethod support.
    pub fn tostring_value(&mut self, v: &LuaValue, span: Span) -> EvalResult<String> {
        if let Some(mm) = self.meta_for(v, "__tostring") {
            let r = self.call_value(mm, vec![v.clone()], span)?;
            return match r.into_iter().next() {
                Some(LuaValue::Str(s)) => Ok(s.to_string()),
                Some(other) => self.tostring_value(&other, span),
                None => Ok(String::new()),
            };
        }
        Ok(match v {
            LuaValue::Nil => "nil".to_string(),
            LuaValue::Bool(b) => b.to_string(),
            LuaValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            LuaValue::Str(s) => s.to_string(),
            LuaValue::Table(t) => format!("table: {:p}", Rc::as_ptr(t)),
            LuaValue::Function(f) => format!("function: {:p}", Rc::as_ptr(f)),
            LuaValue::Native(b) => format!("builtin: {}", b.name),
            LuaValue::TerraFunc(id) => {
                format!("terra function: {}", self.ctx.funcs[id.0 as usize].name)
            }
            LuaValue::Type(t) => format!("{}", t.display(&self.ctx.types)),
            LuaValue::Quote(_) => "quote".to_string(),
            LuaValue::Symbol(s) => format!("${}_{}", s.name, s.id),
            LuaValue::Global(g) => {
                format!("global: {}", self.ctx.globals[g.0 as usize].name)
            }
            LuaValue::Macro(_) => "macro".to_string(),
            LuaValue::Intrinsic(i) => format!("terra intrinsic: {i:?}"),
        })
    }

    /// Writes text to the configured output sink (used by `print`).
    pub fn write_output(&mut self, text: &str) {
        match &mut self.ctx.exec.output {
            OutputSink::Stdout => print!("{text}"),
            OutputSink::Capture(buf) => buf.push_str(text),
        }
    }
}

/// Whether a Lua value denotes staged Terra code that supports operator
/// overloading (building larger quotations).
fn is_staged(v: &LuaValue) -> bool {
    matches!(
        v,
        LuaValue::Quote(_) | LuaValue::Symbol(_) | LuaValue::Global(_)
    )
}

/// Collects the struct ids mentioned in a type (through arrays, not through
/// pointers — pointees do not affect layout).
fn collect_struct_ids(ty: &Ty, out: &mut Vec<StructId>) {
    match ty {
        Ty::Struct(sid) => out.push(*sid),
        Ty::Array(inner, _) => collect_struct_ids(inner, out),
        _ => {}
    }
}
