//! Type reflection: the Lua-visible API of Terra entities.
//!
//! Terra types are Lua values, and the paper's §4.1 "Mechanisms for type
//! reflection" gives them an introspection API (`t:ispointer()`,
//! `t:isstruct()`, struct `entries`/`methods`/`metamethods` tables, pointer
//! `.type`, function `.parameters`/`.returns`). This module implements that
//! API, which the class-system and data-layout libraries are built on.

use crate::error::{EvalResult, LuaError};
use crate::interp::Interp;
use crate::value::{LuaValue, Table};
use std::cell::RefCell;
use std::rc::Rc;
use terra_ir::{ScalarTy, Ty};
use terra_syntax::{Name, Span};
use terra_vm::Value;

/// Indexes a Terra entity with a key (`T.entries`, `fn.name`, `g.type` …).
pub fn index_terra_value(
    interp: &mut Interp,
    obj: &LuaValue,
    key: &LuaValue,
    span: Span,
) -> EvalResult<LuaValue> {
    // `T[n]` — array type construction (types are Lua values).
    if let (LuaValue::Type(t), LuaValue::Number(n)) = (obj, key) {
        if n.fract() == 0.0 && *n >= 0.0 {
            return Ok(LuaValue::Type(Ty::Array(
                std::sync::Arc::new(t.clone()),
                *n as u64,
            )));
        }
    }
    let LuaValue::Str(k) = key else {
        return Err(LuaError::at(
            format!("cannot index a {} with a non-string key", obj.type_name()),
            span,
        ));
    };
    match obj {
        LuaValue::Type(t) => index_type(interp, t, k, span),
        LuaValue::TerraFunc(id) => match &**k {
            "name" => Ok(LuaValue::Str(interp.ctx.funcs[id.0 as usize].name.clone())),
            _ => Ok(LuaValue::Nil),
        },
        LuaValue::Symbol(s) => match &**k {
            "displayname" => Ok(LuaValue::Str(s.name.clone())),
            "type" => Ok(s
                .ty
                .borrow()
                .clone()
                .map(LuaValue::Type)
                .unwrap_or(LuaValue::Nil)),
            _ => Ok(LuaValue::Nil),
        },
        LuaValue::Global(g) => match &**k {
            "type" => Ok(LuaValue::Type(interp.ctx.globals[g.0 as usize].ty.clone())),
            _ => Ok(LuaValue::Nil),
        },
        LuaValue::Quote(_) => Ok(LuaValue::Nil),
        _ => Err(LuaError::at(
            format!("attempt to index a {} value", obj.type_name()),
            span,
        )),
    }
}

fn index_type(interp: &mut Interp, t: &Ty, key: &str, span: Span) -> EvalResult<LuaValue> {
    match (t, key) {
        (Ty::Struct(sid), "entries") => Ok(LuaValue::Table(
            interp.ctx.struct_meta(*sid).entries.clone(),
        )),
        (Ty::Struct(sid), "methods") => Ok(LuaValue::Table(
            interp.ctx.struct_meta(*sid).methods.clone(),
        )),
        (Ty::Struct(sid), "metamethods") => Ok(LuaValue::Table(
            interp.ctx.struct_meta(*sid).metamethods.clone(),
        )),
        (Ty::Struct(sid), "name") => Ok(LuaValue::str(interp.ctx.types.name(*sid))),
        (Ty::Ptr(inner) | Ty::Array(inner, _), "type") => Ok(LuaValue::Type((**inner).clone())),
        (Ty::Array(_, n), "N") => Ok(LuaValue::Number(*n as f64)),
        (Ty::Vector(s, _), "type") => Ok(LuaValue::Type(Ty::Scalar(*s))),
        (Ty::Vector(_, n), "N") => Ok(LuaValue::Number(*n as f64)),
        (Ty::Func(ft), "parameters") => {
            let t = Rc::new(RefCell::new(Table::new()));
            for p in &ft.params {
                t.borrow_mut().push(LuaValue::Type(p.clone()));
            }
            crate::stdlib::attach_list_meta(interp, &t);
            Ok(LuaValue::Table(t))
        }
        (Ty::Func(ft), "returns") => Ok(LuaValue::Type(ft.ret.clone())),
        (_, "name") => Ok(LuaValue::str(format!("{}", t.display(&interp.ctx.types)))),
        _ => {
            let _ = span;
            Ok(LuaValue::Nil)
        }
    }
}

/// Assigns into a Terra type (replacing a struct's reflection tables
/// wholesale, e.g. `S.entries = newlist`).
pub fn setindex_terra_value(
    interp: &mut Interp,
    obj: &LuaValue,
    key: LuaValue,
    value: LuaValue,
    span: Span,
) -> EvalResult<()> {
    let (LuaValue::Type(Ty::Struct(sid)), LuaValue::Str(k)) = (obj, &key) else {
        return Err(LuaError::at(
            format!("cannot assign into a {} value", obj.type_name()),
            span,
        ));
    };
    let LuaValue::Table(t) = value else {
        return Err(LuaError::at("expected a table value", span));
    };
    let meta = &mut interp.ctx.structs[sid.0 as usize];
    match &**k {
        "entries" => meta.entries = t,
        "methods" => meta.methods = t,
        "metamethods" => meta.metamethods = t,
        other => {
            return Err(LuaError::at(
                format!("cannot assign field '{other}' of a struct type"),
                span,
            ))
        }
    }
    Ok(())
}

/// Calls a method on a Terra entity (`t:ispointer()`, `fn:gettype()`,
/// `g:get()` …).
pub fn method_call_terra_value(
    interp: &mut Interp,
    obj: LuaValue,
    name: &Name,
    args: Vec<LuaValue>,
    span: Span,
) -> EvalResult<LuaValue> {
    match (&obj, &**name) {
        (LuaValue::Type(t), m) => type_method(interp, t, m, args, span),
        (LuaValue::TerraFunc(id), "gettype") => {
            let sig = crate::typecheck::ensure_signature(interp, *id, span)?;
            Ok(LuaValue::Type(Ty::Func(std::sync::Arc::new(sig))))
        }
        (LuaValue::TerraFunc(id), "compile") => {
            crate::typecheck::ensure_compiled(interp, *id, span)?;
            Ok(LuaValue::Nil)
        }
        (LuaValue::TerraFunc(id), "getname") => {
            Ok(LuaValue::Str(interp.ctx.funcs[id.0 as usize].name.clone()))
        }
        (LuaValue::TerraFunc(id), "disas") => {
            crate::typecheck::ensure_compiled(interp, *id, span)?;
            let f = interp
                .ctx
                .exec
                .function(*id)
                .expect("just compiled")
                .clone();
            Ok(LuaValue::str(format!("{:#?}", f.code)))
        }
        (LuaValue::Global(g), "get") => {
            let meta = interp.ctx.globals[g.0 as usize].clone();
            let v = read_global(interp, &meta)?;
            Ok(interp.ffi_to_lua(v))
        }
        (LuaValue::Global(g), "set") => {
            let meta = interp.ctx.globals[g.0 as usize].clone();
            let v = args.into_iter().next().unwrap_or(LuaValue::Nil);
            write_global(interp, &meta, v, span)?;
            Ok(LuaValue::Nil)
        }
        (LuaValue::Global(g), "getaddress") => Ok(LuaValue::Number(
            interp.ctx.globals[g.0 as usize].addr as f64,
        )),
        (LuaValue::Symbol(s), "istype") => Ok(LuaValue::Bool(s.ty.borrow().is_some())),
        _ => Err(LuaError::at(
            format!("no method '{name}' on {} value", obj.type_name()),
            span,
        )),
    }
}

fn type_method(
    interp: &mut Interp,
    t: &Ty,
    m: &str,
    args: Vec<LuaValue>,
    span: Span,
) -> EvalResult<LuaValue> {
    let b = |v: bool| Ok(LuaValue::Bool(v));
    match m {
        "ispointer" => b(t.is_pointer()),
        "isstruct" => b(matches!(t, Ty::Struct(_))),
        "isarray" => b(matches!(t, Ty::Array(..))),
        "isvector" => b(matches!(t, Ty::Vector(..))),
        "isfunction" => b(matches!(t, Ty::Func(_))),
        "isarithmetic" => b(t.is_arithmetic()),
        "isintegral" | "isinteger" => b(t.is_integer()),
        "isfloat" => b(t.is_float()),
        "islogical" => b(matches!(t, Ty::Scalar(ScalarTy::Bool))),
        "isunit" => b(*t == Ty::Unit),
        "isprimitive" => b(matches!(t, Ty::Scalar(_))),
        "ispointertostruct" => b(matches!(t, Ty::Ptr(p) if matches!(**p, Ty::Struct(_)))),
        "ispointertofunction" => {
            b(matches!(t, Ty::Ptr(p) if matches!(**p, Ty::Func(_))) || matches!(t, Ty::Func(_)))
        }
        "sizeof" => {
            if let Ty::Struct(sid) = t {
                interp.finalize_struct(*sid, span)?;
            }
            Ok(LuaValue::Number(t.size(&interp.ctx.types) as f64))
        }
        "isstructorptrtostruct" => b(
            matches!(t, Ty::Struct(_)) || matches!(t, Ty::Ptr(p) if matches!(**p, Ty::Struct(_)))
        ),
        "getmethod" => {
            let LuaValue::Str(name) = args.into_iter().next().unwrap_or(LuaValue::Nil) else {
                return Err(LuaError::at("getmethod expects a string", span));
            };
            match t {
                Ty::Struct(sid) => Ok(interp.ctx.struct_meta(*sid).methods.borrow().get_str(&name)),
                _ => Ok(LuaValue::Nil),
            }
        }
        other => Err(LuaError::at(
            format!("no method '{other}' on terra type"),
            span,
        )),
    }
}

fn read_global(interp: &mut Interp, meta: &crate::context::GlobalMeta) -> EvalResult<Value> {
    let mem = &mut interp.ctx.exec.memory;
    let v = match &meta.ty {
        Ty::Scalar(ScalarTy::F32) => {
            Value::Float(mem.load_f32(meta.addr).map_err(to_lua_err)? as f64)
        }
        Ty::Scalar(ScalarTy::F64) => Value::Float(mem.load_f64(meta.addr).map_err(to_lua_err)?),
        Ty::Scalar(ScalarTy::Bool) => Value::Bool(mem.load_u8(meta.addr).map_err(to_lua_err)? != 0),
        Ty::Scalar(s) if s.is_integer() => {
            let raw = match s.size() {
                1 => mem.load_i8(meta.addr).map_err(to_lua_err)? as i64,
                2 => mem.load_i16(meta.addr).map_err(to_lua_err)? as i64,
                4 => mem.load_i32(meta.addr).map_err(to_lua_err)? as i64,
                _ => mem.load_i64(meta.addr).map_err(to_lua_err)?,
            };
            Value::Int(raw)
        }
        Ty::Ptr(_) => Value::Ptr(mem.load_u64(meta.addr).map_err(to_lua_err)?),
        _ => return Err(LuaError::msg("cannot read aggregate global from Lua")),
    };
    Ok(v)
}

fn write_global(
    interp: &mut Interp,
    meta: &crate::context::GlobalMeta,
    v: LuaValue,
    span: Span,
) -> EvalResult<()> {
    let ffi = interp.lua_to_ffi(v, &meta.ty, span)?;
    let mem = &mut interp.ctx.exec.memory;
    match (&meta.ty, ffi) {
        (Ty::Scalar(ScalarTy::F32), Value::Float(f)) => {
            mem.store_f32(meta.addr, f as f32).map_err(to_lua_err)?
        }
        (Ty::Scalar(ScalarTy::F64), Value::Float(f)) => {
            mem.store_f64(meta.addr, f).map_err(to_lua_err)?
        }
        (Ty::Scalar(ScalarTy::Bool), Value::Bool(b)) => {
            mem.store_u8(meta.addr, b as u8).map_err(to_lua_err)?
        }
        (Ty::Scalar(s), Value::Int(i)) if s.is_integer() => match s.size() {
            1 => mem.store_u8(meta.addr, i as u8).map_err(to_lua_err)?,
            2 => mem.store_u16(meta.addr, i as u16).map_err(to_lua_err)?,
            4 => mem.store_u32(meta.addr, i as u32).map_err(to_lua_err)?,
            _ => mem.store_u64(meta.addr, i as u64).map_err(to_lua_err)?,
        },
        (Ty::Ptr(_), Value::Ptr(p)) => mem.store_u64(meta.addr, p).map_err(to_lua_err)?,
        _ => return Err(LuaError::at("unsupported global assignment", span)),
    }
    Ok(())
}

fn to_lua_err(e: terra_vm::MemError) -> LuaError {
    LuaError::msg(e.to_string())
}
