//! Eager specialization of Terra code (the `→S` judgment of Terra Core).
//!
//! Specialization runs when a `terra` definition or `quote` is *evaluated*
//! by Lua. It walks the parsed Terra AST and:
//!
//! - evaluates every escape `[e]` and type annotation in the current (shared)
//!   lexical environment, splicing the resulting Lua values in;
//! - hygienically renames every Terra-introduced variable to a fresh
//!   [`SymbolRef`], binding the name to the symbol in the shared environment
//!   so escaped Lua code can refer to it (rules SLET/SVAR/LTDEFN);
//! - resolves free identifiers through the shared environment, converting
//!   Lua values to Terra terms (numbers to constants, Terra functions to
//!   function references, types to type literals, quotes by splicing).
//!
//! The result is a [`SpecFunc`] / [`SpecQuote`]: closed Terra code that no
//! longer mentions the Lua environment — mutating a Lua variable after
//! definition cannot change the function (§4.1 "eager specialization").

use crate::error::{EvalResult, LuaError, Phase};
use crate::interp::Interp;
use crate::value::{LuaValue, SymbolRef};
use std::rc::Rc;
use terra_ir::{FuncId, GlobalId, Ty};
use terra_syntax::{
    BinOp, DeclName, IntSuffix, LuaExpr, Name, Span, TerraExpr, TerraFuncDef, TerraQuote,
    TerraStmt, UnOp,
};

/// A specialized Terra expression.
#[derive(Debug, Clone)]
pub struct SpecExpr {
    /// Node kind.
    pub kind: SpecExprKind,
    /// Source location.
    pub span: Span,
}

/// Specialized expression kinds.
#[derive(Debug, Clone)]
pub enum SpecExprKind {
    /// Integer literal.
    Int(i64, IntSuffix),
    /// Float literal (`is_f32` for `f`-suffixed).
    Float(f64, bool),
    /// Boolean literal.
    Bool(bool),
    /// `nil` — the null pointer.
    Null,
    /// String literal.
    Str(Name),
    /// A numeric constant spliced from Lua; adapts to integer or floating
    /// type during typechecking.
    LuaNum(f64),
    /// A (hygienically renamed) variable.
    Sym(SymbolRef),
    /// Reference to a Terra function.
    Func(FuncId),
    /// Reference to a Terra global.
    GlobalRef(GlobalId),
    /// A type used as a value (cast callee / struct-literal head).
    TypeLit(Ty),
    /// A Terra intrinsic used as a callee (simulated C function, `select`).
    Intrinsic(crate::value::Intrinsic),
    /// Field selection on a struct value or pointer.
    Field(Box<SpecExpr>, Name),
    /// Pointer/array indexing.
    Index(Box<SpecExpr>, Box<SpecExpr>),
    /// Call (direct, indirect, cast — resolved by the typechecker from the
    /// callee's kind/type).
    Call(Box<SpecExpr>, Vec<SpecExpr>),
    /// Method call, desugared by the typechecker via the receiver's static
    /// type (paper: `obj:m(a)` ⇒ `[T.methods.m](obj, a)`).
    MethodCall(Box<SpecExpr>, Name, Vec<SpecExpr>),
    /// Struct literal `T { … }`.
    StructInit(Ty, Vec<(Option<Name>, SpecExpr)>),
    /// Binary operator.
    Bin(BinOp, Box<SpecExpr>, Box<SpecExpr>),
    /// Unary operator.
    Un(UnOp, Box<SpecExpr>),
    /// `@e`
    Deref(Box<SpecExpr>),
    /// `&e`
    AddrOf(Box<SpecExpr>),
    /// A statement-carrying quote spliced in expression position:
    /// `quote s… in e end`. The third field is the 1-based source line of
    /// the splice site, when the quote arrived through an escape (it feeds
    /// provenance chains; `None` for quotes written in place).
    LetIn(Vec<SpecStmt>, Box<SpecExpr>, Option<u32>),
}

impl SpecExpr {
    /// Builds a node.
    pub fn new(kind: SpecExprKind, span: Span) -> SpecExpr {
        SpecExpr { kind, span }
    }
}

/// A specialized Terra statement.
#[derive(Debug, Clone)]
pub enum SpecStmt {
    /// Variable declaration.
    Var {
        /// Declared symbols with optional annotated types.
        decls: Vec<(SymbolRef, Option<Ty>)>,
        /// Initializers.
        inits: Vec<SpecExpr>,
        /// Location.
        span: Span,
    },
    /// Assignment.
    Assign {
        /// L-value targets.
        targets: Vec<SpecExpr>,
        /// Right-hand sides.
        exprs: Vec<SpecExpr>,
        /// Location.
        span: Span,
    },
    /// Conditional.
    If {
        /// `(cond, body)` arms.
        arms: Vec<(SpecExpr, Vec<SpecStmt>)>,
        /// Else body.
        else_body: Vec<SpecStmt>,
        /// Location.
        span: Span,
    },
    /// While loop.
    While {
        /// Condition.
        cond: SpecExpr,
        /// Body.
        body: Vec<SpecStmt>,
        /// Location.
        span: Span,
    },
    /// Repeat-until loop.
    Repeat {
        /// Body.
        body: Vec<SpecStmt>,
        /// Exit condition.
        cond: SpecExpr,
        /// Location.
        span: Span,
    },
    /// Numeric for (half-open).
    For {
        /// Loop symbol.
        sym: SymbolRef,
        /// Optional annotated type.
        ty: Option<Ty>,
        /// Start.
        start: SpecExpr,
        /// Exclusive stop.
        stop: SpecExpr,
        /// Optional step.
        step: Option<SpecExpr>,
        /// Body.
        body: Vec<SpecStmt>,
        /// Location.
        span: Span,
    },
    /// Data-parallel numeric for (half-open, step 1): iterations may run
    /// concurrently, so the typechecker extracts the body into a kernel
    /// function.
    ParallelFor {
        /// Loop symbol.
        sym: SymbolRef,
        /// Optional annotated type.
        ty: Option<Ty>,
        /// Start.
        start: SpecExpr,
        /// Exclusive stop.
        stop: SpecExpr,
        /// Body.
        body: Vec<SpecStmt>,
        /// Location.
        span: Span,
    },
    /// Return.
    Return(Vec<SpecExpr>, Span),
    /// Break.
    Break(Span),
    /// Scoped block.
    Block(Vec<SpecStmt>, Span),
    /// Expression statement.
    Expr(SpecExpr),
    /// Deferred call (runs at scope exit).
    Defer(SpecExpr, Span),
    /// Statements contributed by splicing a `quote` at an escape site.
    /// The typechecker lowers the inner statements normally and stamps the
    /// resulting IR with a provenance frame for the splice.
    Spliced {
        /// The quote's statements (trailing `in` expressions become
        /// expression statements).
        stmts: Vec<SpecStmt>,
        /// 1-based source line of the splice site.
        line: u32,
        /// Location of the splice.
        span: Span,
    },
}

/// A specialized quotation: the value of `quote … end` / `` `e ``.
#[derive(Debug, Clone)]
pub struct SpecQuote {
    /// Quoted statements.
    pub stmts: Vec<SpecStmt>,
    /// Trailing `in` expressions (or the single backtick expression).
    pub exprs: Vec<SpecExpr>,
    /// Location.
    pub span: Span,
}

/// A fully specialized Terra function awaiting (lazy) typechecking.
#[derive(Debug, Clone)]
pub struct SpecFunc {
    /// Name for diagnostics.
    pub name: Rc<str>,
    /// Parameters: symbol + resolved Terra type.
    pub params: Vec<(SymbolRef, Ty)>,
    /// Annotated return type (`None` = infer).
    pub ret: Option<Ty>,
    /// Body.
    pub body: Vec<SpecStmt>,
    /// Definition site.
    pub span: Span,
}

/// Either a Terra term or a Lua value, produced while specializing an
/// expression. Lua values stay symbolic as long as possible so that nested
/// table sugar (`std.malloc`) and compile-time calls (`sizeof(T)`) work
/// without explicit escapes.
pub enum SpecVal {
    /// A Terra term.
    Terra(SpecExpr),
    /// A Lua value not yet converted.
    Lua(LuaValue, Span),
}

impl SpecVal {
    /// Forces conversion to a Terra term.
    pub fn into_terra(self, interp: &Interp) -> EvalResult<SpecExpr> {
        match self {
            SpecVal::Terra(e) => Ok(e),
            SpecVal::Lua(v, span) => lua_to_spec(interp, v, span),
        }
    }
}

fn err(msg: impl Into<String>, span: Span) -> LuaError {
    LuaError::at(msg, span).phase(Phase::Specialize)
}

/// Converts a Lua value to a Terra term (rules SVAR/SESC: only a subset of
/// Lua values are Terra terms).
pub fn lua_to_spec(_interp: &Interp, v: LuaValue, span: Span) -> EvalResult<SpecExpr> {
    let kind = match v {
        LuaValue::Number(n) => SpecExprKind::LuaNum(n),
        LuaValue::Bool(b) => SpecExprKind::Bool(b),
        LuaValue::Str(s) => SpecExprKind::Str(s),
        LuaValue::Nil => SpecExprKind::Null,
        LuaValue::TerraFunc(id) => SpecExprKind::Func(id),
        LuaValue::Type(t) => SpecExprKind::TypeLit(t),
        LuaValue::Symbol(s) => SpecExprKind::Sym(s),
        LuaValue::Global(g) => SpecExprKind::GlobalRef(g),
        LuaValue::Intrinsic(i) => SpecExprKind::Intrinsic(i),
        LuaValue::Quote(q) => return splice_quote_expr(&q, span),
        LuaValue::Table(_) => {
            return Err(err(
                "a Lua table is not a Terra value (did you mean to index it, or use a quote?)",
                span,
            ))
        }
        LuaValue::Function(_) | LuaValue::Native(_) => {
            return Err(err(
                "a Lua function is not a Terra value; wrap it with terralib.macro or define a terra function",
                span,
            ))
        }
        LuaValue::Macro(_) => {
            return Err(err("a macro must be called, not used as a value", span))
        }
    };
    Ok(SpecExpr::new(kind, span))
}

/// Splices a quote into expression position.
fn splice_quote_expr(q: &SpecQuote, span: Span) -> EvalResult<SpecExpr> {
    if q.exprs.len() > 1 {
        return Err(err(
            "quote yields multiple expressions; only one can be spliced here",
            span,
        ));
    }
    match (q.stmts.is_empty(), q.exprs.first()) {
        (true, Some(e)) => Ok(e.clone()),
        (false, Some(e)) => Ok(SpecExpr::new(
            SpecExprKind::LetIn(q.stmts.clone(), Box::new(e.clone()), Some(span.line)),
            span,
        )),
        (_, None) => Err(err(
            "quote contains only statements and cannot be used as an expression",
            span,
        )),
    }
}

/// The specializer. Borrows the interpreter to evaluate escapes and type
/// annotations in the shared lexical environment.
pub struct Specializer<'a> {
    interp: &'a mut Interp,
    env: crate::env::Env,
}

impl<'a> Specializer<'a> {
    /// Creates a specializer rooted at `env` (the definition site's scope).
    pub fn new(interp: &'a mut Interp, env: crate::env::Env) -> Self {
        Specializer { interp, env }
    }

    /// Specializes a `terra` function definition (rule LTDEFN).
    pub fn function(&mut self, def: &TerraFuncDef, name: Rc<str>) -> EvalResult<SpecFunc> {
        // Parameters and body live in a child of the definition environment.
        let saved = self.enter_child();
        let mut params: Vec<(SymbolRef, Ty)> = Vec::new();
        for p in &def.params {
            match &p.name {
                DeclName::Ident(n, span) => {
                    let ty_expr = p
                        .ty
                        .as_ref()
                        .ok_or_else(|| err(format!("parameter '{n}' requires a type"), *span))?;
                    let ty = self.eval_type(ty_expr)?;
                    let sym = self.interp.ctx.fresh_symbol(n.clone(), Some(ty.clone()));
                    self.env.declare(n.clone(), LuaValue::Symbol(sym.clone()));
                    params.push((sym, ty));
                }
                DeclName::Escape(e, span) => {
                    let v = self.interp.eval_expr(e, &self.env)?;
                    let syms = collect_symbols(v, *span)?;
                    let annotated = match &p.ty {
                        Some(t) => Some(self.eval_type(t)?),
                        None => None,
                    };
                    for sym in syms {
                        let ty = match (&annotated, sym.ty.borrow().clone()) {
                            (Some(t), _) => t.clone(),
                            (None, Some(t)) => t,
                            (None, None) => {
                                return Err(err(
                                    format!("escaped parameter symbol '{}' has no type", sym.name),
                                    *span,
                                ))
                            }
                        };
                        *sym.ty.borrow_mut() = Some(ty.clone());
                        params.push((sym, ty));
                    }
                }
            }
        }
        let ret = match &def.ret {
            Some(e) => Some(self.eval_type(e)?),
            None => None,
        };
        let body = self.block(&def.body)?;
        self.leave(saved);
        Ok(SpecFunc {
            name,
            params,
            ret,
            body,
            span: def.span,
        })
    }

    /// Specializes a quotation (rule LTQUOTE + SLET hygiene).
    pub fn quote(&mut self, q: &TerraQuote) -> EvalResult<SpecQuote> {
        let saved = self.enter_child();
        let stmts = self.block_no_scope(&q.stmts)?;
        let exprs = q
            .exprs
            .iter()
            .map(|e| self.expr_terra(e))
            .collect::<EvalResult<Vec<_>>>()?;
        self.leave(saved);
        Ok(SpecQuote {
            stmts,
            exprs,
            span: q.span,
        })
    }

    fn enter_child(&mut self) -> crate::env::Env {
        let saved = self.env.clone();
        self.env = self.env.child();
        saved
    }

    fn leave(&mut self, saved: crate::env::Env) {
        self.env = saved;
    }

    /// Evaluates a type annotation (a Lua expression) to a Terra type.
    fn eval_type(&mut self, e: &LuaExpr) -> EvalResult<Ty> {
        let v = self.interp.eval_expr(e, &self.env)?;
        self.interp.value_to_type(v, e.span())
    }

    fn block(&mut self, stmts: &[TerraStmt]) -> EvalResult<Vec<SpecStmt>> {
        let saved = self.enter_child();
        let out = self.block_no_scope(stmts);
        self.leave(saved);
        out
    }

    fn block_no_scope(&mut self, stmts: &[TerraStmt]) -> EvalResult<Vec<SpecStmt>> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn decl_symbol(&mut self, name: &DeclName, ty: Option<Ty>) -> EvalResult<SymbolRef> {
        match name {
            DeclName::Ident(n, _) => {
                let sym = self.interp.ctx.fresh_symbol(n.clone(), ty);
                // Bind *after* initializers are specialized; callers arrange
                // ordering. Binding is done by `bind_symbol`.
                Ok(sym)
            }
            DeclName::Escape(e, span) => {
                let v = self.interp.eval_expr(e, &self.env)?;
                match v {
                    LuaValue::Symbol(s) => {
                        if let Some(t) = ty {
                            *s.ty.borrow_mut() = Some(t);
                        }
                        Ok(s)
                    }
                    other => Err(err(
                        format!(
                            "expected a symbol in declaration but got {}",
                            other.type_name()
                        ),
                        *span,
                    )),
                }
            }
        }
    }

    fn bind_symbol(&mut self, name: &DeclName, sym: &SymbolRef) {
        if let DeclName::Ident(n, _) = name {
            self.env.declare(n.clone(), LuaValue::Symbol(sym.clone()));
        }
    }

    fn stmt(&mut self, s: &TerraStmt, out: &mut Vec<SpecStmt>) -> EvalResult<()> {
        match s {
            TerraStmt::Var { decls, inits, span } => {
                // Initializers are specialized in the *outer* scope…
                let inits = inits
                    .iter()
                    .map(|e| self.expr_terra(e))
                    .collect::<EvalResult<Vec<_>>>()?;
                // …then the names are bound (hygienic let).
                let mut sdecls = Vec::with_capacity(decls.len());
                for (name, ty_expr) in decls {
                    let ty = match ty_expr {
                        Some(t) => Some(self.eval_type(t)?),
                        None => None,
                    };
                    let sym = self.decl_symbol(name, ty.clone())?;
                    self.bind_symbol(name, &sym);
                    sdecls.push((sym, ty));
                }
                out.push(SpecStmt::Var {
                    decls: sdecls,
                    inits,
                    span: *span,
                });
            }
            TerraStmt::Assign {
                targets,
                exprs,
                span,
            } => {
                let targets = targets
                    .iter()
                    .map(|e| self.expr_terra(e))
                    .collect::<EvalResult<Vec<_>>>()?;
                let exprs = exprs
                    .iter()
                    .map(|e| self.expr_terra(e))
                    .collect::<EvalResult<Vec<_>>>()?;
                out.push(SpecStmt::Assign {
                    targets,
                    exprs,
                    span: *span,
                });
            }
            TerraStmt::If {
                arms,
                else_body,
                span,
            } => {
                let mut sarms = Vec::with_capacity(arms.len());
                for (c, body) in arms {
                    let c = self.expr_terra(c)?;
                    sarms.push((c, self.block(body)?));
                }
                let else_body = match else_body {
                    Some(b) => self.block(b)?,
                    None => Vec::new(),
                };
                out.push(SpecStmt::If {
                    arms: sarms,
                    else_body,
                    span: *span,
                });
            }
            TerraStmt::While { cond, body, span } => {
                let cond = self.expr_terra(cond)?;
                let body = self.block(body)?;
                out.push(SpecStmt::While {
                    cond,
                    body,
                    span: *span,
                });
            }
            TerraStmt::Repeat { body, cond, span } => {
                // The condition sees the body's scope in Lua; mirror that.
                let saved = self.enter_child();
                let body = self.block_no_scope(body)?;
                let cond = self.expr_terra(cond)?;
                self.leave(saved);
                out.push(SpecStmt::Repeat {
                    body,
                    cond,
                    span: *span,
                });
            }
            TerraStmt::ForNum {
                var,
                ty,
                start,
                stop,
                step,
                body,
                span,
            } => {
                let start = self.expr_terra(start)?;
                let stop = self.expr_terra(stop)?;
                let step = match step {
                    Some(e) => Some(self.expr_terra(e)?),
                    None => None,
                };
                let ty = match ty {
                    Some(t) => Some(self.eval_type(t)?),
                    None => None,
                };
                let saved = self.enter_child();
                let sym = self.decl_symbol(var, ty.clone())?;
                self.bind_symbol(var, &sym);
                let body = self.block_no_scope(body)?;
                self.leave(saved);
                out.push(SpecStmt::For {
                    sym,
                    ty,
                    start,
                    stop,
                    step,
                    body,
                    span: *span,
                });
            }
            TerraStmt::ParallelFor {
                var,
                ty,
                start,
                stop,
                body,
                span,
            } => {
                let start = self.expr_terra(start)?;
                let stop = self.expr_terra(stop)?;
                let ty = match ty {
                    Some(t) => Some(self.eval_type(t)?),
                    None => None,
                };
                let saved = self.enter_child();
                let sym = self.decl_symbol(var, ty.clone())?;
                self.bind_symbol(var, &sym);
                let body = self.block_no_scope(body)?;
                self.leave(saved);
                out.push(SpecStmt::ParallelFor {
                    sym,
                    ty,
                    start,
                    stop,
                    body,
                    span: *span,
                });
            }
            TerraStmt::Return { exprs, span } => {
                let exprs = exprs
                    .iter()
                    .map(|e| self.expr_terra(e))
                    .collect::<EvalResult<Vec<_>>>()?;
                out.push(SpecStmt::Return(exprs, *span));
            }
            TerraStmt::Break(span) => out.push(SpecStmt::Break(*span)),
            TerraStmt::Block(body, span) => {
                let body = self.block(body)?;
                out.push(SpecStmt::Block(body, *span));
            }
            TerraStmt::Expr(e) => {
                let e = self.expr_terra(e)?;
                out.push(SpecStmt::Expr(e));
            }
            TerraStmt::Escape(e, span) => {
                let v = self.interp.eval_expr(e, &self.env)?;
                self.splice_stmt_value(v, *span, out)?;
            }
            TerraStmt::Defer(e, span) => {
                let e = self.expr_terra(e)?;
                out.push(SpecStmt::Defer(e, *span));
            }
        }
        Ok(())
    }

    /// Splices a Lua value in statement position: quotes contribute their
    /// statements, lists splice each element, other values become
    /// expression statements.
    fn splice_stmt_value(
        &mut self,
        v: LuaValue,
        span: Span,
        out: &mut Vec<SpecStmt>,
    ) -> EvalResult<()> {
        match v {
            LuaValue::Nil => Ok(()),
            LuaValue::Quote(q) => {
                let mut stmts: Vec<SpecStmt> = q.stmts.to_vec();
                for e in &q.exprs {
                    stmts.push(SpecStmt::Expr(e.clone()));
                }
                out.push(SpecStmt::Spliced {
                    stmts,
                    line: span.line,
                    span,
                });
                Ok(())
            }
            LuaValue::Table(t) => {
                let items: Vec<LuaValue> = t.borrow().iter_array().cloned().collect();
                for item in items {
                    self.splice_stmt_value(item, span, out)?;
                }
                Ok(())
            }
            other => {
                let e = lua_to_spec(self.interp, other, span)?;
                out.push(SpecStmt::Expr(e));
                Ok(())
            }
        }
    }

    fn expr_terra(&mut self, e: &TerraExpr) -> EvalResult<SpecExpr> {
        let sv = self.expr(e)?;
        sv.into_terra(self.interp)
    }

    /// Specializes a call argument list. An escape that evaluates to a Lua
    /// list splices as multiple arguments (the paper's `f(self, [params])`
    /// stub pattern).
    fn spec_args(&mut self, args: &[TerraExpr]) -> EvalResult<Vec<SpecExpr>> {
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            if let TerraExpr::EscapeExpr(le, span) = a {
                let v = self.interp.eval_expr(le, &self.env)?;
                if let LuaValue::Table(t) = &v {
                    let items: Vec<LuaValue> = t.borrow().iter_array().cloned().collect();
                    for item in items {
                        out.push(lua_to_spec(self.interp, item, *span)?);
                    }
                    continue;
                }
                out.push(lua_to_spec(self.interp, v, *span)?);
                continue;
            }
            out.push(self.expr_terra(a)?);
        }
        Ok(out)
    }

    fn expr(&mut self, e: &TerraExpr) -> EvalResult<SpecVal> {
        let span = e.span();
        Ok(match e {
            TerraExpr::Int {
                value,
                suffix,
                span,
            } => SpecVal::Terra(SpecExpr::new(SpecExprKind::Int(*value, *suffix), *span)),
            TerraExpr::Float {
                value,
                is_f32,
                span,
            } => SpecVal::Terra(SpecExpr::new(SpecExprKind::Float(*value, *is_f32), *span)),
            TerraExpr::Bool(b, span) => {
                SpecVal::Terra(SpecExpr::new(SpecExprKind::Bool(*b), *span))
            }
            TerraExpr::Nil(span) => SpecVal::Terra(SpecExpr::new(SpecExprKind::Null, *span)),
            TerraExpr::Str(s, span) => {
                SpecVal::Terra(SpecExpr::new(SpecExprKind::Str(s.clone()), *span))
            }
            TerraExpr::Ident(n, span) => match self.env.get(n) {
                Some(LuaValue::Symbol(s)) => {
                    SpecVal::Terra(SpecExpr::new(SpecExprKind::Sym(s), *span))
                }
                Some(v) => SpecVal::Lua(v, *span),
                None => return Err(err(format!("undefined variable '{n}'"), *span)),
            },
            TerraExpr::EscapeExpr(le, span) => {
                let v = self.interp.eval_expr(le, &self.env)?;
                SpecVal::Lua(v, *span)
            }
            TerraExpr::Field { obj, name, span } => {
                let obj = self.expr(obj)?;
                match obj {
                    // Nested-table sugar: treat `tbl.name` as escaped. Staged
                    // values (globals, quotes, symbols) fall through to a
                    // Terra field access instead.
                    SpecVal::Lua(
                        v @ (LuaValue::Table(_) | LuaValue::Type(_) | LuaValue::Str(_)),
                        _,
                    ) => {
                        let r = self
                            .interp
                            .index_value(&v, &LuaValue::Str(name.clone()), *span)?;
                        SpecVal::Lua(r, *span)
                    }
                    other => {
                        let o = other.into_terra(self.interp)?;
                        SpecVal::Terra(SpecExpr::new(
                            SpecExprKind::Field(Box::new(o), name.clone()),
                            *span,
                        ))
                    }
                }
            }
            TerraExpr::DynField { obj, name, span } => {
                let obj = self.expr(obj)?;
                let key = self.interp.eval_expr(name, &self.env)?;
                match obj {
                    SpecVal::Lua(
                        v @ (LuaValue::Table(_) | LuaValue::Type(_) | LuaValue::Str(_)),
                        _,
                    ) => {
                        let r = self.interp.index_value(&v, &key, *span)?;
                        SpecVal::Lua(r, *span)
                    }
                    other => {
                        let o = other.into_terra(self.interp)?;
                        let field = match key {
                            LuaValue::Str(s) => s,
                            LuaValue::Symbol(s) => s.name.clone(),
                            bad => {
                                return Err(err(
                                    format!(
                                        "computed field name must be a string, got {}",
                                        bad.type_name()
                                    ),
                                    *span,
                                ))
                            }
                        };
                        SpecVal::Terra(SpecExpr::new(
                            SpecExprKind::Field(Box::new(o), field),
                            *span,
                        ))
                    }
                }
            }
            TerraExpr::Index { obj, index, span } => {
                let obj = self.expr(obj)?;
                match obj {
                    SpecVal::Lua(LuaValue::Type(t), _) => {
                        // `T[n]` — array type construction.
                        let n = self.expr_terra(index)?;
                        let len = const_int(&n)
                            .ok_or_else(|| err("array length must be a constant integer", *span))?;
                        SpecVal::Lua(
                            LuaValue::Type(Ty::Array(std::sync::Arc::new(t), len as u64)),
                            *span,
                        )
                    }
                    SpecVal::Lua(v, _) => {
                        return Err(err(
                            format!(
                                "cannot index a Lua {} inside Terra code; use an escape",
                                v.type_name()
                            ),
                            *span,
                        ))
                    }
                    SpecVal::Terra(o) => {
                        let i = self.expr_terra(index)?;
                        SpecVal::Terra(SpecExpr::new(
                            SpecExprKind::Index(Box::new(o), Box::new(i)),
                            *span,
                        ))
                    }
                }
            }
            TerraExpr::Call { func, args, span } => {
                let callee = self.expr(func)?;
                match callee {
                    SpecVal::Lua(LuaValue::Macro(m), _) => {
                        // Macro: arguments become quotes; the result splices.
                        let mut qargs = Vec::with_capacity(args.len());
                        for a in args {
                            let e = self.expr_terra(a)?;
                            qargs.push(LuaValue::Quote(Rc::new(SpecQuote {
                                stmts: vec![],
                                exprs: vec![e],
                                span: *span,
                            })));
                        }
                        let result = self.interp.call_value(m.func.clone(), qargs, *span)?;
                        let first = result.into_iter().next().unwrap_or(LuaValue::Nil);
                        SpecVal::Lua(first, *span)
                    }
                    SpecVal::Lua(v @ (LuaValue::Function(_) | LuaValue::Native(_)), _) => {
                        // A plain Lua function can be called from Terra code
                        // only when every argument is a compile-time value;
                        // the call then happens during specialization
                        // (`sizeof(T)` and friends).
                        let mut largs = Vec::with_capacity(args.len());
                        for a in args {
                            match self.expr(a)? {
                                SpecVal::Lua(lv, _) => largs.push(lv),
                                SpecVal::Terra(t) => {
                                    if let SpecExprKind::TypeLit(ty) = t.kind {
                                        largs.push(LuaValue::Type(ty));
                                    } else {
                                        return Err(err(
                                            "cannot call a Lua function with runtime Terra \
                                             arguments; use terralib.macro or a terra function",
                                            *span,
                                        ));
                                    }
                                }
                            }
                        }
                        let result = self.interp.call_value(v, largs, *span)?;
                        let first = result.into_iter().next().unwrap_or(LuaValue::Nil);
                        SpecVal::Lua(first, *span)
                    }
                    other => {
                        let c = other.into_terra(self.interp)?;
                        let args = self.spec_args(args)?;
                        SpecVal::Terra(SpecExpr::new(SpecExprKind::Call(Box::new(c), args), *span))
                    }
                }
            }
            TerraExpr::MethodCall {
                obj,
                name,
                args,
                span,
            } => {
                let obj = self.expr(obj)?;
                match obj {
                    SpecVal::Lua(
                        v @ (LuaValue::Global(_) | LuaValue::Quote(_) | LuaValue::Symbol(_)),
                        sp,
                    ) => {
                        // Method call on a staged value is a Terra method
                        // call on the spliced term.
                        let o = lua_to_spec(self.interp, v, sp)?;
                        let args = self.spec_args(args)?;
                        SpecVal::Terra(SpecExpr::new(
                            SpecExprKind::MethodCall(Box::new(o), name.clone(), args),
                            *span,
                        ))
                    }
                    SpecVal::Lua(v, _) => {
                        // Compile-time method call (e.g. reflection API used
                        // inside an annotation-like position).
                        let args = args
                            .iter()
                            .map(|a| match self.expr(a) {
                                Ok(SpecVal::Lua(lv, _)) => Ok(lv),
                                Ok(SpecVal::Terra(_)) => Err(err(
                                    "cannot pass runtime Terra values to a Lua method call",
                                    *span,
                                )),
                                Err(e) => Err(e),
                            })
                            .collect::<EvalResult<Vec<_>>>()?;
                        let r = self.interp.method_call_value(v, name, args, *span)?;
                        SpecVal::Lua(r, *span)
                    }
                    SpecVal::Terra(o) => {
                        let args = self.spec_args(args)?;
                        SpecVal::Terra(SpecExpr::new(
                            SpecExprKind::MethodCall(Box::new(o), name.clone(), args),
                            *span,
                        ))
                    }
                }
            }
            TerraExpr::DynMethodCall {
                obj,
                name,
                args,
                span,
            } => {
                let o = self.expr_terra(obj)?;
                let key = self.interp.eval_expr(name, &self.env)?;
                let mname = match key {
                    LuaValue::Str(s) => s,
                    other => {
                        return Err(err(
                            format!(
                                "computed method name must be a string, got {}",
                                other.type_name()
                            ),
                            *span,
                        ))
                    }
                };
                let args = self.spec_args(args)?;
                SpecVal::Terra(SpecExpr::new(
                    SpecExprKind::MethodCall(Box::new(o), mname, args),
                    *span,
                ))
            }
            TerraExpr::StructInit { ty, args, span } => {
                let head = self.expr(ty)?;
                let t = match head {
                    SpecVal::Lua(LuaValue::Type(t), _) => t,
                    SpecVal::Terra(SpecExpr {
                        kind: SpecExprKind::TypeLit(t),
                        ..
                    }) => t,
                    _ => {
                        return Err(err(
                            "struct literal requires a Terra struct type before '{'",
                            *span,
                        ))
                    }
                };
                let args = args
                    .iter()
                    .map(|(n, a)| Ok((n.clone(), self.expr_terra(a)?)))
                    .collect::<EvalResult<Vec<_>>>()?;
                SpecVal::Terra(SpecExpr::new(SpecExprKind::StructInit(t, args), *span))
            }
            TerraExpr::BinOp { op, lhs, rhs, span } => {
                let l = self.expr_terra(lhs)?;
                let r = self.expr_terra(rhs)?;
                SpecVal::Terra(SpecExpr::new(
                    SpecExprKind::Bin(*op, Box::new(l), Box::new(r)),
                    *span,
                ))
            }
            TerraExpr::UnOp { op, expr, span } => {
                let x = self.expr_terra(expr)?;
                SpecVal::Terra(SpecExpr::new(SpecExprKind::Un(*op, Box::new(x)), *span))
            }
            TerraExpr::Deref(inner, span) => {
                let x = self.expr_terra(inner)?;
                SpecVal::Terra(SpecExpr::new(SpecExprKind::Deref(Box::new(x)), *span))
            }
            TerraExpr::AddrOf(inner, span) => {
                let x = self.expr(inner)?;
                match x {
                    // `&T` where T is a type: pointer type (parity with the
                    // Lua-context type operator).
                    SpecVal::Lua(LuaValue::Type(t), _) => {
                        SpecVal::Lua(LuaValue::Type(t.ptr_to()), *span)
                    }
                    other => {
                        let x = other.into_terra(self.interp)?;
                        SpecVal::Terra(SpecExpr::new(SpecExprKind::AddrOf(Box::new(x)), *span))
                    }
                }
            }
            TerraExpr::TerraFunction(def) => {
                // Nested anonymous terra function: declare + define now.
                let name: Rc<str> = def
                    .name_hint
                    .clone()
                    .unwrap_or_else(|| Rc::from("anonymous"));
                let id = self.interp.define_terra_function(def, &self.env, name)?;
                let _ = span;
                SpecVal::Lua(LuaValue::TerraFunc(id), def.span)
            }
        })
    }
}

fn const_int(e: &SpecExpr) -> Option<i64> {
    match &e.kind {
        SpecExprKind::Int(v, _) => Some(*v),
        SpecExprKind::LuaNum(n) if n.fract() == 0.0 => Some(*n as i64),
        _ => None,
    }
}

/// Collects one symbol or a list of symbols from an escaped declaration.
pub fn collect_symbols(v: LuaValue, span: Span) -> EvalResult<Vec<SymbolRef>> {
    match v {
        LuaValue::Symbol(s) => Ok(vec![s]),
        LuaValue::Table(t) => {
            let mut out = Vec::new();
            for item in t.borrow().iter_array() {
                match item {
                    LuaValue::Symbol(s) => out.push(s.clone()),
                    other => {
                        return Err(err(
                            format!("expected symbols in list, got {}", other.type_name()),
                            span,
                        ))
                    }
                }
            }
            Ok(out)
        }
        other => Err(err(
            format!(
                "expected a symbol or list of symbols, got {}",
                other.type_name()
            ),
            span,
        )),
    }
}
