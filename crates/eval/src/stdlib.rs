//! The Lua standard library subset plus `terralib`.
//!
//! Installs base functions (`print`, `pairs`, `pcall`, …), the `math` /
//! `string` / `table` / `os` / `io` libraries, the Terra primitive types as
//! globals (`int`, `float`, `&T` comes from syntax), `symbol` / `sizeof` /
//! `vector` / `global`, and `terralib` with `includec` (the simulated C
//! standard library), `newlist`, `macro`, `select`, `saveobj`, and
//! `currenttimeinseconds`.

use crate::error::{EvalResult, LuaError, Phase};
use crate::interp::Interp;
use crate::value::{Builtin as NativeBuiltin, Intrinsic, LuaValue, MacroData, Table, TableRef};
use std::cell::RefCell;
use std::rc::Rc;
use terra_ir::{Builtin, ScalarTy, Ty};
use terra_syntax::Span;

fn native(name: &'static str, f: crate::value::NativeFn) -> LuaValue {
    LuaValue::Native(Rc::new(NativeBuiltin { name, f }))
}

fn new_table() -> TableRef {
    Rc::new(RefCell::new(Table::new()))
}

fn arg(args: &[LuaValue], i: usize) -> LuaValue {
    args.get(i).cloned().unwrap_or(LuaValue::Nil)
}

fn num_arg(args: &[LuaValue], i: usize, who: &str) -> EvalResult<f64> {
    arg(args, i).as_number().ok_or_else(|| {
        LuaError::msg(format!(
            "bad argument #{} to '{}': number expected",
            i + 1,
            who
        ))
    })
}

fn str_arg(args: &[LuaValue], i: usize, who: &str) -> EvalResult<Rc<str>> {
    match arg(args, i) {
        LuaValue::Str(s) => Ok(s),
        other => Err(LuaError::msg(format!(
            "bad argument #{} to '{}': string expected, got {}",
            i + 1,
            who,
            other.type_name()
        ))),
    }
}

/// Installs the full standard environment into `interp`'s globals.
pub fn install(interp: &mut Interp) {
    install_base(interp);
    install_types(interp);
    install_math(interp);
    install_string(interp);
    install_table_lib(interp);
    install_os_io(interp);
    install_terralib(interp);
    install_perf(interp);
}

// ---------------------------------------------------------------------------
// base
// ---------------------------------------------------------------------------

fn install_base(interp: &mut Interp) {
    interp.set_global(
        "print",
        native("print", |it, args| {
            let mut line = String::new();
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    line.push('\t');
                }
                line.push_str(&it.tostring_value(a, Span::synthetic())?);
            }
            line.push('\n');
            it.write_output(&line);
            Ok(vec![])
        }),
    );
    interp.set_global(
        "type",
        native("type", |_, args| {
            Ok(vec![LuaValue::str(arg(&args, 0).type_name())])
        }),
    );
    interp.set_global(
        "tostring",
        native("tostring", |it, args| {
            let s = it.tostring_value(&arg(&args, 0), Span::synthetic())?;
            Ok(vec![LuaValue::str(s)])
        }),
    );
    interp.set_global(
        "tonumber",
        native("tonumber", |_, args| {
            Ok(vec![match arg(&args, 0).as_number() {
                Some(n) => LuaValue::Number(n),
                None => LuaValue::Nil,
            }])
        }),
    );
    interp.set_global(
        "error",
        native("error", |it, args| {
            let msg = it.tostring_value(&arg(&args, 0), Span::synthetic())?;
            Err(LuaError::msg(msg))
        }),
    );
    interp.set_global(
        "assert",
        native("assert", |it, args| {
            if arg(&args, 0).truthy() {
                Ok(args)
            } else {
                let msg = match arg(&args, 1) {
                    LuaValue::Nil => "assertion failed!".to_string(),
                    other => it.tostring_value(&other, Span::synthetic())?,
                };
                Err(LuaError::msg(msg))
            }
        }),
    );
    interp.set_global(
        "pcall",
        native("pcall", |it, mut args| {
            if args.is_empty() {
                return Err(LuaError::msg("bad argument #1 to 'pcall'"));
            }
            let f = args.remove(0);
            match it.call_value(f, args, Span::synthetic()) {
                Ok(mut rets) => {
                    let mut out = vec![LuaValue::Bool(true)];
                    out.append(&mut rets);
                    Ok(out)
                }
                Err(e) => Ok(vec![LuaValue::Bool(false), LuaValue::str(e.message)]),
            }
        }),
    );
    interp.set_global(
        "select",
        native("select", |_, args| match arg(&args, 0) {
            LuaValue::Str(s) if &*s == "#" => Ok(vec![LuaValue::Number((args.len() - 1) as f64)]),
            LuaValue::Number(n) => Ok(args.into_iter().skip(n as usize).collect()),
            _ => Err(LuaError::msg("bad argument #1 to 'select'")),
        }),
    );
    interp.set_global(
        "rawget",
        native("rawget", |_, args| match arg(&args, 0) {
            LuaValue::Table(t) => Ok(vec![t.borrow().get(&arg(&args, 1))]),
            _ => Err(LuaError::msg("rawget: table expected")),
        }),
    );
    interp.set_global(
        "rawset",
        native("rawset", |_, args| match arg(&args, 0) {
            LuaValue::Table(t) => {
                t.borrow_mut().set(arg(&args, 1), arg(&args, 2));
                Ok(vec![arg(&args, 0)])
            }
            _ => Err(LuaError::msg("rawset: table expected")),
        }),
    );
    interp.set_global(
        "setmetatable",
        native("setmetatable", |_, args| {
            match (arg(&args, 0), arg(&args, 1)) {
                (LuaValue::Table(t), LuaValue::Table(m)) => {
                    t.borrow_mut().meta = Some(m);
                    Ok(vec![arg(&args, 0)])
                }
                (LuaValue::Table(t), LuaValue::Nil) => {
                    t.borrow_mut().meta = None;
                    Ok(vec![arg(&args, 0)])
                }
                _ => Err(LuaError::msg("setmetatable: table expected")),
            }
        }),
    );
    interp.set_global(
        "getmetatable",
        native("getmetatable", |_, args| match arg(&args, 0) {
            LuaValue::Table(t) => Ok(vec![t
                .borrow()
                .meta
                .clone()
                .map(LuaValue::Table)
                .unwrap_or(LuaValue::Nil)]),
            _ => Ok(vec![LuaValue::Nil]),
        }),
    );
    interp.set_global("next", native("next", lua_next));
    interp.set_global(
        "pairs",
        native("pairs", |it, args| {
            Ok(vec![it.global("next"), arg(&args, 0), LuaValue::Nil])
        }),
    );
    interp.set_global(
        "ipairs",
        native("ipairs", |_, args| {
            Ok(vec![
                native("inext", |_, args| {
                    let LuaValue::Table(t) = arg(&args, 0) else {
                        return Err(LuaError::msg("ipairs iterator: table expected"));
                    };
                    let i = arg(&args, 1).as_number().unwrap_or(0.0) + 1.0;
                    let v = t.borrow().get(&LuaValue::Number(i));
                    if matches!(v, LuaValue::Nil) {
                        Ok(vec![LuaValue::Nil])
                    } else {
                        Ok(vec![LuaValue::Number(i), v])
                    }
                }),
                arg(&args, 0),
                LuaValue::Number(0.0),
            ])
        }),
    );
    interp.set_global(
        "unpack",
        native("unpack", |_, args| match arg(&args, 0) {
            LuaValue::Table(t) => Ok(t.borrow().iter_array().cloned().collect()),
            _ => Err(LuaError::msg("unpack: table expected")),
        }),
    );
    interp.set_global(
        "require",
        native("require", |it, args| {
            let name = str_arg(&args, 0, "require")?;
            if let Some(m) = it.modules.get(&*name) {
                return Ok(vec![m.clone()]);
            }
            if let Some(src) = it.module_sources.get(&*name).cloned() {
                let rets = it
                    .exec(&src)
                    .map_err(|e| e.traced(format!("module '{name}'")))?;
                let m = rets.into_iter().next().unwrap_or(LuaValue::Bool(true));
                it.modules.insert(name.to_string(), m.clone());
                return Ok(vec![m]);
            }
            Err(LuaError::msg(format!("module '{name}' not found")))
        }),
    );
}

fn lua_next(_: &mut Interp, args: Vec<LuaValue>) -> EvalResult<Vec<LuaValue>> {
    let LuaValue::Table(t) = arg(&args, 0) else {
        return Err(LuaError::msg("next: table expected"));
    };
    let key = arg(&args, 1);
    let entries = t.borrow().entries();
    if matches!(key, LuaValue::Nil) {
        return Ok(match entries.first() {
            Some((k, v)) => vec![k.clone(), v.clone()],
            None => vec![LuaValue::Nil],
        });
    }
    let pos = entries.iter().position(|(k, _)| k.raw_eq(&key));
    match pos.and_then(|p| entries.get(p + 1)) {
        Some((k, v)) => Ok(vec![k.clone(), v.clone()]),
        None => Ok(vec![LuaValue::Nil]),
    }
}

// ---------------------------------------------------------------------------
// primitive types / staging globals
// ---------------------------------------------------------------------------

fn install_types(interp: &mut Interp) {
    let prims: &[(&str, Ty)] = &[
        ("bool", Ty::BOOL),
        ("int", Ty::INT),
        ("int8", Ty::Scalar(ScalarTy::I8)),
        ("int16", Ty::Scalar(ScalarTy::I16)),
        ("int32", Ty::INT),
        ("int64", Ty::I64),
        ("uint", Ty::Scalar(ScalarTy::U32)),
        ("uint8", Ty::U8),
        ("uint16", Ty::Scalar(ScalarTy::U16)),
        ("uint32", Ty::Scalar(ScalarTy::U32)),
        ("uint64", Ty::U64),
        ("size_t", Ty::U64),
        ("intptr", Ty::I64),
        ("float", Ty::F32),
        ("double", Ty::F64),
        ("rawstring", Ty::rawstring()),
        ("opaque", Ty::U8),
    ];
    for (name, ty) in prims {
        interp.set_global(name, LuaValue::Type(ty.clone()));
    }

    interp.set_global(
        "symbol",
        native("symbol", |it, args| {
            let (mut ty, mut name) = (None, None);
            for a in args {
                match a {
                    LuaValue::Type(t) => ty = Some(t),
                    LuaValue::Str(s) => name = Some(s),
                    LuaValue::Nil => {}
                    other => {
                        return Err(LuaError::msg(format!(
                            "symbol: expected type or string, got {}",
                            other.type_name()
                        )))
                    }
                }
            }
            let sym = it
                .ctx
                .fresh_symbol(name.unwrap_or_else(|| Rc::from("sym")), ty);
            Ok(vec![LuaValue::Symbol(sym)])
        }),
    );
    interp.set_global(
        "sizeof",
        native("sizeof", |it, args| {
            let LuaValue::Type(t) = arg(&args, 0) else {
                return Err(LuaError::msg("sizeof: terra type expected"));
            };
            if let Ty::Struct(sid) = &t {
                it.finalize_struct(*sid, Span::synthetic())?;
            }
            Ok(vec![LuaValue::Number(t.size(&it.ctx.types) as f64)])
        }),
    );
    interp.set_global(
        "vector",
        native("vector", |_, args| {
            let LuaValue::Type(t) = arg(&args, 0) else {
                return Err(LuaError::msg("vector: terra type expected"));
            };
            let n = num_arg(&args, 1, "vector")? as u64;
            let Ty::Scalar(s) = t else {
                return Err(LuaError::msg("vector: scalar element type expected"));
            };
            if !(1..=16).contains(&n) || s.size() * n > 32 {
                return Err(LuaError::msg(
                    "vector: unsupported width (vectors are at most 32 bytes)",
                ));
            }
            Ok(vec![LuaValue::Type(Ty::Vector(s, n as u8))])
        }),
    );
    interp.set_global(
        "global",
        native("global", |it, args| {
            let LuaValue::Type(ty) = arg(&args, 0) else {
                return Err(LuaError::msg("global: terra type expected"));
            };
            if let Ty::Struct(sid) = &ty {
                it.finalize_struct(*sid, Span::synthetic())?;
            }
            let init_bytes: Option<Vec<u8>> = match arg(&args, 1) {
                LuaValue::Nil => None,
                LuaValue::Number(n) => Some(match &ty {
                    Ty::Scalar(ScalarTy::F32) => (n as f32).to_le_bytes().to_vec(),
                    Ty::Scalar(ScalarTy::F64) => n.to_le_bytes().to_vec(),
                    Ty::Scalar(s) if s.is_integer() => {
                        (n as i64).to_le_bytes()[..s.size() as usize].to_vec()
                    }
                    _ => return Err(LuaError::msg("global: cannot initialize this type")),
                }),
                LuaValue::Bool(b) => Some(vec![b as u8]),
                _ => return Err(LuaError::msg("global: unsupported initializer")),
            };
            let id = it.ctx.new_global("global", ty, init_bytes.as_deref());
            Ok(vec![LuaValue::Global(id)])
        }),
    );
    interp.set_global(
        "prefetch",
        LuaValue::Intrinsic(Intrinsic::C(Builtin::Prefetch)),
    );
}

// ---------------------------------------------------------------------------
// math / string / table / os / io
// ---------------------------------------------------------------------------

fn install_math(interp: &mut Interp) {
    let m = new_table();
    macro_rules! unary {
        ($name:literal, $f:expr) => {{
            let f: fn(f64) -> f64 = $f;
            let _ = f;
            m.borrow_mut().set_str(
                $name,
                native($name, |_, args| {
                    let f: fn(f64) -> f64 = $f;
                    Ok(vec![LuaValue::Number(f(num_arg(&args, 0, $name)?))])
                }),
            );
        }};
    }
    unary!("floor", |x| x.floor());
    unary!("ceil", |x| x.ceil());
    unary!("abs", |x| x.abs());
    unary!("sqrt", |x| x.sqrt());
    unary!("sin", |x| x.sin());
    unary!("cos", |x| x.cos());
    unary!("exp", |x| x.exp());
    unary!("log", |x| x.ln());
    {
        let mut mb = m.borrow_mut();
        mb.set_str("pi", LuaValue::Number(std::f64::consts::PI));
        mb.set_str("huge", LuaValue::Number(f64::INFINITY));
        mb.set_str(
            "pow",
            native("pow", |_, args| {
                Ok(vec![LuaValue::Number(
                    num_arg(&args, 0, "pow")?.powf(num_arg(&args, 1, "pow")?),
                )])
            }),
        );
        mb.set_str(
            "fmod",
            native("fmod", |_, args| {
                Ok(vec![LuaValue::Number(
                    num_arg(&args, 0, "fmod")? % num_arg(&args, 1, "fmod")?,
                )])
            }),
        );
        mb.set_str(
            "max",
            native("max", |_, args| {
                let mut best = f64::NEG_INFINITY;
                for (i, _) in args.iter().enumerate() {
                    best = best.max(num_arg(&args, i, "max")?);
                }
                Ok(vec![LuaValue::Number(best)])
            }),
        );
        mb.set_str(
            "min",
            native("min", |_, args| {
                let mut best = f64::INFINITY;
                for (i, _) in args.iter().enumerate() {
                    best = best.min(num_arg(&args, i, "min")?);
                }
                Ok(vec![LuaValue::Number(best)])
            }),
        );
        mb.set_str(
            "random",
            native("random", |it, args| {
                // xorshift over the program's deterministic RNG state.
                let s = &mut it.ctx.exec.rng_state;
                *s ^= *s << 13;
                *s ^= *s >> 7;
                *s ^= *s << 17;
                let unit = (*s >> 11) as f64 / (1u64 << 53) as f64;
                Ok(vec![match (arg(&args, 0), arg(&args, 1)) {
                    (LuaValue::Nil, _) => LuaValue::Number(unit),
                    (LuaValue::Number(m), LuaValue::Nil) => {
                        LuaValue::Number((unit * m).floor() + 1.0)
                    }
                    (LuaValue::Number(lo), LuaValue::Number(hi)) => {
                        LuaValue::Number(lo + (unit * (hi - lo + 1.0)).floor())
                    }
                    _ => return Err(LuaError::msg("math.random: bad arguments")),
                }])
            }),
        );
        mb.set_str(
            "randomseed",
            native("randomseed", |it, args| {
                it.ctx.exec.rng_state = (num_arg(&args, 0, "randomseed")? as u64) | 0x9E37_79B9;
                Ok(vec![])
            }),
        );
    }
    interp.set_global("math", LuaValue::Table(m));
}

fn install_string(interp: &mut Interp) {
    let s = new_table();
    {
        let mut sb = s.borrow_mut();
        sb.set_str(
            "format",
            native("format", |it, args| {
                let fmt = str_arg(&args, 0, "format")?;
                let mut out = String::new();
                let mut ai = 1;
                let bytes = fmt.as_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    if bytes[i] != b'%' {
                        out.push(bytes[i] as char);
                        i += 1;
                        continue;
                    }
                    i += 1;
                    let mut spec = String::new();
                    while i < bytes.len()
                        && (bytes[i].is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'-')
                    {
                        spec.push(bytes[i] as char);
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(LuaError::msg("string.format: trailing %"));
                    }
                    let conv = bytes[i];
                    i += 1;
                    let prec: Option<usize> = spec.split('.').nth(1).and_then(|p| p.parse().ok());
                    let width: Option<usize> = spec
                        .trim_start_matches('-')
                        .split('.')
                        .next()
                        .and_then(|w| if w.is_empty() { None } else { w.parse().ok() });
                    let rendered = match conv {
                        b'%' => "%".to_string(),
                        b'd' | b'i' => format!("{}", num_arg(&args, ai, "format")? as i64),
                        b'u' => format!("{}", num_arg(&args, ai, "format")? as u64),
                        b'x' => format!("{:x}", num_arg(&args, ai, "format")? as i64),
                        b'c' => ((num_arg(&args, ai, "format")? as u8) as char).to_string(),
                        b'f' | b'g' | b'e' => {
                            let v = num_arg(&args, ai, "format")?;
                            match (conv, prec) {
                                (b'f', Some(p)) => format!("{v:.p$}"),
                                (b'f', None) => format!("{v:.6}"),
                                (b'e', _) => format!("{v:e}"),
                                (_, Some(p)) => format!("{v:.p$}"),
                                (_, None) => format!("{v}"),
                            }
                        }
                        b's' => it.tostring_value(&arg(&args, ai), Span::synthetic())?,
                        b'q' => format!(
                            "{:?}",
                            it.tostring_value(&arg(&args, ai), Span::synthetic())?
                        ),
                        other => {
                            return Err(LuaError::msg(format!(
                                "string.format: unsupported conversion '%{}'",
                                other as char
                            )))
                        }
                    };
                    if conv != b'%' {
                        ai += 1;
                    }
                    if let Some(w) = width {
                        for _ in rendered.len()..w {
                            out.push(' ');
                        }
                    }
                    out.push_str(&rendered);
                }
                Ok(vec![LuaValue::str(out)])
            }),
        );
        sb.set_str(
            "rep",
            native("rep", |_, args| {
                let s = str_arg(&args, 0, "rep")?;
                let n = num_arg(&args, 1, "rep")? as usize;
                Ok(vec![LuaValue::str(s.repeat(n))])
            }),
        );
        sb.set_str(
            "sub",
            native("sub", |_, args| {
                let s = str_arg(&args, 0, "sub")?;
                let len = s.len() as i64;
                let norm = |v: i64| -> i64 {
                    if v < 0 {
                        (len + v + 1).max(1)
                    } else {
                        v.max(1)
                    }
                };
                let i = norm(num_arg(&args, 1, "sub")? as i64);
                let j = match arg(&args, 2) {
                    LuaValue::Nil => len,
                    v => {
                        let raw = v.as_number().unwrap_or(-1.0) as i64;
                        if raw < 0 {
                            len + raw + 1
                        } else {
                            raw.min(len)
                        }
                    }
                };
                if i > j {
                    return Ok(vec![LuaValue::str("")]);
                }
                Ok(vec![LuaValue::str(&s[(i - 1) as usize..j as usize])])
            }),
        );
        sb.set_str(
            "len",
            native("len", |_, args| {
                Ok(vec![LuaValue::Number(
                    str_arg(&args, 0, "len")?.len() as f64
                )])
            }),
        );
        sb.set_str(
            "upper",
            native("upper", |_, args| {
                Ok(vec![LuaValue::str(
                    str_arg(&args, 0, "upper")?.to_uppercase(),
                )])
            }),
        );
        sb.set_str(
            "lower",
            native("lower", |_, args| {
                Ok(vec![LuaValue::str(
                    str_arg(&args, 0, "lower")?.to_lowercase(),
                )])
            }),
        );
        sb.set_str(
            "find",
            native("find", |_, args| {
                let s = str_arg(&args, 0, "find")?;
                let pat = str_arg(&args, 1, "find")?;
                Ok(match s.find(&*pat) {
                    Some(pos) => vec![
                        LuaValue::Number((pos + 1) as f64),
                        LuaValue::Number((pos + pat.len()) as f64),
                    ],
                    None => vec![LuaValue::Nil],
                })
            }),
        );
        sb.set_str(
            "byte",
            native("byte", |_, args| {
                let s = str_arg(&args, 0, "byte")?;
                let i = arg(&args, 1).as_number().unwrap_or(1.0) as usize;
                Ok(vec![s
                    .as_bytes()
                    .get(i.saturating_sub(1))
                    .map(|b| LuaValue::Number(*b as f64))
                    .unwrap_or(LuaValue::Nil)])
            }),
        );
        sb.set_str(
            "char",
            native("char", |_, args| {
                let mut out = String::new();
                for (i, _) in args.iter().enumerate() {
                    out.push(num_arg(&args, i, "char")? as u8 as char);
                }
                Ok(vec![LuaValue::str(out)])
            }),
        );
    }
    interp.set_global("string", LuaValue::Table(s));
}

fn install_table_lib(interp: &mut Interp) {
    let t = new_table();
    {
        let mut tb = t.borrow_mut();
        tb.set_str(
            "insert",
            native("insert", |_, args| {
                let LuaValue::Table(t) = arg(&args, 0) else {
                    return Err(LuaError::msg("table.insert: table expected"));
                };
                if args.len() >= 3 {
                    let pos = num_arg(&args, 1, "insert")? as usize;
                    t.borrow_mut().insert_at(pos, arg(&args, 2));
                } else {
                    t.borrow_mut().push(arg(&args, 1));
                }
                Ok(vec![])
            }),
        );
        tb.set_str(
            "remove",
            native("remove", |_, args| {
                let LuaValue::Table(t) = arg(&args, 0) else {
                    return Err(LuaError::msg("table.remove: table expected"));
                };
                let len = t.borrow().len();
                let pos = match arg(&args, 1) {
                    LuaValue::Nil => len,
                    v => v.as_number().unwrap_or(0.0) as usize,
                };
                let removed = t.borrow_mut().remove_at(pos);
                Ok(vec![removed])
            }),
        );
        tb.set_str(
            "concat",
            native("concat", |it, args| {
                let LuaValue::Table(t) = arg(&args, 0) else {
                    return Err(LuaError::msg("table.concat: table expected"));
                };
                let sep = match arg(&args, 1) {
                    LuaValue::Str(s) => s.to_string(),
                    _ => String::new(),
                };
                let items: Vec<LuaValue> = t.borrow().iter_array().cloned().collect();
                let mut out = String::new();
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(&sep);
                    }
                    out.push_str(&it.tostring_value(v, Span::synthetic())?);
                }
                Ok(vec![LuaValue::str(out)])
            }),
        );
        tb.set_str(
            "sort",
            native("sort", |it, args| {
                let LuaValue::Table(t) = arg(&args, 0) else {
                    return Err(LuaError::msg("table.sort: table expected"));
                };
                let cmp = arg(&args, 1);
                let mut items: Vec<LuaValue> = t.borrow().iter_array().cloned().collect();
                // Insertion sort so the comparator can be a Lua function.
                for i in 1..items.len() {
                    let mut j = i;
                    while j > 0 {
                        let less = match &cmp {
                            LuaValue::Nil => match (&items[j], &items[j - 1]) {
                                (LuaValue::Number(a), LuaValue::Number(b)) => a < b,
                                (LuaValue::Str(a), LuaValue::Str(b)) => a < b,
                                _ => false,
                            },
                            f => it
                                .call_value(
                                    f.clone(),
                                    vec![items[j].clone(), items[j - 1].clone()],
                                    Span::synthetic(),
                                )?
                                .first()
                                .map(|v| v.truthy())
                                .unwrap_or(false),
                        };
                        if less {
                            items.swap(j, j - 1);
                            j -= 1;
                        } else {
                            break;
                        }
                    }
                }
                let mut tb = t.borrow_mut();
                for (i, v) in items.into_iter().enumerate() {
                    tb.set(LuaValue::Number((i + 1) as f64), v);
                }
                Ok(vec![])
            }),
        );
    }
    interp.set_global("table", LuaValue::Table(t));
}

fn install_os_io(interp: &mut Interp) {
    let os = new_table();
    os.borrow_mut().set_str(
        "clock",
        native("clock", |it, _| {
            Ok(vec![LuaValue::Number(
                it.ctx.exec.epoch.elapsed().as_secs_f64(),
            )])
        }),
    );
    os.borrow_mut().set_str(
        "time",
        native("time", |_, _| {
            Ok(vec![LuaValue::Number(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs_f64())
                    .unwrap_or(0.0),
            )])
        }),
    );
    interp.set_global("os", LuaValue::Table(os));

    let io = new_table();
    io.borrow_mut().set_str(
        "write",
        native("write", |it, args| {
            let mut out = String::new();
            for a in &args {
                out.push_str(&it.tostring_value(a, Span::synthetic())?);
            }
            it.write_output(&out);
            Ok(vec![])
        }),
    );
    interp.set_global("io", LuaValue::Table(io));
}

// ---------------------------------------------------------------------------
// terralib
// ---------------------------------------------------------------------------

/// Attaches the list metatable (`:insert`, `:map`, `:insertall`) to a table,
/// making it a `terralib.newlist` list.
pub fn attach_list_meta(interp: &mut Interp, t: &TableRef) {
    if let LuaValue::Table(meta) = interp.global("__terra_list_meta") {
        t.borrow_mut().meta = Some(meta);
    }
}

fn install_list_meta(interp: &mut Interp) {
    let methods = new_table();
    {
        let mut mb = methods.borrow_mut();
        mb.set_str(
            "insert",
            native("insert", |_, args| {
                let LuaValue::Table(t) = arg(&args, 0) else {
                    return Err(LuaError::msg("list:insert: list expected"));
                };
                if args.len() >= 3 {
                    let pos = num_arg(&args, 1, "insert")? as usize;
                    t.borrow_mut().insert_at(pos, arg(&args, 2));
                } else {
                    t.borrow_mut().push(arg(&args, 1));
                }
                Ok(vec![])
            }),
        );
        mb.set_str(
            "insertall",
            native("insertall", |_, args| {
                let (LuaValue::Table(t), LuaValue::Table(other)) = (arg(&args, 0), arg(&args, 1))
                else {
                    return Err(LuaError::msg("list:insertall: two lists expected"));
                };
                let items: Vec<LuaValue> = other.borrow().iter_array().cloned().collect();
                for v in items {
                    t.borrow_mut().push(v);
                }
                Ok(vec![])
            }),
        );
        mb.set_str(
            "map",
            native("map", |it, args| {
                let LuaValue::Table(t) = arg(&args, 0) else {
                    return Err(LuaError::msg("list:map: list expected"));
                };
                let f = arg(&args, 1);
                let items: Vec<LuaValue> = t.borrow().iter_array().cloned().collect();
                let out = new_table();
                for v in items {
                    let r = it.call_value(f.clone(), vec![v], Span::synthetic())?;
                    out.borrow_mut()
                        .push(r.into_iter().next().unwrap_or(LuaValue::Nil));
                }
                attach_list_meta(it, &out);
                Ok(vec![LuaValue::Table(out)])
            }),
        );
    }
    let meta = new_table();
    meta.borrow_mut()
        .set_str("__index", LuaValue::Table(methods));
    interp.set_global("__terra_list_meta", LuaValue::Table(meta));
}

/// Calls a Terra intrinsic directly from Lua (`std.malloc(16)` at the Lua
/// level) — a convenience the real system gets from LuaJIT's FFI.
pub fn call_intrinsic_from_lua(
    interp: &mut Interp,
    i: Intrinsic,
    args: Vec<LuaValue>,
    span: Span,
) -> EvalResult<Vec<LuaValue>> {
    let num = |k: usize| -> EvalResult<f64> {
        args.get(k)
            .and_then(|v| v.as_number())
            .ok_or_else(|| LuaError::at("intrinsic: number expected", span))
    };
    let one = |v: f64| Ok(vec![LuaValue::Number(v)]);
    match i {
        Intrinsic::Select => {
            let c = args.first().map(|v| v.truthy()).unwrap_or(false);
            Ok(vec![arg(&args, if c { 1 } else { 2 })])
        }
        Intrinsic::Min => {
            let (a, b) = (num(0)?, num(1)?);
            one(a.min(b))
        }
        Intrinsic::Max => {
            let (a, b) = (num(0)?, num(1)?);
            one(a.max(b))
        }
        Intrinsic::C(b) => match b {
            Builtin::Malloc => {
                let n = num(0)? as u64;
                one(interp.ctx.exec.memory.malloc(n) as f64)
            }
            Builtin::Free => {
                interp
                    .ctx
                    .exec
                    .memory
                    .free(num(0)? as u64)
                    .map_err(|e| LuaError::at(e.to_string(), span))?;
                Ok(vec![])
            }
            Builtin::Sqrt => one(num(0)?.sqrt()),
            Builtin::Fabs => one(num(0)?.abs()),
            Builtin::Sin => one(num(0)?.sin()),
            Builtin::Cos => one(num(0)?.cos()),
            Builtin::Exp => one(num(0)?.exp()),
            Builtin::Log => one(num(0)?.ln()),
            Builtin::Pow => one(num(0)?.powf(num(1)?)),
            Builtin::Floor => one(num(0)?.floor()),
            Builtin::Ceil => one(num(0)?.ceil()),
            Builtin::Fmod => one(num(0)? % num(1)?),
            Builtin::Clock => one(interp.ctx.exec.epoch.elapsed().as_secs_f64()),
            other => Err(LuaError::at(
                format!(
                    "C function '{}' can only be called from Terra code",
                    other.name()
                ),
                span,
            )),
        },
    }
}

fn install_terralib(interp: &mut Interp) {
    install_list_meta(interp);
    let t = new_table();
    {
        let mut tb = t.borrow_mut();
        tb.set_str(
            "includec",
            native("includec", |_, args| {
                let _header = str_arg(&args, 0, "includec")?;
                // The simulated C library: one merged namespace regardless of
                // header, mirroring what Clang+includec would produce for the
                // functions this reproduction needs.
                let out = new_table();
                let defs: &[(&str, Builtin)] = &[
                    ("malloc", Builtin::Malloc),
                    ("free", Builtin::Free),
                    ("realloc", Builtin::Realloc),
                    ("memcpy", Builtin::Memcpy),
                    ("memset", Builtin::Memset),
                    ("rand", Builtin::Rand),
                    ("srand", Builtin::Srand),
                    ("abort", Builtin::Abort),
                    ("printf", Builtin::Printf),
                    ("sqrt", Builtin::Sqrt),
                    ("sqrtf", Builtin::Sqrt),
                    ("fabs", Builtin::Fabs),
                    ("fabsf", Builtin::Fabs),
                    ("sin", Builtin::Sin),
                    ("cos", Builtin::Cos),
                    ("exp", Builtin::Exp),
                    ("log", Builtin::Log),
                    ("pow", Builtin::Pow),
                    ("powf", Builtin::Pow),
                    ("floor", Builtin::Floor),
                    ("ceil", Builtin::Ceil),
                    ("fmod", Builtin::Fmod),
                    ("fmodf", Builtin::Fmod),
                    ("clock", Builtin::Clock),
                ];
                for (name, b) in defs {
                    out.borrow_mut()
                        .set_str(name, LuaValue::Intrinsic(Intrinsic::C(*b)));
                }
                out.borrow_mut()
                    .set_str("CLOCKS_PER_SEC", LuaValue::Number(1.0));
                Ok(vec![LuaValue::Table(out)])
            }),
        );
        tb.set_str(
            "newlist",
            native("newlist", |it, args| {
                let out = new_table();
                if let LuaValue::Table(src) = arg(&args, 0) {
                    for v in src.borrow().iter_array() {
                        out.borrow_mut().push(v.clone());
                    }
                }
                attach_list_meta(it, &out);
                Ok(vec![LuaValue::Table(out)])
            }),
        );
        tb.set_str(
            "macro",
            native("macro", |_, args| {
                let f = arg(&args, 0);
                if !matches!(f, LuaValue::Function(_) | LuaValue::Native(_)) {
                    return Err(LuaError::msg("terralib.macro: function expected"));
                }
                Ok(vec![LuaValue::Macro(Rc::new(MacroData { func: f }))])
            }),
        );
        tb.set_str(
            "funcpointer",
            native("funcpointer", |it, args| {
                // terralib.funcpointer({T1, T2, ...}, Tret) -> function type
                let LuaValue::Table(params) = arg(&args, 0) else {
                    return Err(LuaError::msg(
                        "terralib.funcpointer: parameter list expected",
                    ));
                };
                let mut ptys = Vec::new();
                let items: Vec<LuaValue> = params.borrow().iter_array().cloned().collect();
                for p in items {
                    ptys.push(it.value_to_type(p, Span::synthetic())?);
                }
                let ret = match arg(&args, 1) {
                    LuaValue::Nil => Ty::Unit,
                    v => it.value_to_type(v, Span::synthetic())?,
                };
                Ok(vec![LuaValue::Type(Ty::Func(std::sync::Arc::new(
                    terra_ir::FuncTy { params: ptys, ret },
                )))])
            }),
        );
        tb.set_str("select", LuaValue::Intrinsic(Intrinsic::Select));
        tb.set_str("min", LuaValue::Intrinsic(Intrinsic::Min));
        tb.set_str("max", LuaValue::Intrinsic(Intrinsic::Max));
        tb.set_str(
            "sizeof",
            native("sizeof", |it, args| {
                let LuaValue::Type(t) = arg(&args, 0) else {
                    return Err(LuaError::msg("terralib.sizeof: terra type expected"));
                };
                if let Ty::Struct(sid) = &t {
                    it.finalize_struct(*sid, Span::synthetic())?;
                }
                Ok(vec![LuaValue::Number(t.size(&it.ctx.types) as f64)])
            }),
        );
        tb.set_str(
            "offsetof",
            native("offsetof", |it, args| {
                let LuaValue::Type(Ty::Struct(sid)) = arg(&args, 0) else {
                    return Err(LuaError::msg("terralib.offsetof: struct type expected"));
                };
                let field = str_arg(&args, 1, "offsetof")?;
                it.finalize_struct(sid, Span::synthetic())?;
                match it.ctx.types.field(sid, &field) {
                    Some((off, _)) => Ok(vec![LuaValue::Number(off as f64)]),
                    None => Err(LuaError::msg(format!("no field '{field}'"))),
                }
            }),
        );
        tb.set_str(
            "typeof",
            native("typeof", |it, args| match arg(&args, 0) {
                LuaValue::TerraFunc(id) => {
                    let sig = crate::typecheck::ensure_signature(it, id, Span::synthetic())?;
                    Ok(vec![LuaValue::Type(Ty::Func(std::sync::Arc::new(sig)))])
                }
                LuaValue::Global(g) => Ok(vec![LuaValue::Type(
                    it.ctx.globals[g.0 as usize].ty.clone(),
                )]),
                other => Err(LuaError::msg(format!(
                    "terralib.typeof: cannot type a {}",
                    other.type_name()
                ))),
            }),
        );
        tb.set_str(
            "declare",
            native("declare", |it, args| {
                let name = match arg(&args, 0) {
                    LuaValue::Str(s) => s,
                    _ => Rc::from("declared"),
                };
                let id = it.ctx.declare_func(&*name);
                Ok(vec![LuaValue::TerraFunc(id)])
            }),
        );
        tb.set_str(
            "isfunction",
            native("isfunction", |_, args| {
                Ok(vec![LuaValue::Bool(matches!(
                    arg(&args, 0),
                    LuaValue::TerraFunc(_)
                ))])
            }),
        );
        tb.set_str(
            "istype",
            native("istype", |_, args| {
                Ok(vec![LuaValue::Bool(matches!(
                    arg(&args, 0),
                    LuaValue::Type(_)
                ))])
            }),
        );
        tb.set_str(
            "isquote",
            native("isquote", |_, args| {
                Ok(vec![LuaValue::Bool(matches!(
                    arg(&args, 0),
                    LuaValue::Quote(_)
                ))])
            }),
        );
        tb.set_str(
            "issymbol",
            native("issymbol", |_, args| {
                Ok(vec![LuaValue::Bool(matches!(
                    arg(&args, 0),
                    LuaValue::Symbol(_)
                ))])
            }),
        );
        tb.set_str(
            "currenttimeinseconds",
            native("currenttimeinseconds", |it, _| {
                Ok(vec![LuaValue::Number(
                    it.ctx.exec.epoch.elapsed().as_secs_f64(),
                )])
            }),
        );
        tb.set_str(
            "require",
            native("trequire", |it, args| {
                let f = it.global("require");
                it.call_value(f, args, Span::synthetic())
            }),
        );
        tb.set_str(
            "saveobj",
            native("saveobj", |it, args| {
                let path = str_arg(&args, 0, "saveobj")?;
                let LuaValue::Table(exports) = arg(&args, 1) else {
                    return Err(LuaError::msg("terralib.saveobj: export table expected"));
                };
                // Serialize an object manifest: compiled function signatures
                // and bytecode listings (a stand-in for an ELF .o file).
                let mut out = String::from("terra-rs object file v1\n");
                for (k, v) in exports.borrow().entries() {
                    let (LuaValue::Str(name), LuaValue::TerraFunc(id)) = (&k, &v) else {
                        continue;
                    };
                    crate::typecheck::ensure_compiled(it, *id, Span::synthetic())
                        .map_err(|e| e.phase(Phase::Link))?;
                    let f = it.ctx.exec.function(*id).expect("just compiled").clone();
                    out.push_str(&format!(
                        "symbol {name} : {} ({} instructions, {} registers)\n",
                        Ty::Func(std::sync::Arc::new(f.ty.clone())),
                        f.code.len(),
                        f.nregs
                    ));
                }
                std::fs::write(&*path, out).map_err(|e| LuaError::msg(format!("saveobj: {e}")))?;
                Ok(vec![])
            }),
        );
    }
    interp.set_global("terralib", LuaValue::Table(t));
}

// ---------------------------------------------------------------------------
// perf
// ---------------------------------------------------------------------------

/// Builds a Lua table view of a [`terra_vm::trace::Profile`]. Counts are
/// exposed as Lua numbers (f64), which is exact up to 2^53 instructions.
fn profile_to_table(profile: &terra_vm::trace::Profile) -> TableRef {
    let n = |v: u64| LuaValue::Number(v as f64);
    let t = new_table();
    {
        let mut tb = t.borrow_mut();
        tb.set_str("total_instructions", n(profile.total_instructions()));

        let ops = new_table();
        {
            let mut ob = ops.borrow_mut();
            for (mnemonic, count) in &profile.ops {
                ob.set_str(mnemonic, n(*count));
            }
        }
        tb.set_str("ops", LuaValue::Table(ops));

        let funcs = new_table();
        {
            let mut fb = funcs.borrow_mut();
            for f in &profile.funcs {
                let row = new_table();
                {
                    let mut rb = row.borrow_mut();
                    rb.set_str("calls", n(f.counters.calls));
                    rb.set_str("inclusive", n(f.counters.inclusive));
                    rb.set_str("exclusive", n(f.counters.exclusive));
                }
                fb.set_str(&f.name, LuaValue::Table(row));
            }
        }
        tb.set_str("funcs", LuaValue::Table(funcs));

        let mem = new_table();
        {
            let m = &profile.mem;
            let mut mb = mem.borrow_mut();
            mb.set_str("mallocs", n(m.mallocs));
            mb.set_str("frees", n(m.frees));
            mb.set_str("peak_live_bytes", n(m.peak_live_bytes));
            mb.set_str("loads", n(m.total_loads()));
            mb.set_str("stores", n(m.total_stores()));
            mb.set_str("vec_loads", n(m.vec_loads));
            mb.set_str("vec_stores", n(m.vec_stores));
            mb.set_str("prefetches", n(m.prefetches));
        }
        tb.set_str("mem", LuaValue::Table(mem));

        let cache = new_table();
        {
            let c = &profile.cache;
            let mut cb = cache.borrow_mut();
            cb.set_str("l1_hits", n(c.l1.hits));
            cb.set_str("l1_misses", n(c.l1.misses));
            cb.set_str("l1_evictions", n(c.l1.evictions));
            cb.set_str("l1_miss_rate", LuaValue::Number(c.l1.miss_rate()));
            cb.set_str("l2_hits", n(c.l2.hits));
            cb.set_str("l2_misses", n(c.l2.misses));
            cb.set_str("l2_evictions", n(c.l2.evictions));
            cb.set_str("l2_miss_rate", LuaValue::Number(c.l2.miss_rate()));
            cb.set_str("prefetch_useful", n(c.prefetch_useful));
            cb.set_str("prefetch_late", n(c.prefetch_late));
            cb.set_str("prefetch_useless", n(c.prefetch_useless));
        }
        tb.set_str("cache", LuaValue::Table(cache));

        let heap = new_table();
        {
            let h = &profile.heap;
            let mut hb = heap.borrow_mut();
            hb.set_str("sites", n(h.sites.len() as u64));
            hb.set_str("live_bytes", n(h.live_bytes));
            hb.set_str("peak_live_bytes", n(h.peak_live_bytes));
            hb.set_str("leaked_allocs", n(h.leaked_allocs()));
            hb.set_str("leaked_bytes", n(h.leaked_bytes()));
        }
        tb.set_str("heap", LuaValue::Table(heap));

        let samples = new_table();
        {
            let s = &profile.samples;
            let mut sb = samples.borrow_mut();
            sb.set_str("interval", n(s.interval));
            sb.set_str("total", n(s.total));
        }
        tb.set_str("samples", LuaValue::Table(samples));
    }
    t
}

/// The `perf` table: a Lua-visible view of the VM's deterministic
/// instruction and memory counters, so scripts (notably autotuners) can rank
/// kernel variants without relying on wall-clock noise.
fn install_perf(interp: &mut Interp) {
    let t = new_table();
    {
        let mut tb = t.borrow_mut();
        tb.set_str(
            "enable",
            native("perf.enable", |it, _args| {
                it.ctx.exec.set_profile(true);
                Ok(vec![])
            }),
        );
        tb.set_str(
            "disable",
            native("perf.disable", |it, _args| {
                it.ctx.exec.set_profile(false);
                Ok(vec![])
            }),
        );
        tb.set_str(
            "enabled",
            native("perf.enabled", |it, _args| {
                Ok(vec![LuaValue::Bool(it.ctx.exec.trace.enabled())])
            }),
        );
        tb.set_str(
            "reset",
            native("perf.reset", |it, _args| {
                it.ctx.exec.reset_profile();
                Ok(vec![])
            }),
        );
        tb.set_str(
            "counters",
            native("perf.counters", |it, _args| {
                if !it.ctx.exec.trace.enabled() {
                    return Err(LuaError::msg(
                        "perf.counters: profiling not enabled \
                         (call perf.enable() or run with --profile)",
                    ));
                }
                let profile = it.ctx.exec.profile();
                Ok(vec![LuaValue::Table(profile_to_table(&profile))])
            }),
        );
        tb.set_str(
            "report",
            native("perf.report", |it, _args| {
                if !it.ctx.exec.trace.enabled() {
                    return Err(LuaError::msg(
                        "perf.report: profiling not enabled \
                         (call perf.enable() or run with --profile)",
                    ));
                }
                let profile = it.ctx.exec.profile();
                Ok(vec![LuaValue::Str(Rc::from(
                    profile.render_counters().as_str(),
                ))])
            }),
        );
        tb.set_str(
            "parallel",
            native("perf.parallel", |it, _args| {
                if !it.ctx.exec.trace.enabled() {
                    return Err(LuaError::msg(
                        "perf.parallel: profiling not enabled \
                         (call perf.enable() or run with --profile)",
                    ));
                }
                // One row per par.for site, array-indexed in first-execution
                // order, carrying the derived imbalance/efficiency metrics so
                // autotuners can rank chunkings without re-deriving them.
                let n = |v: u64| LuaValue::Number(v as f64);
                let program_total = it.ctx.exec.profile().total_instructions();
                let out = new_table();
                {
                    let mut ob = out.borrow_mut();
                    for (i, s) in it.ctx.exec.trace.parallel().sites.iter().enumerate() {
                        let row = new_table();
                        {
                            let mut rb = row.borrow_mut();
                            rb.set_str("func", LuaValue::str(s.function.as_str()));
                            rb.set_str("line", n(s.line as u64));
                            rb.set_str("provenance", LuaValue::str(s.provenance.as_str()));
                            rb.set_str("kernel", LuaValue::str(s.kernel.as_str()));
                            rb.set_str("threads", n(s.threads));
                            rb.set_str("invocations", n(s.invocations));
                            rb.set_str("chunks", n(s.chunks.len() as u64));
                            rb.set_str("iterations", n(s.iterations));
                            rb.set_str("instructions", n(s.total_instructions()));
                            let (min, median, max) = s.chunk_instruction_spread();
                            rb.set_str("min_chunk_instructions", n(min));
                            rb.set_str("median_chunk_instructions", n(median));
                            rb.set_str("max_chunk_instructions", n(max));
                            rb.set_str("imbalance", LuaValue::Number(s.imbalance()));
                            rb.set_str("efficiency", LuaValue::Number(s.efficiency()));
                            rb.set_str(
                                "critical_chunk",
                                n(s.critical_chunk().map(|c| c.chunk).unwrap_or(0)),
                            );
                            rb.set_str(
                                "serial_fraction",
                                LuaValue::Number(s.serial_fraction(program_total)),
                            );
                        }
                        ob.set(LuaValue::Number((i + 1) as f64), LuaValue::Table(row));
                    }
                }
                Ok(vec![LuaValue::Table(out)])
            }),
        );
        tb.set_str(
            "remarks",
            native("perf.remarks", |it, args| {
                // Optional filter: perf.remarks("inline"). Remarks are
                // collected unconditionally, so this works without
                // perf.enable().
                let filter = match arg(&args, 0) {
                    LuaValue::Str(s) => Some(s),
                    _ => None,
                };
                let out = new_table();
                {
                    let mut ob = out.borrow_mut();
                    let mut i = 1.0;
                    for r in it.ctx.exec.trace.remarks() {
                        if filter.as_deref().is_some_and(|p| p != r.pass) {
                            continue;
                        }
                        let row = new_table();
                        {
                            let mut rb = row.borrow_mut();
                            rb.set_str("pass", LuaValue::str(r.pass.as_str()));
                            rb.set_str("kind", LuaValue::str(r.kind.as_str()));
                            rb.set_str("func", LuaValue::str(r.function.as_str()));
                            rb.set_str("line", LuaValue::Number(r.line as f64));
                            rb.set_str("provenance", LuaValue::str(r.provenance.as_str()));
                            rb.set_str("message", LuaValue::str(r.message.as_str()));
                        }
                        ob.set(LuaValue::Number(i), LuaValue::Table(row));
                        i += 1.0;
                    }
                }
                Ok(vec![LuaValue::Table(out)])
            }),
        );
    }
    interp.set_global("perf", LuaValue::Table(t));
}
