//! Lua values, including the Terra entities that are first-class in the
//! meta-language.
//!
//! The paper's central design point is that Terra functions, types, quotes,
//! symbols, and globals are ordinary Lua values ([`LuaValue`]); staging is
//! just Lua evaluation producing these values and splicing them into Terra
//! code.

use crate::spec::SpecQuote;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use terra_ir::{FuncId, GlobalId, Ty};
use terra_syntax::{LuaFunctionBody, Name};

/// Shared handle to a mutable Lua table.
pub type TableRef = Rc<RefCell<Table>>;

/// A unique Terra symbol (the formal semantics' renamed variable `x̂`;
/// user-created via `symbol()`, the paper's gensym).
#[derive(Debug)]
pub struct SymbolData {
    /// Globally unique id.
    pub id: u64,
    /// Display name (the original identifier, for diagnostics).
    pub name: Name,
    /// Optional type carried by user-created symbols (`symbol(ty, name)`),
    /// used when a symbol declares a variable or parameter.
    pub ty: RefCell<Option<Ty>>,
}

/// Shared handle to a symbol.
pub type SymbolRef = Rc<SymbolData>;

/// A Lua closure: function body plus captured environment.
pub struct LuaClosure {
    /// The parsed function.
    pub body: Rc<LuaFunctionBody>,
    /// Captured lexical environment.
    pub env: crate::env::Env,
    /// Name hint for diagnostics.
    pub name: RefCell<Name>,
}

impl fmt::Debug for LuaClosure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LuaClosure({})", self.name.borrow())
    }
}

/// Signature of a native (Rust-implemented) Lua function.
pub type NativeFn =
    fn(&mut crate::interp::Interp, Vec<LuaValue>) -> Result<Vec<LuaValue>, crate::error::LuaError>;

/// A named native function.
#[derive(Clone)]
pub struct Builtin {
    /// Name shown by `tostring` and error messages.
    pub name: &'static str,
    /// Implementation.
    pub f: NativeFn,
}

impl fmt::Debug for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "builtin: {}", self.name)
    }
}

/// A macro: a Lua function run during specialization with its Terra
/// arguments passed as quotes; it must return a quote to splice
/// (`terralib.macro` in the real system).
#[derive(Debug)]
pub struct MacroData {
    /// The Lua function to invoke.
    pub func: LuaValue,
}

/// A Terra-level intrinsic: callable from Terra code with runtime arguments,
/// typed specially by the typechecker. This is how the simulated libc
/// (`terralib.includec`) exposes C functions, including variadic `printf`
/// and the `prefetch` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// A simulated C library function / VM builtin.
    C(terra_ir::Builtin),
    /// `terralib.select(cond, a, b)` — branch-free conditional.
    Select,
    /// `terralib.min(a, b)` — works on scalars and vectors (lane-wise).
    Min,
    /// `terralib.max(a, b)` — works on scalars and vectors (lane-wise).
    Max,
}

/// A Lua value.
#[derive(Clone, Debug)]
pub enum LuaValue {
    /// `nil`
    Nil,
    /// Booleans.
    Bool(bool),
    /// All Lua numbers are doubles.
    Number(f64),
    /// Immutable interned-ish strings.
    Str(Name),
    /// Mutable shared tables.
    Table(TableRef),
    /// Lua closures.
    Function(Rc<LuaClosure>),
    /// Native functions.
    Native(Rc<Builtin>),
    /// A Terra function (possibly still only declared).
    TerraFunc(FuncId),
    /// A Terra type.
    Type(Ty),
    /// A specialized quotation.
    Quote(Rc<SpecQuote>),
    /// A Terra symbol.
    Symbol(SymbolRef),
    /// A Terra global variable.
    Global(GlobalId),
    /// A staging macro.
    Macro(Rc<MacroData>),
    /// A Terra intrinsic (simulated C function).
    Intrinsic(Intrinsic),
}

impl LuaValue {
    /// Lua truthiness: everything except `nil` and `false` is true.
    pub fn truthy(&self) -> bool {
        !matches!(self, LuaValue::Nil | LuaValue::Bool(false))
    }

    /// The `type()` of the value. Terra entities report the names the real
    /// system uses (`terrafunction`, `terratype`, `quote`, `symbol`).
    pub fn type_name(&self) -> &'static str {
        match self {
            LuaValue::Nil => "nil",
            LuaValue::Bool(_) => "boolean",
            LuaValue::Number(_) => "number",
            LuaValue::Str(_) => "string",
            LuaValue::Table(_) => "table",
            LuaValue::Function(_) | LuaValue::Native(_) => "function",
            LuaValue::TerraFunc(_) => "terrafunction",
            LuaValue::Type(_) => "terratype",
            LuaValue::Quote(_) => "quote",
            LuaValue::Symbol(_) => "symbol",
            LuaValue::Global(_) => "terraglobal",
            LuaValue::Macro(_) => "terramacro",
            LuaValue::Intrinsic(_) => "terrafunction",
        }
    }

    /// Raw equality (Lua `==` without metamethods).
    pub fn raw_eq(&self, other: &LuaValue) -> bool {
        match (self, other) {
            (LuaValue::Nil, LuaValue::Nil) => true,
            (LuaValue::Bool(a), LuaValue::Bool(b)) => a == b,
            (LuaValue::Number(a), LuaValue::Number(b)) => a == b,
            (LuaValue::Str(a), LuaValue::Str(b)) => a == b,
            (LuaValue::Table(a), LuaValue::Table(b)) => Rc::ptr_eq(a, b),
            (LuaValue::Function(a), LuaValue::Function(b)) => Rc::ptr_eq(a, b),
            (LuaValue::Native(a), LuaValue::Native(b)) => Rc::ptr_eq(a, b),
            (LuaValue::TerraFunc(a), LuaValue::TerraFunc(b)) => a == b,
            (LuaValue::Type(a), LuaValue::Type(b)) => a == b,
            (LuaValue::Quote(a), LuaValue::Quote(b)) => Rc::ptr_eq(a, b),
            (LuaValue::Symbol(a), LuaValue::Symbol(b)) => Rc::ptr_eq(a, b),
            (LuaValue::Global(a), LuaValue::Global(b)) => a == b,
            (LuaValue::Intrinsic(a), LuaValue::Intrinsic(b)) => a == b,
            _ => false,
        }
    }

    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> LuaValue {
        LuaValue::Str(Rc::from(s.as_ref()))
    }

    /// Creates a fresh empty table value.
    pub fn table() -> LuaValue {
        LuaValue::Table(Rc::new(RefCell::new(Table::new())))
    }

    /// The number inside, if this is a number or numeric string.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            LuaValue::Number(n) => Some(*n),
            LuaValue::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }
}

/// A key in a Lua table's hash part. `NaN` keys are rejected at insert.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LuaKey {
    /// String key.
    Str(Name),
    /// Number key (stored as bits; normalized so `-0.0 == 0.0`).
    Num(u64),
    /// Boolean key.
    Bool(bool),
    /// Identity key for reference values (tables, functions, symbols…).
    Ref(usize),
}

impl LuaKey {
    /// Converts a value to a key, if the value can be a key.
    pub fn from_value(v: &LuaValue) -> Option<LuaKey> {
        Some(match v {
            LuaValue::Str(s) => LuaKey::Str(s.clone()),
            LuaValue::Number(n) => {
                if n.is_nan() {
                    return None;
                }
                LuaKey::Num((if *n == 0.0 { 0.0 } else { *n }).to_bits())
            }
            LuaValue::Bool(b) => LuaKey::Bool(*b),
            LuaValue::Table(t) => LuaKey::Ref(Rc::as_ptr(t) as usize),
            LuaValue::Function(f) => LuaKey::Ref(Rc::as_ptr(f) as usize),
            LuaValue::Native(f) => LuaKey::Ref(Rc::as_ptr(f) as usize),
            LuaValue::Symbol(s) => LuaKey::Ref(Rc::as_ptr(s) as usize),
            LuaValue::Quote(q) => LuaKey::Ref(Rc::as_ptr(q) as usize),
            LuaValue::TerraFunc(id) => LuaKey::Ref(0x1000_0000 + id.0 as usize),
            LuaValue::Global(id) => LuaKey::Ref(0x2000_0000 + id.0 as usize),
            LuaValue::Type(_) | LuaValue::Macro(_) | LuaValue::Intrinsic(_) | LuaValue::Nil => {
                return None
            }
        })
    }
}

/// A Lua table: array part (1-based) + hash part + optional metatable.
#[derive(Debug, Default)]
pub struct Table {
    arr: Vec<LuaValue>,
    map: HashMap<LuaKey, LuaValue>,
    /// Keys that cannot live in `map` (currently Terra types) as association
    /// pairs.
    assoc: Vec<(LuaValue, LuaValue)>,
    /// The metatable, if set.
    pub meta: Option<TableRef>,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Raw get (no metamethods).
    pub fn get(&self, key: &LuaValue) -> LuaValue {
        if let LuaValue::Number(n) = key {
            let i = *n as i64;
            if i as f64 == *n && i >= 1 && (i as usize) <= self.arr.len() {
                return self.arr[i as usize - 1].clone();
            }
        }
        if let Some(k) = LuaKey::from_value(key) {
            if let Some(v) = self.map.get(&k) {
                return v.clone();
            }
        }
        for (k, v) in &self.assoc {
            if k.raw_eq(key) {
                return v.clone();
            }
        }
        LuaValue::Nil
    }

    /// Convenience string-keyed get.
    pub fn get_str(&self, key: &str) -> LuaValue {
        self.map
            .get(&LuaKey::Str(Rc::from(key)))
            .cloned()
            .unwrap_or(LuaValue::Nil)
    }

    /// Raw set (no metamethods).
    pub fn set(&mut self, key: LuaValue, value: LuaValue) {
        if let LuaValue::Number(n) = key {
            let i = n as i64;
            if i as f64 == n && i >= 1 {
                let idx = i as usize;
                if idx <= self.arr.len() {
                    if matches!(value, LuaValue::Nil) && idx == self.arr.len() {
                        self.arr.pop();
                        // Trim trailing nils.
                        while matches!(self.arr.last(), Some(LuaValue::Nil)) {
                            self.arr.pop();
                        }
                    } else {
                        self.arr[idx - 1] = value;
                    }
                    return;
                }
                if idx == self.arr.len() + 1 {
                    if !matches!(value, LuaValue::Nil) {
                        self.arr.push(value);
                        // Absorb any following keys from the hash part.
                        loop {
                            let next = LuaKey::Num(((self.arr.len() + 1) as f64).to_bits());
                            match self.map.remove(&next) {
                                Some(v) => self.arr.push(v),
                                None => break,
                            }
                        }
                    }
                    return;
                }
            }
        }
        match LuaKey::from_value(&key) {
            Some(k) => {
                if matches!(value, LuaValue::Nil) {
                    self.map.remove(&k);
                } else {
                    self.map.insert(k, value);
                }
            }
            None => {
                if let Some(slot) = self.assoc.iter_mut().find(|(k, _)| k.raw_eq(&key)) {
                    slot.1 = value;
                } else if !matches!(value, LuaValue::Nil) {
                    self.assoc.push((key, value));
                }
            }
        }
    }

    /// Convenience string-keyed set.
    pub fn set_str(&mut self, key: &str, value: LuaValue) {
        self.set(LuaValue::str(key), value);
    }

    /// The border `#t` (length of the array part).
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// Whether both parts are empty.
    pub fn is_empty(&self) -> bool {
        self.arr.is_empty() && self.map.is_empty() && self.assoc.is_empty()
    }

    /// Iterates the array part.
    pub fn iter_array(&self) -> impl Iterator<Item = &LuaValue> {
        self.arr.iter()
    }

    /// Appends to the array part.
    pub fn push(&mut self, v: LuaValue) {
        self.arr.push(v);
    }

    /// Inserts at a 1-based position, shifting later elements.
    pub fn insert_at(&mut self, pos: usize, v: LuaValue) {
        let idx = pos.saturating_sub(1).min(self.arr.len());
        self.arr.insert(idx, v);
    }

    /// Removes and returns the element at a 1-based position.
    pub fn remove_at(&mut self, pos: usize) -> LuaValue {
        if pos >= 1 && pos <= self.arr.len() {
            self.arr.remove(pos - 1)
        } else {
            LuaValue::Nil
        }
    }

    /// Snapshot of all key/value pairs (for `pairs`).
    pub fn entries(&self) -> Vec<(LuaValue, LuaValue)> {
        let mut out = Vec::with_capacity(self.arr.len() + self.map.len());
        for (i, v) in self.arr.iter().enumerate() {
            out.push((LuaValue::Number((i + 1) as f64), v.clone()));
        }
        for (k, v) in &self.map {
            let key = match k {
                LuaKey::Str(s) => LuaValue::Str(s.clone()),
                LuaKey::Num(bits) => LuaValue::Number(f64::from_bits(*bits)),
                LuaKey::Bool(b) => LuaValue::Bool(*b),
                LuaKey::Ref(_) => continue, // reference keys unreported in pairs snapshot
            };
            out.push((key, v.clone()));
        }
        for (k, v) in &self.assoc {
            out.push((k.clone(), v.clone()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!LuaValue::Nil.truthy());
        assert!(!LuaValue::Bool(false).truthy());
        assert!(LuaValue::Number(0.0).truthy());
        assert!(LuaValue::str("").truthy());
    }

    #[test]
    fn table_array_part() {
        let mut t = Table::new();
        t.set(LuaValue::Number(1.0), LuaValue::Number(10.0));
        t.set(LuaValue::Number(2.0), LuaValue::Number(20.0));
        assert_eq!(t.len(), 2);
        assert!(matches!(t.get(&LuaValue::Number(2.0)), LuaValue::Number(n) if n == 20.0));
        // Setting 4 before 3 goes to hash part, then is absorbed.
        t.set(LuaValue::Number(4.0), LuaValue::Number(40.0));
        assert_eq!(t.len(), 2);
        t.set(LuaValue::Number(3.0), LuaValue::Number(30.0));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn table_hash_part_and_nil_removal() {
        let mut t = Table::new();
        t.set_str("x", LuaValue::Number(1.0));
        assert!(matches!(t.get_str("x"), LuaValue::Number(_)));
        t.set_str("x", LuaValue::Nil);
        assert!(matches!(t.get_str("x"), LuaValue::Nil));
    }

    #[test]
    fn type_values_as_keys() {
        // Terra types can be table keys via the assoc list (used by DSLs to
        // memoize parametric types).
        let mut t = Table::new();
        t.set(LuaValue::Type(Ty::INT), LuaValue::Number(1.0));
        t.set(LuaValue::Type(Ty::F64), LuaValue::Number(2.0));
        assert!(matches!(t.get(&LuaValue::Type(Ty::INT)), LuaValue::Number(n) if n == 1.0));
        t.set(LuaValue::Type(Ty::INT), LuaValue::Number(3.0));
        assert!(matches!(t.get(&LuaValue::Type(Ty::INT)), LuaValue::Number(n) if n == 3.0));
    }

    #[test]
    fn raw_equality() {
        let t1 = LuaValue::table();
        let t2 = t1.clone();
        let t3 = LuaValue::table();
        assert!(t1.raw_eq(&t2));
        assert!(!t1.raw_eq(&t3));
        assert!(LuaValue::Type(Ty::INT).raw_eq(&LuaValue::Type(Ty::INT)));
        assert!(!LuaValue::Number(1.0).raw_eq(&LuaValue::str("1")));
    }

    #[test]
    fn list_helpers() {
        let mut t = Table::new();
        t.push(LuaValue::Number(1.0));
        t.push(LuaValue::Number(3.0));
        t.insert_at(2, LuaValue::Number(2.0));
        assert_eq!(t.len(), 3);
        assert!(matches!(t.remove_at(1), LuaValue::Number(n) if n == 1.0));
        assert_eq!(t.len(), 2);
    }
}
