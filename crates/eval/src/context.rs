//! The staging context: everything shared between Lua evaluation, Terra
//! specialization, typechecking, and execution.
//!
//! This is the concrete realization of the stores in the paper's Terra Core:
//! the function store `F` (here [`terra_vm::Program`]'s function table plus
//! per-function staging metadata), the type registry, globals, and the
//! symbol generator that implements hygiene.

use crate::spec::SpecFunc;
use crate::value::{SymbolData, SymbolRef, Table, TableRef};
use std::cell::RefCell;
use std::rc::Rc;
use terra_ir::{FuncId, FuncTy, GlobalId, StructId, Ty, TypeRegistry};
use terra_syntax::Name;
use terra_vm::ExecutionContext;

/// Staging metadata for one Terra function.
#[derive(Debug)]
pub struct FuncMeta {
    /// Function name (diagnostics).
    pub name: Rc<str>,
    /// The eagerly-specialized body; `None` while only declared.
    pub spec: Option<Rc<SpecFunc>>,
    /// Signature, cached by the first (lazy) typecheck.
    pub sig: Option<FuncTy>,
    /// Marker for in-progress signature inference (recursion detection).
    pub checking: bool,
    /// Lowered IR, cached between inference and compilation.
    pub ir: Option<terra_ir::IrFunction>,
    /// Terra functions this function references (the connected component
    /// edge set used for lazy linking, paper Fig. 4).
    pub deps: Vec<FuncId>,
}

/// A Terra global variable.
#[derive(Debug, Clone)]
pub struct GlobalMeta {
    /// Value type.
    pub ty: Ty,
    /// Absolute address of the cell in program memory.
    pub addr: u64,
    /// Name (diagnostics).
    pub name: Rc<str>,
}

/// Reflection tables attached to a struct type (paper §4.1 "Mechanisms for
/// type reflection"): `entries` describes the layout and may be mutated
/// until first use; `methods` maps names to Terra functions; `metamethods`
/// holds `__cast`, `__finalizelayout`, etc.
#[derive(Debug, Clone)]
pub struct StructMeta {
    /// Layout entries: a list of `{field=…, type=…}` tables.
    pub entries: TableRef,
    /// Method table.
    pub methods: TableRef,
    /// Metamethod table.
    pub metamethods: TableRef,
}

/// Shared state of a Lua-Terra session.
#[derive(Debug)]
pub struct Context {
    /// Struct layouts.
    pub types: TypeRegistry,
    /// The execution context: compiled code (shared, immutable
    /// [`terra_vm::Program`]) plus all mutable run state — linear memory,
    /// registers, call stack, and profile counters.
    pub exec: ExecutionContext,
    /// Per-function staging metadata, indexed by [`FuncId`].
    pub funcs: Vec<FuncMeta>,
    /// Globals, indexed by [`GlobalId`].
    pub globals: Vec<GlobalMeta>,
    /// Reflection tables, indexed by [`StructId`].
    pub structs: Vec<StructMeta>,
    next_symbol: u64,
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Self {
        Context {
            types: TypeRegistry::new(),
            exec: ExecutionContext::new(),
            funcs: Vec::new(),
            globals: Vec::new(),
            structs: Vec::new(),
            next_symbol: 0,
        }
    }

    /// Generates a fresh symbol (hygienic rename or user `symbol()`).
    pub fn fresh_symbol(&mut self, name: impl Into<Name>, ty: Option<Ty>) -> SymbolRef {
        self.next_symbol += 1;
        Rc::new(SymbolData {
            id: self.next_symbol,
            name: name.into(),
            ty: RefCell::new(ty),
        })
    }

    /// Declares a Terra function (`tdecl`): allocates its id.
    pub fn declare_func(&mut self, name: impl Into<Rc<str>>) -> FuncId {
        let name = name.into();
        let id = self.exec.declare(&*name);
        self.funcs.push(FuncMeta {
            name,
            spec: None,
            sig: None,
            checking: false,
            ir: None,
            deps: Vec::new(),
        });
        id
    }

    /// Attaches a specialized body to a declared function. Returns `false`
    /// if the function already has a definition (definitions are
    /// write-once).
    pub fn define_func(&mut self, id: FuncId, spec: Rc<SpecFunc>) -> bool {
        let meta = &mut self.funcs[id.0 as usize];
        if meta.spec.is_some() {
            return false;
        }
        meta.spec = Some(spec);
        true
    }

    /// Declares a new struct type with empty reflection tables.
    pub fn new_struct(&mut self, name: impl Into<Rc<str>>) -> StructId {
        let id = self.types.declare_struct(&*name.into());
        self.structs.push(StructMeta {
            entries: Rc::new(RefCell::new(Table::new())),
            methods: Rc::new(RefCell::new(Table::new())),
            metamethods: Rc::new(RefCell::new(Table::new())),
        });
        id
    }

    /// Creates a global variable cell of the given type.
    pub fn new_global(
        &mut self,
        name: impl Into<Rc<str>>,
        ty: Ty,
        init: Option<&[u8]>,
    ) -> GlobalId {
        let size = ty.size(&self.types);
        let addr = self.exec.alloc_global(size, init);
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(GlobalMeta {
            ty,
            addr,
            name: name.into(),
        });
        id
    }

    /// Absolute addresses of all globals (what the bytecode compiler needs).
    pub fn global_addrs(&self) -> Vec<u64> {
        self.globals.iter().map(|g| g.addr).collect()
    }

    /// The reflection metadata of a struct.
    pub fn struct_meta(&self, id: StructId) -> &StructMeta {
        &self.structs[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_unique() {
        let mut ctx = Context::new();
        let a = ctx.fresh_symbol("x", None);
        let b = ctx.fresh_symbol("x", None);
        assert_ne!(a.id, b.id);
        assert_eq!(a.name, b.name);
    }

    #[test]
    fn function_definition_is_write_once() {
        let mut ctx = Context::new();
        let id = ctx.declare_func("f");
        let spec = Rc::new(SpecFunc {
            name: "f".into(),
            params: vec![],
            ret: Some(Ty::Unit),
            body: vec![],
            span: terra_syntax::Span::synthetic(),
        });
        assert!(ctx.define_func(id, spec.clone()));
        assert!(!ctx.define_func(id, spec));
    }

    #[test]
    fn struct_reflection_tables_exist() {
        let mut ctx = Context::new();
        let id = ctx.new_struct("Complex");
        let meta = ctx.struct_meta(id);
        assert!(meta.entries.borrow().is_empty());
        assert!(meta.methods.borrow().is_empty());
    }

    #[test]
    fn globals_allocate_memory() {
        let mut ctx = Context::new();
        let g = ctx.new_global("gv", Ty::F64, Some(&2.5f64.to_le_bytes()));
        let addr = ctx.globals[g.0 as usize].addr;
        assert_eq!(ctx.exec.memory.load_f64(addr).unwrap(), 2.5);
        assert_eq!(ctx.global_addrs(), vec![addr]);
    }
}
