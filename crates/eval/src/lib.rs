//! # terra-eval
//!
//! The staged-evaluation engine of terra-rs: a Lua interpreter whose
//! evaluation *is* the staging of Terra code, exactly as in *Terra: A
//! Multi-Stage Language for High-Performance Computing* (PLDI 2013).
//!
//! - Evaluating a `terra` definition **eagerly specializes** it in the
//!   shared lexical environment ([`spec`]): escapes run, Lua values splice
//!   in as constants, and Terra variables are hygienically renamed.
//! - Calling a Terra function from Lua **lazily typechecks, links, and
//!   compiles** it and its connected component ([`typecheck`]) to `terra-vm`
//!   bytecode, then crosses the FFI boundary.
//! - Terra types are Lua values with a reflection API (`t:ispointer()`,
//!   struct `entries`/`methods`/`metamethods`), so class systems and data
//!   layouts are user libraries.
//!
//! ```
//! use terra_eval::Interp;
//! # fn main() -> Result<(), terra_eval::LuaError> {
//! let mut terra = Interp::new();
//! terra.exec("terra add1(x : int) : int return x + 1 end")?;
//! let out = terra.exec("return add1(41)")?;
//! assert!(matches!(out[0], terra_eval::LuaValue::Number(n) if n == 42.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod context;
mod env;
mod error;
mod interp;
mod reflect;
pub mod spec;
mod stdlib;
pub mod typecheck;
mod value;

pub use context::{Context, FuncMeta, GlobalMeta, StructMeta};
pub use env::Env;
pub use error::{EvalResult, LuaError, Phase};
pub use interp::{Flow, Interp};
pub use value::{Intrinsic, LuaValue, SymbolData, SymbolRef, Table, TableRef};
