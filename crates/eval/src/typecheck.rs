//! Lazy typechecking, linking, and lowering to IR (rules LTAPP/TYFUN).
//!
//! Terra typechecks a function the first time it is called (or referenced by
//! a function being called); see §4.1 "eager specialization with lazy
//! typechecking". Typechecking is monotonic: struct layouts are finalized on
//! first use and can only have grown until then, and function definitions
//! are write-once, so a function that typechecks once never stops
//! typechecking.
//!
//! The checker simultaneously lowers to `terra-ir`: l-values become address
//! computations, method calls are desugared through the receiver's `methods`
//! table, user-defined `__cast` metamethods drive conversions involving
//! structs, and `defer` statements are expanded at scope exits.

use crate::error::{EvalResult, LuaError, Phase};
use crate::interp::Interp;
use crate::spec::{SpecExpr, SpecExprKind, SpecStmt};
use crate::value::{Intrinsic, LuaValue};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;
use terra_ir::{
    fold_function, BinKind, Builtin, Callee, CmpKind, ExprKind, FuncId, FuncTy, IrExpr, IrFunction,
    IrStmt, LocalId, ScalarTy, StmtKind, Ty, UnKind,
};
use terra_syntax::{BinOp, IntSuffix, ProvKind, Provenance, Span, UnOp};

fn terr(msg: impl Into<String>, span: Span) -> LuaError {
    LuaError::at(msg, span).phase(Phase::Typecheck)
}

/// Computes (and caches) the signature of a Terra function, without
/// necessarily compiling it. Return types may be inferred from the body.
///
/// # Errors
///
/// Fails on undefined functions (a *link* error, per the paper), on
/// unannotated recursive return types, and on any type error hit during
/// inference.
pub fn ensure_signature(interp: &mut Interp, id: FuncId, span: Span) -> EvalResult<FuncTy> {
    if let Some(sig) = &interp.ctx.funcs[id.0 as usize].sig {
        return Ok(sig.clone());
    }
    let meta = &interp.ctx.funcs[id.0 as usize];
    let name = meta.name.clone();
    let Some(spec) = meta.spec.clone() else {
        return Err(LuaError::at(
            format!("function '{name}' is declared but not defined"),
            span,
        )
        .phase(Phase::Link));
    };
    let params: Vec<Ty> = spec.params.iter().map(|(_, t)| t.clone()).collect();
    for p in &params {
        if matches!(p, Ty::Struct(_) | Ty::Array(..)) {
            return Err(terr(
                format!("function '{name}': aggregate parameters must be passed by pointer"),
                spec.span,
            ));
        }
    }
    if let Some(ret) = &spec.ret {
        if matches!(ret, Ty::Struct(_) | Ty::Array(..)) {
            return Err(terr(
                format!("function '{name}': aggregate returns must use an out-pointer"),
                spec.span,
            ));
        }
        let sig = FuncTy {
            params,
            ret: ret.clone(),
        };
        interp.ctx.funcs[id.0 as usize].sig = Some(sig.clone());
        return Ok(sig);
    }
    // Infer the return type by typechecking the body.
    if interp.ctx.funcs[id.0 as usize].checking {
        return Err(terr(
            format!("recursive function '{name}' requires an explicit return type"),
            spec.span,
        ));
    }
    interp.ctx.funcs[id.0 as usize].checking = true;
    let result = check_function(interp, id);
    interp.ctx.funcs[id.0 as usize].checking = false;
    let (ir, deps) = result.map_err(|e| e.traced(format!("terra function '{name}'")))?;
    let sig = ir.ty.clone();
    let meta = &mut interp.ctx.funcs[id.0 as usize];
    meta.sig = Some(sig.clone());
    meta.ir = Some(ir);
    meta.deps = deps;
    Ok(sig)
}

/// The evaluator's view of the module for IR verification: function
/// signatures from staging metadata, global types from the global table.
struct CtxEnv<'a> {
    ctx: &'a crate::context::Context,
}

impl terra_ir::InlineEnv for CtxEnv<'_> {
    fn callee_ir(&self, id: FuncId) -> Option<IrFunction> {
        // The cached IR is the *unoptimized* lowering (stored before the
        // caller's pipeline runs), so inlined bodies are optimized in the
        // caller's context.
        self.ctx.funcs.get(id.0 as usize)?.ir.clone()
    }
}

impl terra_ir::ModuleEnv for CtxEnv<'_> {
    fn function_sig(&self, id: FuncId) -> terra_ir::EnvEntry<FuncTy> {
        match self.ctx.funcs.get(id.0 as usize) {
            // Signatures are computed lazily; a not-yet-checked callee is
            // opaque, not wrong.
            Some(meta) => match &meta.sig {
                Some(sig) => terra_ir::EnvEntry::Known(sig.clone()),
                None => terra_ir::EnvEntry::Opaque,
            },
            None => terra_ir::EnvEntry::Invalid,
        }
    }

    fn global_ty(&self, id: terra_ir::GlobalId) -> terra_ir::EnvEntry<Ty> {
        match self.ctx.globals.get(id.0 as usize) {
            Some(g) => terra_ir::EnvEntry::Known(g.ty.clone()),
            None => terra_ir::EnvEntry::Invalid,
        }
    }
}

/// Typechecks, compiles, and links `id` and its whole connected component of
/// referenced functions (paper Fig. 4). Idempotent.
pub fn ensure_compiled(interp: &mut Interp, id: FuncId, span: Span) -> EvalResult<()> {
    if interp.ctx.exec.is_defined(id) {
        return Ok(());
    }
    let sig = ensure_signature(interp, id, span)?;
    let _ = sig;
    let meta = &mut interp.ctx.funcs[id.0 as usize];
    let name = meta.name.clone();
    let (ir, deps) = match meta.ir.clone() {
        Some(ir) => (ir, meta.deps.clone()),
        None => {
            let (ir, deps) = check_function(interp, id)
                .map_err(|e| e.traced(format!("terra function '{name}'")))?;
            // Cache the unoptimized lowering so functions compiled later can
            // inline this one.
            let meta = &mut interp.ctx.funcs[id.0 as usize];
            meta.ir = Some(ir.clone());
            meta.deps = deps.clone();
            (ir, deps)
        }
    };
    // Materialize dependency IR up front so the inliner can see callee
    // bodies. Errors are deliberately ignored here: the linking loop below
    // re-runs the check and reports them exactly as before.
    for dep in &deps {
        let dmeta = &interp.ctx.funcs[dep.0 as usize];
        if *dep != id && dmeta.ir.is_none() && dmeta.spec.is_some() && !dmeta.checking {
            if let Ok((dir, ddeps)) = check_function(interp, *dep) {
                let dmeta = &mut interp.ctx.funcs[dep.0 as usize];
                dmeta.ir = Some(dir);
                dmeta.deps = ddeps;
            }
        }
    }
    let mut ir = ir;
    // Interprocedural summaries over this function plus every dependency
    // whose IR is materialized: the abstract interpreter uses them to refine
    // call returns and check call sites against callee access demands, both
    // in lint mode and in the check-elision pass.
    let sums = {
        let mut fns: Vec<(FuncId, IrFunction)> = vec![(id, ir.clone())];
        for dep in &deps {
            if *dep != id {
                if let Some(dir) = interp.ctx.funcs[dep.0 as usize].ir.clone() {
                    fns.push((*dep, dir));
                }
            }
        }
        let env = CtxEnv { ctx: &interp.ctx };
        terra_ir::summarize(&fns, Some(&interp.ctx.types), &env)
    };
    // Every function passes the IR verifier between lowering and
    // compilation: a failure here means the typechecker produced
    // inconsistent IR, and is reported instead of miscompiled. Lint mode
    // additionally runs the dataflow and bounds analyses, accumulating
    // warnings on the interpreter; diagnostics are computed on a fold-only
    // copy so they are identical at every -O level.
    let t0 = interp.ctx.exec.trace.now_us();
    let mut diags = {
        let env = CtxEnv { ctx: &interp.ctx };
        if interp.lint {
            let mut lint_ir = ir.clone();
            fold_function(&mut lint_ir);
            terra_ir::analyze_function_with(&lint_ir, Some(&interp.ctx.types), &env, Some(&sums))
        } else {
            match terra_ir::verify_function(&ir, Some(&interp.ctx.types), &env) {
                Ok(()) => Vec::new(),
                Err(d) => vec![d],
            }
        }
    };
    interp
        .ctx
        .exec
        .trace
        .record(terra_trace::Stage::Analyze, &name, t0);
    if let Some(err) = diags
        .iter()
        .find(|d| d.severity == terra_ir::Severity::Error)
    {
        return Err(terr(
            format!("IR verification failed: {err}"),
            if err.span.line == 0 { span } else { err.span },
        ));
    }
    interp.diagnostics.append(&mut diags);
    // Mid-end optimization pipeline; per-pass spans land on the staging
    // timeline after the fact (the pass manager times each pass itself).
    let opt_t0 = interp.ctx.exec.trace.now_us();
    let stats = {
        let env = CtxEnv { ctx: &interp.ctx };
        let cfg = terra_ir::PassConfig {
            level: interp.opt,
            types: Some(&interp.ctx.types),
            env: &env,
            inline: &env,
            summaries: Some(&sums),
            elide_checks: interp.elide_checks,
        };
        terra_ir::optimize(&mut ir, &cfg)
    };
    let mut cursor = opt_t0;
    for run in &stats.runs {
        interp.ctx.exec.trace.record_span(
            terra_trace::Stage::Optimize,
            &format!("{name}:{}", run.pass),
            cursor,
            run.dur_us,
        );
        cursor += run.dur_us;
    }
    // Remarks flow to the tracer unconditionally (not gated on profiling):
    // they are part of the deterministic surface and must be identical with
    // and without --profile.
    for r in &stats.remarks {
        interp.ctx.exec.trace.add_remark(terra_trace::Remark {
            pass: r.pass.to_string(),
            kind: r.kind.label().to_string(),
            function: r.function.to_string(),
            line: r.line,
            provenance: r.prov.as_ref().map(|p| p.describe()).unwrap_or_default(),
            message: r.message.clone(),
        });
    }
    let globals = interp.ctx.global_addrs();
    let t0 = interp.ctx.exec.trace.now_us();
    let compiled = terra_vm::compile(&ir, &interp.ctx.types, &mut interp.ctx.exec, &globals);
    interp
        .ctx
        .exec
        .trace
        .record(terra_trace::Stage::Compile, &name, t0);
    interp.ctx.exec.define(id, compiled);
    // Link the rest of the connected component before this function can run.
    for dep in deps {
        ensure_compiled(interp, dep, span)?;
    }
    Ok(())
}

/// Typechecks a function body, producing IR and its direct dependencies.
fn check_function(interp: &mut Interp, id: FuncId) -> EvalResult<(IrFunction, Vec<FuncId>)> {
    let t0 = interp.ctx.exec.trace.now_us();
    let result = check_function_inner(interp, id);
    if let Ok((ir, _)) = &result {
        let name = ir.name.clone();
        interp
            .ctx
            .exec
            .trace
            .record(terra_trace::Stage::Typecheck, &name, t0);
    }
    result
}

fn check_function_inner(interp: &mut Interp, id: FuncId) -> EvalResult<(IrFunction, Vec<FuncId>)> {
    let spec = interp.ctx.funcs[id.0 as usize]
        .spec
        .clone()
        .expect("caller verified definition");
    let mut addrof = HashSet::new();
    collect_addrof_stmts(&spec.body, &mut addrof);

    let mut func = IrFunction {
        name: spec.name.as_ref().into(),
        ty: FuncTy {
            params: spec.params.iter().map(|(_, t)| t.clone()).collect(),
            ret: spec.ret.clone().unwrap_or(Ty::Unit),
        },
        locals: Vec::new(),
        body: Vec::new(),
    };
    let mut syms = HashMap::new();
    for (sym, ty) in &spec.params {
        let in_memory = is_aggregate(ty) || addrof.contains(&sym.id);
        let lid = func.add_local(&*sym.name, ty.clone(), in_memory);
        syms.insert(sym.id, lid);
    }
    let mut checker = Checker {
        interp,
        func,
        syms,
        addrof,
        ret_ty: spec.ret.clone(),
        deps: BTreeSet::new(),
        prelude: Vec::new(),
        defers: vec![Vec::new()],
        loop_defer_depth: Vec::new(),
        prov: Vec::new(),
    };
    let mut body = Vec::new();
    checker.stmts(&spec.body, &mut body)?;
    // Run root-scope defers on fall-through.
    checker.emit_defers_from(0, &mut body);
    let mut func = checker.func;
    let deps: Vec<FuncId> = checker.deps.into_iter().collect();
    func.body = body;
    func.ty.ret = checker.ret_ty.unwrap_or(Ty::Unit);
    Ok((func, deps))
}

fn is_aggregate(ty: &Ty) -> bool {
    matches!(ty, Ty::Struct(_) | Ty::Array(..))
}

// ---------------------------------------------------------------------------
// address-of pre-pass
// ---------------------------------------------------------------------------

fn collect_addrof_stmts(stmts: &[SpecStmt], out: &mut HashSet<u64>) {
    for s in stmts {
        match s {
            SpecStmt::Var { inits, .. } => {
                for e in inits {
                    collect_addrof_expr(e, out);
                }
            }
            SpecStmt::Assign { targets, exprs, .. } => {
                for e in targets.iter().chain(exprs) {
                    collect_addrof_expr(e, out);
                }
            }
            SpecStmt::If {
                arms, else_body, ..
            } => {
                for (c, b) in arms {
                    collect_addrof_expr(c, out);
                    collect_addrof_stmts(b, out);
                }
                collect_addrof_stmts(else_body, out);
            }
            SpecStmt::While { cond, body, .. } | SpecStmt::Repeat { cond, body, .. } => {
                collect_addrof_expr(cond, out);
                collect_addrof_stmts(body, out);
            }
            SpecStmt::For {
                start,
                stop,
                step,
                body,
                ..
            } => {
                collect_addrof_expr(start, out);
                collect_addrof_expr(stop, out);
                if let Some(s) = step {
                    collect_addrof_expr(s, out);
                }
                collect_addrof_stmts(body, out);
            }
            SpecStmt::Return(es, _) => {
                for e in es {
                    collect_addrof_expr(e, out);
                }
            }
            SpecStmt::ParallelFor {
                start, stop, body, ..
            } => {
                collect_addrof_expr(start, out);
                collect_addrof_expr(stop, out);
                collect_addrof_stmts(body, out);
            }
            SpecStmt::Block(b, _) => collect_addrof_stmts(b, out),
            SpecStmt::Spliced { stmts, .. } => collect_addrof_stmts(stmts, out),
            SpecStmt::Expr(e) | SpecStmt::Defer(e, _) => collect_addrof_expr(e, out),
            SpecStmt::Break(_) => {}
        }
    }
}

fn collect_addrof_expr(e: &SpecExpr, out: &mut HashSet<u64>) {
    match &e.kind {
        SpecExprKind::AddrOf(inner) => {
            if let SpecExprKind::Sym(s) = &inner.kind {
                out.insert(s.id);
            }
            collect_addrof_expr(inner, out);
        }
        SpecExprKind::MethodCall(obj, _, args) => {
            // `x:m()` on a scalar-typed local would need its address; structs
            // are in memory anyway, and scalars have no methods, so only the
            // receiver of Field matters — conservatively mark simple symbols.
            if let SpecExprKind::Sym(s) = &obj.kind {
                out.insert(s.id);
            }
            collect_addrof_expr(obj, out);
            for a in args {
                collect_addrof_expr(a, out);
            }
        }
        SpecExprKind::Field(o, _) => collect_addrof_expr(o, out),
        SpecExprKind::Index(o, i) => {
            collect_addrof_expr(o, out);
            collect_addrof_expr(i, out);
        }
        SpecExprKind::Call(f, args) => {
            collect_addrof_expr(f, out);
            for a in args {
                collect_addrof_expr(a, out);
            }
        }
        SpecExprKind::StructInit(_, args) => {
            for (_, a) in args {
                collect_addrof_expr(a, out);
            }
        }
        SpecExprKind::Bin(_, l, r) => {
            collect_addrof_expr(l, out);
            collect_addrof_expr(r, out);
        }
        SpecExprKind::Un(_, x) | SpecExprKind::Deref(x) => collect_addrof_expr(x, out),
        SpecExprKind::LetIn(stmts, x, _) => {
            collect_addrof_stmts(stmts, out);
            collect_addrof_expr(x, out);
        }
        _ => {}
    }
}

/// Stamps every statement that doesn't already carry provenance (statements
/// from a nested splice stamped their deeper chain first and win).
fn stamp_prov(stmts: &mut [IrStmt], p: &Provenance) {
    for s in stmts {
        if s.prov.is_none() {
            s.prov = Some(p.clone());
        }
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                stamp_prov(then_body, p);
                stamp_prov(else_body, p);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => stamp_prov(body, p),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// parallelfor kernel extraction
// ---------------------------------------------------------------------------

/// Whether any statement (recursively) is a `return` — forbidden inside a
/// `parallelfor` body, which outlines into a unit-returning kernel.
fn contains_return(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => contains_return(then_body) || contains_return(else_body),
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => contains_return(body),
        _ => false,
    })
}

/// Records locals below `base` that `e` mentions (captures) and every direct
/// callee (the kernel's link-time dependencies).
fn scan_kernel_expr(e: &IrExpr, base: u32, used: &mut BTreeSet<u32>, calls: &mut BTreeSet<FuncId>) {
    match &e.kind {
        ExprKind::Local(l) | ExprKind::LocalAddr(l) if l.0 < base => {
            used.insert(l.0);
        }
        ExprKind::Call {
            callee: Callee::Direct(id),
            ..
        } => {
            calls.insert(*id);
        }
        _ => {}
    }
    terra_ir::passes::util::each_child(e, &mut |c| scan_kernel_expr(c, base, used, calls));
}

fn scan_kernel_block(
    stmts: &[IrStmt],
    base: u32,
    used: &mut BTreeSet<u32>,
    assigned: &mut BTreeSet<u32>,
    calls: &mut BTreeSet<FuncId>,
) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign { dst, value } => {
                if dst.0 < base {
                    assigned.insert(dst.0);
                }
                scan_kernel_expr(value, base, used, calls);
            }
            StmtKind::Store { addr, value } => {
                scan_kernel_expr(addr, base, used, calls);
                scan_kernel_expr(value, base, used, calls);
            }
            StmtKind::CopyMem { dst, src, .. } => {
                scan_kernel_expr(dst, base, used, calls);
                scan_kernel_expr(src, base, used, calls);
            }
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) => scan_kernel_expr(e, base, used, calls),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                scan_kernel_expr(cond, base, used, calls);
                scan_kernel_block(then_body, base, used, assigned, calls);
                scan_kernel_block(else_body, base, used, assigned, calls);
            }
            StmtKind::While { cond, body } => {
                scan_kernel_expr(cond, base, used, calls);
                scan_kernel_block(body, base, used, assigned, calls);
            }
            StmtKind::For {
                start,
                stop,
                step,
                body,
                ..
            } => {
                scan_kernel_expr(start, base, used, calls);
                scan_kernel_expr(stop, base, used, calls);
                scan_kernel_expr(step, base, used, calls);
                scan_kernel_block(body, base, used, assigned, calls);
            }
            StmtKind::ParallelFor {
                kernel,
                start,
                stop,
                args,
            } => {
                calls.insert(*kernel);
                scan_kernel_expr(start, base, used, calls);
                scan_kernel_expr(stop, base, used, calls);
                for a in args {
                    scan_kernel_expr(a, base, used, calls);
                }
            }
            StmtKind::Return(None) | StmtKind::Break => {}
        }
    }
}

/// Renumbers locals of an outlined kernel body: captures (`< base`) become
/// reads of capture parameters, the loop variable (`== base`) becomes param
/// 0, and body-internal locals shift down past the capture params.
fn remap_kernel_expr(e: &mut IrExpr, base: u32, cap: &BTreeMap<u32, u32>, ncap: u32) {
    let replacement = match &e.kind {
        // An in-memory capture's `LocalAddr` becomes the pointer param
        // itself (the node's type is already the pointer type).
        ExprKind::Local(l) | ExprKind::LocalAddr(l) if l.0 < base => {
            Some(ExprKind::Local(LocalId(cap[&l.0])))
        }
        _ => None,
    };
    if let Some(k) = replacement {
        e.kind = k;
    } else if let ExprKind::Local(l) | ExprKind::LocalAddr(l) = &mut e.kind {
        if l.0 == base {
            l.0 = 0;
        } else {
            l.0 = l.0 - base + ncap;
        }
    }
    terra_ir::passes::util::each_child_mut(e, &mut |c| remap_kernel_expr(c, base, cap, ncap));
}

fn remap_kernel_block(stmts: &mut [IrStmt], base: u32, cap: &BTreeMap<u32, u32>, ncap: u32) {
    for s in stmts {
        {
            let remap_id = |l: &mut LocalId| {
                debug_assert!(l.0 >= base, "assignments to captures were rejected");
                if l.0 == base {
                    l.0 = 0;
                } else {
                    l.0 = l.0 - base + ncap;
                }
            };
            match &mut s.kind {
                StmtKind::Assign { dst, .. } => remap_id(dst),
                StmtKind::For { var, .. } => remap_id(var),
                _ => {}
            }
        }
        terra_ir::passes::util::for_each_stmt_expr_mut(s, &mut |e| {
            remap_kernel_expr(e, base, cap, ncap)
        });
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                remap_kernel_block(then_body, base, cap, ncap);
                remap_kernel_block(else_body, base, cap, ncap);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                remap_kernel_block(body, base, cap, ncap)
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// typed expressions
// ---------------------------------------------------------------------------

/// A typed, lowered expression.
#[derive(Debug, Clone)]
struct TExp {
    ty: Ty,
    val: TVal,
}

#[derive(Debug, Clone)]
enum TVal {
    /// Register-class rvalue.
    R(IrExpr),
    /// L-value living in a register local.
    PlaceReg(LocalId),
    /// L-value (or aggregate rvalue) at the given address.
    PlaceMem(IrExpr),
}

impl TExp {
    fn rvalue(ty: Ty, ir: IrExpr) -> TExp {
        TExp {
            ty,
            val: TVal::R(ir),
        }
    }
}

struct Checker<'a> {
    interp: &'a mut Interp,
    func: IrFunction,
    syms: HashMap<u64, LocalId>,
    addrof: HashSet<u64>,
    ret_ty: Option<Ty>,
    deps: BTreeSet<FuncId>,
    /// Statements hoisted out of expression lowering (spliced statement
    /// quotes, struct-literal initialization).
    prelude: Vec<IrStmt>,
    /// Active `defer` calls, one list per open scope.
    defers: Vec<Vec<IrExpr>>,
    /// Defer-scope depth at each enclosing loop entry.
    loop_defer_depth: Vec<usize>,
    /// Active splice provenance chains, top = the chain for statements being
    /// lowered right now (empty when lowering code written in place).
    prov: Vec<Provenance>,
}

impl Checker<'_> {
    // -- helpers -------------------------------------------------------------

    /// Reads a register-class value out of a TExp.
    fn read(&mut self, t: TExp, span: Span) -> EvalResult<IrExpr> {
        match t.val {
            TVal::R(e) => Ok(e),
            TVal::PlaceReg(l) => Ok(IrExpr {
                ty: t.ty,
                kind: ExprKind::Local(l),
            }),
            TVal::PlaceMem(addr) => {
                if t.ty.is_register() {
                    Ok(IrExpr {
                        ty: t.ty,
                        kind: ExprKind::Load(Box::new(addr)),
                    })
                } else if matches!(t.ty, Ty::Array(..)) {
                    // Arrays decay to a pointer to their first element.
                    let Ty::Array(elem, _) = &t.ty else {
                        unreachable!()
                    };
                    Ok(IrExpr {
                        ty: (**elem).clone().ptr_to(),
                        kind: addr.kind,
                    })
                } else {
                    Err(terr(
                        format!(
                            "value of aggregate type {} cannot be used here",
                            t.ty.display(&self.interp.ctx.types)
                        ),
                        span,
                    ))
                }
            }
        }
    }

    /// The address of an l-value (or aggregate).
    fn addr(&mut self, t: TExp, span: Span) -> EvalResult<IrExpr> {
        match t.val {
            TVal::PlaceMem(addr) => Ok(addr),
            TVal::PlaceReg(l) => Err(terr(
                format!(
                    "internal: address of register local l{} not precomputed",
                    l.0
                ),
                span,
            )),
            TVal::R(_) => Err(terr("cannot take the address of an rvalue", span)),
        }
    }

    fn ptr_to_addr(ty: &Ty, addr: IrExpr) -> IrExpr {
        IrExpr {
            ty: ty.clone().ptr_to(),
            kind: addr.kind,
        }
    }

    fn local_ty(&self, l: LocalId) -> Ty {
        self.func.locals[l.0 as usize].ty.clone()
    }

    fn add_temp(&mut self, ty: Ty, in_memory: bool) -> LocalId {
        self.func.add_local("tmp", ty, in_memory)
    }

    fn scale_index(&mut self, idx: IrExpr, size: u64) -> IrExpr {
        let idx64 = if idx.ty == Ty::I64 {
            idx
        } else {
            IrExpr {
                ty: Ty::I64,
                kind: ExprKind::Cast(Box::new(idx)),
            }
        };
        if size == 1 {
            return idx64;
        }
        IrExpr::binary(BinKind::Mul, idx64, IrExpr::int64(size as i64))
    }

    fn ptr_offset(&mut self, base: IrExpr, idx: IrExpr, elem_size: u64) -> IrExpr {
        let ty = base.ty.clone();
        let scaled = self.scale_index(idx, elem_size);
        IrExpr {
            ty,
            kind: ExprKind::Binary {
                op: BinKind::Add,
                lhs: Box::new(base),
                rhs: Box::new(scaled),
            },
        }
    }

    fn const_offset(&mut self, base: IrExpr, off: u64) -> IrExpr {
        if off == 0 {
            return base;
        }
        let ty = base.ty.clone();
        IrExpr {
            ty,
            kind: ExprKind::Binary {
                op: BinKind::Add,
                lhs: Box::new(base),
                rhs: Box::new(IrExpr::int64(off as i64)),
            },
        }
    }

    fn emit_defers_from(&mut self, depth: usize, out: &mut Vec<IrStmt>) {
        let calls: Vec<IrExpr> = self.defers[depth..]
            .iter()
            .rev()
            .flat_map(|scope| scope.iter().rev().cloned())
            .collect();
        for c in calls {
            out.push(IrStmt::synthesized(Span::synthetic(), StmtKind::Expr(c)));
        }
    }

    // -- statements ----------------------------------------------------------

    fn stmts(&mut self, stmts: &[SpecStmt], out: &mut Vec<IrStmt>) -> EvalResult<()> {
        for s in stmts {
            self.stmt(s, out)?;
        }
        Ok(())
    }

    fn flush_prelude(&mut self, out: &mut Vec<IrStmt>) {
        out.append(&mut self.prelude);
    }

    fn scoped(&mut self, stmts: &[SpecStmt], out: &mut Vec<IrStmt>) -> EvalResult<()> {
        self.defers.push(Vec::new());
        self.stmts(stmts, out)?;
        let scope = self.defers.pop().expect("pushed above");
        for c in scope.into_iter().rev() {
            out.push(IrStmt::synthesized(Span::synthetic(), StmtKind::Expr(c)));
        }
        Ok(())
    }

    fn stmt(&mut self, s: &SpecStmt, out: &mut Vec<IrStmt>) -> EvalResult<()> {
        match s {
            SpecStmt::Var { decls, inits, span } => {
                // Typecheck initializers first (they see the outer bindings).
                let mut init_texps: Vec<Option<(TExp, &SpecExpr)>> = Vec::new();
                for (i, (_, ann)) in decls.iter().enumerate() {
                    match inits.get(i) {
                        Some(e) => {
                            let t = self.expr(e, ann.as_ref())?;
                            init_texps.push(Some((t, e)));
                        }
                        None => init_texps.push(None),
                    }
                }
                self.flush_prelude(out);
                for ((sym, ann), init) in decls.iter().zip(init_texps) {
                    let ty = match (ann, &init) {
                        (Some(t), _) => t.clone(),
                        (None, Some((i, _))) => i.ty.clone(),
                        (None, None) => {
                            return Err(terr(
                                format!("variable '{}' needs a type or initializer", sym.name),
                                *span,
                            ))
                        }
                    };
                    let in_memory = is_aggregate(&ty) || self.addrof.contains(&sym.id);
                    let lid = self.func.add_local(&*sym.name, ty.clone(), in_memory);
                    self.syms.insert(sym.id, lid);
                    *sym.ty.borrow_mut() = Some(ty.clone());
                    match init {
                        Some((texp, origin)) => {
                            let texp = self.convert(texp, &ty, origin.span, Some(origin))?;
                            self.store_into_local(lid, texp, *span, out)?;
                        }
                        None => self.zero_local(lid, *span, out),
                    }
                    self.flush_prelude(out);
                }
            }
            SpecStmt::Assign {
                targets,
                exprs,
                span,
            } => {
                if targets.len() != exprs.len() {
                    return Err(terr(
                        format!(
                            "assignment mismatch: {} target(s) but {} value(s)",
                            targets.len(),
                            exprs.len()
                        ),
                        *span,
                    ));
                }
                // Places first, then all values into temps (so swaps work),
                // then the stores.
                let places: Vec<TExp> = targets
                    .iter()
                    .map(|t| self.expr(t, None))
                    .collect::<EvalResult<_>>()?;
                let mut staged: Vec<(TExp, TExp)> = Vec::new();
                for (place, e) in places.into_iter().zip(exprs) {
                    let v = self.expr(e, Some(&place.ty.clone()))?;
                    let v = self.convert(v, &place.ty.clone(), e.span, Some(e))?;
                    // Stage scalar values into temps.
                    let v = if targets.len() > 1 && v.ty.is_register() {
                        let read = self.read(v.clone(), e.span)?;
                        let tmp = self.add_temp(v.ty.clone(), false);
                        self.prelude.push(IrStmt::at(
                            e.span,
                            StmtKind::Assign {
                                dst: tmp,
                                value: read,
                            },
                        ));
                        TExp {
                            ty: v.ty,
                            val: TVal::PlaceReg(tmp),
                        }
                    } else {
                        v
                    };
                    staged.push((place, v));
                }
                self.flush_prelude(out);
                for (place, v) in staged {
                    self.store_into_place(place, v, *span, out)?;
                }
            }
            SpecStmt::If {
                arms,
                else_body,
                span,
            } => {
                // Lower else-if chains from the back.
                let mut else_ir = Vec::new();
                self.scoped(else_body, &mut else_ir)?;
                for (cond, body) in arms.iter().rev() {
                    let c = self.cond(cond)?;
                    self.flush_prelude(out);
                    let mut then_ir = Vec::new();
                    self.scoped(body, &mut then_ir)?;
                    else_ir = vec![IrStmt::at(
                        *span,
                        StmtKind::If {
                            cond: c,
                            then_body: then_ir,
                            else_body: else_ir,
                        },
                    )];
                }
                out.extend(else_ir);
            }
            SpecStmt::While { cond, body, span } => {
                let c = self.cond(cond)?;
                let cond_prelude: Vec<IrStmt> = self.prelude.drain(..).collect();
                self.loop_defer_depth.push(self.defers.len());
                let mut body_ir = Vec::new();
                self.scoped(body, &mut body_ir)?;
                self.loop_defer_depth.pop();
                if cond_prelude.is_empty() {
                    out.push(IrStmt::at(
                        *span,
                        StmtKind::While {
                            cond: c,
                            body: body_ir,
                        },
                    ));
                } else {
                    // while(true) { prelude; if !c break; body }
                    let mut inner = cond_prelude;
                    inner.push(IrStmt::at(
                        *span,
                        StmtKind::If {
                            cond: IrExpr {
                                ty: Ty::BOOL,
                                kind: ExprKind::Unary {
                                    op: UnKind::Not,
                                    expr: Box::new(c),
                                },
                            },
                            then_body: vec![IrStmt::synthesized(*span, StmtKind::Break)],
                            else_body: vec![],
                        },
                    ));
                    inner.extend(body_ir);
                    out.push(IrStmt::at(
                        *span,
                        StmtKind::While {
                            cond: IrExpr::boolean(true),
                            body: inner,
                        },
                    ));
                }
            }
            SpecStmt::Repeat { body, cond, span } => {
                self.loop_defer_depth.push(self.defers.len());
                let mut inner = Vec::new();
                self.defers.push(Vec::new());
                self.stmts(body, &mut inner)?;
                let c = self.cond(cond)?;
                self.flush_prelude(&mut inner);
                let scope = self.defers.pop().expect("pushed above");
                for d in scope.into_iter().rev() {
                    inner.push(IrStmt::synthesized(*span, StmtKind::Expr(d)));
                }
                self.loop_defer_depth.pop();
                inner.push(IrStmt::at(
                    *span,
                    StmtKind::If {
                        cond: c,
                        then_body: vec![IrStmt::synthesized(*span, StmtKind::Break)],
                        else_body: vec![],
                    },
                ));
                out.push(IrStmt::at(
                    *span,
                    StmtKind::While {
                        cond: IrExpr::boolean(true),
                        body: inner,
                    },
                ));
            }
            SpecStmt::For {
                sym,
                ty,
                start,
                stop,
                step,
                body,
                span,
            } => {
                let var_ty = match ty {
                    Some(t) => t.clone(),
                    None => {
                        let probe = self.expr(start, None)?;
                        // Loop variables default to `int` when the bound is a
                        // spliced Lua number.
                        if probe.ty.is_integer() {
                            probe.ty
                        } else {
                            Ty::INT
                        }
                    }
                };
                if !var_ty.is_integer() {
                    return Err(terr("for-loop variable must have integer type", *span));
                }
                let start_t = self.expr(start, Some(&var_ty))?;
                let start_e = {
                    let t = self.convert(start_t, &var_ty, start.span, Some(start))?;
                    self.read(t, start.span)?
                };
                let stop_t = self.expr(stop, Some(&var_ty))?;
                let stop_e = {
                    let t = self.convert(stop_t, &var_ty, stop.span, Some(stop))?;
                    self.read(t, stop.span)?
                };
                let step_e = match step {
                    Some(e) => {
                        let t = self.expr(e, Some(&var_ty))?;
                        let t = self.convert(t, &var_ty, e.span, Some(e))?;
                        let mut ir = self.read(t, e.span)?;
                        // Terra loops ascend; catch constant non-positive
                        // steps at compile time (fold first so `-2` is seen
                        // as a constant).
                        terra_ir::fold_expr(&mut ir);
                        if let ExprKind::ConstInt(v) = ir.kind {
                            if v <= 0 {
                                return Err(terr("for-loop step must be positive", e.span));
                            }
                        }
                        ir
                    }
                    None => IrExpr {
                        ty: var_ty.clone(),
                        kind: ExprKind::ConstInt(1),
                    },
                };
                self.flush_prelude(out);
                let lid = self.func.add_local(&*sym.name, var_ty.clone(), false);
                self.syms.insert(sym.id, lid);
                *sym.ty.borrow_mut() = Some(var_ty);
                self.loop_defer_depth.push(self.defers.len());
                let mut body_ir = Vec::new();
                self.scoped(body, &mut body_ir)?;
                self.loop_defer_depth.pop();
                out.push(IrStmt::at(
                    *span,
                    StmtKind::For {
                        var: lid,
                        start: start_e,
                        stop: stop_e,
                        step: step_e,
                        body: body_ir,
                    },
                ));
            }
            SpecStmt::ParallelFor {
                sym,
                ty,
                start,
                stop,
                body,
                span,
            } => {
                let var_ty = match ty {
                    Some(t) => t.clone(),
                    None => {
                        let probe = self.expr(start, None)?;
                        if probe.ty.is_integer() {
                            probe.ty
                        } else {
                            Ty::INT
                        }
                    }
                };
                if !var_ty.is_integer() {
                    return Err(terr("parallelfor variable must have integer type", *span));
                }
                let start_t = self.expr(start, Some(&var_ty))?;
                let start_e = {
                    let t = self.convert(start_t, &var_ty, start.span, Some(start))?;
                    self.read(t, start.span)?
                };
                let stop_t = self.expr(stop, Some(&var_ty))?;
                let stop_e = {
                    let t = self.convert(stop_t, &var_ty, stop.span, Some(stop))?;
                    self.read(t, stop.span)?
                };
                self.flush_prelude(out);
                // The loop body is outlined into a *kernel function* whose
                // param 0 is the index; everything below `base` stays in the
                // enclosing frame and is captured explicitly.
                let base = self.func.locals.len() as u32;
                let lid = self.func.add_local(&*sym.name, var_ty.clone(), false);
                self.syms.insert(sym.id, lid);
                *sym.ty.borrow_mut() = Some(var_ty.clone());
                let mut body_ir = Vec::new();
                self.scoped(body, &mut body_ir)?;
                if contains_return(&body_ir) {
                    return Err(terr("return is not allowed inside parallelfor", *span));
                }
                if terra_ir::passes::util::has_toplevel_break(&body_ir) {
                    return Err(terr(
                        "break is not allowed inside parallelfor (iterations are independent)",
                        *span,
                    ));
                }
                let mut used = BTreeSet::new();
                let mut assigned = BTreeSet::new();
                let mut calls = BTreeSet::new();
                scan_kernel_block(&body_ir, base, &mut used, &mut assigned, &mut calls);
                if let Some(&l) = assigned.iter().next() {
                    return Err(terr(
                        format!(
                            "cannot assign to '{}' inside parallelfor: register captures \
                             are read-only (store through a memory location instead)",
                            self.func.locals[l as usize].name
                        ),
                        *span,
                    ));
                }
                // In-memory captures travel by frame address (workers share
                // guest memory), register captures by value.
                let mut cap_map = BTreeMap::new();
                let mut cap_params: Vec<(Arc<str>, Ty)> = Vec::new();
                let mut args: Vec<IrExpr> = Vec::new();
                for (i, &l) in used.iter().enumerate() {
                    let slot = &self.func.locals[l as usize];
                    cap_map.insert(l, (i + 1) as u32);
                    if slot.in_memory {
                        let pty = slot.ty.clone().ptr_to();
                        cap_params.push((format!("&{}", slot.name).into(), pty.clone()));
                        args.push(IrExpr {
                            ty: pty,
                            kind: ExprKind::LocalAddr(LocalId(l)),
                        });
                    } else {
                        cap_params.push((slot.name.clone(), slot.ty.clone()));
                        args.push(IrExpr {
                            ty: slot.ty.clone(),
                            kind: ExprKind::Local(LocalId(l)),
                        });
                    }
                }
                let ncap = used.len() as u32;
                remap_kernel_block(&mut body_ir, base, &cap_map, ncap);
                let kname: Arc<str> =
                    format!("{}$par{}", self.func.name, self.interp.ctx.funcs.len()).into();
                let mut kernel = IrFunction {
                    name: kname.clone(),
                    ty: FuncTy {
                        params: std::iter::once(var_ty.clone())
                            .chain(cap_params.iter().map(|(_, t)| t.clone()))
                            .collect(),
                        ret: Ty::Unit,
                    },
                    locals: Vec::new(),
                    body: Vec::new(),
                };
                kernel.add_local(&*sym.name, var_ty, false);
                for (n, t) in &cap_params {
                    kernel.add_local(n.clone(), t.clone(), false);
                }
                for slot in &self.func.locals[(base + 1) as usize..] {
                    kernel.add_local(slot.name.clone(), slot.ty.clone(), slot.in_memory);
                }
                kernel.body = body_ir;
                self.func.locals.truncate(base as usize);
                let kid = self.interp.ctx.declare_func(&*kname);
                let meta = &mut self.interp.ctx.funcs[kid.0 as usize];
                meta.sig = Some(kernel.ty.clone());
                meta.ir = Some(kernel);
                meta.deps = calls.into_iter().collect();
                self.deps.insert(kid);
                out.push(IrStmt::at(
                    *span,
                    StmtKind::ParallelFor {
                        kernel: kid,
                        start: start_e,
                        stop: stop_e,
                        args,
                    },
                ));
            }
            SpecStmt::Return(exprs, span) => {
                match exprs.len() {
                    0 => {
                        match &self.ret_ty {
                            None => self.ret_ty = Some(Ty::Unit),
                            Some(Ty::Unit) => {}
                            Some(other) => {
                                return Err(terr(
                                    format!(
                                        "return without value in function returning {}",
                                        other.display(&self.interp.ctx.types)
                                    ),
                                    *span,
                                ))
                            }
                        }
                        self.emit_defers_from(0, out);
                        out.push(IrStmt::at(*span, StmtKind::Return(None)));
                    }
                    1 => {
                        let e = &exprs[0];
                        let hint = self.ret_ty.clone();
                        let t = self.expr(e, hint.as_ref())?;
                        let t = match &hint {
                            Some(rt) => self.convert(t, &rt.clone(), e.span, Some(e))?,
                            None => {
                                let ty = default_ty(&t.ty);
                                let t2 = self.convert(t, &ty, e.span, Some(e))?;
                                if is_aggregate(&ty) {
                                    return Err(terr(
                                        "returning aggregates by value is not supported; \
                                         use an out-pointer",
                                        *span,
                                    ));
                                }
                                self.ret_ty = Some(ty);
                                t2
                            }
                        };
                        let v = self.read(t, e.span)?;
                        self.flush_prelude(out);
                        let has_defers = self.defers.iter().any(|d| !d.is_empty());
                        if has_defers {
                            // The return value must be computed *before* the
                            // deferred calls run.
                            let tmp = self.add_temp(v.ty.clone(), false);
                            let ty = v.ty.clone();
                            out.push(IrStmt::at(*span, StmtKind::Assign { dst: tmp, value: v }));
                            self.emit_defers_from(0, out);
                            out.push(IrStmt::at(
                                *span,
                                StmtKind::Return(Some(IrExpr {
                                    ty,
                                    kind: ExprKind::Local(tmp),
                                })),
                            ));
                        } else {
                            self.emit_defers_from(0, out);
                            out.push(IrStmt::at(*span, StmtKind::Return(Some(v))));
                        }
                    }
                    _ => {
                        return Err(terr(
                            "returning multiple values is not supported; return a struct",
                            *span,
                        ))
                    }
                }
            }
            SpecStmt::Break(span) => {
                let depth = *self
                    .loop_defer_depth
                    .last()
                    .ok_or_else(|| terr("'break' outside of a loop", *span))?;
                self.emit_defers_from(depth, out);
                out.push(IrStmt::at(*span, StmtKind::Break));
            }
            SpecStmt::Block(body, _) => {
                self.scoped(body, out)?;
            }
            SpecStmt::Expr(e) => {
                let t = self.expr(e, None)?;
                self.flush_prelude(out);
                if let TVal::R(ir) = t.val {
                    if matches!(ir.kind, ExprKind::Call { .. }) || t.ty == Ty::Unit {
                        out.push(IrStmt::at(e.span, StmtKind::Expr(ir)));
                    }
                    // Non-call expression statements have no effect; drop.
                }
            }
            SpecStmt::Defer(e, span) => {
                let t = self.expr(e, None)?;
                self.flush_prelude(out);
                let TVal::R(ir) = t.val else {
                    return Err(terr("defer expects a call", *span));
                };
                if !matches!(ir.kind, ExprKind::Call { .. }) {
                    return Err(terr("defer expects a call", *span));
                }
                self.defers
                    .last_mut()
                    .expect("root scope always open")
                    .push(ir);
            }
            SpecStmt::Spliced { stmts, line, .. } => {
                let chain = self.splice_chain(*line);
                self.prov.push(chain);
                let start = out.len();
                let result = self.stmts(stmts, out);
                let chain = self.prov.pop().expect("pushed above");
                result?;
                stamp_prov(&mut out[start..], &chain);
            }
        }
        Ok(())
    }

    /// The provenance chain for code spliced at `line`: a fresh quote frame,
    /// nested inside whatever splice is already being lowered.
    fn splice_chain(&self, line: u32) -> Provenance {
        match self.prov.last() {
            Some(outer) => outer.with_inner(ProvKind::Quote, line),
            None => Provenance::quote(line),
        }
    }

    fn zero_local(&mut self, lid: LocalId, span: Span, out: &mut Vec<IrStmt>) {
        let ty = self.local_ty(lid);
        if is_aggregate(&ty) {
            let size = ty.size(&self.interp.ctx.types);
            let addr = IrExpr {
                ty: ty.clone().ptr_to(),
                kind: ExprKind::LocalAddr(lid),
            };
            out.push(IrStmt::synthesized(
                span,
                StmtKind::Expr(IrExpr {
                    ty: Ty::U8.ptr_to(),
                    kind: ExprKind::Call {
                        callee: Callee::Builtin(Builtin::Memset),
                        args: vec![
                            addr,
                            IrExpr::int32(0),
                            IrExpr {
                                ty: Ty::U64,
                                kind: ExprKind::ConstInt(size as i64),
                            },
                        ],
                    },
                }),
            ));
            return;
        }
        let zero = zero_of(&ty);
        if self.func.locals[lid.0 as usize].in_memory {
            out.push(IrStmt::synthesized(
                span,
                StmtKind::Store {
                    addr: IrExpr {
                        ty: ty.clone().ptr_to(),
                        kind: ExprKind::LocalAddr(lid),
                    },
                    value: zero,
                },
            ));
        } else {
            out.push(IrStmt::synthesized(
                span,
                StmtKind::Assign {
                    dst: lid,
                    value: zero,
                },
            ));
        }
    }

    fn store_into_local(
        &mut self,
        lid: LocalId,
        v: TExp,
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> EvalResult<()> {
        let ty = self.local_ty(lid);
        let slot_mem = self.func.locals[lid.0 as usize].in_memory;
        if is_aggregate(&ty) {
            let src = self.addr(v, span)?;
            let dst = IrExpr {
                ty: ty.clone().ptr_to(),
                kind: ExprKind::LocalAddr(lid),
            };
            self.flush_prelude(out);
            out.push(IrStmt::at(
                span,
                StmtKind::CopyMem {
                    dst,
                    src,
                    size: ty.size(&self.interp.ctx.types),
                },
            ));
        } else {
            let value = self.read(v, span)?;
            self.flush_prelude(out);
            if slot_mem {
                out.push(IrStmt::at(
                    span,
                    StmtKind::Store {
                        addr: IrExpr {
                            ty: ty.clone().ptr_to(),
                            kind: ExprKind::LocalAddr(lid),
                        },
                        value,
                    },
                ));
            } else {
                out.push(IrStmt::at(span, StmtKind::Assign { dst: lid, value }));
            }
        }
        Ok(())
    }

    fn store_into_place(
        &mut self,
        place: TExp,
        v: TExp,
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> EvalResult<()> {
        match place.val {
            TVal::PlaceReg(lid) => self.store_into_local(lid, v, span, out),
            TVal::PlaceMem(addr) => {
                if is_aggregate(&place.ty) {
                    let src = self.addr(v, span)?;
                    self.flush_prelude(out);
                    out.push(IrStmt::at(
                        span,
                        StmtKind::CopyMem {
                            dst: addr,
                            src,
                            size: place.ty.size(&self.interp.ctx.types),
                        },
                    ));
                } else {
                    let value = self.read(v, span)?;
                    self.flush_prelude(out);
                    out.push(IrStmt::at(span, StmtKind::Store { addr, value }));
                }
                Ok(())
            }
            TVal::R(_) => Err(terr("cannot assign to this expression", span)),
        }
    }

    fn cond(&mut self, e: &SpecExpr) -> EvalResult<IrExpr> {
        let t = self.expr(e, Some(&Ty::BOOL))?;
        if t.ty != Ty::BOOL {
            return Err(terr(
                format!(
                    "condition must be bool, got {}",
                    t.ty.display(&self.interp.ctx.types)
                ),
                e.span,
            ));
        }
        self.read(t, e.span)
    }

    // -- expressions -----------------------------------------------------------

    fn expr(&mut self, e: &SpecExpr, hint: Option<&Ty>) -> EvalResult<TExp> {
        let span = e.span;
        match &e.kind {
            SpecExprKind::Int(v, suffix) => {
                let ty = match suffix {
                    IntSuffix::None => match hint {
                        Some(t) if t.is_arithmetic() => t.clone(),
                        Some(Ty::Vector(s, _)) => Ty::Scalar(*s),
                        _ => {
                            if i32::try_from(*v).is_ok() {
                                Ty::INT
                            } else {
                                Ty::I64
                            }
                        }
                    },
                    IntSuffix::U => Ty::Scalar(ScalarTy::U32),
                    IntSuffix::LL => Ty::I64,
                    IntSuffix::ULL => Ty::U64,
                };
                Ok(const_num(ty, *v as f64))
            }
            SpecExprKind::Float(v, is_f32) => {
                let ty = if *is_f32 { Ty::F32 } else { Ty::F64 };
                let ty = match hint {
                    Some(t @ Ty::Scalar(s)) if s.is_float() => t.clone(),
                    _ => ty,
                };
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::ConstFloat(*v),
                    },
                ))
            }
            SpecExprKind::LuaNum(n) => {
                let ty = match hint {
                    Some(t) if t.is_arithmetic() => t.clone(),
                    Some(Ty::Vector(s, _)) => Ty::Scalar(*s),
                    _ => {
                        if n.fract() == 0.0 && *n >= i32::MIN as f64 && *n <= i32::MAX as f64 {
                            Ty::INT
                        } else {
                            Ty::F64
                        }
                    }
                };
                Ok(const_num(ty, *n))
            }
            SpecExprKind::Bool(b) => Ok(TExp::rvalue(
                Ty::BOOL,
                IrExpr {
                    ty: Ty::BOOL,
                    kind: ExprKind::ConstBool(*b),
                },
            )),
            SpecExprKind::Null => {
                let ty = match hint {
                    Some(t @ Ty::Ptr(_)) => t.clone(),
                    _ => Ty::U8.ptr_to(),
                };
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::ConstNull,
                    },
                ))
            }
            SpecExprKind::Str(s) => Ok(TExp::rvalue(
                Ty::rawstring(),
                IrExpr {
                    ty: Ty::rawstring(),
                    kind: ExprKind::ConstStr(s.as_ref().into()),
                },
            )),
            SpecExprKind::Sym(sym) => {
                let lid = *self.syms.get(&sym.id).ok_or_else(|| {
                    terr(
                        format!(
                            "variable '{}' is not in scope in this function (symbols cannot \
                             cross function boundaries)",
                            sym.name
                        ),
                        span,
                    )
                })?;
                let ty = self.local_ty(lid);
                if self.func.locals[lid.0 as usize].in_memory {
                    Ok(TExp {
                        ty: ty.clone(),
                        val: TVal::PlaceMem(IrExpr {
                            ty: ty.ptr_to(),
                            kind: ExprKind::LocalAddr(lid),
                        }),
                    })
                } else {
                    Ok(TExp {
                        ty,
                        val: TVal::PlaceReg(lid),
                    })
                }
            }
            SpecExprKind::Func(id) => {
                let sig = ensure_signature(self.interp, *id, span)?;
                self.deps.insert(*id);
                let ty = Ty::Func(std::sync::Arc::new(sig));
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::ConstFunc(*id),
                    },
                ))
            }
            SpecExprKind::GlobalRef(g) => {
                let meta = self.interp.ctx.globals[g.0 as usize].clone();
                Ok(TExp {
                    ty: meta.ty.clone(),
                    val: TVal::PlaceMem(IrExpr {
                        ty: meta.ty.ptr_to(),
                        kind: ExprKind::GlobalAddr(*g),
                    }),
                })
            }
            SpecExprKind::TypeLit(_) => Err(terr(
                "a type is not a value here (types may be called as casts: T(e))",
                span,
            )),
            SpecExprKind::Intrinsic(_) => Err(terr(
                "this C function must be called, not used as a value",
                span,
            )),
            SpecExprKind::Field(obj, name) => self.field(obj, name, span),
            SpecExprKind::Index(obj, idx) => self.index(obj, idx, span),
            SpecExprKind::Call(callee, args) => self.call(callee, args, hint, span),
            SpecExprKind::MethodCall(obj, name, args) => self.method_call(obj, name, args, span),
            SpecExprKind::StructInit(ty, args) => self.struct_init(ty, args, span),
            SpecExprKind::Bin(op, l, r) => self.binop(*op, l, r, hint, span),
            SpecExprKind::Un(op, x) => self.unop(*op, x, hint, span),
            SpecExprKind::Deref(p) => {
                let t = self.expr(p, None)?;
                let Ty::Ptr(inner) = t.ty.clone() else {
                    return Err(terr(
                        format!(
                            "cannot dereference non-pointer type {}",
                            t.ty.display(&self.interp.ctx.types)
                        ),
                        span,
                    ));
                };
                let addr = self.read(t, span)?;
                Ok(TExp {
                    ty: (*inner).clone(),
                    val: TVal::PlaceMem(addr),
                })
            }
            SpecExprKind::AddrOf(x) => {
                let t = self.expr(x, None)?;
                let ty = t.ty.clone();
                let addr = self.addr(t, span).map_err(|_| {
                    terr(
                        "'&' requires an addressable value (a variable, field, or index)",
                        span,
                    )
                })?;
                Ok(TExp::rvalue(
                    ty.clone().ptr_to(),
                    Self::ptr_to_addr(&ty, addr),
                ))
            }
            SpecExprKind::LetIn(stmts, inner, splice_line) => {
                let chain = splice_line.map(|l| self.splice_chain(l));
                if let Some(c) = &chain {
                    self.prov.push(c.clone());
                }
                let mut hoisted = Vec::new();
                let result = self.stmts(stmts, &mut hoisted);
                if chain.is_some() {
                    self.prov.pop();
                }
                result?;
                if let Some(c) = &chain {
                    stamp_prov(&mut hoisted, c);
                }
                self.prelude.append(&mut hoisted);
                self.expr(inner, hint)
            }
        }
    }

    fn field(&mut self, obj: &SpecExpr, name: &str, span: Span) -> EvalResult<TExp> {
        let t = self.expr(obj, None)?;
        let (sid, base_addr) = match t.ty.clone() {
            Ty::Struct(sid) => {
                let addr = self.addr(t, span)?;
                (sid, addr)
            }
            Ty::Ptr(inner) => match &*inner {
                Ty::Struct(sid) => {
                    let sid = *sid;
                    (sid, self.read(t, span)?)
                }
                _ => {
                    return Err(terr(
                        format!(
                            "cannot select field '{name}' from {}",
                            Ty::Ptr(inner.clone()).display(&self.interp.ctx.types)
                        ),
                        span,
                    ))
                }
            },
            other => {
                return Err(terr(
                    format!(
                        "cannot select field '{name}' from {}",
                        other.display(&self.interp.ctx.types)
                    ),
                    span,
                ))
            }
        };
        self.interp.finalize_struct(sid, span)?;
        let Some((offset, fty)) = self.interp.ctx.types.field(sid, name) else {
            return Err(terr(
                format!(
                    "struct {} has no field '{name}'",
                    self.interp.ctx.types.name(sid)
                ),
                span,
            ));
        };
        let addr = self.const_offset(base_addr, offset);
        Ok(TExp {
            ty: fty.clone(),
            val: TVal::PlaceMem(IrExpr {
                ty: fty.ptr_to(),
                kind: addr.kind,
            }),
        })
    }

    fn index(&mut self, obj: &SpecExpr, idx: &SpecExpr, span: Span) -> EvalResult<TExp> {
        let t = self.expr(obj, None)?;
        let it = self.expr(idx, Some(&Ty::I64))?;
        if !it.ty.is_integer() {
            return Err(terr("index must have integer type", idx.span));
        }
        let iv = self.read(it, idx.span)?;
        match t.ty.clone() {
            Ty::Ptr(elem) => {
                let size = elem.size(&self.interp.ctx.types);
                let base = self.read(t, span)?;
                let addr = self.ptr_offset(base, iv, size);
                Ok(TExp {
                    ty: (*elem).clone(),
                    val: TVal::PlaceMem(addr),
                })
            }
            Ty::Array(elem, _) => {
                let size = elem.size(&self.interp.ctx.types);
                let base = self.addr(t, span)?;
                let base = IrExpr {
                    ty: (*elem).clone().ptr_to(),
                    kind: base.kind,
                };
                let addr = self.ptr_offset(base, iv, size);
                Ok(TExp {
                    ty: (*elem).clone(),
                    val: TVal::PlaceMem(addr),
                })
            }
            other => Err(terr(
                format!("cannot index {}", other.display(&self.interp.ctx.types)),
                span,
            )),
        }
    }

    fn call(
        &mut self,
        callee: &SpecExpr,
        args: &[SpecExpr],
        hint: Option<&Ty>,
        span: Span,
    ) -> EvalResult<TExp> {
        match &callee.kind {
            SpecExprKind::TypeLit(ty) => {
                // Functional cast T(e).
                if args.len() != 1 {
                    return Err(terr("cast takes exactly one argument", span));
                }
                let t = self.expr(&args[0], Some(ty))?;
                self.explicit_cast(t, ty, args[0].span, Some(&args[0]))
            }
            SpecExprKind::Func(id) => {
                let sig = ensure_signature(self.interp, *id, span)?;
                self.deps.insert(*id);
                let fname = self.interp.ctx.funcs[id.0 as usize].name.to_string();
                let irargs = self.check_args(&sig, args, span, &fname)?;
                Ok(TExp::rvalue(
                    sig.ret.clone(),
                    IrExpr {
                        ty: sig.ret.clone(),
                        kind: ExprKind::Call {
                            callee: Callee::Direct(*id),
                            args: irargs,
                        },
                    },
                ))
            }
            SpecExprKind::Intrinsic(i) => self.intrinsic_call(*i, args, hint, span),
            _ => {
                let f = self.expr(callee, None)?;
                let Ty::Func(sig) = f.ty.clone() else {
                    return Err(terr(
                        format!(
                            "cannot call value of type {}",
                            f.ty.display(&self.interp.ctx.types)
                        ),
                        span,
                    ));
                };
                let fv = self.read(f, span)?;
                let irargs = self.check_args(&sig, args, span, "function pointer")?;
                Ok(TExp::rvalue(
                    sig.ret.clone(),
                    IrExpr {
                        ty: sig.ret.clone(),
                        kind: ExprKind::Call {
                            callee: Callee::Indirect(Box::new(fv)),
                            args: irargs,
                        },
                    },
                ))
            }
        }
    }

    fn check_args(
        &mut self,
        sig: &FuncTy,
        args: &[SpecExpr],
        span: Span,
        name: &str,
    ) -> EvalResult<Vec<IrExpr>> {
        if args.len() != sig.params.len() {
            return Err(terr(
                format!(
                    "{name} expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut out = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&sig.params) {
            let t = self.expr(a, Some(pty))?;
            let t = self.convert(t, &pty.clone(), a.span, Some(a))?;
            out.push(self.read(t, a.span)?);
        }
        Ok(out)
    }

    fn intrinsic_call(
        &mut self,
        i: Intrinsic,
        args: &[SpecExpr],
        _hint: Option<&Ty>,
        span: Span,
    ) -> EvalResult<TExp> {
        let fixed = |c: &mut Self, b: Builtin, params: &[Ty], ret: Ty| -> EvalResult<TExp> {
            if args.len() != params.len() {
                return Err(terr(
                    format!(
                        "'{}' expects {} argument(s), got {}",
                        b.name(),
                        params.len(),
                        args.len()
                    ),
                    span,
                ));
            }
            let mut irargs = Vec::new();
            for (a, pty) in args.iter().zip(params) {
                let t = c.expr(a, Some(pty))?;
                let t = c.convert(t, pty, a.span, Some(a))?;
                irargs.push(c.read(t, a.span)?);
            }
            Ok(TExp::rvalue(
                ret.clone(),
                IrExpr {
                    ty: ret,
                    kind: ExprKind::Call {
                        callee: Callee::Builtin(b),
                        args: irargs,
                    },
                },
            ))
        };
        let vp = Ty::U8.ptr_to();
        match i {
            Intrinsic::Min | Intrinsic::Max => {
                if args.len() != 2 {
                    return Err(terr("min/max expect two arguments", span));
                }
                let lt = self.expr(&args[0], _hint)?;
                let rt = self.expr(&args[1], Some(&lt.ty.clone()))?;
                let (a, b, ty) = self.unify_arith(lt, rt, &args[0], &args[1], span)?;
                let kind = if matches!(i, Intrinsic::Min) {
                    BinKind::Min
                } else {
                    BinKind::Max
                };
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::Binary {
                            op: kind,
                            lhs: Box::new(a),
                            rhs: Box::new(b),
                        },
                    },
                ))
            }
            Intrinsic::Select => {
                if args.len() != 3 {
                    return Err(terr("select expects (cond, a, b)", span));
                }
                let c = self.cond(&args[0])?;
                let a = self.expr(&args[1], None)?;
                let ty = default_ty(&a.ty);
                let a = self.convert(a, &ty, args[1].span, Some(&args[1]))?;
                let b = self.expr(&args[2], Some(&ty))?;
                let b = self.convert(b, &ty, args[2].span, Some(&args[2]))?;
                let av = self.read(a, args[1].span)?;
                let bv = self.read(b, args[2].span)?;
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::Select {
                            cond: Box::new(c),
                            then_value: Box::new(av),
                            else_value: Box::new(bv),
                        },
                    },
                ))
            }
            Intrinsic::C(b) => match b {
                Builtin::Malloc => fixed(self, b, &[Ty::U64], vp),
                Builtin::Free => fixed(self, b, &[vp], Ty::Unit),
                Builtin::Realloc => fixed(self, b, &[vp.clone(), Ty::U64], vp),
                Builtin::Memcpy => fixed(self, b, &[vp.clone(), vp.clone(), Ty::U64], vp),
                Builtin::Memset => fixed(self, b, &[vp.clone(), Ty::INT, Ty::U64], vp),
                Builtin::Sqrt
                | Builtin::Fabs
                | Builtin::Sin
                | Builtin::Cos
                | Builtin::Exp
                | Builtin::Log
                | Builtin::Floor
                | Builtin::Ceil => fixed(self, b, &[Ty::F64], Ty::F64),
                Builtin::Pow | Builtin::Fmod => fixed(self, b, &[Ty::F64, Ty::F64], Ty::F64),
                Builtin::Clock => fixed(self, b, &[], Ty::F64),
                Builtin::Rand => fixed(self, b, &[], Ty::INT),
                Builtin::Srand => fixed(self, b, &[Ty::Scalar(ScalarTy::U32)], Ty::Unit),
                Builtin::Abort => fixed(self, b, &[], Ty::Unit),
                Builtin::Prefetch => {
                    if args.is_empty() {
                        return Err(terr("prefetch expects an address", span));
                    }
                    let t = self.expr(&args[0], None)?;
                    if !t.ty.is_pointer() {
                        return Err(terr("prefetch expects a pointer", args[0].span));
                    }
                    let addr = self.read(t, args[0].span)?;
                    // Remaining C arguments (rw/locality/cachetype hints) are
                    // typechecked and discarded.
                    for a in &args[1..] {
                        let t = self.expr(a, Some(&Ty::INT))?;
                        let _ = self.read(t, a.span)?;
                    }
                    Ok(TExp::rvalue(
                        Ty::Unit,
                        IrExpr {
                            ty: Ty::Unit,
                            kind: ExprKind::Call {
                                callee: Callee::Builtin(Builtin::Prefetch),
                                args: vec![addr],
                            },
                        },
                    ))
                }
                Builtin::Printf => {
                    if args.is_empty() {
                        return Err(terr("printf expects a format string", span));
                    }
                    let fmt = self.expr(&args[0], Some(&Ty::rawstring()))?;
                    let fmt = self.convert(fmt, &Ty::rawstring(), args[0].span, Some(&args[0]))?;
                    let mut irargs = vec![self.read(fmt, args[0].span)?];
                    for a in &args[1..] {
                        let t = self.expr(a, None)?;
                        // C default argument promotions.
                        let promoted = match &t.ty {
                            Ty::Scalar(ScalarTy::F32) => {
                                self.convert(t, &Ty::F64, a.span, Some(a))?
                            }
                            Ty::Scalar(s) if s.is_integer() && s.size() < 4 => {
                                self.convert(t, &Ty::INT, a.span, Some(a))?
                            }
                            Ty::Scalar(ScalarTy::Bool) => {
                                self.convert(t, &Ty::INT, a.span, Some(a))?
                            }
                            _ => t,
                        };
                        irargs.push(self.read(promoted, a.span)?);
                    }
                    Ok(TExp::rvalue(
                        Ty::INT,
                        IrExpr {
                            ty: Ty::INT,
                            kind: ExprKind::Call {
                                callee: Callee::Builtin(Builtin::Printf),
                                args: irargs,
                            },
                        },
                    ))
                }
            },
        }
    }

    fn method_call(
        &mut self,
        obj: &SpecExpr,
        name: &str,
        args: &[SpecExpr],
        span: Span,
    ) -> EvalResult<TExp> {
        let t = self.expr(obj, None)?;
        let sid = match &t.ty {
            Ty::Struct(sid) => *sid,
            Ty::Ptr(inner) => match &**inner {
                Ty::Struct(sid) => *sid,
                _ => {
                    return Err(terr(
                        format!(
                            "method call on non-struct type {}",
                            t.ty.display(&self.interp.ctx.types)
                        ),
                        span,
                    ))
                }
            },
            _ => {
                return Err(terr(
                    format!(
                        "method call on non-struct type {}",
                        t.ty.display(&self.interp.ctx.types)
                    ),
                    span,
                ))
            }
        };
        self.interp.finalize_struct(sid, span)?;
        let method = self
            .interp
            .ctx
            .struct_meta(sid)
            .methods
            .borrow()
            .get_str(name);
        let LuaValue::TerraFunc(mid) = method else {
            return Err(terr(
                format!(
                    "struct {} has no method '{name}'",
                    self.interp.ctx.types.name(sid)
                ),
                span,
            ));
        };
        let sig = ensure_signature(self.interp, mid, span)?;
        self.deps.insert(mid);
        if sig.params.is_empty() {
            return Err(terr(
                format!("method '{name}' takes no self parameter"),
                span,
            ));
        }
        // Self-argument adjustment: auto-& on l-values, pass-through for
        // pointers.
        let self_arg: IrExpr = match (&sig.params[0], &t.ty) {
            (Ty::Ptr(want), Ty::Struct(_)) if matches!(&**want, Ty::Struct(s) if *s == sid) => {
                let ty = t.ty.clone();
                let addr = self.addr(t, span)?;
                Self::ptr_to_addr(&ty, addr)
            }
            (Ty::Ptr(want), Ty::Ptr(_)) if matches!(&**want, Ty::Struct(s) if *s == sid) => {
                self.read(t, span)?
            }
            (other, _) => {
                return Err(terr(
                    format!(
                        "method '{name}' has self type {}, which is not supported \
                         (methods must take &{})",
                        other.display(&self.interp.ctx.types),
                        self.interp.ctx.types.name(sid)
                    ),
                    span,
                ))
            }
        };
        if args.len() + 1 != sig.params.len() {
            return Err(terr(
                format!(
                    "method '{name}' expects {} argument(s), got {}",
                    sig.params.len() - 1,
                    args.len()
                ),
                span,
            ));
        }
        let mut irargs = vec![self_arg];
        for (a, pty) in args.iter().zip(&sig.params[1..]) {
            let ta = self.expr(a, Some(pty))?;
            let ta = self.convert(ta, &pty.clone(), a.span, Some(a))?;
            irargs.push(self.read(ta, a.span)?);
        }
        Ok(TExp::rvalue(
            sig.ret.clone(),
            IrExpr {
                ty: sig.ret.clone(),
                kind: ExprKind::Call {
                    callee: Callee::Direct(mid),
                    args: irargs,
                },
            },
        ))
    }

    fn struct_init(
        &mut self,
        ty: &Ty,
        args: &[(Option<terra_syntax::Name>, SpecExpr)],
        span: Span,
    ) -> EvalResult<TExp> {
        let Ty::Struct(sid) = ty else {
            return Err(terr("struct literal requires a struct type", span));
        };
        self.interp.finalize_struct(*sid, span)?;
        let fields: Vec<(std::sync::Arc<str>, u64, Ty)> = {
            let layout = self.interp.ctx.types.layout(*sid);
            layout
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.offset, f.ty.clone()))
                .collect()
        };
        let tmp = self.add_temp(ty.clone(), true);
        let base = |fty: &Ty, off: u64| IrExpr {
            ty: fty.clone().ptr_to(),
            kind: if off == 0 {
                ExprKind::LocalAddr(tmp)
            } else {
                ExprKind::Binary {
                    op: BinKind::Add,
                    lhs: Box::new(IrExpr {
                        ty: fty.clone().ptr_to(),
                        kind: ExprKind::LocalAddr(tmp),
                    }),
                    rhs: Box::new(IrExpr::int64(off as i64)),
                }
            },
        };
        // Zero first when partially initialized.
        if args.len() < fields.len() {
            let size = ty.size(&self.interp.ctx.types);
            self.prelude.push(IrStmt::synthesized(
                span,
                StmtKind::Expr(IrExpr {
                    ty: Ty::U8.ptr_to(),
                    kind: ExprKind::Call {
                        callee: Callee::Builtin(Builtin::Memset),
                        args: vec![
                            IrExpr {
                                ty: Ty::U8.ptr_to(),
                                kind: ExprKind::LocalAddr(tmp),
                            },
                            IrExpr::int32(0),
                            IrExpr {
                                ty: Ty::U64,
                                kind: ExprKind::ConstInt(size as i64),
                            },
                        ],
                    },
                }),
            ));
        }
        for (i, (fname, fe)) in args.iter().enumerate() {
            let (fname2, offset, fty) = match fname {
                Some(n) => {
                    let f = fields
                        .iter()
                        .find(|(fn_, _, _)| **fn_ == **n)
                        .ok_or_else(|| {
                            terr(
                                format!(
                                    "struct {} has no field '{n}'",
                                    self.interp.ctx.types.name(*sid)
                                ),
                                fe.span,
                            )
                        })?;
                    f.clone()
                }
                None => fields
                    .get(i)
                    .cloned()
                    .ok_or_else(|| terr("too many initializers for struct", fe.span))?,
            };
            let _ = fname2;
            let t = self.expr(fe, Some(&fty))?;
            let t = self.convert(t, &fty, fe.span, Some(fe))?;
            if is_aggregate(&fty) {
                let src = self.addr(t, fe.span)?;
                let dst = base(&fty, offset);
                let size = fty.size(&self.interp.ctx.types);
                self.prelude
                    .push(IrStmt::at(fe.span, StmtKind::CopyMem { dst, src, size }));
            } else {
                let v = self.read(t, fe.span)?;
                let addr = base(&fty, offset);
                self.prelude
                    .push(IrStmt::at(fe.span, StmtKind::Store { addr, value: v }));
            }
        }
        Ok(TExp {
            ty: ty.clone(),
            val: TVal::PlaceMem(IrExpr {
                ty: ty.clone().ptr_to(),
                kind: ExprKind::LocalAddr(tmp),
            }),
        })
    }

    fn binop(
        &mut self,
        op: BinOp,
        l: &SpecExpr,
        r: &SpecExpr,
        hint: Option<&Ty>,
        span: Span,
    ) -> EvalResult<TExp> {
        use BinOp::*;
        match op {
            And | Or => {
                let lt = self.expr(l, hint)?;
                if lt.ty == Ty::BOOL {
                    // Short-circuit via lazy Select.
                    let c = self.read(lt, l.span)?;
                    let rt = self.expr(r, Some(&Ty::BOOL))?;
                    if rt.ty != Ty::BOOL {
                        return Err(terr("logical operator requires bool operands", r.span));
                    }
                    let rv = self.read(rt, r.span)?;
                    let (tv, fv) = if op == And {
                        (rv, IrExpr::boolean(false))
                    } else {
                        (IrExpr::boolean(true), rv)
                    };
                    return Ok(TExp::rvalue(
                        Ty::BOOL,
                        IrExpr {
                            ty: Ty::BOOL,
                            kind: ExprKind::Select {
                                cond: Box::new(c),
                                then_value: Box::new(tv),
                                else_value: Box::new(fv),
                            },
                        },
                    ));
                }
                // Integer bitwise and/or.
                let rt = self.expr(r, Some(&lt.ty.clone()))?;
                let (a, b, ty) = self.unify_arith(lt, rt, l, r, span)?;
                if !ty.is_integer() {
                    return Err(terr("bitwise and/or requires integer operands", span));
                }
                let kind = if op == And { BinKind::And } else { BinKind::Or };
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::Binary {
                            op: kind,
                            lhs: Box::new(a),
                            rhs: Box::new(b),
                        },
                    },
                ))
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let lt = self.expr(l, None)?;
                let rt = self.expr(r, Some(&lt.ty.clone()))?;
                let ck = match op {
                    Eq => CmpKind::Eq,
                    Ne => CmpKind::Ne,
                    Lt => CmpKind::Lt,
                    Le => CmpKind::Le,
                    Gt => CmpKind::Gt,
                    Ge => CmpKind::Ge,
                    _ => unreachable!(),
                };
                // Pointer comparisons.
                if lt.ty.is_pointer() || rt.ty.is_pointer() {
                    let target = if lt.ty.is_pointer() {
                        lt.ty.clone()
                    } else {
                        rt.ty.clone()
                    };
                    let a0 = self.convert(lt, &target, l.span, Some(l))?;
                    let b0 = self.convert(rt, &target, r.span, Some(r))?;
                    let a = self.read(a0, l.span)?;
                    let b = self.read(b0, r.span)?;
                    return Ok(TExp::rvalue(Ty::BOOL, IrExpr::cmp(ck, a, b)));
                }
                if lt.ty == Ty::BOOL && rt.ty == Ty::BOOL && matches!(op, Eq | Ne) {
                    let a = self.read(lt, l.span)?;
                    let b = self.read(rt, r.span)?;
                    return Ok(TExp::rvalue(Ty::BOOL, IrExpr::cmp(ck, a, b)));
                }
                let (a, b, _ty) = self.unify_arith(lt, rt, l, r, span)?;
                Ok(TExp::rvalue(Ty::BOOL, IrExpr::cmp(ck, a, b)))
            }
            Add | Sub => {
                let lt = self.expr(l, hint)?;
                let rt = self.expr(r, Some(&lt.ty.clone()))?;
                // Pointer arithmetic.
                if let Ty::Ptr(elem) = lt.ty.clone() {
                    let size = elem.size(&self.interp.ctx.types);
                    if rt.ty.is_integer() {
                        let base = self.read(lt, l.span)?;
                        let idx = self.read(rt, r.span)?;
                        let idx = if op == Sub {
                            IrExpr {
                                ty: idx.ty.clone(),
                                kind: ExprKind::Unary {
                                    op: UnKind::Neg,
                                    expr: Box::new(idx),
                                },
                            }
                        } else {
                            idx
                        };
                        let addr = self.ptr_offset(base, idx, size);
                        return Ok(TExp::rvalue(addr.ty.clone(), addr));
                    }
                    if rt.ty.is_pointer() && op == Sub {
                        let a = self.read(lt, l.span)?;
                        let b = self.read(rt, r.span)?;
                        let diff = IrExpr {
                            ty: Ty::I64,
                            kind: ExprKind::Binary {
                                op: BinKind::Sub,
                                lhs: Box::new(IrExpr {
                                    ty: Ty::I64,
                                    kind: a.kind,
                                }),
                                rhs: Box::new(IrExpr {
                                    ty: Ty::I64,
                                    kind: b.kind,
                                }),
                            },
                        };
                        let result =
                            IrExpr::binary(BinKind::Div, diff, IrExpr::int64(size.max(1) as i64));
                        return Ok(TExp::rvalue(Ty::I64, result));
                    }
                    return Err(terr("invalid pointer arithmetic", span));
                }
                let kind = if op == Add {
                    BinKind::Add
                } else {
                    BinKind::Sub
                };
                self.arith(kind, lt, rt, l, r, span)
            }
            Mul | Div | Mod => {
                let lt = self.expr(l, hint)?;
                let rt = self.expr(r, Some(&lt.ty.clone()))?;
                let kind = match op {
                    Mul => BinKind::Mul,
                    Div => BinKind::Div,
                    _ => BinKind::Rem,
                };
                self.arith(kind, lt, rt, l, r, span)
            }
            Pow => {
                let lt = self.expr(l, hint)?;
                let rt = self.expr(r, Some(&lt.ty.clone()))?;
                if lt.ty.is_integer() && rt.ty.is_integer() {
                    return self.arith(BinKind::Xor, lt, rt, l, r, span);
                }
                // Floating pow via the C library.
                let a0 = self.convert(lt, &Ty::F64, l.span, Some(l))?;
                let b0 = self.convert(rt, &Ty::F64, r.span, Some(r))?;
                let a = self.read(a0, l.span)?;
                let b = self.read(b0, r.span)?;
                Ok(TExp::rvalue(
                    Ty::F64,
                    IrExpr {
                        ty: Ty::F64,
                        kind: ExprKind::Call {
                            callee: Callee::Builtin(Builtin::Pow),
                            args: vec![a, b],
                        },
                    },
                ))
            }
            Shl | Shr => {
                let lt = self.expr(l, hint)?;
                let rt = self.expr(r, Some(&lt.ty.clone()))?;
                if !lt.ty.is_integer() || !rt.ty.is_integer() {
                    return Err(terr("shift requires integer operands", span));
                }
                let ty = lt.ty.clone();
                let kind = if op == Shl {
                    BinKind::Shl
                } else {
                    BinKind::Shr
                };
                let a = self.read(lt, l.span)?;
                let b = self.read(rt, r.span)?;
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::Binary {
                            op: kind,
                            lhs: Box::new(a),
                            rhs: Box::new(b),
                        },
                    },
                ))
            }
            Concat => Err(terr("'..' is not a Terra operator", span)),
        }
    }

    fn arith(
        &mut self,
        kind: BinKind,
        lt: TExp,
        rt: TExp,
        l: &SpecExpr,
        r: &SpecExpr,
        span: Span,
    ) -> EvalResult<TExp> {
        let (a, b, ty) = self.unify_arith(lt, rt, l, r, span)?;
        Ok(TExp::rvalue(
            ty.clone(),
            IrExpr {
                ty,
                kind: ExprKind::Binary {
                    op: kind,
                    lhs: Box::new(a),
                    rhs: Box::new(b),
                },
            },
        ))
    }

    /// Unifies two arithmetic (or vector) operands, inserting conversions.
    fn unify_arith(
        &mut self,
        lt: TExp,
        rt: TExp,
        l: &SpecExpr,
        r: &SpecExpr,
        span: Span,
    ) -> EvalResult<(IrExpr, IrExpr, Ty)> {
        let target: Ty = match (&lt.ty, &rt.ty) {
            (Ty::Vector(s1, n1), Ty::Vector(s2, n2)) => {
                if s1 != s2 || n1 != n2 {
                    return Err(terr("vector operands must have identical types", span));
                }
                lt.ty.clone()
            }
            (Ty::Vector(..), t2) if t2.is_arithmetic() => lt.ty.clone(),
            (t1, Ty::Vector(..)) if t1.is_arithmetic() => rt.ty.clone(),
            (Ty::Scalar(s1), Ty::Scalar(s2))
                if (s1.is_integer() || s1.is_float()) && (s2.is_integer() || s2.is_float()) =>
            {
                if s1.conversion_rank() >= s2.conversion_rank() {
                    lt.ty.clone()
                } else {
                    rt.ty.clone()
                }
            }
            (t1, t2) => {
                return Err(terr(
                    format!(
                        "invalid operand types {} and {}",
                        t1.display(&self.interp.ctx.types),
                        t2.display(&self.interp.ctx.types)
                    ),
                    span,
                ))
            }
        };
        let lt = self.convert(lt, &target, l.span, Some(l))?;
        let rt = self.convert(rt, &target, r.span, Some(r))?;
        let a = self.read(lt, l.span)?;
        let b = self.read(rt, r.span)?;
        Ok((a, b, target))
    }

    fn unop(&mut self, op: UnOp, x: &SpecExpr, hint: Option<&Ty>, span: Span) -> EvalResult<TExp> {
        let t = self.expr(x, hint)?;
        match op {
            UnOp::Neg => {
                let ty = t.ty.clone();
                if !(ty.is_arithmetic() || matches!(ty, Ty::Vector(..))) {
                    return Err(terr(
                        format!("cannot negate {}", ty.display(&self.interp.ctx.types)),
                        span,
                    ));
                }
                let v = self.read(t, span)?;
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::Unary {
                            op: UnKind::Neg,
                            expr: Box::new(v),
                        },
                    },
                ))
            }
            UnOp::Not => {
                let ty = t.ty.clone();
                if ty != Ty::BOOL && !ty.is_integer() {
                    return Err(terr("'not' requires a bool or integer operand", span));
                }
                let v = self.read(t, span)?;
                Ok(TExp::rvalue(
                    ty.clone(),
                    IrExpr {
                        ty,
                        kind: ExprKind::Unary {
                            op: UnKind::Not,
                            expr: Box::new(v),
                        },
                    },
                ))
            }
            UnOp::Len => Err(terr("'#' is not a Terra operator", span)),
        }
    }

    // -- conversions ---------------------------------------------------------

    /// Implicit conversion with user-`__cast` fallback.
    fn convert(
        &mut self,
        t: TExp,
        target: &Ty,
        span: Span,
        origin: Option<&SpecExpr>,
    ) -> EvalResult<TExp> {
        if &t.ty == target {
            return Ok(t);
        }
        if let Some(res) = self.try_implicit(&t, target, span)? {
            return Ok(res);
        }
        // User-defined conversions when structs are involved.
        if let Some(origin) = origin {
            if let Some(res) = self.try_user_cast(&t.ty.clone(), target, origin, span)? {
                return Ok(res);
            }
        }
        Err(terr(
            format!(
                "cannot convert {} to {}",
                t.ty.display(&self.interp.ctx.types),
                target.display(&self.interp.ctx.types)
            ),
            span,
        ))
    }

    fn try_implicit(&mut self, t: &TExp, target: &Ty, span: Span) -> EvalResult<Option<TExp>> {
        // Arithmetic conversions.
        if t.ty.is_arithmetic() && target.is_arithmetic() {
            let v = self.read(t.clone(), span)?;
            return Ok(Some(TExp::rvalue(
                target.clone(),
                IrExpr {
                    ty: target.clone(),
                    kind: ExprKind::Cast(Box::new(v)),
                },
            )));
        }
        if t.ty == Ty::BOOL && target.is_arithmetic() {
            let v = self.read(t.clone(), span)?;
            return Ok(Some(TExp::rvalue(
                target.clone(),
                IrExpr {
                    ty: target.clone(),
                    kind: ExprKind::Cast(Box::new(v)),
                },
            )));
        }
        // Scalar → vector broadcast.
        if let Ty::Vector(s, _) = target {
            if t.ty.is_arithmetic() || t.ty == Ty::BOOL {
                let scalar = Ty::Scalar(*s);
                let v0 = self.convert(t.clone(), &scalar, span, None)?;
                let v = self.read(v0, span)?;
                return Ok(Some(TExp::rvalue(
                    target.clone(),
                    IrExpr {
                        ty: target.clone(),
                        kind: ExprKind::Cast(Box::new(v)),
                    },
                )));
            }
        }
        // Null to any pointer.
        if matches!(
            t.val,
            TVal::R(IrExpr {
                kind: ExprKind::ConstNull,
                ..
            })
        ) && target.is_pointer()
        {
            return Ok(Some(TExp::rvalue(
                target.clone(),
                IrExpr {
                    ty: target.clone(),
                    kind: ExprKind::ConstNull,
                },
            )));
        }
        // void* (modeled as &uint8) to/from any pointer.
        let voidish = |ty: &Ty| matches!(ty, Ty::Ptr(p) if **p == Ty::U8);
        if t.ty.is_pointer() && target.is_pointer() && (voidish(&t.ty) || voidish(target)) {
            let v = self.read(t.clone(), span)?;
            return Ok(Some(TExp::rvalue(
                target.clone(),
                IrExpr {
                    ty: target.clone(),
                    kind: ExprKind::Cast(Box::new(v)),
                },
            )));
        }
        // Array decay.
        if let (Ty::Array(elem, _), Ty::Ptr(want)) = (&t.ty, target) {
            if elem == want {
                let addr = self.addr(t.clone(), span)?;
                return Ok(Some(TExp::rvalue(
                    target.clone(),
                    IrExpr {
                        ty: target.clone(),
                        kind: addr.kind,
                    },
                )));
            }
        }
        Ok(None)
    }

    fn try_user_cast(
        &mut self,
        from: &Ty,
        target: &Ty,
        origin: &SpecExpr,
        span: Span,
    ) -> EvalResult<Option<TExp>> {
        let struct_of = |ty: &Ty| -> Option<terra_ir::StructId> {
            match ty {
                Ty::Struct(s) => Some(*s),
                Ty::Ptr(p) => match &**p {
                    Ty::Struct(s) => Some(*s),
                    _ => None,
                },
                _ => None,
            }
        };
        let candidates: Vec<terra_ir::StructId> = [struct_of(from), struct_of(target)]
            .into_iter()
            .flatten()
            .collect();
        for sid in candidates {
            let mm = self
                .interp
                .ctx
                .struct_meta(sid)
                .metamethods
                .borrow()
                .get_str("__cast");
            if !mm.truthy() {
                continue;
            }
            let quote = LuaValue::Quote(Rc::new(crate::spec::SpecQuote {
                stmts: vec![],
                exprs: vec![origin.clone()],
                span,
            }));
            let result = self.interp.call_value(
                mm,
                vec![
                    LuaValue::Type(from.clone()),
                    LuaValue::Type(target.clone()),
                    quote,
                ],
                span,
            );
            match result {
                Ok(values) => {
                    let v = values.into_iter().next().unwrap_or(LuaValue::Nil);
                    let spec = crate::spec::lua_to_spec(self.interp, v, span)?;
                    let t = self.expr(&spec, Some(target))?;
                    if &t.ty == target {
                        return Ok(Some(t));
                    }
                    if let Some(conv) = self.try_implicit(&t, target, span)? {
                        return Ok(Some(conv));
                    }
                    return Err(terr(
                        format!(
                            "__cast produced {} instead of {}",
                            t.ty.display(&self.interp.ctx.types),
                            target.display(&self.interp.ctx.types)
                        ),
                        span,
                    ));
                }
                Err(_) => continue, // this type's __cast rejected; try the other
            }
        }
        Ok(None)
    }

    /// Explicit cast `T(e)`: everything implicit, plus pointer↔pointer,
    /// pointer↔integer, and float→int conversions.
    fn explicit_cast(
        &mut self,
        t: TExp,
        target: &Ty,
        span: Span,
        origin: Option<&SpecExpr>,
    ) -> EvalResult<TExp> {
        if &t.ty == target {
            return Ok(t);
        }
        if let Some(res) = self.try_implicit(&t, target, span)? {
            return Ok(res);
        }
        let ok = matches!(
            (&t.ty, target),
            (Ty::Ptr(_), Ty::Ptr(_))
                | (Ty::Ptr(_), Ty::Func(_))
                | (Ty::Func(_), Ty::Ptr(_))
                | (Ty::Func(_), Ty::Func(_))
        ) || (t.ty.is_pointer() && target.is_integer())
            || (t.ty.is_integer() && target.is_pointer())
            || matches!((&t.ty, target), (Ty::Array(..), Ty::Ptr(_)));
        if ok {
            let v = match (&t.ty, &t.val) {
                (Ty::Array(..), _) => self.addr(t.clone(), span)?,
                _ => self.read(t, span)?,
            };
            return Ok(TExp::rvalue(
                target.clone(),
                IrExpr {
                    ty: target.clone(),
                    kind: ExprKind::Cast(Box::new(v)),
                },
            ));
        }
        if let Some(origin) = origin {
            if let Some(res) = self.try_user_cast(&t.ty.clone(), target, origin, span)? {
                return Ok(res);
            }
        }
        Err(terr(
            format!(
                "invalid cast from {} to {}",
                t.ty.display(&self.interp.ctx.types),
                target.display(&self.interp.ctx.types)
            ),
            span,
        ))
    }
}

/// Zero value of a register-class type.
fn zero_of(ty: &Ty) -> IrExpr {
    let kind = match ty {
        Ty::Scalar(s) if s.is_float() => ExprKind::ConstFloat(0.0),
        Ty::Scalar(ScalarTy::Bool) => ExprKind::ConstBool(false),
        Ty::Ptr(_) | Ty::Func(_) => ExprKind::ConstNull,
        // A vector zero is a splat of its element's zero; a bare integer
        // constant with vector type would be ill-typed IR.
        Ty::Vector(s, _) => ExprKind::Cast(Box::new(zero_of(&Ty::Scalar(*s)))),
        _ => ExprKind::ConstInt(0),
    };
    IrExpr {
        ty: ty.clone(),
        kind,
    }
}

fn const_num(ty: Ty, n: f64) -> TExp {
    let kind = match &ty {
        Ty::Scalar(s) if s.is_float() => ExprKind::ConstFloat(n),
        Ty::Scalar(ScalarTy::Bool) => ExprKind::ConstBool(n != 0.0),
        _ => ExprKind::ConstInt(n as i64),
    };
    TExp::rvalue(ty.clone(), IrExpr { ty, kind })
}

/// The "natural" type of an expression used without context.
fn default_ty(t: &Ty) -> Ty {
    t.clone()
}
