//! Tests of the pure-Lua side of the interpreter: values, control flow,
//! closures, metatables, and the standard library.

use terra_eval::{Interp, LuaValue};

fn eval_num(src: &str) -> f64 {
    let mut t = Interp::new();
    let out = t.exec(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    match out.first() {
        Some(LuaValue::Number(n)) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn eval_str(src: &str) -> String {
    let mut t = Interp::new();
    let out = t.exec(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    match out.first() {
        Some(LuaValue::Str(s)) => s.to_string(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn output_of(src: &str) -> String {
    let mut t = Interp::new();
    t.capture_output();
    t.exec(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    t.take_output()
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(eval_num("return 1 + 2 * 3"), 7.0);
    assert_eq!(eval_num("return (1 + 2) * 3"), 9.0);
    assert_eq!(eval_num("return 2 ^ 3 ^ 2"), 512.0); // right assoc
    assert_eq!(eval_num("return -2 ^ 2"), -4.0); // ^ binds tighter than unary
    assert_eq!(eval_num("return 7 % 3"), 1.0);
    assert_eq!(eval_num("return 10 / 4"), 2.5);
}

#[test]
fn string_ops() {
    assert_eq!(eval_str(r#"return "a" .. "b" .. 1"#), "ab1");
    assert_eq!(eval_num(r#"return #"hello""#), 5.0);
    assert_eq!(
        eval_str(r#"return string.format("%d-%s-%.2f", 3, "x", 1.5)"#),
        "3-x-1.50"
    );
    assert_eq!(eval_str(r#"return string.sub("hello", 2, 4)"#), "ell");
    assert_eq!(eval_str(r#"return string.sub("hello", -3)"#), "llo");
    assert_eq!(eval_str(r#"return string.rep("ab", 3)"#), "ababab");
}

#[test]
fn locals_scoping_and_shadowing() {
    let src = r#"
        local x = 1
        do
            local x = 2
        end
        return x
    "#;
    assert_eq!(eval_num(src), 1.0);
}

#[test]
fn while_repeat_for() {
    assert_eq!(
        eval_num("local s = 0 local i = 1 while i <= 10 do s = s + i i = i + 1 end return s"),
        55.0
    );
    assert_eq!(
        eval_num("local s = 0 repeat s = s + 1 until s >= 5 return s"),
        5.0
    );
    assert_eq!(
        eval_num("local s = 0 for i = 1, 10 do s = s + i end return s"),
        55.0
    );
    assert_eq!(
        eval_num("local s = 0 for i = 10, 1, -2 do s = s + i end return s"),
        30.0
    );
    assert_eq!(
        eval_num("local s = 0 for i = 1, 10 do if i > 3 then break end s = s + i end return s"),
        6.0
    );
}

#[test]
fn closures_capture_environment() {
    let src = r#"
        local function counter()
            local n = 0
            return function()
                n = n + 1
                return n
            end
        end
        local c = counter()
        c(); c()
        return c()
    "#;
    assert_eq!(eval_num(src), 3.0);
}

#[test]
fn recursion_and_mutual_recursion() {
    assert_eq!(
        eval_num(
            "local function fact(n) if n == 0 then return 1 end return n * fact(n - 1) end \
             return fact(10)"
        ),
        3628800.0
    );
    let src = r#"
        local isodd
        local function iseven(n) if n == 0 then return true end return isodd(n - 1) end
        isodd = function(n) if n == 0 then return false end return iseven(n - 1) end
        if iseven(10) then return 1 else return 0 end
    "#;
    assert_eq!(eval_num(src), 1.0);
}

#[test]
fn multiple_returns_and_varargs() {
    assert_eq!(
        eval_num("local function mr() return 1, 2, 3 end local a, b, c = mr() return a + b + c"),
        6.0
    );
    assert_eq!(
        eval_num(
            "local function sum(...) local t = {...} local s = 0 \
             for i = 1, #t do s = s + t[i] end return s end return sum(1, 2, 3, 4)"
        ),
        10.0
    );
    // Truncation in the middle of a list.
    assert_eq!(
        eval_num("local function mr() return 1, 2 end local a, b = mr(), 10 return a + b"),
        11.0
    );
    assert_eq!(eval_num("return select('#', 1, 2, 3)"), 3.0);
}

#[test]
fn tables_and_length() {
    assert_eq!(eval_num("local t = {1, 2, 3} return #t"), 3.0);
    assert_eq!(
        eval_num("local t = {} t[1] = 5 t.x = 7 return t[1] + t.x"),
        12.0
    );
    assert_eq!(
        eval_num("local t = {a = 1, b = 2, 10, 20} return t[2] + t.b"),
        22.0
    );
    assert_eq!(
        eval_num("local t = {} table.insert(t, 4) table.insert(t, 1, 3) return t[1] * 10 + t[2]"),
        34.0
    );
    assert_eq!(
        eval_num("local t = {3, 1, 2} table.sort(t) return t[1] * 100 + t[2] * 10 + t[3]"),
        123.0
    );
    assert_eq!(eval_str("return table.concat({'a','b','c'}, '-')"), "a-b-c");
}

#[test]
fn pairs_and_ipairs() {
    assert_eq!(
        eval_num("local s = 0 for i, v in ipairs({5, 6, 7}) do s = s + i * v end return s"),
        5.0 + 12.0 + 21.0
    );
    let src = r#"
        local t = {x = 1, y = 2, z = 3}
        local s = 0
        for k, v in pairs(t) do s = s + v end
        return s
    "#;
    assert_eq!(eval_num(src), 6.0);
}

#[test]
fn metatables_index_and_call() {
    let src = r#"
        local base = {greet = function(self) return self.name end}
        local obj = setmetatable({name = "terra"}, {__index = base})
        return obj:greet()
    "#;
    assert_eq!(eval_str(src), "terra");
    let src = r#"
        local callable = setmetatable({}, {__call = function(self, x) return x * 2 end})
        return callable(21)
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn metatables_arithmetic() {
    let src = r#"
        local mt = {}
        mt.__add = function(a, b) return setmetatable({v = a.v + b.v}, mt) end
        mt.__mul = function(a, b) return setmetatable({v = a.v * b.v}, mt) end
        mt.__unm = function(a) return setmetatable({v = -a.v}, mt) end
        local a = setmetatable({v = 3}, mt)
        local b = setmetatable({v = 4}, mt)
        return (-(a + b) * a).v
    "#;
    assert_eq!(eval_num(src), -21.0);
}

#[test]
fn pcall_and_error() {
    let src = r#"
        local ok, msg = pcall(function() error("boom") end)
        if ok then return "no" end
        return msg
    "#;
    assert!(eval_str(src).contains("boom"));
    assert_eq!(
        eval_num("local ok, v = pcall(function() return 9 end) return v"),
        9.0
    );
}

#[test]
fn print_and_tostring() {
    assert_eq!(output_of("print('hi', 1, true, nil)"), "hi\t1\ttrue\tnil\n");
    assert_eq!(eval_str("return tostring(42)"), "42");
    assert_eq!(eval_str("return tostring(1.5)"), "1.5");
    assert_eq!(eval_num("return tonumber('  12 ')"), 12.0);
}

#[test]
fn logical_operators_return_operands() {
    assert_eq!(eval_num("return false or 5"), 5.0);
    assert_eq!(eval_num("return nil and 3 or 7"), 7.0);
    assert_eq!(eval_num("return 2 and 3"), 3.0);
    // Short-circuit: rhs must not run.
    assert_eq!(
        eval_num("local hit = 0 local _ = true or (function() hit = 1 end)() return hit"),
        0.0
    );
}

#[test]
fn math_library() {
    assert_eq!(eval_num("return math.floor(3.7)"), 3.0);
    assert_eq!(eval_num("return math.max(1, 9, 4)"), 9.0);
    assert_eq!(eval_num("return math.min(3, -2, 8)"), -2.0);
    assert_eq!(eval_num("return math.sqrt(81)"), 9.0);
    assert!(eval_num("math.randomseed(7) return math.random()") < 1.0);
    let n = eval_num("math.randomseed(7) return math.random(10)");
    assert!((1.0..=10.0).contains(&n));
}

#[test]
fn assignment_to_undeclared_is_global() {
    let src = r#"
        local function set() G = 11 end
        set()
        return G
    "#;
    assert_eq!(eval_num(src), 11.0);
}

#[test]
fn generic_for_with_custom_iterator() {
    let src = r#"
        local function range(n)
            local i = 0
            return function()
                i = i + 1
                if i <= n then return i end
            end
        end
        local s = 0
        for v in range(4) do s = s + v end
        return s
    "#;
    assert_eq!(eval_num(src), 10.0);
}

#[test]
fn require_loads_registered_modules() {
    let mut t = Interp::new();
    t.module_sources
        .insert("answer".to_string(), "return { value = 42 }".to_string());
    let out = t.exec("local m = require 'answer' return m.value").unwrap();
    assert!(matches!(out[0], LuaValue::Number(n) if n == 42.0));
    // Cached: same table on second require.
    let out = t
        .exec("return require('answer') == require('answer')")
        .unwrap();
    assert!(matches!(out[0], LuaValue::Bool(true)));
}

#[test]
fn terralib_newlist() {
    let src = r#"
        local l = terralib.newlist()
        l:insert(1)
        l:insert(2)
        local doubled = l:map(function(x) return x * 2 end)
        local l2 = terralib.newlist({10})
        l2:insertall(doubled)
        return l2[1] + l2[2] + l2[3]
    "#;
    assert_eq!(eval_num(src), 16.0);
}
