//! End-to-end tests of `parallelfor`: source syntax through kernel
//! extraction, capture analysis, dependency linking, and the chunked
//! parallel runtime (sequential at the default `threads = 1`, and
//! bit-identical to the threaded schedule at `threads > 1`).

use terra_eval::{Interp, LuaValue};

fn eval_num(src: &str) -> f64 {
    eval_num_threads(src, 1)
}

fn eval_num_threads(src: &str, threads: usize) -> f64 {
    let mut t = Interp::new();
    t.ctx.exec.set_threads(threads);
    let out = t.exec(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    match out.first() {
        Some(LuaValue::Number(n)) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn eval_err(src: &str) -> String {
    let mut t = Interp::new();
    match t.exec(src) {
        Ok(_) => panic!("expected error for {src}"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn parallelfor_fills_heap_buffer() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        terra sum_squares(n : int) : int
            var buf = [&int](std.malloc(n * 4))
            parallelfor i = 0, n do
                buf[i] = i * i
            end
            var total = 0
            for i = 0, n do total = total + buf[i] end
            std.free(buf)
            return total
        end
        return sum_squares(100)
    "#;
    // sum of i^2 for i in 0..100
    assert_eq!(eval_num(src), 328350.0);
}

#[test]
fn register_captures_pass_by_value() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        terra scaled(n : int, k : int) : int
            var buf = [&int](std.malloc(n * 4))
            var off = k + 1
            parallelfor i = 0, n do
                buf[i] = i * k + off
            end
            var total = 0
            for i = 0, n do total = total + buf[i] end
            std.free(buf)
            return total
        end
        return scaled(10, 3)
    "#;
    // 3 * (0+..+9) + 10 * 4 = 135 + 40
    assert_eq!(eval_num(src), 175.0);
}

#[test]
fn in_memory_capture_shares_the_parent_frame() {
    // `total` is address-taken, so it lives in the parent frame and the
    // kernel sees it through a captured pointer value.
    let src = r#"
        terra acc(n : int) : int
            var total = 0
            var p = &total
            parallelfor i = 0, n do
                @p = @p + i
            end
            return total
        end
        return acc(10)
    "#;
    assert_eq!(eval_num(src), 45.0);
}

#[test]
fn kernel_may_call_other_terra_functions() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        terra square(x : int) : int return x * x end
        terra fill(n : int) : int
            var buf = [&int](std.malloc(n * 4))
            parallelfor i = 0, n do
                buf[i] = square(i)
            end
            var total = 0
            for i = 0, n do total = total + buf[i] end
            std.free(buf)
            return total
        end
        return fill(10)
    "#;
    assert_eq!(eval_num(src), 285.0);
}

#[test]
fn empty_range_runs_zero_iterations() {
    let src = r#"
        terra f() : int
            var total = 0
            var p = &total
            parallelfor i = 5, 5 do
                @p = @p + 1
            end
            return total
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 0.0);
}

#[test]
fn annotated_loop_variable_type() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        terra f(n : int) : int64
            var buf = [&int64](std.malloc(n * 8))
            parallelfor i : int64 = 0, n do
                buf[i] = i * 1000000000
            end
            var total : int64 = 0
            for i = 0, n do total = total + buf[i] end
            std.free(buf)
            return total
        end
        return f(4) / 1000000000
    "#;
    assert_eq!(eval_num(src), 6.0);
}

#[test]
fn threaded_result_matches_sequential() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        terra saxpy(n : int) : double
            var x = [&double](std.malloc(n * 8))
            var y = [&double](std.malloc(n * 8))
            for i = 0, n do
                x[i] = [double](i) * 0.5
                y[i] = [double](i)
            end
            parallelfor i = 0, n do
                y[i] = 2.0 * x[i] + y[i]
            end
            var total = 0.0
            for i = 0, n do total = total + y[i] end
            std.free(x)
            std.free(y)
            return total
        end
        return saxpy(1000)
    "#;
    let seq = eval_num_threads(src, 1);
    let par = eval_num_threads(src, 4);
    assert_eq!(seq.to_bits(), par.to_bits());
}

#[test]
fn assigning_a_register_capture_is_rejected() {
    let src = r#"
        terra bad(n : int) : int
            var k = 1
            parallelfor i = 0, n do
                k = k + 1
            end
            return k
        end
        return bad(10)
    "#;
    let err = eval_err(src);
    assert!(err.contains("cannot assign to 'k'"), "got: {err}");
}

#[test]
fn return_inside_parallelfor_is_rejected() {
    let src = r#"
        terra bad(n : int) : int
            parallelfor i = 0, n do
                return 1
            end
            return 0
        end
        return bad(10)
    "#;
    let err = eval_err(src);
    assert!(
        err.contains("return is not allowed inside parallelfor"),
        "got: {err}"
    );
}

#[test]
fn malloc_inside_kernel_traps() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        terra bad(n : int) : int
            parallelfor i = 0, n do
                var p = [&int](std.malloc(4))
                std.free(p)
            end
            return 0
        end
        return bad(10)
    "#;
    let err = eval_err(src);
    assert!(
        err.contains("not allowed inside a parallel loop"),
        "got: {err}"
    );
}

#[test]
fn kernel_trap_is_reported_deterministically() {
    // Division by zero at i = 7; the same trap must surface at any thread
    // count.
    let src = r#"
        terra bad(n : int) : int
            var total = 0
            var p = &total
            parallelfor i = 0, n do
                @p = @p + n / (i - 7)
            end
            return total
        end
        return bad(64)
    "#;
    let mut t1 = Interp::new();
    t1.ctx.exec.set_threads(1);
    let e1 = t1.exec(src).expect_err("should trap").to_string();
    let mut t4 = Interp::new();
    t4.ctx.exec.set_threads(4);
    let e4 = t4.exec(src).expect_err("should trap").to_string();
    assert_eq!(e1, e4);
    assert!(
        e1.contains("division by zero") || e1.contains("divide"),
        "got: {e1}"
    );
}
