//! Differential tests for bounds-check elision: the same random kernel,
//! compiled with elision on and off, must produce bit-identical results,
//! identical heap state, and identical trap behavior at every optimization
//! level — and the sanitizer must still catch seeded use-after-free and
//! out-of-bounds accesses when elision is enabled.

use proptest::prelude::*;
use terra_eval::{Interp, LuaValue};
use terra_ir::OptLevel;

mod common;
use common::RecConfig;

/// One access into the 8-slot stack array `a` (indices ≥ 8 trap).
#[derive(Debug, Clone)]
enum Access {
    /// `a[idx] = val` with a compile-time constant index (provable: the
    /// checkelim pass elides it when `idx < 8`, flags it when not).
    StoreConst { idx: u8, val: i8 },
    /// `for i = lo, hi do a[i + off] = i end` — provable from the loop
    /// bounds; traps when `hi - 1 + off >= 8`.
    StoreLoop { lo: u8, hi: u8, off: u8 },
    /// `a[(n + k) % 8] = k` — the index flows through `%`, which the
    /// analysis bounds to `[0, 7]`.
    StoreRem { k: u8 },
    /// `a[n] = val` — a runtime index the analysis cannot prove; stays
    /// checked and must behave identically either way.
    StoreParam { val: i8 },
    /// `s = s + a[idx]` accumulated into the checksum.
    LoadConst { idx: u8 },
}

fn access_txt(acc: &Access) -> String {
    match acc {
        Access::StoreConst { idx, val } => format!("a[{}] = {}", idx % 12, val),
        Access::StoreLoop { lo, hi, off } => {
            let (lo, hi, off) = (lo % 9, hi % 10, off % 3);
            format!("for i = {lo}, {hi} do a[i + {off}] = i end")
        }
        Access::StoreRem { k } => format!("a[(n + {k}) % 8] = {k}"),
        Access::StoreParam { val } => format!("a[n] = {val}"),
        Access::LoadConst { idx } => format!("s = s + a[{}]", idx % 12),
    }
}

fn program_txt(accs: &[Access]) -> String {
    let mut body = String::new();
    for acc in accs {
        body.push_str(&format!("    {}\n", access_txt(acc)));
    }
    format!(
        "local std = terralib.includec(\"stdlib.h\")\n\
         terra prog(n : int) : &double\n\
         \u{20}   var buf = [&double](std.malloc(16))\n\
         \u{20}   var a : int[8]\n\
         \u{20}   for i = 0, 8 do a[i] = 0 end\n\
         \u{20}   var s : int = 0\n\
         {body}\
         \u{20}   for i = 0, 8 do s = s + a[i] end\n\
         \u{20}   buf[0] = [double](s)\n\
         \u{20}   return buf\n\
         end\n\
         return prog"
    )
}

fn access_strategy() -> impl Strategy<Value = Access> {
    prop_oneof![
        (any::<u8>(), any::<i8>()).prop_map(|(idx, val)| Access::StoreConst { idx, val }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(lo, hi, off)| Access::StoreLoop {
            lo,
            hi,
            off
        }),
        any::<u8>().prop_map(|k| Access::StoreRem { k: k % 16 }),
        any::<i8>().prop_map(|val| Access::StoreParam { val }),
        any::<u8>().prop_map(|idx| Access::LoadConst { idx }),
    ]
}

/// Runs the kernel; returns the checksum read back from VM heap memory on
/// success or the trap message on failure.
fn run_at(level: OptLevel, elide: bool, src: &str, n: i32) -> Result<u64, String> {
    let mut t = Interp::new();
    t.opt = level;
    t.elide_checks = elide;
    t.exec(src).map_err(|e| e.to_string())?;
    let out = t
        .exec(&format!("return prog({n})"))
        .map_err(|e| e.to_string())?;
    let LuaValue::Number(addr) = out[0] else {
        panic!("prog must return a pointer, got {out:?}");
    };
    // The read itself is part of the differential: a kernel that stomps the
    // frame slot holding `buf` may return a bad pointer, and both runs must
    // then fail the same way.
    match t.ctx.exec.memory.load_f64(addr as u64) {
        Ok(v) => Ok(v.to_bits()),
        Err(e) => Err(e.to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Elision on and off agree — same checksum bits, same trap message —
    /// at every optimization level. (`-O0`/`-O1` never run checkelim, so
    /// those levels also pin that the flag is inert there.)
    #[test]
    fn elision_preserves_semantics_at_every_level(
        accs in proptest::collection::vec(access_strategy(), 1..8),
        n in 0i32..8,
    ) {
        let src = program_txt(&accs);
        let call = format!("return prog({n})");
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let on = run_at(level, true, &src, n);
            let off = run_at(level, false, &src, n);
            // On failure, the flight recorder bisects to the first
            // divergent heap effect rather than just "checksums differ".
            let bisect = if on == off {
                String::new()
            } else {
                let mut unchecked = RecConfig::at(level);
                unchecked.elide_checks = false;
                common::divergence_report(&src, &call, RecConfig::at(level), unchecked)
            };
            prop_assert_eq!(
                &on, &off,
                "elision changed behavior at {:?}\nprogram:\n{}\n{}", level, src, bisect
            );
        }
        // And the elided -O2 run agrees with the fully-checked -O0 run.
        let fast = run_at(OptLevel::O2, true, &src, n);
        let slow = run_at(OptLevel::O0, false, &src, n);
        let bisect = if fast == slow {
            String::new()
        } else {
            let mut checked0 = RecConfig::at(OptLevel::O0);
            checked0.elide_checks = false;
            common::divergence_report(&src, &call, RecConfig::at(OptLevel::O2), checked0)
        };
        prop_assert_eq!(&fast, &slow, "pipeline diverged for:\n{}\n{}", src, bisect);
    }
}

/// Guards against vacuous agreement: a known kernel must actually produce
/// its checksum, and a seeded constant OOB must trap, at every combination.
#[test]
fn harness_is_not_vacuous() {
    let good = program_txt(&[
        Access::StoreConst { idx: 3, val: 7 },
        Access::StoreLoop {
            lo: 0,
            hi: 4,
            off: 1,
        },
        Access::LoadConst { idx: 3 },
    ]);
    // A null store must trap identically everywhere — unlike a small
    // constant OOB, which lands inside the frame and cannot fault the VM's
    // whole-segment check.
    let bad =
        "terra prog(n : int) : int\n  var p : &int = nil\n  @p = 1\n  return 0\nend\nreturn prog";
    for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        for elide in [false, true] {
            let sum = run_at(level, elide, &good, 2).expect("good kernel must run");
            // a = [0,0,1,2,3,0,0,0]: the 7 in a[3] is overwritten by the
            // loop; LoadConst then adds a[3]=2, the final sweep adds 6.
            assert_eq!(f64::from_bits(sum), 8.0, "at {level:?} elide={elide}");
            let err = run_at(level, elide, bad, 0).expect_err("null store must trap");
            assert!(err.contains("invalid memory access"), "{err}");
        }
    }
}

/// The sanitizer catches a use-after-free even with elision enabled at
/// `-O2`: elision decisions never apply to sanitized runs.
#[test]
fn sanitizer_still_traps_uaf_with_elision_enabled() {
    let src = r#"
local std = terralib.includec("stdlib.h")
terra uaf() : double
  var a = [&double](std.malloc(64))
  a[2] = 7.0
  std.free([&int8](a))
  return a[2]
end
return uaf()
"#;
    let mut t = Interp::new();
    t.opt = OptLevel::O2;
    t.elide_checks = true;
    t.ctx.exec.memory.set_sanitize(true);
    let err = t.exec(src).expect_err("use-after-free must trap");
    assert!(err.to_string().contains("use-after-free"), "{err}");
}

/// The sanitizer also still catches a plain out-of-bounds heap access with
/// elision enabled (the access is unprovable, so it stays checked).
#[test]
fn sanitizer_still_traps_oob_with_elision_enabled() {
    let src = r#"
local std = terralib.includec("stdlib.h")
terra oob(i : int) : double
  var a = [&double](std.malloc(32))
  var v = a[i]
  std.free([&int8](a))
  return v
end
return oob(1000000000)
"#;
    let mut t = Interp::new();
    t.opt = OptLevel::O2;
    t.elide_checks = true;
    t.ctx.exec.memory.set_sanitize(true);
    let err = t.exec(src).expect_err("OOB must trap");
    assert!(err.to_string().contains("invalid memory access"), "{err}");
}
