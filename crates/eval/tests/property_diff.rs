//! Differential property tests: the same arithmetic evaluated three ways —
//! by the Lua interpreter, by compiled Terra code, and by the host — must
//! agree. This exercises the whole pipeline (parse → specialize → typecheck
//! → compile → VM) on random programs.

use proptest::prelude::*;
use terra_eval::{Interp, LuaValue};

/// A random f64 arithmetic expression over variables `a`, `b`, `c`, as both
/// source text and a host-side evaluator.
#[derive(Debug, Clone)]
enum E {
    Var(u8),
    K(i16),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn src(&self) -> String {
        match self {
            E::Var(i) => ["a", "b", "c"][*i as usize % 3].to_string(),
            E::K(v) => {
                if *v < 0 {
                    format!("({}.0)", v)
                } else {
                    format!("{}.0", v)
                }
            }
            E::Add(l, r) => format!("({} + {})", l.src(), r.src()),
            E::Sub(l, r) => format!("({} - {})", l.src(), r.src()),
            E::Mul(l, r) => format!("({} * {})", l.src(), r.src()),
            E::Neg(x) => format!("(-{})", x.src()),
        }
    }

    fn eval(&self, a: f64, b: f64, c: f64) -> f64 {
        match self {
            E::Var(i) => [a, b, c][*i as usize % 3],
            E::K(v) => *v as f64,
            E::Add(l, r) => l.eval(a, b, c) + r.eval(a, b, c),
            E::Sub(l, r) => l.eval(a, b, c) - r.eval(a, b, c),
            E::Mul(l, r) => l.eval(a, b, c) * r.eval(a, b, c),
            E::Neg(x) => -x.eval(a, b, c),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![any::<u8>().prop_map(E::Var), any::<i16>().prop_map(E::K)];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Mul(Box::new(l), Box::new(r))),
            inner.prop_map(|x| E::Neg(Box::new(x))),
        ]
    })
}

fn small_f64() -> impl Strategy<Value = f64> {
    // Exactly representable values so f64 arithmetic is deterministic and
    // identical on every path.
    (-1000i32..1000).prop_map(|v| v as f64 / 4.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lua evaluation, Terra compilation, and host evaluation agree on f64
    /// arithmetic.
    #[test]
    fn lua_terra_host_agree(e in expr_strategy(), a in small_f64(), b in small_f64(), c in small_f64()) {
        let src = e.src();
        let mut t = Interp::new();
        let chunk = format!(
            "terra tf(a : double, b : double, c : double) : double return {src} end\n\
             function lf(a, b, c) return {src} end\n\
             return tf({a:?}, {b:?}, {c:?}), lf({a:?}, {b:?}, {c:?})"
        );
        let out = t.exec(&chunk).unwrap();
        let host = e.eval(a, b, c);
        let LuaValue::Number(terra_v) = out[0] else { panic!("terra result") };
        let LuaValue::Number(lua_v) = out[1] else { panic!("lua result") };
        let eq = |x: f64, y: f64| x == y || (x.is_nan() && y.is_nan()) || (x - y).abs() <= 1e-9 * x.abs().max(1.0);
        prop_assert!(eq(terra_v, host), "terra {terra_v} vs host {host} for {src}");
        prop_assert!(eq(lua_v, host), "lua {lua_v} vs host {host} for {src}");
    }

    /// The same expression staged with constants spliced from Lua (escapes)
    /// equals the version taking runtime arguments.
    #[test]
    fn spliced_constants_equal_runtime_arguments(
        e in expr_strategy(), a in small_f64(), b in small_f64(), c in small_f64()
    ) {
        let src = e.src();
        let mut t = Interp::new();
        let chunk = format!(
            "local a, b, c = {a:?}, {b:?}, {c:?}\n\
             terra spliced() : double return {src} end\n\
             terra runtime(a : double, b : double, c : double) : double return {src} end\n\
             return spliced(), runtime(a, b, c)"
        );
        let out = t.exec(&chunk).unwrap();
        let LuaValue::Number(x) = out[0] else { panic!() };
        let LuaValue::Number(y) = out[1] else { panic!() };
        prop_assert!(x == y || (x.is_nan() && y.is_nan()), "{x} vs {y} for {src}");
    }

    /// Integer arithmetic in Terra wraps like i32; summing a staged unrolled
    /// loop equals the host sum.
    #[test]
    fn unrolled_integer_sums(terms in proptest::collection::vec(-100i32..100, 1..20)) {
        let mut t = Interp::new();
        let list = terms
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let chunk = format!(
            "local terms = {{ {list} }}\n\
             function gen()\n\
                 local acc = `0\n\
                 for i = 1, #terms do acc = acc + terms[i] end\n\
                 return acc\n\
             end\n\
             terra f() : int return [gen()] end\n\
             return f()"
        );
        let out = t.exec(&chunk).unwrap();
        let LuaValue::Number(got) = out[0] else { panic!() };
        let expect: i32 = terms.iter().sum();
        prop_assert_eq!(got as i32, expect);
    }

    /// Terra `for` loops match a host loop for arbitrary bounds and steps.
    #[test]
    fn for_loop_semantics(start in -50i64..50, len in 0i64..60, step in 1i64..7) {
        let stop = start + len;
        let mut t = Interp::new();
        let chunk = format!(
            "terra f() : int64\n\
                 var s : int64 = 0\n\
                 for i = {start}, {stop}, {step} do s = s + i end\n\
                 return s\n\
             end\n\
             return f()"
        );
        let out = t.exec(&chunk).unwrap();
        let LuaValue::Number(got) = out[0] else { panic!() };
        let mut expect = 0i64;
        let mut i = start;
        while i < stop {
            expect += i;
            i += step;
        }
        prop_assert_eq!(got as i64, expect);
    }

    /// Narrow unsigned arithmetic wraps at the type's width.
    #[test]
    fn u8_wrapping(a in any::<u8>(), b in any::<u8>()) {
        let mut t = Interp::new();
        let chunk = format!(
            "terra f(a : uint8, b : uint8) : uint8 return a * b + a end\n\
             return f({a}, {b})"
        );
        let out = t.exec(&chunk).unwrap();
        let LuaValue::Number(got) = out[0] else { panic!() };
        let expect = a.wrapping_mul(b).wrapping_add(a);
        prop_assert_eq!(got as u8, expect);
    }
}
