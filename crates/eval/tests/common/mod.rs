//! Shared flight-recorder glue for the differential proptest harnesses.
//!
//! When a differential test fails, "outputs differ" is a weak signal. The
//! helper here records both sides of the differential with the execution
//! flight recorder, aligns the recordings, re-records the first divergent
//! checkpoint window at full fidelity, and renders the first divergent
//! effect — function, source line, staging provenance — so the proptest
//! failure message says *where* the executions split, not just that they
//! did.

// Each test binary compiles its own copy of this module and uses a
// different subset of it.
#![allow(dead_code)]

use terra_eval::Interp;
use terra_ir::OptLevel;
use terra_trace::{replay, RecMeta, Recording};

/// One side of a differential: the configuration a program runs under.
#[derive(Debug, Clone, Copy)]
pub struct RecConfig {
    pub opt: OptLevel,
    pub elide_checks: bool,
    pub threads: usize,
    pub sanitize: bool,
}

impl RecConfig {
    /// A default configuration at the given opt level (checks elided,
    /// one thread, no sanitizer) — the common differential axis.
    pub fn at(opt: OptLevel) -> Self {
        RecConfig {
            opt,
            elide_checks: true,
            threads: 1,
            sanitize: false,
        }
    }

    fn opt_num(&self) -> u8 {
        match self.opt {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 2,
        }
    }

    fn meta(&self, window: Option<(u64, u64)>) -> RecMeta {
        RecMeta {
            // These runs re-execute from in-memory source, not a file.
            script: "<generated>".to_string(),
            opt: self.opt_num(),
            checkelim: self.elide_checks,
            sanitize: self.sanitize,
            // Tight cadence: generated programs are small, and small
            // windows keep the full-fidelity re-record cheap.
            cadence: 64,
            window,
        }
    }
}

/// Executes `setup` (definitions) then records `call` under `cfg`. A trap
/// during `call` still yields a usable partial recording.
pub fn record_at(
    setup: &str,
    call: &str,
    cfg: &RecConfig,
    window: Option<(u64, u64)>,
) -> Result<Recording, String> {
    let mut t = Interp::new();
    t.opt = cfg.opt;
    t.elide_checks = cfg.elide_checks;
    t.ctx.exec.set_threads(cfg.threads);
    if cfg.sanitize {
        t.ctx.exec.memory.set_sanitize(true);
    }
    t.capture_output();
    t.exec(setup).map_err(|e| e.to_string())?;
    t.ctx.exec.set_record(cfg.meta(window));
    let _ = t.exec(call);
    t.ctx
        .exec
        .take_recording()
        .ok_or_else(|| "recorder was not running".to_string())
}

/// Records `setup` + `call` under both configurations, diffs the
/// recordings, and renders the first divergence. Returns a rendered report
/// either way (clean differentials render as "0 divergences" — useful when
/// the outputs differed through a channel the recorder does not cover).
pub fn divergence_report(setup: &str, call: &str, a: RecConfig, b: RecConfig) -> String {
    let ra = match record_at(setup, call, &a, None) {
        Ok(r) => r,
        Err(e) => return format!("(flight recorder unavailable on side A: {e})"),
    };
    let rb = match record_at(setup, call, &b, None) {
        Ok(r) => r,
        Err(e) => return format!("(flight recorder unavailable on side B: {e})"),
    };
    match replay::diff(&ra, &rb, |meta, window| {
        // The meta names the side to re-record (recordings are
        // thread-count invariant, so identical metas mean either side's
        // config reproduces the same effect stream).
        let cfg = if *meta == a.meta(Some(window)) {
            &a
        } else {
            &b
        };
        record_at(setup, call, cfg, Some(window))
    }) {
        Ok(report) => report.render(),
        Err(e) => format!("(replay-diff failed: {e})"),
    }
}
