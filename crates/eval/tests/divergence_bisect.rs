//! End-to-end bisection of a seeded miscompile. `TERRA_TEST_MISCOMPILE`
//! flips a deliberate bug into the constant folder (`a * b` folds to
//! `a * b + 1` at `-O1`+), and the flight recorder must walk the `-O0` vs
//! `-O2` differential down to the first wrong store — naming the function,
//! the source line, and the staging provenance of the quote that generated
//! the store.
//!
//! This lives in its own test binary: the miscompile knob is latched once
//! per process (`OnceLock`), so it must not share a process with tests that
//! need a correct optimizer.

use terra_ir::OptLevel;

mod common;
use common::RecConfig;

/// The store is staged by a Lua `quote` and spliced into the loop, so the
/// divergence report must carry the "via quote at line N" provenance chain
/// in addition to the splice site's own line.
const SETUP: &str = r#"local std = terralib.includec("stdlib.h")

local function fill(buf, i)
  return quote
    buf[i] = 6 * 7
  end
end

terra prog(n : int) : double
  var buf = [&int32](std.malloc(n * 4))
  for i = 0, n do
    [fill(buf, i)]
  end
  var s = 0
  for i = 0, n do
    s = s + buf[i]
  end
  std.free(buf)
  return [double](s)
end
"#;

#[test]
fn seeded_miscompile_bisects_to_the_generated_store() {
    // Latch the miscompile before any optimizer runs in this process.
    std::env::set_var("TERRA_TEST_MISCOMPILE", "1");

    let report = common::divergence_report(
        SETUP,
        "return prog(10)",
        RecConfig::at(OptLevel::O0),
        RecConfig::at(OptLevel::O2),
    );

    // The miscompile only fires at -O1+, so the sides must diverge…
    assert!(
        report.contains("first divergent effect"),
        "expected a divergence, got:\n{report}"
    );
    // …on a store, attributed to the function and its source line…
    assert!(report.contains("store"), "no store in:\n{report}");
    assert!(
        report.contains("in prog at line"),
        "no line info in:\n{report}"
    );
    // …with the staging provenance of the quote that generated it.
    assert!(
        report.contains("via quote at line"),
        "no provenance in:\n{report}"
    );
    // Both sides are labeled by their optimization level.
    assert!(report.contains("-O0:"), "missing -O0 label in:\n{report}");
    assert!(report.contains("-O2:"), "missing -O2 label in:\n{report}");
    // The folded constant is 42 on the honest side, 43 on the seeded one.
    assert!(
        report.contains("0x2a"),
        "expected honest value 0x2a in:\n{report}"
    );
    assert!(
        report.contains("0x2b"),
        "expected seeded value 0x2b in:\n{report}"
    );
}
