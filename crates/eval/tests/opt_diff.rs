//! Differential tests for the optimization pipeline: the same random
//! straight-line Terra program, run at `-O0` and at `-O2`, must produce the
//! identical return value, identical VM memory state (a heap buffer the
//! program writes), and identical trap behavior (integer division by zero
//! must trap at every level or at none).

use proptest::prelude::*;
use terra_eval::{Interp, LuaValue};
use terra_ir::OptLevel;

mod common;
use common::RecConfig;

/// An operand in the generated program: a parameter, an earlier temporary,
/// or a literal.
#[derive(Debug, Clone)]
enum Src {
    Param(u8),
    Var(u8),
    Konst(i32),
}

/// One straight-line statement: `var xN = lhs op rhs`.
#[derive(Debug, Clone)]
enum OpStmt {
    Add(Src, Src),
    Sub(Src, Src),
    Mul(Src, Src),
    Div(Src, Src),
    Rem(Src, Src),
    /// Shift by a small constant — the form strength reduction produces.
    Shl(Src, u8),
}

fn src_txt(s: &Src, defined: usize) -> String {
    match s {
        Src::Param(i) => ["a", "b", "c"][*i as usize % 3].to_string(),
        Src::Var(i) if defined > 0 => format!("x{}", *i as usize % defined),
        // No temporaries defined yet: fall back to a parameter.
        Src::Var(i) => ["a", "b", "c"][*i as usize % 3].to_string(),
        Src::Konst(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                format!("{v}")
            }
        }
    }
}

fn stmt_txt(s: &OpStmt, n: usize) -> String {
    let bin =
        |op: &str, l: &Src, r: &Src| format!("var x{n} = {} {op} {}", src_txt(l, n), src_txt(r, n));
    match s {
        OpStmt::Add(l, r) => bin("+", l, r),
        OpStmt::Sub(l, r) => bin("-", l, r),
        OpStmt::Mul(l, r) => bin("*", l, r),
        OpStmt::Div(l, r) => bin("/", l, r),
        OpStmt::Rem(l, r) => bin("%", l, r),
        OpStmt::Shl(l, k) => format!("var x{n} = {} << {}", src_txt(l, n), k % 8),
    }
}

/// Renders the program: every temporary is also stored into a malloc'd
/// buffer so the differential compares memory state, not just the return.
fn program_txt(stmts: &[OpStmt]) -> String {
    let n = stmts.len();
    let mut body = String::new();
    for (i, s) in stmts.iter().enumerate() {
        body.push_str(&format!("    {}\n", stmt_txt(s, i)));
        body.push_str(&format!("    buf[{i}] = [double](x{i})\n"));
    }
    format!(
        "local std = terralib.includec(\"stdlib.h\")\n\
         terra prog(a : int, b : int, c : int) : &double\n\
         \u{20}   var buf = [&double](std.malloc({n} * 8))\n\
         {body}\
         \u{20}   return buf\n\
         end\n\
         return prog"
    )
}

fn src_strategy() -> impl Strategy<Value = Src> {
    prop_oneof![
        any::<u8>().prop_map(Src::Param),
        any::<u8>().prop_map(Src::Var),
        // Small constants hit the identity/strength-reduction rewrites
        // (0, 1, powers of two) much more often than uniform i32s would.
        prop_oneof![(-4i32..=16).boxed(), any::<i32>().boxed()].prop_map(Src::Konst),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = OpStmt> {
    let s = src_strategy;
    prop_oneof![
        (s(), s()).prop_map(|(l, r)| OpStmt::Add(l, r)),
        (s(), s()).prop_map(|(l, r)| OpStmt::Sub(l, r)),
        (s(), s()).prop_map(|(l, r)| OpStmt::Mul(l, r)),
        (s(), s()).prop_map(|(l, r)| OpStmt::Div(l, r)),
        (s(), s()).prop_map(|(l, r)| OpStmt::Rem(l, r)),
        (s(), any::<u8>()).prop_map(|(l, k)| OpStmt::Shl(l, k)),
    ]
}

/// Runs the program at the given level; returns the buffer contents on
/// success or the trap message on failure.
fn run_at(
    level: OptLevel,
    src: &str,
    nslots: usize,
    args: (i32, i32, i32),
) -> Result<Vec<f64>, String> {
    let mut t = Interp::new();
    t.opt = level;
    t.exec(src).map_err(|e| e.to_string())?;
    let call = format!("return prog({}, {}, {})", args.0, args.1, args.2);
    let out = t.exec(&call).map_err(|e| e.to_string())?;
    let LuaValue::Number(addr) = out[0] else {
        panic!("prog must return a pointer, got {out:?}");
    };
    let mem = &mut t.ctx.exec.memory;
    Ok((0..nslots)
        .map(|i| {
            mem.load_f64(addr as u64 + 8 * i as u64)
                .expect("buffer read in bounds")
        })
        .collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `-O0` and `-O2` agree on every temporary's value (read back from VM
    /// heap memory) and on whether the program traps.
    #[test]
    fn o0_and_o2_agree(
        stmts in proptest::collection::vec(stmt_strategy(), 1..12),
        a in -100i32..100,
        b in -100i32..100,
        c in any::<i32>(),
    ) {
        let src = program_txt(&stmts);
        let n = stmts.len();
        let r0 = run_at(OptLevel::O0, &src, n, (a, b, c));
        let r2 = run_at(OptLevel::O2, &src, n, (a, b, c));
        match (&r0, &r2) {
            (Ok(m0), Ok(m2)) => {
                // Bitwise equality: integer-valued doubles, no tolerance.
                let eq = m0.len() == m2.len()
                    && m0.iter().zip(m2).all(|(x, y)| x.to_bits() == y.to_bits());
                // On failure, the flight recorder pinpoints the first
                // divergent effect instead of just "memory diverged".
                let bisect = if eq {
                    String::new()
                } else {
                    let call = format!("return prog({a}, {b}, {c})");
                    common::divergence_report(
                        &src,
                        &call,
                        RecConfig::at(OptLevel::O0),
                        RecConfig::at(OptLevel::O2),
                    )
                };
                prop_assert!(
                    eq,
                    "memory diverged\n-O0: {m0:?}\n-O2: {m2:?}\nprogram:\n{src}\n{bisect}"
                );
            }
            (Err(e0), Err(e2)) => {
                prop_assert_eq!(e0, e2, "different traps for:\n{}", src);
            }
            _ => {
                prop_assert!(
                    false,
                    "trap behavior diverged\n-O0: {r0:?}\n-O2: {r2:?}\nprogram:\n{src}"
                );
            }
        }
    }

    /// `-O1` sits between the two: it must agree with `-O0` as well.
    #[test]
    fn o1_agrees_with_o0(
        stmts in proptest::collection::vec(stmt_strategy(), 1..8),
        a in -50i32..50,
        b in any::<i32>(),
    ) {
        let src = program_txt(&stmts);
        let n = stmts.len();
        let r0 = run_at(OptLevel::O0, &src, n, (a, b, 7));
        let r1 = run_at(OptLevel::O1, &src, n, (a, b, 7));
        match (&r0, &r1) {
            (Ok(m0), Ok(m1)) => {
                let eq = m0.iter().zip(m1).all(|(x, y)| x.to_bits() == y.to_bits());
                let bisect = if eq {
                    String::new()
                } else {
                    let call = format!("return prog({a}, {b}, 7)");
                    common::divergence_report(
                        &src,
                        &call,
                        RecConfig::at(OptLevel::O0),
                        RecConfig::at(OptLevel::O1),
                    )
                };
                prop_assert!(eq, "-O0 {m0:?} vs -O1 {m1:?} for:\n{src}\n{bisect}");
            }
            (Err(e0), Err(e1)) => prop_assert_eq!(e0, e1),
            _ => prop_assert!(false, "-O0 {r0:?} vs -O1 {r1:?} for:\n{src}"),
        }
    }
}

/// Guards the proptest against vacuous Err==Err agreement: a known-good
/// program must actually run and produce the expected buffer at every level.
#[test]
fn harness_is_not_vacuous() {
    let stmts = vec![
        OpStmt::Add(Src::Param(0), Src::Param(1)), // x0 = a + b
        OpStmt::Mul(Src::Var(0), Src::Konst(8)),   // x1 = x0 * 8
        OpStmt::Div(Src::Var(1), Src::Param(2)),   // x2 = x1 / c
        OpStmt::Shl(Src::Var(0), 2),               // x3 = x0 << 2
    ];
    let src = program_txt(&stmts);
    for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        let m = run_at(level, &src, stmts.len(), (2, 3, 5)).expect("must run");
        assert_eq!(m, vec![5.0, 40.0, 8.0, 20.0], "at {level:?}");
    }
}

/// Division by zero must trap identically at every level — the optimizer
/// may not fold it away or hoist it into execution.
#[test]
fn div_by_zero_traps_at_every_level() {
    let stmts = vec![
        OpStmt::Add(Src::Param(0), Src::Param(1)),
        OpStmt::Div(Src::Konst(7), Src::Param(2)), // x1 = 7 / c, c == 0
    ];
    let src = program_txt(&stmts);
    let errs: Vec<String> = [OptLevel::O0, OptLevel::O1, OptLevel::O2]
        .into_iter()
        .map(|l| run_at(l, &src, stmts.len(), (1, 2, 0)).expect_err("must trap"))
        .collect();
    assert_eq!(errs[0], errs[1]);
    assert_eq!(errs[0], errs[2]);
    assert!(errs[0].contains("zero"), "{}", errs[0]);
}
