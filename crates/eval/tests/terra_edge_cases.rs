//! Edge-case and failure-injection tests for the staged language: things
//! users get wrong, and behaviours at the corners of the semantics.

use terra_eval::{Interp, LuaValue, Phase};

fn eval_num(src: &str) -> f64 {
    let mut t = Interp::new();
    let out = t.exec(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    match out.first() {
        Some(LuaValue::Number(n)) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn eval_err(src: &str) -> terra_eval::LuaError {
    let mut t = Interp::new();
    match t.exec(src) {
        Ok(_) => panic!("expected error for {src}"),
        Err(e) => e,
    }
}

// ---------------------------------------------------------------------------
// error phases (§4.1: where each class of error can occur)
// ---------------------------------------------------------------------------

#[test]
fn specialization_errors_happen_at_definition() {
    let e = eval_err("terra f() : int return not_a_thing end");
    assert_eq!(e.phase, Phase::Specialize);
    // A table is not a Terra value.
    let e = eval_err("local t = {} terra f() : int return t end");
    assert_eq!(e.phase, Phase::Specialize);
}

#[test]
fn type_errors_happen_at_first_call_not_definition() {
    let mut t = Interp::new();
    // Defining is fine…
    t.exec("terra bad() : int return 1.5 + nil end").unwrap();
    // …calling reports a typecheck-phase error.
    let e = t.exec("return bad()").unwrap_err();
    assert_eq!(e.phase, Phase::Typecheck);
}

#[test]
fn execution_errors_carry_execution_phase() {
    let e = eval_err(
        "terra crash(p : &int) : int return p[0] end\n\
         return crash(nil)",
    );
    assert_eq!(e.phase, Phase::Execution);
    let e = eval_err("terra d(x : int) : int return 1 / x end return d(0)");
    assert_eq!(e.phase, Phase::Execution);
    assert!(e.to_string().contains("division"), "{e}");
}

#[test]
fn lua_can_catch_terra_errors_with_pcall() {
    let src = r#"
        terra d(x : int) : int return 100 / x end
        local ok, msg = pcall(function() return d(0) end)
        if ok then return 0 end
        return 1
    "#;
    assert_eq!(eval_num(src), 1.0);
}

// ---------------------------------------------------------------------------
// staging corners
// ---------------------------------------------------------------------------

#[test]
fn quote_reuse_in_multiple_functions() {
    // One quote spliced into two different functions works (specialized
    // terms are immutable values).
    let src = r#"
        local q = `21
        terra a() : int return [q] + 1 end
        terra b() : int return [q] * 2 end
        return a() + b()
    "#;
    assert_eq!(eval_num(src), 64.0);
}

#[test]
fn nested_escapes_and_quotes() {
    let src = r#"
        local function wrap(e)
            return `[e] + [e]
        end
        terra f(x : int) : int
            return [wrap(wrap(`x))]
        end
        return f(3)
    "#;
    assert_eq!(eval_num(src), 12.0);
}

#[test]
fn symbols_shared_across_quote_boundaries() {
    let src = r#"
        local s = symbol(int, "shared")
        local decl = quote var [s] = 5 end
        local use = `[s] * [s]
        terra f() : int
            [decl];
            return [use]
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 25.0);
}

#[test]
fn stale_symbol_in_wrong_function_is_an_error() {
    // A symbol bound in one function cannot be referenced from another.
    let src = r#"
        local s = symbol(int, "leaky")
        terra a() : int var [s] = 1 return [s] end
        terra b() : int return [s] end
        a()
        return b()
    "#;
    let e = eval_err(src);
    assert!(
        e.to_string().contains("not in scope"),
        "unexpected message: {e}"
    );
}

#[test]
fn macros_receive_quotes_not_values() {
    let src = r#"
        local seen = nil
        local probe = terralib.macro(function(q)
            seen = type(q)
            return q
        end)
        terra f(x : int) : int return probe(x + 1) end
        local r = f(9)
        if seen == "quote" then return r end
        return -1
    "#;
    assert_eq!(eval_num(src), 10.0);
}

#[test]
fn statement_macro_splice() {
    let src = r#"
        local log = terralib.macro(function(e)
            return quote var tmp = [e] in tmp * 2 end
        end)
        terra f(x : int) : int
            return log(x + 1)
        end
        return f(20)
    "#;
    assert_eq!(eval_num(src), 42.0);
}

// ---------------------------------------------------------------------------
// terra control flow corners
// ---------------------------------------------------------------------------

#[test]
fn repeat_until_in_terra() {
    let src = r#"
        terra f(n : int) : int
            var c = 0
            repeat
                c = c + 1
                n = n / 2
            until n == 0
            return c
        end
        return f(17)
    "#;
    assert_eq!(eval_num(src), 5.0);
}

#[test]
fn nested_loops_break_innermost() {
    let src = r#"
        terra f() : int
            var hits = 0
            for i = 0, 4 do
                for j = 0, 10 do
                    if j > i then break end
                    hits = hits + 1
                end
            end
            return hits
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 1.0 + 2.0 + 3.0 + 4.0);
}

#[test]
fn defer_runs_before_return_value_is_delivered() {
    let src = r#"
        local g = global(int, 0)
        terra touch() : {} g = g + 1 end
        terra f() : int
            defer touch()
            return g * 100
        end
        local first = f()
        return first * 10 + g:get()
    "#;
    // f computes 0*100 = 0 before the deferred touch bumps g to 1.
    assert_eq!(eval_num(src), 1.0);
}

#[test]
fn defer_inside_loop_scope_runs_per_iteration() {
    let src = r#"
        local g = global(int, 0)
        terra bump() : {} g = g + 1 end
        terra f() : {}
            for i = 0, 3 do
                do
                    defer bump()
                end
            end
        end
        f()
        return g:get()
    "#;
    assert_eq!(eval_num(src), 3.0);
}

#[test]
fn nonpositive_for_step_is_a_type_error() {
    let e = eval_err("terra f() : int for i = 0, 10, 0 do end return 1 end return f()");
    assert!(e.to_string().contains("positive"), "{e}");
    let e = eval_err("terra f() : int for i = 0, 10, -2 do end return 1 end return f()");
    assert!(e.to_string().contains("positive"), "{e}");
}

#[test]
fn while_with_compound_condition() {
    let src = r#"
        terra f(n : int) : int
            var i = 0
            while i < n and i * i < 50 do
                i = i + 1
            end
            return i
        end
        return f(100)
    "#;
    assert_eq!(eval_num(src), 8.0);
}

#[test]
fn short_circuit_prevents_null_deref() {
    let src = r#"
        terra safe(p : &int) : int
            if p ~= nil and p[0] > 0 then
                return p[0]
            end
            return -1
        end
        return safe(nil)
    "#;
    assert_eq!(eval_num(src), -1.0);
}

// ---------------------------------------------------------------------------
// types and conversions
// ---------------------------------------------------------------------------

#[test]
fn integer_conversion_ranks() {
    let src = r#"
        terra f(a : int8, b : int64) : int64
            return a + b   -- promotes to int64
        end
        return f(-1, 1000)
    "#;
    assert_eq!(eval_num(src), 999.0);
}

#[test]
fn float_int_mixing_promotes_to_float() {
    assert_eq!(
        eval_num("terra f(x : int) : double return x / 4 + 0.5 end return f(10)"),
        // int division first (both ints), then float add.
        2.0 + 0.5
    );
    assert_eq!(
        eval_num("terra f(x : int) : double return x / 4.0 + 0.5 end return f(10)"),
        3.0
    );
}

#[test]
fn unsigned_comparison_behaviour() {
    let src = r#"
        terra f() : bool
            var big : uint64 = 0xFFFFFFFFFFFFFFFFULL
            return big > 1
        end
        if f() then return 1 else return 0 end
    "#;
    assert_eq!(eval_num(src), 1.0);
}

#[test]
fn pointer_difference_and_indexing_agree() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        terra f() : int64
            var p = [&double](std.malloc(80))
            var q = &p[7]
            return q - p
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 7.0);
}

#[test]
fn array_decay_to_pointer_param() {
    let src = r#"
        terra sum(p : &int, n : int) : int
            var s = 0
            for i = 0, n do s = s + p[i] end
            return s
        end
        terra f() : int
            var a : int[5]
            for i = 0, 5 do a[i] = i + 1 end
            return sum(a, 5)
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 15.0);
}

#[test]
fn struct_copy_semantics() {
    let src = r#"
        struct P { x : int, y : int }
        terra f() : int
            var a = P { 1, 2 }
            var b = a            -- copy
            b.x = 100
            return a.x * 10 + b.x / 100
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 11.0);
}

#[test]
fn aggregate_return_is_a_clear_error() {
    let e = eval_err(
        "struct P { x : int }\n\
         terra f() : P var p : P return p end\n\
         return f()",
    );
    assert!(e.to_string().contains("aggregate"), "{e}");
}

#[test]
fn vector_width_mismatch_is_an_error() {
    let e = eval_err(
        "local v4 = vector(float, 4)\n\
         local v8 = vector(float, 8)\n\
         terra f(a : v4, b : v8) : v4 return a + b end\n\
         f(nil, nil)",
    );
    assert!(e.to_string().contains("vector"), "{e}");
}

// ---------------------------------------------------------------------------
// reflection / globals corners
// ---------------------------------------------------------------------------

#[test]
fn global_struct_fields_reachable_from_terra() {
    let src = r#"
        struct Pair { a : int, b : int }
        local g = global(Pair)
        terra setup() : {} g.a = 6 g.b = 7 end
        terra mul() : int return g.a * g.b end
        setup()
        return mul()
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn methods_added_between_uses_are_visible_until_finalized() {
    let src = r#"
        struct S { v : int }
        terra S:one() : int return self.v + 1 end
        -- Add a second method before any use.
        terra S:two() : int return self:one() * 2 end
        terra f() : int
            var s = S { 20 }
            return s:two()
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn offsetof_matches_layout() {
    let src = r#"
        struct S { a : int8, b : double, c : int }
        return terralib.offsetof(S, "b") * 100 + terralib.offsetof(S, "c")
    "#;
    assert_eq!(eval_num(src), 8.0 * 100.0 + 16.0);
}

#[test]
fn sizeof_in_lua_and_terra_agree() {
    let src = r#"
        struct S { a : int, b : double }
        terra f() : int return sizeof(S) end
        if f() == sizeof(S) then return sizeof(S) end
        return -1
    "#;
    assert_eq!(eval_num(src), 16.0);
}

#[test]
fn function_type_reflection_roundtrip() {
    let src = r#"
        terra f(a : int, b : double) : bool return a > b end
        local ft = f:gettype()
        local g = terralib.funcpointer(ft.parameters, ft.returns)
        if tostring(g) == tostring(ft) then return 1 end
        return 0
    "#;
    assert_eq!(eval_num(src), 1.0);
}

// ---------------------------------------------------------------------------
// output / printf formats
// ---------------------------------------------------------------------------

#[test]
fn printf_many_formats() {
    let mut t = Interp::new();
    t.capture_output();
    t.exec(
        r#"
        local C = terralib.includec("stdio.h")
        terra f() : {}
            C.printf("%d|%u|%x|%c|%5d|%.3f|%s|%%\n", -3, 7, 255, 65, 42, 1.5, "end")
        end
        f()
        "#,
    )
    .unwrap();
    assert_eq!(t.take_output(), "-3|7|ff|A|   42|1.500|end|%\n");
}

#[test]
fn clock_is_monotonic_within_terra() {
    let src = r#"
        local C = terralib.includec("time.h")
        terra f() : bool
            var t0 = C.clock()
            var s = 0.0
            for i = 0, 100000 do s = s + 1.0 end
            var t1 = C.clock()
            return t1 >= t0
        end
        if f() then return 1 end
        return 0
    "#;
    assert_eq!(eval_num(src), 1.0);
}
