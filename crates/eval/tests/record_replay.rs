//! Flight-recorder determinism: recording the same program twice under the
//! same configuration must verify clean with `replay::verify` at every
//! optimization level, and a cross-level `replay::diff` of a correct
//! pipeline must report zero divergences. A pinned golden test guards the
//! checksum definitions themselves — if the FNV feed order or the heap hash
//! range changes, the golden values move and the change must be deliberate.

use proptest::prelude::*;
use terra_ir::OptLevel;
use terra_trace::replay;

mod common;
use common::RecConfig;

/// One step in a straight-line accumulator chain: `x = x <op> c`. Division
/// is excluded so random programs never trap and every recording runs to
/// completion.
#[derive(Debug, Clone, Copy)]
enum Step {
    Add(i32),
    Sub(i32),
    Mul(i32),
    Shl(u8),
}

fn step_txt(s: Step) -> String {
    match s {
        Step::Add(c) => format!("x = x + {c}"),
        Step::Sub(c) => format!("x = x - {c}"),
        Step::Mul(c) => format!("x = x * {c}"),
        Step::Shl(k) => format!("x = x << {}", k % 4),
    }
}

/// Renders a program whose recording exercises every effect kind the
/// recorder captures: malloc/free, heap stores, and printf output.
fn program_txt(steps: &[Step]) -> String {
    let n = steps.len();
    let mut body = String::new();
    for (i, s) in steps.iter().enumerate() {
        body.push_str(&format!("    {}\n", step_txt(*s)));
        body.push_str(&format!("    buf[{i}] = x\n"));
    }
    format!(
        "local std = terralib.includec(\"stdlib.h\")\n\
         local io = terralib.includec(\"stdio.h\")\n\
         terra prog(a : int, b : int) : double\n\
         \u{20}   var buf = [&int64](std.malloc({n} * 8))\n\
         \u{20}   var x : int64 = a * 3 + b\n\
         {body}\
         \u{20}   var s : int64 = 0\n\
         \u{20}   for i = 0, {n} do s = s + buf[i] end\n\
         \u{20}   io.printf(\"s=%lld\\n\", s)\n\
         \u{20}   std.free(buf)\n\
         \u{20}   return [double](s)\n\
         end\n\
         return prog"
    )
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-16i32..=16).prop_map(Step::Add),
        (-16i32..=16).prop_map(Step::Sub),
        (-4i32..=4).prop_map(Step::Mul),
        any::<u8>().prop_map(Step::Shl),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Record-then-replay of a random program verifies clean — every
    /// checkpoint hash, every effect, and the final counters match — at
    /// `-O0`, `-O1`, and `-O2`.
    #[test]
    fn record_then_replay_verifies_clean_at_every_level(
        steps in proptest::collection::vec(step_strategy(), 1..10),
        a in -50i32..50,
        b in -50i32..50,
    ) {
        let src = program_txt(&steps);
        let call = format!("return prog({a}, {b})");
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let cfg = RecConfig::at(level);
            let recorded = common::record_at(&src, &call, &cfg, None)
                .map_err(proptest::TestCaseError::new)?;
            let live = common::record_at(&src, &call, &cfg, None)
                .map_err(proptest::TestCaseError::new)?;
            let summary = replay::verify(&recorded, &live);
            prop_assert!(
                summary.is_ok(),
                "replay diverged at {:?}: {}\nprogram:\n{}",
                level, summary.unwrap_err(), src
            );
        }
    }

    /// A correct pipeline leaves no divergences for `replay::diff` to find:
    /// the `-O0` and `-O2` recordings of the same random program align at
    /// every checkpoint.
    #[test]
    fn cross_level_diff_is_clean(
        steps in proptest::collection::vec(step_strategy(), 1..10),
        a in -50i32..50,
        b in -50i32..50,
    ) {
        let src = program_txt(&steps);
        let call = format!("return prog({a}, {b})");
        let (ca, cb) = (RecConfig::at(OptLevel::O0), RecConfig::at(OptLevel::O2));
        let ra = common::record_at(&src, &call, &ca, None)
            .map_err(proptest::TestCaseError::new)?;
        let rb = common::record_at(&src, &call, &cb, None)
            .map_err(proptest::TestCaseError::new)?;
        let report = replay::diff(&ra, &rb, |meta, window| {
            let cfg = if meta.opt == 0 { &ca } else { &cb };
            common::record_at(&src, &call, cfg, Some(window))
        }).map_err(proptest::TestCaseError::new)?;
        prop_assert!(
            report.is_clean(),
            "-O0 vs -O2 recordings diverged:\n{}\nprogram:\n{}",
            report.render(), src
        );
    }
}

/// Pins the state checksums for a fixed program. These goldens move only
/// when the hash definitions (FNV-1a feed order, heap hash range, output
/// hash) or the program's effect stream change — both deliberate events.
#[test]
fn golden_state_hashes_for_fixed_program() {
    let steps = [Step::Add(5), Step::Mul(3), Step::Sub(7), Step::Shl(2)];
    let src = program_txt(&steps);
    let rec = common::record_at(
        &src,
        "return prog(2, 4)",
        &RecConfig::at(OptLevel::O0),
        None,
    )
    .expect("fixed program must record");
    let last = rec
        .checkpoints
        .last()
        .expect("at least the final checkpoint");
    assert_eq!(rec.total_effects, 7, "malloc + 4 stores + printf + free");
    assert_eq!(
        (last.heap, last.out),
        (0x3b1eb9021e1e7665, 0x75a81bc51f887c86),
        "golden heap/output hashes moved: heap={:#018x} out={:#018x} — \
         if the checksum definition changed deliberately, repin",
        last.heap,
        last.out
    );
    // Recording the identical run again reproduces the identical text.
    let again = common::record_at(
        &src,
        "return prog(2, 4)",
        &RecConfig::at(OptLevel::O0),
        None,
    )
    .expect("fixed program must record");
    assert_eq!(
        rec.to_text(),
        again.to_text(),
        "recording must be byte-stable"
    );
}
