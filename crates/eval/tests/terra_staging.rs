//! End-to-end tests of the staging pipeline: `terra` definitions, quotes,
//! escapes, hygiene, eager specialization, lazy typechecking, structs,
//! methods, and the FFI — the paper's §2–§4 behaviours.

use terra_eval::{Interp, LuaValue};

fn eval_num(src: &str) -> f64 {
    let mut t = Interp::new();
    let out = t.exec(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    match out.first() {
        Some(LuaValue::Number(n)) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn eval_err(src: &str) -> String {
    let mut t = Interp::new();
    match t.exec(src) {
        Ok(_) => panic!("expected error for {src}"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn simple_terra_function() {
    assert_eq!(
        eval_num("terra add(a : int, b : int) : int return a + b end return add(2, 40)"),
        42.0
    );
}

#[test]
fn paper_min_example() {
    let src = r#"
        terra min(a : int, b : int) : int
            if a < b then return a else return b end
        end
        return min(7, 3) + min(1, 9)
    "#;
    assert_eq!(eval_num(src), 4.0);
}

#[test]
fn return_type_inference() {
    assert_eq!(
        eval_num("terra f(x : double) return x * 2.0 end return f(1.25)"),
        2.5
    );
}

#[test]
fn terra_control_flow() {
    let src = r#"
        terra collatz_steps(n0 : int64) : int
            var n = n0
            var steps = 0
            while n ~= 1 do
                if n % 2 == 0 then
                    n = n / 2
                else
                    n = 3 * n + 1
                end
                steps = steps + 1
            end
            return steps
        end
        return collatz_steps(27)
    "#;
    assert_eq!(eval_num(src), 111.0);
}

#[test]
fn terra_for_loop_is_half_open() {
    let src = r#"
        terra sum(n : int) : int
            var s = 0
            for i = 0, n do s = s + i end
            return s
        end
        return sum(10)
    "#;
    assert_eq!(eval_num(src), 45.0); // 0..9 inclusive-exclusive
}

#[test]
fn terra_for_with_step_and_break() {
    let src = r#"
        terra f() : int
            var s = 0
            for i = 0, 100, 10 do
                if i >= 50 then break end
                s = s + i
            end
            return s
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 100.0);
}

#[test]
fn eager_specialization_captures_lua_values() {
    // §4.1: mutating x after the definition does NOT change the function.
    let src = r#"
        local x = 0
        terra y(a : int) : int return x end
        x = 1
        return y(0)
    "#;
    assert_eq!(eval_num(src), 0.0);
}

#[test]
fn separate_evaluation_from_lua_store() {
    // §4.1 "separate evaluation": the compiled code holds the constant 1.
    let src = r#"
        local x1 = 1
        terra y(x2 : int) : int return x1 end
        x1 = 2
        return y(0)
    "#;
    assert_eq!(eval_num(src), 1.0);
}

#[test]
fn lazy_typechecking_allows_forward_definition() {
    // g is referenced before it is defined; only calling forces the link.
    let src = r#"
        local g = terralib.declare("g")
        terra f(x : int) : int return g(x) + 1 end
        terra g(x : int) : int return x * 2 end
        return f(20)
    "#;
    assert_eq!(eval_num(src), 41.0);
}

#[test]
fn calling_undefined_function_is_link_error() {
    let src = r#"
        local g = terralib.declare("g")
        terra f(x : int) : int return g(x) end
        return f(1)
    "#;
    let msg = eval_err(src);
    assert!(msg.contains("declared but not defined"), "{msg}");
}

#[test]
fn mutual_recursion_through_declarations() {
    let src = r#"
        local isodd = terralib.declare("isodd")
        terra iseven(n : int) : bool
            if n == 0 then return true end
            return isodd(n - 1)
        end
        terra isodd(n : int) : bool
            if n == 0 then return false end
            return iseven(n - 1)
        end
        if iseven(10) then return 1 else return 0 end
    "#;
    assert_eq!(eval_num(src), 1.0);
}

#[test]
fn recursion_requires_annotation() {
    let msg = eval_err(
        "terra fact(n : int) if n <= 1 then return 1 end return n * fact(n - 1) end \
         return fact(5)",
    );
    assert!(msg.contains("explicit return type"), "{msg}");
    // With the annotation it works.
    assert_eq!(
        eval_num(
            "terra fact(n : int) : int if n <= 1 then return 1 end \
             return n * fact(n - 1) end return fact(10)"
        ),
        3628800.0
    );
}

#[test]
fn quote_and_escape_splice_expressions() {
    let src = r#"
        local e = `10 + 32
        terra f() : int return [e] end
        return f()
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn statement_quotes_splice() {
    let src = r#"
        function body(acc, n)
            return quote
                for i = 0, n do
                    [acc] = [acc] + i
                end
            end
        end
        terra f() : int
            var s = 0;
            [body(s, 5)];
            [body(s, 3)];
            return s
        end
        return f()
    "#;
    // 0+1+2+3+4 + 0+1+2 = 13
    assert_eq!(eval_num(src), 13.0);
}

#[test]
fn hygiene_no_accidental_capture() {
    // The `i` inside the quote must not capture the function's `i`.
    let src = r#"
        local q = quote var i = 100 in i end
        terra f(i : int) : int
            return [q] + i
        end
        return f(1)
    "#;
    assert_eq!(eval_num(src), 101.0);
}

#[test]
fn symbols_violate_hygiene_deliberately() {
    // §6.1: symbol() is gensym; using it to define and reference variables.
    let src = r#"
        local s = symbol(int, "acc")
        terra f() : int
            var [s] = 40;
            [quote [s] = [s] + 2 end];
            return [s]
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn escaped_parameters_via_symbols() {
    let src = r#"
        local a = symbol("a")
        local b = symbol("b")
        terra f([a] : int, [b] : int) : int
            return [a] * 10 + [b]
        end
        return f(4, 2)
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn whole_parameter_list_from_symbol_list() {
    // The class-system stub pattern: parameters from a list of typed symbols.
    let src = r#"
        local params = terralib.newlist()
        params:insert(symbol(int, "x"))
        params:insert(symbol(int, "y"))
        terra f([params]) : int
            return [params[1]] - [params[2]]
        end
        return f(50, 8)
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn staged_loop_unrolling() {
    // Lua loop generates straight-line Terra code.
    let src = r#"
        function unrolled(x, n)
            local stmts = terralib.newlist()
            for i = 1, n do
                stmts:insert(quote [x] = [x] + i end)
            end
            return stmts
        end
        terra f() : int
            var x = 0;
            [unrolled(x, 4)];
            return x
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 10.0);
}

#[test]
fn parametric_function_generation() {
    // Types are Lua values; a Lua function generates a Terra identity
    // function for any type (Terra Core example from §4.1).
    let src = r#"
        function id(T)
            return terra(x : T) : T return x end
        end
        local idint = id(int)
        local iddouble = id(double)
        return idint(41) + iddouble(1.5)
    "#;
    assert_eq!(eval_num(src), 42.5);
}

#[test]
fn blockedloop_from_paper_section2() {
    let src = r#"
        terra min(a : int, b : int) : int
            if a < b then return a else return b end
        end
        function blockedloop(N, blocksizes, bodyfn)
            local function generatelevel(n, ii, jj, bb)
                if n > #blocksizes then
                    return bodyfn(ii, jj)
                end
                local blocksize = blocksizes[n]
                return quote
                    for i = ii, min(ii + bb, N), blocksize do
                        for j = jj, min(jj + bb, N), blocksize do
                            [generatelevel(n + 1, i, j, blocksize)]
                        end
                    end
                end
            end
            return generatelevel(1, 0, 0, N)
        end
        local counter = symbol(int, "counter")
        terra f() : int
            var [counter] = 0;
            [blockedloop(8, {4, 1}, function(i, j)
                return quote [counter] = [counter] + 1 end
            end)];
            return [counter]
        end
        return f()
    "#;
    // Full 8x8 iteration space visited exactly once.
    assert_eq!(eval_num(src), 64.0);
}

#[test]
fn pointers_and_malloc() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        terra f() : double
            var p = [&double](std.malloc(8 * 10))
            for i = 0, 10 do
                p[i] = i * 1.5
            end
            var s = 0.0
            for i = 0, 10 do
                s = s + p[i]
            end
            std.free(p)
            return s
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 67.5);
}

#[test]
fn structs_and_methods_image_example() {
    // The §2 Image pattern, compressed.
    let src = r#"
        local std = terralib.includec("stdlib.h")
        function Image(PixelType)
            struct ImageImpl {
                data : &PixelType,
                N : int
            }
            terra ImageImpl:init(N : int) : {}
                self.data = [&PixelType](std.malloc(N * N * sizeof(PixelType)))
                self.N = N
            end
            terra ImageImpl:get(x : int, y : int) : PixelType
                return self.data[x * self.N + y]
            end
            terra ImageImpl:set(x : int, y : int, v : PixelType) : {}
                self.data[x * self.N + y] = v
            end
            terra ImageImpl:free() : {}
                std.free(self.data)
            end
            return ImageImpl
        end
        GreyscaleImage = Image(float)
        terra f() : float
            var img : GreyscaleImage
            img:init(4)
            img:set(1, 2, 5.5f)
            img:set(3, 3, 2.0f)
            var v = img:get(1, 2) + img:get(3, 3)
            img:free()
            return v
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 7.5);
}

#[test]
fn struct_literals_and_field_access() {
    let src = r#"
        struct Complex { real : float, imag : float }
        terra f() : float
            var c = Complex { 3.0f, 4.0f }
            var zero = Complex {}
            return c.real * c.real + c.imag * c.imag + zero.real
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 25.0);
}

#[test]
fn named_struct_literal_fields() {
    let src = r#"
        struct P { x : int, y : int }
        terra f() : int
            var p = P { y = 3, x = 40 }
            return p.x + p.y - 1
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn nested_structs_and_pointers() {
    let src = r#"
        struct Inner { v : double }
        struct Outer { a : Inner, b : Inner }
        terra f() : double
            var o : Outer
            o.a.v = 1.5
            o.b.v = 2.5
            var p = &o.b
            p.v = p.v + 10.0
            return o.a.v + o.b.v
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 14.0);
}

#[test]
fn programmatic_struct_creation() {
    // §4.1: building a struct via the entries table.
    let src = r#"
        struct Complex {}
        Complex.entries:insert { field = "real", type = float }
        Complex.entries:insert { field = "imag", type = float }
        terra f() : float
            var c : Complex
            c.real = 1.5f
            c.imag = 2.5f
            return c.real + c.imag
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 4.0);
}

#[test]
fn monotonic_typechecking_entries_freeze_on_use() {
    // After a struct's layout is examined, adding entries is an error.
    let src = r#"
        struct S {}
        S.entries:insert { field = "x", type = int }
        terra f() : int var s : S return s.x end
        f()
        S.entries:insert { field = "y", type = int }
        terra g() : int var s : S return s.y end
        return g()
    "#;
    let msg = eval_err(src);
    assert!(msg.contains("no field 'y'"), "{msg}");
}

#[test]
fn cast_metamethod_user_conversion() {
    // The paper's float -> Complex __cast example.
    let src = r#"
        struct Complex { real : float, imag : float }
        Complex.metamethods.__cast = function(fromtype, totype, exp)
            if fromtype == float then
                return `Complex { exp, 0.f }
            end
            error("invalid conversion")
        end
        terra f() : float
            var c : Complex = 3.0f
            return c.real * 10.0f + c.imag
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 30.0);
}

#[test]
fn finalizelayout_metamethod_runs_before_first_use() {
    let src = r#"
        struct S {}
        S.metamethods.__finalizelayout = function(T)
            T.entries:insert { field = "x", type = int }
        end
        terra f() : int
            var s : S
            s.x = 42
            return s.x
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn terra_function_as_value_and_indirect_call() {
    let src = r#"
        terra double(x : int) : int return x * 2 end
        terra apply(f : {int} -> int, x : int) : int
            return f(x)
        end
        return apply(double, 21)
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn function_pointers_in_structs() {
    let src = r#"
        struct Ops { fn : {int} -> int }
        terra inc(x : int) : int return x + 1 end
        terra f() : int
            var o = Ops { inc }
            return o.fn(41)
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 42.0);
}

#[test]
fn arrays() {
    let src = r#"
        terra f() : int
            var a : int[8]
            for i = 0, 8 do a[i] = i * i end
            var s = 0
            for i = 0, 8 do s = s + a[i] end
            return s
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 140.0);
}

#[test]
fn vectors_in_terra_code() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        local vec = vector(double, 4)
        terra f() : double
            var p = [&double](std.malloc(8 * 8))
            for i = 0, 8 do p[i] = i * 1.0 end
            var vp = [&vec](p)
            var sum = @vp + @(vp + 1)    -- {0+4, 1+5, 2+6, 3+7}
            @vp = sum
            return p[0] + p[1] + p[2] + p[3]
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 28.0);
}

#[test]
fn vector_broadcast_of_scalars() {
    let src = r#"
        local std = terralib.includec("stdlib.h")
        local vec = vector(float, 8)
        terra f() : float
            var p = [&float](std.malloc(4 * 8))
            for i = 0, 8 do p[i] = 1.0f end
            var vp = [&vec](p)
            @vp = @vp * 3.0f + vec(2.0f)
            return p[0] + p[7]
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 10.0);
}

#[test]
fn globals_shared_between_calls() {
    let src = r#"
        local counter = global(int, 10)
        terra bump() : int
            counter = counter + 1
            return counter
        end
        bump()
        bump()
        return bump() + counter:get()
    "#;
    assert_eq!(eval_num(src), 26.0);
}

#[test]
fn printf_works() {
    let mut t = Interp::new();
    t.capture_output();
    t.exec(
        r#"
        local C = terralib.includec("stdio.h")
        terra hello(x : int) : {}
            C.printf("value=%d float=%.1f str=%s\n", x, 2.5, "ok")
        end
        hello(7)
    "#,
    )
    .unwrap();
    assert_eq!(t.take_output(), "value=7 float=2.5 str=ok\n");
}

#[test]
fn macros_splice_at_specialization() {
    let src = r#"
        local twice = terralib.macro(function(e)
            return `[e] + [e]
        end)
        terra f(x : int) : int
            return twice(x * 2)
        end
        return f(5)
    "#;
    assert_eq!(eval_num(src), 20.0);
}

#[test]
fn terra_select_intrinsic() {
    let src = r#"
        terra maxi(a : int, b : int) : int
            return terralib.select(a > b, a, b)
        end
        return maxi(3, 9) + maxi(7, 2)
    "#;
    assert_eq!(eval_num(src), 16.0);
}

#[test]
fn defer_runs_at_scope_exit() {
    let src = r#"
        local order = global(int, 0)
        terra mark(x : int) : {}
            order = order * 10 + x
        end
        terra f() : {}
            defer mark(3)
            mark(1)
            do
                defer mark(2)
                mark(9)
            end
        end
        f()
        return order:get()
    "#;
    assert_eq!(eval_num(src), 1923.0);
}

#[test]
fn method_call_through_pointer() {
    let src = r#"
        struct Counter { n : int }
        terra Counter:bump() : {} self.n = self.n + 1 end
        terra f() : int
            var c = Counter { 0 }
            var p = &c
            p:bump()
            c:bump()
            return c.n
        end
        return f()
    "#;
    assert_eq!(eval_num(src), 2.0);
}

#[test]
fn string_constants_are_rawstrings() {
    let src = r#"
        terra first_byte(s : rawstring) : int
            return s[0]
        end
        return first_byte("A")
    "#;
    assert_eq!(eval_num(src), 65.0);
}

#[test]
fn type_errors_are_reported_at_call_time() {
    // The function defines fine (lazy typechecking)…
    let src = r#"
        terra bad(x : int) : int
            return x + "hello"
        end
        return 1
    "#;
    assert_eq!(eval_num(src), 1.0);
    // …but calling it reports a type error.
    let msg = eval_err(
        r#"
        terra bad(x : int) : int
            return x + "hello"
        end
        return bad(1)
    "#,
    );
    assert!(msg.contains("type error"), "{msg}");
}

#[test]
fn redefining_a_name_creates_a_new_function() {
    // The Terra *store* is write-once (LTDEFN fills a declaration exactly
    // once), but re-evaluating a `terra f(...)` statement creates a fresh
    // function object and rebinds the Lua variable, as in the real system.
    let src = r#"
        terra f(x : int) : int return 1 end
        local first = f
        terra f(x : int) : int return 2 end
        return first(0) * 10 + f(0)
    "#;
    assert_eq!(eval_num(src), 12.0);
}

#[test]
fn ffi_conversions() {
    let mut t = Interp::new();
    t.exec("terra addf(a : float, b : double) : double return a + b end")
        .unwrap();
    let out = t.exec("return addf(1.5, 2.25)").unwrap();
    assert!(matches!(out[0], LuaValue::Number(n) if n == 3.75));
    // Booleans.
    t.exec("terra flip(b : bool) : bool return not b end")
        .unwrap();
    let out = t.exec("return flip(true)").unwrap();
    assert!(matches!(out[0], LuaValue::Bool(false)));
}

#[test]
fn reflection_api() {
    let src = r#"
        struct S { x : int }
        assert(S:isstruct())
        assert((&S):ispointer())
        assert((&S).type == S)
        assert(int:isarithmetic())
        assert(not int:ispointer())
        terra f(a : int, b : double) : bool return true end
        local ft = f:gettype()
        assert(ft.parameters[1] == int)
        assert(ft.parameters[2] == double)
        assert(ft.returns == bool)
        return sizeof(S)
    "#;
    assert_eq!(eval_num(src), 4.0);
}

#[test]
fn saveobj_writes_manifest() {
    let dir = std::env::temp_dir().join("terra_rs_saveobj_test.o");
    let path = dir.to_string_lossy().to_string();
    let mut t = Interp::new();
    t.exec(&format!(
        r#"
        terra runme(x : int) : int return x end
        terralib.saveobj("{path}", {{ runme = runme }})
    "#
    ))
    .unwrap();
    let contents = std::fs::read_to_string(&path).unwrap();
    assert!(contents.contains("symbol runme"), "{contents}");
    std::fs::remove_file(&path).ok();
}
