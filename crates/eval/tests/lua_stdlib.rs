//! Coverage for the remaining Lua standard-library surface and metamethod
//! corners used by DSL authors.

use terra_eval::{Interp, LuaValue};

fn eval_num(src: &str) -> f64 {
    let mut t = Interp::new();
    let out = t.exec(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    match out.first() {
        Some(LuaValue::Number(n)) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn eval_str(src: &str) -> String {
    let mut t = Interp::new();
    let out = t.exec(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    match out.first() {
        Some(LuaValue::Str(s)) => s.to_string(),
        other => panic!("expected string, got {other:?}"),
    }
}

#[test]
fn newindex_intercepts_missing_keys_only() {
    let src = r#"
        local log = {}
        local t = setmetatable({present = 1}, {
            __newindex = function(tbl, k, v) rawset(log, k, v) end,
        })
        t.present = 2      -- direct (key exists)
        t.missing = 3      -- intercepted by __newindex
        return t.present * 100 + (log.missing or 0) + (t.missing == nil and 10 or 0)
    "#;
    assert_eq!(eval_num(src), 213.0);
}

#[test]
fn tostring_metamethod() {
    let src = r#"
        local v = setmetatable({x = 3}, {
            __tostring = function(s) return "vec(" .. s.x .. ")" end,
        })
        return tostring(v)
    "#;
    assert_eq!(eval_str(src), "vec(3)");
}

#[test]
fn comparison_metamethods() {
    let src = r#"
        local mt = {
            __lt = function(a, b) return a.v < b.v end,
            __le = function(a, b) return a.v <= b.v end,
        }
        local function mk(v) return setmetatable({v = v}, mt) end
        local a, b = mk(1), mk(2)
        local score = 0
        if a < b then score = score + 1 end
        if a <= b then score = score + 10 end
        if b > a then score = score + 100 end
        if not (b <= a) then score = score + 1000 end
        return score
    "#;
    assert_eq!(eval_num(src), 1111.0);
}

#[test]
fn eq_metamethod_on_distinct_tables() {
    let src = r#"
        local mt = {__eq = function(a, b) return a.id == b.id end}
        local a = setmetatable({id = 9}, mt)
        local b = setmetatable({id = 9}, mt)
        local c = setmetatable({id = 8}, mt)
        local n = 0
        if a == b then n = n + 1 end
        if a ~= c then n = n + 10 end
        return n
    "#;
    assert_eq!(eval_num(src), 11.0);
}

#[test]
fn concat_metamethod() {
    let src = r#"
        local mt = {__concat = function(a, b)
            local av = type(a) == "table" and a.v or a
            local bv = type(b) == "table" and b.v or b
            return av .. "/" .. bv
        end}
        local x = setmetatable({v = "mid"}, mt)
        -- '..' is right-associative: x .. "post" uses __concat ("mid/post");
        -- the outer concat then joins two plain strings.
        return "pre" .. x .. "post"
    "#;
    assert_eq!(eval_str(src), "premid/post");
}

#[test]
fn string_library_details() {
    assert_eq!(
        eval_num("local s, e = string.find('hello world', 'wor') return s * 100 + e"),
        709.0
    );
    assert_eq!(
        eval_str("return string.upper('MiXeD') .. string.lower('MiXeD')"),
        "MIXEDmixed"
    );
    assert_eq!(eval_num("return string.byte('A')"), 65.0);
    assert_eq!(eval_str("return string.char(104, 105)"), "hi");
    assert_eq!(eval_str("return ('xyz'):upper()"), "XYZ"); // method sugar on strings
}

#[test]
fn select_and_unpack() {
    assert_eq!(
        eval_num("return select(2, 'a', 'b', 'c') == 'b' and 1 or 0"),
        1.0
    );
    assert_eq!(
        eval_num("local a, b = unpack({7, 8}) return a * 10 + b"),
        78.0
    );
}

#[test]
fn rawget_bypasses_index_metamethod() {
    let src = r#"
        local t = setmetatable({}, {__index = function() return 99 end})
        local viameta = t.anything
        local raw = rawget(t, "anything")
        return viameta + (raw == nil and 1 or 0)
    "#;
    assert_eq!(eval_num(src), 100.0);
}

#[test]
fn getmetatable_and_clearing() {
    let src = r#"
        local mt = {__index = function() return 5 end}
        local t = setmetatable({}, mt)
        local had = getmetatable(t) == mt
        setmetatable(t, nil)
        local cleared = getmetatable(t) == nil and t.x == nil
        return (had and 1 or 0) + (cleared and 10 or 0)
    "#;
    assert_eq!(eval_num(src), 11.0);
}

#[test]
fn numeric_for_fractional_step() {
    assert_eq!(
        eval_num("local n = 0 for x = 0, 1, 0.25 do n = n + 1 end return n"),
        5.0
    );
}

#[test]
fn os_clock_advances() {
    let src = r#"
        local t0 = os.clock()
        local s = 0
        for i = 1, 20000 do s = s + i end
        local t1 = os.clock()
        return (t1 >= t0) and 1 or 0
    "#;
    assert_eq!(eval_num(src), 1.0);
}

#[test]
fn io_write_no_newline() {
    let mut t = Interp::new();
    t.capture_output();
    t.exec("io.write('a', 1, 'b') io.write('!')").unwrap();
    assert_eq!(t.take_output(), "a1b!");
}

#[test]
fn nested_table_writes_through_paths() {
    let src = r#"
        local cfg = { tuning = { blocks = {} } }
        cfg.tuning.blocks.outer = 128
        cfg.tuning.blocks.inner = 64
        return cfg.tuning.blocks.outer / cfg.tuning.blocks.inner
    "#;
    assert_eq!(eval_num(src), 2.0);
}

#[test]
fn varargs_forwarding() {
    let src = r##"
        local function inner(...) return select("#", ...) end
        local function outer(...) return inner(0, ...) end
        return outer(1, 2, 3)
    "##;
    assert_eq!(eval_num(src), 4.0);
}

#[test]
fn string_format_padding() {
    assert_eq!(eval_str("return string.format('[%5d]', 42)"), "[   42]");
    assert_eq!(eval_str("return string.format('%x', 255)"), "ff");
    assert_eq!(
        eval_str("return string.format('%q', 'he\"y')"),
        "\"he\\\"y\""
    );
}

#[test]
fn deeply_nested_closures_keep_upvalues() {
    let src = r#"
        local function make()
            local hidden = 5
            return function()
                return function()
                    hidden = hidden + 1
                    return hidden
                end
            end
        end
        local f = make()()
        f()
        return f()
    "#;
    assert_eq!(eval_num(src), 7.0);
}

#[test]
fn lua_stack_overflow_is_caught() {
    let mut t = Interp::new();
    let e = t
        .exec("local function boom() return boom() end return boom()")
        .unwrap_err();
    assert!(e.to_string().contains("stack overflow"), "{e}");
}
