//! Differential property tests for `parallelfor`: random kernel bodies must
//! produce bit-identical results — or the identical trap — whether the loop
//! runs sequentially (`threads = 1`) or on the chunked thread schedule
//! (`threads = 4`), at every optimization level. The chunk schedule is a
//! function of the iteration count alone, so nothing about the outcome may
//! depend on the thread count.

use proptest::prelude::*;
use terra_eval::{Interp, LuaValue};
use terra_ir::OptLevel;

mod common;
use common::RecConfig;

/// A random integer expression over the loop index `i` and a captured
/// scalar `k`. `Div` can trap (division by zero at specific indices), which
/// exercises the first-trap-by-chunk-index reporting path.
#[derive(Debug, Clone)]
enum E {
    I,
    K,
    C(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
}

impl E {
    fn src(&self) -> String {
        match self {
            E::I => "i".to_string(),
            E::K => "k".to_string(),
            E::C(v) => {
                if *v < 0 {
                    format!("({})", v)
                } else {
                    v.to_string()
                }
            }
            E::Add(l, r) => format!("({} + {})", l.src(), r.src()),
            E::Sub(l, r) => format!("({} - {})", l.src(), r.src()),
            E::Mul(l, r) => format!("({} * {})", l.src(), r.src()),
            E::Div(l, r) => format!("({} / {})", l.src(), r.src()),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::I), Just(E::K), (-9i8..10).prop_map(E::C),];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Div(Box::new(l), Box::new(r))),
        ]
    })
}

/// Runs the program at a given (threads, opt level); returns the result
/// bits or the rendered trap.
fn run_at(src: &str, threads: usize, level: OptLevel) -> Result<u64, String> {
    let mut t = Interp::new();
    t.opt = level;
    t.ctx.exec.set_threads(threads);
    match t.exec(src) {
        Ok(out) => match out.first() {
            Some(LuaValue::Number(n)) => Ok(n.to_bits()),
            other => Err(format!("non-number result: {other:?}")),
        },
        Err(e) => Err(format!("trap: {e}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential and 4-thread runs agree exactly — same bits or same trap
    /// message — at -O0, -O1, and -O2.
    #[test]
    fn parallelfor_is_thread_count_invariant(
        e in expr_strategy(),
        n in 1i32..200,
        k in -4i32..5,
    ) {
        let body = e.src();
        let setup = format!(
            r#"
            local std = terralib.includec("stdlib.h")
            terra f(n : int, k : int) : double
                var buf = [&int64](std.malloc(n * 8))
                parallelfor i = 0, n do
                    buf[i] = [int64]({body})
                end
                var total : int64 = 0
                for i = 0, n do total = total + buf[i] end
                std.free(buf)
                return [double](total)
            end
            "#,
        );
        let call = format!("return f({n}, {k})");
        let src = format!("{setup}\n{call}");
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let seq = run_at(&src, 1, level);
            let par = run_at(&src, 4, level);
            // On failure, the flight recorder bisects the two thread
            // schedules to their first divergent heap effect. Recordings
            // are keyed by chunk order, so a clean report here means the
            // divergence arrived through a channel outside the heap.
            let bisect = if seq == par {
                String::new()
            } else {
                let mut par_cfg = RecConfig::at(level);
                par_cfg.threads = 4;
                common::divergence_report(&setup, &call, RecConfig::at(level), par_cfg)
            };
            prop_assert_eq!(
                &seq, &par,
                "threads=1 vs threads=4 diverged at {:?}\n{}", level, bisect
            );
        }
        // And across levels: the parallel schedule must not perturb the
        // optimization-level invariance the repo already guarantees.
        let o0 = run_at(&src, 4, OptLevel::O0);
        let o2 = run_at(&src, 4, OptLevel::O2);
        let bisect = if o0 == o2 {
            String::new()
        } else {
            let mut a = RecConfig::at(OptLevel::O0);
            a.threads = 4;
            let mut b = RecConfig::at(OptLevel::O2);
            b.threads = 4;
            common::divergence_report(&setup, &call, a, b)
        };
        prop_assert_eq!(&o0, &o2, "-O0 vs -O2 diverged under threads=4\n{}", bisect);
    }

    /// Writes through an in-memory capture land in the parent frame
    /// identically at every thread count (disjoint indices, no races).
    #[test]
    fn stack_array_writes_are_thread_count_invariant(
        n in 1i32..64,
        mul in -3i32..4,
    ) {
        let src = format!(
            r#"
            terra f(n : int, m : int) : double
                var buf : int[64]
                for i = 0, 64 do buf[i] = 0 end
                parallelfor i = 0, n do
                    buf[i] = i * m
                end
                var total = 0
                for i = 0, 64 do total = total + buf[i] end
                return [double](total)
            end
            return f({n}, {mul})
            "#,
        );
        let seq = run_at(&src, 1, OptLevel::O2);
        let par = run_at(&src, 4, OptLevel::O2);
        prop_assert_eq!(&seq, &par);
        let host: i64 = (0..n as i64).map(|i| i * mul as i64).sum();
        prop_assert_eq!(seq, Ok((host as f64).to_bits()));
    }
}
