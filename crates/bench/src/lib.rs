//! # terra-bench
//!
//! The benchmark harness of terra-rs: one binary per table/figure of the
//! paper's evaluation (run with `cargo run --release -p terra-bench --bin
//! fig6` etc.), plus Criterion benches (`cargo bench`) for statistically
//! careful timing of the same kernels.
//!
//! | target | reproduces |
//! |---|---|
//! | `--bin fig6` | Figure 6a/6b: DGEMM/SGEMM GFLOPS vs matrix size |
//! | `--bin fig8` | Figure 8: Orion schedule speedups (area filter, pointwise, fluid) |
//! | `--bin fig9` | Figure 9: AoS vs SoA mesh throughput |
//! | `--bin class_overhead` | §6.3.1 dispatch micro-benchmark |
//!
//! Absolute numbers will not match the paper — the backend is a bytecode VM,
//! not LLVM on a 2012 Core i7 — but the *shapes* (who wins, by what factor)
//! are the reproduction target; see EXPERIMENTS.md.

#![warn(missing_docs)]

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Formats a throughput cell.
pub fn fmt_gflops(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a speedup cell like the paper's "2.3x".
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.2}x")
}

/// A tiny fixed-width table printer for harness output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for r in &self.rows {
            line(r, &widths, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["series", "GFLOPS"]);
        t.push(vec!["naive".into(), "0.02".into()]);
        t.push(vec!["generated".into(), "0.27".into()]);
        let s = t.render();
        assert!(s.contains("| naive "));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_speedup(2.345), "2.35x");
        assert_eq!(fmt_gflops(0.12345), "0.123");
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
