//! Figure 9 harness: mesh-transformation throughput with array-of-structs
//! vs struct-of-arrays layout.
//!
//! Usage: `cargo run --release -p terra-bench --bin fig9 [--quick]`

use terra_bench::Table;
use terra_layout::{HostMesh, Layout, MeshKit};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let side = if quick { 256 } else { 512 };
    let mesh = HostMesh::grid(side, true);
    println!(
        "== Figure 9: mesh transformations ({} vertices, {} triangles, shuffled) ==",
        mesh.n_verts(),
        mesh.n_tris()
    );
    let mut table = Table::new(&[
        "benchmark",
        "Array-of-Structs",
        "Struct-of-Arrays",
        "winner",
    ]);
    let mut results = vec![];
    for layout in [Layout::Aos, Layout::Soa] {
        let mut kit = MeshKit::new(&mesh, layout).expect("stage mesh kit");
        let gn = kit.measure_normals(if quick { 1 } else { 2 });
        let gt = kit.measure_translate(if quick { 3 } else { 5 });
        results.push((gn, gt));
    }
    let (aos, soa) = (results[0], results[1]);
    table.push(vec![
        "Calc. vertex normals (GB/s)".into(),
        format!("{:.3}", aos.0),
        format!("{:.3}", soa.0),
        if aos.0 > soa.0 {
            "AoS".into()
        } else {
            "SoA".into()
        },
    ]);
    table.push(vec![
        "Translate positions (GB/s)".into(),
        format!("{:.3}", aos.1),
        format!("{:.3}", soa.1),
        if aos.1 > soa.1 {
            "AoS".into()
        } else {
            "SoA".into()
        },
    ]);
    print!("{}", table.render());
    println!(
        "\nshape check (paper): normals 55% faster in AoS; translate 43% faster in SoA.\n\
         measured: normals {:.0}% faster in AoS; translate {:.0}% faster in SoA.",
        (aos.0 / soa.0 - 1.0) * 100.0,
        (soa.1 / aos.1 - 1.0) * 100.0
    );
}
