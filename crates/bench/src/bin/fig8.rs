//! Figure 8 harness: speedup from choosing different Orion schedules, for
//! the separated area filter and the fluid-simulation diffuse solve, plus
//! the §6.2 pointwise-pipeline inlining experiment.
//!
//! Usage: `cargo run --release -p terra-bench --bin fig8 [--quick]`

use std::time::Instant;
use terra_bench::{fmt_speedup, Table};
use terra_core::Terra;
use terra_orion::fluid::FluidSim;
use terra_orion::{
    area_filter, figure8_schedules, pointwise_pipeline, ImageBuf, Pipeline, Schedule, Strategy,
};

fn time_pipeline(p: &Pipeline, w: usize, h: usize, sched: Schedule, reps: usize) -> f64 {
    let mut t = Terra::new();
    let c = p.compile(&mut t, w, h, sched).expect("stage pipeline");
    let img = ImageBuf::alloc(&mut t, &c);
    let out = ImageBuf::alloc(&mut t, &c);
    img.write(&mut t, &vec![0.5; w * h]);
    c.run(&mut t, &[&img], &out); // warm
    let start = Instant::now();
    for _ in 0..reps {
        c.run(&mut t, &[&img], &out);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn time_fluid(n: usize, sched: Schedule, steps: usize) -> f64 {
    let mut sim = FluidSim::new(n, 0.05, 0.0002, sched).expect("stage fluid");
    sim.solver_iters = 8;
    sim.step(); // warm (also compiles everything)
    let start = Instant::now();
    for _ in 0..steps {
        sim.step();
    }
    start.elapsed().as_secs_f64() / steps as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (w, h) = if quick { (512, 512) } else { (1024, 1024) };
    let reps = if quick { 1 } else { 3 };

    println!("== Figure 8: separated area filter ({w}x{h} float pixels) ==");
    let area = area_filter();
    let base = time_pipeline(&area, w, h, Schedule::match_c(), reps);
    let mut t1 = Table::new(&["schedule", "time(ms)", "speedup"]);
    t1.push(vec![
        "Matching C (reference)".into(),
        format!("{:.1}", base * 1e3),
        "1.00x".into(),
    ]);
    for (name, sched) in figure8_schedules() {
        let dt = time_pipeline(&area, w, h, sched, reps);
        t1.push(vec![
            name.to_string(),
            format!("{:.1}", dt * 1e3),
            fmt_speedup(base / dt),
        ]);
    }
    print!("{}", t1.render());

    let n = if quick { 64 } else { 128 };
    let steps = if quick { 1 } else { 2 };
    println!("\n== Figure 8: fluid simulation ({n}x{n}, one Stam step) ==");
    let fbase = time_fluid(n, Schedule::match_c(), steps);
    let mut t2 = Table::new(&["schedule", "time(ms)", "speedup"]);
    t2.push(vec![
        "Matching C (reference)".into(),
        format!("{:.1}", fbase * 1e3),
        "1.00x".into(),
    ]);
    for (name, sched) in figure8_schedules() {
        let dt = time_fluid(n, sched, steps);
        t2.push(vec![
            name.to_string(),
            format!("{:.1}", dt * 1e3),
            fmt_speedup(fbase / dt),
        ]);
    }
    print!("{}", t2.render());

    println!("\n== §6.2: pointwise pipeline, materialize-each vs inline-all ==");
    let pw = pointwise_pipeline(0.1, 1.3);
    let m = time_pipeline(&pw, w, h, Schedule::match_c(), reps);
    let inl = time_pipeline(
        &pw,
        w,
        h,
        Schedule {
            strategy: Strategy::Inline,
            vectorize: false,
        },
        reps,
    );
    let inl_vec = time_pipeline(
        &pw,
        w,
        h,
        Schedule {
            strategy: Strategy::Inline,
            vectorize: true,
        },
        reps,
    );
    let mut t3 = Table::new(&["schedule", "time(ms)", "speedup"]);
    t3.push(vec![
        "4 materialized passes".into(),
        format!("{:.1}", m * 1e3),
        "1.00x".into(),
    ]);
    t3.push(vec![
        "inlined into one pass".into(),
        format!("{:.1}", inl * 1e3),
        fmt_speedup(m / inl),
    ]);
    t3.push(vec![
        "inlined + vectorized".into(),
        format!("{:.1}", inl_vec * 1e3),
        fmt_speedup(m / inl_vec),
    ]);
    print!("{}", t3.render());
    println!(
        "\nshape check: vectorization ~2-6x; line buffering >= vectorization alone;\n\
         inlining the pointwise pipeline ~3-4x (paper: 3.8x)."
    );
}
