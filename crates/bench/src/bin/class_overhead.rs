//! §6.3.1 harness: virtual/interface dispatch overhead vs a direct call.
//!
//! Usage: `cargo run --release -p terra-bench --bin class_overhead`

use terra_bench::Table;
use terra_classes::DispatchBench;

fn main() {
    let mut b = DispatchBench::new().expect("stage class system");
    b.verify();
    let n = 2_000_000;
    let cost = b.measure(n);
    println!("== §6.3.1: method invocation overhead ({n} calls) ==");
    let mut t = Table::new(&["dispatch", "ns/call", "vs direct"]);
    t.push(vec![
        "direct".into(),
        format!("{:.1}", cost.direct_ns),
        "1.00x".into(),
    ]);
    t.push(vec![
        "virtual (vtable)".into(),
        format!("{:.1}", cost.virtual_ns),
        format!("{:.2}x", cost.virtual_ns / cost.direct_ns),
    ]);
    t.push(vec![
        "interface".into(),
        format!("{:.1}", cost.interface_ns),
        format!("{:.2}x", cost.interface_ns / cost.direct_ns),
    ]);
    print!("{}", t.render());
    println!(
        "\nshape check: overhead is a small constant per call (paper: within 1% of C++\n\
         with inlining; this VM pays one extra frame per indirection instead)."
    );
}
