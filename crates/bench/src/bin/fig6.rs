//! Figure 6 harness: matrix-multiply GFLOPS as a function of matrix size,
//! for the series of the paper — naive (unblocked), blocked, the
//! staged+autotuned kernel, and the vendor stand-in configuration.
//!
//! Usage: `cargo run --release -p terra-bench --bin fig6 [--quick]`

use terra_autotune::{autotune, vendor_config, GemmSession, Precision};
use terra_bench::{fmt_gflops, Table};

fn series(prec: Precision, sizes: &[usize], tune_reps: usize) {
    let label = match prec {
        Precision::F64 => "Figure 6a (DGEMM, double)",
        Precision::F32 => "Figure 6b (SGEMM, float)",
    };
    println!("\n== {label} ==");
    let mut s = GemmSession::new().expect("load generator");
    // Auto-tune once on the smallest size (as ATLAS tunes once per machine).
    let (best, tuned_gflops) = autotune(&mut s, sizes[0], prec, tune_reps).expect("autotune");
    println!(
        "auto-tuned configuration: {best} ({} candidates searched, {:.3} GFLOPS at N={})",
        terra_autotune::candidate_configs(sizes[0], prec).len(),
        tuned_gflops,
        sizes[0]
    );
    let mut table = Table::new(&[
        "N",
        "footprint(MB)",
        "naive",
        "blocked",
        "terra(tuned)",
        "vendor-stand-in",
        "tuned/naive",
    ]);
    for &n in sizes {
        let ws = s.workspace(n, prec);
        let naive = s.naive(n, prec).expect("stage naive");
        let blocked = s.blocked(n, 32, prec).expect("stage blocked");
        let tuned = s.generated(n, best, prec).expect("stage tuned");
        let vendor = s
            .generated(n, vendor_config(prec), prec)
            .expect("stage vendor");
        let reps = if n <= 256 { 3 } else { 1 };
        let g_naive = s.measure_gflops(&naive, &ws, reps);
        let g_blocked = s.measure_gflops(&blocked, &ws, reps);
        let g_tuned = s.measure_gflops(&tuned, &ws, reps);
        let g_vendor = s.measure_gflops(&vendor, &ws, reps);
        // Correctness spot-check on the tuned kernel.
        if n <= 128 {
            s.run(&tuned, &ws);
            ws.verify(&s);
        }
        let footprint = 3.0 * (n * n * prec.size()) as f64 / (1 << 20) as f64;
        table.push(vec![
            n.to_string(),
            format!("{footprint:.1}"),
            fmt_gflops(g_naive),
            fmt_gflops(g_blocked),
            fmt_gflops(g_tuned),
            fmt_gflops(g_vendor),
            format!("{:.1}x", g_tuned / g_naive),
        ]);
    }
    print!("{}", table.render());
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };
    let tune_reps = if quick { 1 } else { 2 };
    series(Precision::F64, sizes, tune_reps);
    series(Precision::F32, sizes, tune_reps);
    println!(
        "\nshape check: naive flat/declining with N; blocked catches naive at large N;\n\
         tuned within ~20% of the vendor stand-in and >8x over naive (paper: 65x with\n\
         native codegen; the VM's dispatch floor compresses the ratio)."
    );
}
