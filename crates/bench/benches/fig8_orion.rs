//! Criterion bench for Figure 8: the area filter under each schedule.

use criterion::{criterion_group, criterion_main, Criterion};
use terra_core::Terra;
use terra_orion::{area_filter, figure8_schedules, ImageBuf, Schedule};

fn bench_orion(c: &mut Criterion) {
    let (w, h) = (512, 512);
    let p = area_filter();
    let mut g = c.benchmark_group("fig8_area_filter_512");
    g.sample_size(10);
    let run_one =
        |name: &str,
         sched: Schedule,
         g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>| {
            let mut t = Terra::new();
            let compiled = p.compile(&mut t, w, h, sched).unwrap();
            let img = ImageBuf::alloc(&mut t, &compiled);
            let out = ImageBuf::alloc(&mut t, &compiled);
            img.write(&mut t, &vec![0.5; w * h]);
            g.bench_function(name, |b| b.iter(|| compiled.run(&mut t, &[&img], &out)));
        };
    run_one("match_c", Schedule::match_c(), &mut g);
    for (name, sched) in figure8_schedules() {
        let key = name.replace([' ', '+'], "_").to_lowercase();
        run_one(&key, sched, &mut g);
    }
    g.finish();
}

criterion_group!(benches, bench_orion);
criterion_main!(benches);
