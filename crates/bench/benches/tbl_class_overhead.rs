//! Criterion bench for the §6.3.1 dispatch micro-benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use terra_classes::DispatchBench;

fn bench_dispatch(c: &mut Criterion) {
    let mut bench = DispatchBench::new().unwrap();
    bench.verify();
    let mut g = c.benchmark_group("class_dispatch_100k_calls");
    g.sample_size(10);
    g.bench_function("direct", |b| {
        b.iter(|| {
            let cost = bench.measure(100_000);
            criterion::black_box(cost.direct_ns)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
