//! Criterion bench for Figure 9: AoS vs SoA mesh kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use terra_layout::{HostMesh, Layout, MeshKit};

fn bench_layout(c: &mut Criterion) {
    let mesh = HostMesh::grid(256, true);
    let mut g = c.benchmark_group("fig9_mesh_256");
    g.sample_size(10);
    for layout in [Layout::Aos, Layout::Soa] {
        let mut kit = MeshKit::new(&mesh, layout).unwrap();
        g.bench_function(format!("normals_{}", layout.name()), |b| {
            b.iter(|| kit.run_normals())
        });
        let mut kit = MeshKit::new(&mesh, layout).unwrap();
        g.bench_function(format!("translate_{}", layout.name()), |b| {
            b.iter(|| kit.run_translate(0.1, 0.0, 0.0))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
