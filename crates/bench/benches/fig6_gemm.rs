//! Criterion bench for Figure 6: one matmul per series at a fixed size.

use criterion::{criterion_group, criterion_main, Criterion};
use terra_autotune::{vendor_config, GemmSession, Precision};

fn bench_gemm(c: &mut Criterion) {
    let n = 128;
    let prec = Precision::F64;
    let mut s = GemmSession::new().unwrap();
    let ws = s.workspace(n, prec);
    let naive = s.naive(n, prec).unwrap();
    let blocked = s.blocked(n, 32, prec).unwrap();
    let tuned = s.generated(n, vendor_config(prec), prec).unwrap();
    let mut g = c.benchmark_group("fig6_dgemm_n128");
    g.sample_size(10);
    g.bench_function("naive", |b| b.iter(|| s.run(&naive, &ws)));
    g.bench_function("blocked", |b| b.iter(|| s.run(&blocked, &ws)));
    g.bench_function("generated", |b| b.iter(|| s.run(&tuned, &ws)));
    g.finish();

    let prec = Precision::F32;
    let mut s = GemmSession::new().unwrap();
    let ws = s.workspace(n, prec);
    let naive = s.naive(n, prec).unwrap();
    let tuned = s.generated(n, vendor_config(prec), prec).unwrap();
    let mut g = c.benchmark_group("fig6_sgemm_n128");
    g.sample_size(10);
    g.bench_function("naive", |b| b.iter(|| s.run(&naive, &ws)));
    g.bench_function("generated", |b| b.iter(|| s.run(&tuned, &ws)));
    g.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
