//! Ablation (DESIGN.md A3): VM dispatch amortization — a saxpy loop in
//! scalar form vs 4-wide and 8-wide vector form. Vector instructions do
//! N lanes of work per dispatched instruction, which is why vectorized
//! schedules win on this backend just as SIMD wins natively.

use criterion::{criterion_group, criterion_main, Criterion};
use terra_core::{Terra, Value};

fn bench_vm(c: &mut Criterion) {
    let n: usize = 64 * 1024;
    let mut t = Terra::new();
    t.exec(&format!(
        r#"
        local vec4 = vector(float, 4)
        local vec8 = vector(float, 8)
        terra saxpy_scalar(x : &float, y : &float, a : float)
            for i = 0, {n} do
                y[i] = a * x[i] + y[i]
            end
        end
        terra saxpy_v4(x : &float, y : &float, a : float)
            var px = [&vec4](x)
            var py = [&vec4](y)
            for i = 0, {n} / 4 do
                py[i] = a * px[i] + py[i]
            end
        end
        terra saxpy_v8(x : &float, y : &float, a : float)
            var px = [&vec8](x)
            var py = [&vec8](y)
            for i = 0, {n} / 8 do
                py[i] = a * px[i] + py[i]
            end
        end
        "#
    ))
    .unwrap();
    let x = t.malloc((n * 4) as u64);
    let y = t.malloc((n * 4) as u64);
    t.write_f32s(x, &vec![1.0; n]);
    t.write_f32s(y, &vec![2.0; n]);
    let scalar = t.function("saxpy_scalar").unwrap();
    let v4 = t.function("saxpy_v4").unwrap();
    let v8 = t.function("saxpy_v8").unwrap();
    let mut g = c.benchmark_group("ablate_vm_saxpy_64k");
    g.sample_size(20);
    let args = [Value::Ptr(x), Value::Ptr(y), Value::Float(0.5)];
    g.bench_function("scalar", |b| b.iter(|| t.invoke(&scalar, &args).unwrap()));
    g.bench_function("vector4", |b| b.iter(|| t.invoke(&v4, &args).unwrap()));
    g.bench_function("vector8", |b| b.iter(|| t.invoke(&v8, &args).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
