//! Ablation (DESIGN.md A2): which staged-kernel mechanism buys what —
//! register blocking (unrolling) alone, vectorization alone, and both.

use criterion::{criterion_group, criterion_main, Criterion};
use terra_autotune::{GemmConfig, GemmSession, Precision};

fn bench_ablation(c: &mut Criterion) {
    let n = 128;
    let prec = Precision::F64;
    let mut s = GemmSession::new().unwrap();
    let ws = s.workspace(n, prec);
    let configs = [
        (
            "baseline_v1_r1",
            GemmConfig {
                nb: 32,
                rm: 1,
                rn: 1,
                v: 1,
            },
        ),
        (
            "unroll_only",
            GemmConfig {
                nb: 32,
                rm: 4,
                rn: 4,
                v: 1,
            },
        ),
        (
            "vector_only",
            GemmConfig {
                nb: 32,
                rm: 1,
                rn: 1,
                v: 4,
            },
        ),
        (
            "unroll_and_vector",
            GemmConfig {
                nb: 32,
                rm: 2,
                rn: 2,
                v: 4,
            },
        ),
    ];
    let mut g = c.benchmark_group("ablate_kernel_n128");
    g.sample_size(10);
    for (name, cfg) in configs {
        let f = s.generated(n, cfg, prec).unwrap();
        g.bench_function(name, |b| b.iter(|| s.run(&f, &ws)));
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
