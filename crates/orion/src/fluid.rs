//! The real-time fluid simulation of §6.2, ported from Stam's *Real-Time
//! Fluid Dynamics for Games* exactly as the paper did: the Gauss-Seidel
//! solver becomes Gauss-Jacobi (so images are not modified in place), the
//! boundary condition is zero, and the semi-Lagrangian advection step —
//! which is *not* a stencil — is supplied as a raw Terra function that
//! composes with the DSL-generated kernels (the interoperability point the
//! paper highlights).
//!
//! The diffusion and pressure solves run Jacobi iterations **in fused
//! pairs**: each pipeline contains two chained Jacobi stages, so the
//! line-buffer schedule interleaves them — "line buffering pairs of the
//! iterations of the diffuse and project kernels" (§6.2).

use crate::{input, stage_ref, CompiledStencil, ImageBuf, OrionExpr, Pipeline, Schedule};
use terra_core::{LuaError, Terra, TerraFn, Value};

/// One Jacobi step of `(x0 + a·(neighbors of x)) / (1 + 4a)` as an Orion
/// expression over `x` and `x0`.
fn jacobi_diffuse(x: &OrionExpr, x0: &OrionExpr, a: f64) -> OrionExpr {
    (x0.at(0, 0) + (x.at(-1, 0) + x.at(1, 0) + x.at(0, -1) + x.at(0, 1)) * a)
        * (1.0 / (1.0 + 4.0 * a))
}

/// One Jacobi step of the pressure solve `(div + neighbors of p) / 4`.
fn jacobi_pressure(p: &OrionExpr, div: &OrionExpr) -> OrionExpr {
    (div.at(0, 0) + p.at(-1, 0) + p.at(1, 0) + p.at(0, -1) + p.at(0, 1)) * 0.25
}

/// The paired-iteration diffusion pipeline: inputs `(x, x0)`, output = two
/// Jacobi steps.
pub fn diffuse_pair(a: f64) -> Pipeline {
    let mut p = Pipeline::new(2);
    let x = input(0);
    let x0 = input(1);
    let s1 = p.stage(jacobi_diffuse(&x, &x0, a));
    p.stage(jacobi_diffuse(&stage_ref(s1), &x0, a));
    p
}

/// The paired-iteration pressure pipeline: inputs `(p, div)`.
pub fn pressure_pair() -> Pipeline {
    let mut pl = Pipeline::new(2);
    let p = input(0);
    let div = input(1);
    let s1 = pl.stage(jacobi_pressure(&p, &div));
    pl.stage(jacobi_pressure(&stage_ref(s1), &div));
    pl
}

/// Divergence of the velocity field: inputs `(u, v)`.
pub fn divergence(n: usize) -> Pipeline {
    let h = -0.5 / n as f64;
    let mut p = Pipeline::new(2);
    let u = input(0);
    let v = input(1);
    p.stage((u.at(1, 0) - u.at(-1, 0) + v.at(0, 1) - v.at(0, -1)) * h);
    p
}

/// Pressure-gradient subtraction for one velocity component. `axis` 0 for
/// `u` (x-gradient), 1 for `v` (y-gradient). Inputs `(vel, p)`.
pub fn grad_subtract(n: usize, axis: usize) -> Pipeline {
    let mut pl = Pipeline::new(2);
    let vel = input(0);
    let p = input(1);
    let g = if axis == 0 {
        p.at(1, 0) - p.at(-1, 0)
    } else {
        p.at(0, 1) - p.at(0, -1)
    };
    pl.stage(vel.at(0, 0) - g * (0.5 * n as f64));
    pl
}

/// A complete fluid simulation state for an `n`×`n` grid.
pub struct FluidSim {
    terra: Terra,
    n: usize,
    padding: usize,
    dt: f64,
    /// Velocity fields.
    pub u: ImageBuf,
    /// Velocity fields.
    pub v: ImageBuf,
    /// Density field.
    pub dens: ImageBuf,
    scratch_a: ImageBuf,
    scratch_b: ImageBuf,
    pressure: ImageBuf,
    div: ImageBuf,
    diffuse2: CompiledStencil,
    pressure2: CompiledStencil,
    div_k: CompiledStencil,
    gradsub_u: CompiledStencil,
    gradsub_v: CompiledStencil,
    advect_k: TerraFn,
    /// Jacobi iterations per solve (must be even; run as fused pairs).
    pub solver_iters: usize,
}

impl FluidSim {
    /// Builds a simulation: compiles every kernel under `schedule`.
    ///
    /// # Errors
    ///
    /// Propagates staging errors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of 8 when the schedule vectorizes.
    pub fn new(n: usize, dt: f64, diff: f64, schedule: Schedule) -> Result<FluidSim, LuaError> {
        let mut terra = Terra::new();
        let a = dt * diff * (n * n) as f64;
        let pipes = [
            diffuse_pair(a),
            pressure_pair(),
            divergence(n),
            grad_subtract(n, 0),
            grad_subtract(n, 1),
        ];
        let padding = pipes.iter().map(|p| p.padding()).max().expect("nonempty");
        let diffuse2 = pipes[0].compile_padded(&mut terra, n, n, schedule, padding)?;
        let pressure2 = pipes[1].compile_padded(&mut terra, n, n, schedule, padding)?;
        let div_k = pipes[2].compile_padded(&mut terra, n, n, schedule, padding)?;
        let gradsub_u = pipes[3].compile_padded(&mut terra, n, n, schedule, padding)?;
        let gradsub_v = pipes[4].compile_padded(&mut terra, n, n, schedule, padding)?;
        let advect_k = compile_advect(&mut terra, n, padding, dt)?;
        let alloc = |t: &mut Terra| ImageBuf::alloc_raw(t, n, n, padding);
        let u = alloc(&mut terra);
        let v = alloc(&mut terra);
        let dens = alloc(&mut terra);
        let scratch_a = alloc(&mut terra);
        let scratch_b = alloc(&mut terra);
        let pressure = alloc(&mut terra);
        let div = alloc(&mut terra);
        Ok(FluidSim {
            terra,
            n,
            padding,
            dt,
            u,
            v,
            dens,
            scratch_a,
            scratch_b,
            pressure,
            div,
            diffuse2,
            pressure2,
            div_k,
            gradsub_u,
            gradsub_v,
            advect_k,
            solver_iters: 16,
        })
    }

    /// The grid size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Access to the underlying session (e.g. to read fields).
    pub fn terra(&mut self) -> &mut Terra {
        &mut self.terra
    }

    /// Reads a field's interior.
    pub fn read(&self, field: &ImageBuf) -> Vec<f32> {
        field.read(&self.terra)
    }

    /// Writes a field's interior.
    pub fn write(&mut self, field: ImageBuf, data: &[f32]) {
        field.write(&mut self.terra, data);
    }

    /// Runs `solver_iters` Jacobi iterations of diffusion of `x` (with
    /// sources from `x`), result left in `x`'s buffer (ping-ponged
    /// internally).
    fn diffuse_into(&mut self, x: ImageBuf) {
        // x0 = snapshot of x.
        copy_field(&mut self.terra, &x, &self.scratch_b);
        let mut cur = x;
        let mut nxt = self.scratch_a;
        for _ in 0..self.solver_iters / 2 {
            self.diffuse2
                .run(&mut self.terra, &[&cur, &self.scratch_b], &nxt);
            std::mem::swap(&mut cur, &mut nxt);
        }
        if cur.addr != x.addr {
            copy_field(&mut self.terra, &cur, &x);
            self.scratch_a = cur;
        }
    }

    /// Projects the velocity field to be divergence-free.
    fn project(&mut self) {
        self.div_k
            .run(&mut self.terra, &[&self.u, &self.v], &self.div);
        // Zero initial pressure guess.
        let zeros = vec![0.0f32; self.n * self.n];
        self.pressure.write(&mut self.terra, &zeros);
        let mut cur = self.pressure;
        let mut nxt = self.scratch_a;
        for _ in 0..self.solver_iters / 2 {
            self.pressure2
                .run(&mut self.terra, &[&cur, &self.div], &nxt);
            std::mem::swap(&mut cur, &mut nxt);
        }
        // cur holds the pressure.
        self.gradsub_u
            .run(&mut self.terra, &[&self.u, &cur], &self.scratch_b);
        copy_field(&mut self.terra, &self.scratch_b, &self.u);
        self.gradsub_v
            .run(&mut self.terra, &[&self.v, &cur], &self.scratch_b);
        copy_field(&mut self.terra, &self.scratch_b, &self.v);
        if cur.addr != self.pressure.addr {
            self.scratch_a = cur;
        } else {
            // pressure/scratch_a identity preserved
        }
    }

    /// Semi-Lagrangian advection of `field` by the current velocity.
    fn advect_field(&mut self, field: ImageBuf) {
        let out = self.scratch_b;
        self.terra
            .invoke(
                &self.advect_k,
                &[
                    Value::Ptr(field.addr),
                    Value::Ptr(self.u.addr),
                    Value::Ptr(self.v.addr),
                    Value::Ptr(out.addr),
                ],
            )
            .expect("advect kernel trapped");
        copy_field(&mut self.terra, &out, &field);
    }

    /// One full Stam step: diffuse velocity, project, self-advect velocity,
    /// project, then diffuse + advect density.
    pub fn step(&mut self) {
        self.diffuse_into(self.u);
        self.diffuse_into(self.v);
        self.project();
        self.advect_field(self.u);
        self.advect_field(self.v);
        self.project();
        self.diffuse_into(self.dens);
        self.advect_field(self.dens);
    }

    /// Only the diffusion solve on the density field (the `diffuse` kernel
    /// of Figure 7, which Figure 8 benchmarks).
    pub fn diffuse_only(&mut self) {
        self.diffuse_into(self.dens);
    }

    /// Total kinetic-ish energy, as a sanity diagnostic.
    pub fn energy(&self) -> f64 {
        let u = self.read(&self.u);
        let v = self.read(&self.v);
        u.iter()
            .zip(&v)
            .map(|(a, b)| (*a as f64) * (*a as f64) + (*b as f64) * (*b as f64))
            .sum()
    }

    /// The timestep.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Padding shared by every field buffer.
    pub fn padding(&self) -> usize {
        self.padding
    }
}

fn copy_field(t: &mut Terra, src: &ImageBuf, dst: &ImageBuf) {
    let s = src.w + 2 * src.padding;
    let total = (s * (src.h + 2 * src.padding) * 4) as u64;
    t.interp()
        .ctx
        .exec
        .memory
        .copy_within(src.addr, dst.addr, total)
        .expect("field buffers are allocated");
}

/// Compiles the raw-Terra semi-Lagrangian advection kernel — the non-stencil
/// computation the user supplies directly, per §6.2.
fn compile_advect(t: &mut Terra, n: usize, p: usize, dt: f64) -> Result<TerraFn, LuaError> {
    let s = n + 2 * p;
    let dt0 = dt * n as f64;
    let hi = n as f64 - 1.001;
    let src = format!(
        r#"
__fluid_advect = terra(d0 : &float, u : &float, v : &float, dout : &float)
  for y = 0, {n} do
    var row = (y + {p}) * {s} + {p}
    for x = 0, {n} do
      -- backtrace the particle that lands on (x, y)
      var fx = x - {dt0} * u[row + x]
      var fy = y - {dt0} * v[row + x]
      fx = terralib.max(terralib.min(fx, {hi}), 0.0)
      fy = terralib.max(terralib.min(fy, {hi}), 0.0)
      var i0 = [int](fx)
      var j0 = [int](fy)
      var s1 = fx - i0
      var t1 = fy - j0
      var s0 = 1.0 - s1
      var t0 = 1.0 - t1
      var r0 = (j0 + {p}) * {s} + {p} + i0
      var r1 = r0 + {s}
      dout[row + x] = [float](
          s0 * (t0 * d0[r0] + t1 * d0[r1])
        + s1 * (t0 * d0[r0 + 1] + t1 * d0[r1 + 1]))
    end
  end
end
"#
    );
    t.exec(&src)?;
    t.function("__fluid_advect")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;

    fn blob(n: usize) -> Vec<f32> {
        (0..n * n)
            .map(|i| {
                let (x, y) = ((i % n) as f64, (i / n) as f64);
                let c = n as f64 / 2.0;
                let d2 = (x - c) * (x - c) + (y - c) * (y - c);
                (-d2 / (n as f64)).exp() as f32
            })
            .collect()
    }

    fn swirl(n: usize) -> (Vec<f32>, Vec<f32>) {
        let mut u = vec![0.0f32; n * n];
        let mut v = vec![0.0f32; n * n];
        let c = n as f32 / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f32 - c;
                let dy = y as f32 - c;
                u[y * n + x] = -dy * 0.02;
                v[y * n + x] = dx * 0.02;
            }
        }
        (u, v)
    }

    fn total_mass(d: &[f32]) -> f64 {
        d.iter().map(|v| *v as f64).sum()
    }

    fn run_sim(schedule: Schedule, steps: usize) -> Vec<f32> {
        let n = 16;
        let mut sim = FluidSim::new(n, 0.05, 0.0002, schedule).unwrap();
        sim.solver_iters = 8;
        let d0 = blob(n);
        let (u0, v0) = swirl(n);
        let (dens, u, v) = (sim.dens, sim.u, sim.v);
        sim.write(dens, &d0);
        sim.write(u, &u0);
        sim.write(v, &v0);
        for _ in 0..steps {
            sim.step();
        }
        sim.read(&sim.dens)
    }

    #[test]
    fn simulation_runs_and_stays_finite() {
        let d = run_sim(Schedule::match_c(), 3);
        assert!(d.iter().all(|v| v.is_finite()));
        assert!(total_mass(&d) > 0.0);
    }

    #[test]
    fn schedules_agree_on_the_physics() {
        let reference = run_sim(Schedule::match_c(), 2);
        for strategy in [Strategy::Inline, Strategy::LineBuffer] {
            for vectorize in [false, true] {
                let got = run_sim(
                    Schedule {
                        strategy,
                        vectorize,
                    },
                    2,
                );
                for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-4,
                        "{strategy:?}/{vectorize}: cell {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn diffusion_spreads_and_conserves_roughly() {
        let n = 16;
        let mut sim = FluidSim::new(n, 0.05, 0.001, Schedule::match_c()).unwrap();
        sim.solver_iters = 8;
        let mut d0 = vec![0.0f32; n * n];
        d0[(n / 2) * n + n / 2] = 1.0;
        let dens = sim.dens;
        sim.write(dens, &d0);
        sim.diffuse_only();
        let d = sim.read(&sim.dens);
        let center = d[(n / 2) * n + n / 2];
        let neighbor = d[(n / 2) * n + n / 2 + 1];
        assert!(center < 1.0, "diffusion must lower the peak");
        assert!(neighbor > 0.0, "diffusion must spread to neighbors");
        // Zero-boundary Jacobi loses a little mass but not much for a
        // centered blob.
        let mass = total_mass(&d);
        assert!(mass > 0.5 && mass <= 1.01, "mass = {mass}");
    }

    #[test]
    fn projection_reduces_divergence() {
        let n = 16;
        let mut sim = FluidSim::new(n, 0.05, 0.0002, Schedule::match_c()).unwrap();
        sim.solver_iters = 64;
        // A strongly divergent field: radial outflow.
        let mut u = vec![0.0f32; n * n];
        let mut v = vec![0.0f32; n * n];
        let c = n as f32 / 2.0;
        for y in 0..n {
            for x in 0..n {
                u[y * n + x] = (x as f32 - c) * 0.1;
                v[y * n + x] = (y as f32 - c) * 0.1;
            }
        }
        let (bu, bv) = (sim.u, sim.v);
        sim.write(bu, &u);
        sim.write(bv, &v);
        // Measure away from the zero boundary, where Jacobi converges fast.
        let div_before = host_divergence(&u, &v, n);
        sim.project();
        let u2 = sim.read(&sim.u);
        let v2 = sim.read(&sim.v);
        let div_after = host_divergence(&u2, &v2, n);
        assert!(
            div_after < div_before * 0.35,
            "projection: interior divergence {div_before} -> {div_after}"
        );
    }

    /// RMS divergence over the interior (boundary rows excluded — the zero
    /// boundary condition leaves irreducible divergence there).
    fn host_divergence(u: &[f32], v: &[f32], n: usize) -> f64 {
        let at = |b: &[f32], x: i32, y: i32| -> f32 {
            if x < 0 || y < 0 || x >= n as i32 || y >= n as i32 {
                0.0
            } else {
                b[y as usize * n + x as usize]
            }
        };
        let mut sum = 0.0;
        for y in 3..n as i32 - 3 {
            for x in 3..n as i32 - 3 {
                let d = (at(u, x + 1, y) - at(u, x - 1, y) + at(v, x, y + 1) - at(v, x, y - 1))
                    as f64
                    * 0.5;
                sum += d * d;
            }
        }
        sum.sqrt()
    }
}
