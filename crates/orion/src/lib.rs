//! # terra-orion
//!
//! Orion, the stencil DSL of §6.2 of the Terra paper: programs are
//! *image-wide operators* with constant offsets (which guarantees every
//! stage is a stencil), and the user guides optimization by choosing a
//! **schedule** — each intermediate image can be *materialized*, *inlined*,
//! or *line-buffered*, and any schedule can additionally be *vectorized*
//! using Terra's vector types.
//!
//! This crate plays the role of the Lua front end in the paper: an
//! expression IR built by operator overloading ([`OrionExpr`]), a compiler
//! ([`Pipeline::compile`]) that stages Terra code for the chosen
//! [`Schedule`], and padded zero-boundary image buffers ([`ImageBuf`]).
//!
//! ```
//! use terra_core::Terra;
//! use terra_orion::{input, Pipeline, Schedule, Strategy, ImageBuf};
//! # fn main() -> Result<(), terra_core::LuaError> {
//! let mut t = Terra::new();
//! // diffuse-like kernel: average of the 4-neighborhood
//! let f = input(0);
//! let blur = (f.at(-1, 0) + f.at(1, 0) + f.at(0, -1) + f.at(0, 1)) * 0.25;
//! let mut p = Pipeline::new(1);
//! p.stage(blur);
//! let compiled = p.compile(
//!     &mut t, 16, 16,
//!     Schedule { strategy: Strategy::Materialize, vectorize: false },
//! )?;
//! let img = ImageBuf::alloc(&mut t, &compiled);
//! let out = ImageBuf::alloc(&mut t, &compiled);
//! img.write(&mut t, &vec![1.0; 16 * 16]);
//! compiled.run(&mut t, &[&img], &out);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod fluid;

use std::fmt::Write as _;
use std::ops::{Add, Div, Mul, Sub};
use std::rc::Rc;
use terra_core::{LuaError, Terra, TerraFn, Value};

/// Reference to a pipeline stage (in definition order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(pub usize);

/// Binary operators of the image algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// lane-wise minimum
    Min,
    /// lane-wise maximum
    Max,
}

/// An image-wide expression: the Orion IR. Offsets are compile-time
/// constants, which is what makes every program a stencil (paper §6.2).
#[derive(Debug, Clone)]
pub enum OrionExpr {
    /// Source image `k`, translated by `(dx, dy)`.
    In(usize, i32, i32),
    /// An earlier stage, translated by `(dx, dy)`.
    St(StageId, i32, i32),
    /// A constant.
    K(f64),
    /// A binary operation.
    Bin(Op, Rc<OrionExpr>, Rc<OrionExpr>),
}

/// An un-shifted reference to source image `k` (`f` in the paper's
/// examples).
pub fn input(k: usize) -> OrionExpr {
    OrionExpr::In(k, 0, 0)
}

/// An un-shifted reference to an earlier stage.
pub fn stage_ref(s: StageId) -> OrionExpr {
    OrionExpr::St(s, 0, 0)
}

/// A constant image.
pub fn k(v: f64) -> OrionExpr {
    OrionExpr::K(v)
}

impl OrionExpr {
    /// Translates the expression: `f.at(-1, 0)` is the paper's `f(-1,0)`.
    pub fn at(&self, dx: i32, dy: i32) -> OrionExpr {
        match self {
            OrionExpr::In(k, x, y) => OrionExpr::In(*k, x + dx, y + dy),
            OrionExpr::St(s, x, y) => OrionExpr::St(*s, x + dx, y + dy),
            OrionExpr::K(v) => OrionExpr::K(*v),
            OrionExpr::Bin(op, a, b) => {
                OrionExpr::Bin(*op, Rc::new(a.at(dx, dy)), Rc::new(b.at(dx, dy)))
            }
        }
    }

    /// Lane-wise minimum.
    pub fn min(self, other: OrionExpr) -> OrionExpr {
        OrionExpr::Bin(Op::Min, Rc::new(self), Rc::new(other))
    }

    /// Lane-wise maximum.
    pub fn max(self, other: OrionExpr) -> OrionExpr {
        OrionExpr::Bin(Op::Max, Rc::new(self), Rc::new(other))
    }

    /// Clamps to `[lo, hi]`.
    pub fn clamp(self, lo: f64, hi: f64) -> OrionExpr {
        self.max(k(lo)).min(k(hi))
    }

    fn radius(&self) -> i32 {
        match self {
            OrionExpr::In(_, dx, dy) | OrionExpr::St(_, dx, dy) => dx.abs().max(dy.abs()),
            OrionExpr::K(_) => 0,
            OrionExpr::Bin(_, a, b) => a.radius().max(b.radius()),
        }
    }
}

macro_rules! orion_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl $trait for OrionExpr {
            type Output = OrionExpr;
            fn $method(self, rhs: OrionExpr) -> OrionExpr {
                OrionExpr::Bin($op, Rc::new(self), Rc::new(rhs))
            }
        }
        impl $trait<f64> for OrionExpr {
            type Output = OrionExpr;
            fn $method(self, rhs: f64) -> OrionExpr {
                OrionExpr::Bin($op, Rc::new(self), Rc::new(OrionExpr::K(rhs)))
            }
        }
        impl $trait<OrionExpr> for f64 {
            type Output = OrionExpr;
            fn $method(self, rhs: OrionExpr) -> OrionExpr {
                OrionExpr::Bin($op, Rc::new(OrionExpr::K(self)), Rc::new(rhs))
            }
        }
    };
}

orion_binop!(Add, add, Op::Add);
orion_binop!(Sub, sub, Op::Sub);
orion_binop!(Mul, mul, Op::Mul);
orion_binop!(Div, div, Op::Div);

/// How intermediate stages are stored (paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Every stage computed once into a full-sized buffer.
    Materialize,
    /// Intermediates recomputed per use inside the final loop.
    Inline,
    /// Stages interleaved over horizontal strips; intermediates live in a
    /// small scratchpad (overlapped-tiling realization of line buffering).
    LineBuffer,
}

/// A complete schedule: storage strategy × vectorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Intermediate storage strategy.
    pub strategy: Strategy,
    /// Use 8-wide f32 vector instructions for the x loops.
    pub vectorize: bool,
}

impl Schedule {
    /// The schedule that matches hand-written C (scalar, materialized).
    pub fn match_c() -> Schedule {
        Schedule {
            strategy: Strategy::Materialize,
            vectorize: false,
        }
    }
}

/// Strip height for the line-buffer schedule (large enough that the
/// overlapped-halo recompute is a small fraction of the strip).
const STRIP: usize = 64;
/// Vector width (8 × f32 = 256-bit).
const VW: usize = 8;

/// A pipeline of image stages; the last stage added is the output.
#[derive(Debug, Clone)]
pub struct Pipeline {
    n_inputs: usize,
    stages: Vec<OrionExpr>,
}

impl Pipeline {
    /// Creates a pipeline over `n_inputs` source images.
    pub fn new(n_inputs: usize) -> Pipeline {
        Pipeline {
            n_inputs,
            stages: Vec::new(),
        }
    }

    /// Adds a stage; returns its id for use in later stages.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a not-yet-defined stage or an
    /// out-of-range input.
    pub fn stage(&mut self, e: OrionExpr) -> StageId {
        fn check(e: &OrionExpr, n_inputs: usize, n_stages: usize) {
            match e {
                OrionExpr::In(k, ..) => assert!(*k < n_inputs, "input {k} out of range"),
                OrionExpr::St(s, ..) => {
                    assert!(s.0 < n_stages, "stage {} referenced before definition", s.0)
                }
                OrionExpr::K(_) => {}
                OrionExpr::Bin(_, a, b) => {
                    check(a, n_inputs, n_stages);
                    check(b, n_inputs, n_stages);
                }
            }
        }
        check(&e, self.n_inputs, self.stages.len());
        self.stages.push(e);
        StageId(self.stages.len() - 1)
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Returns a pipeline with the given stages inlined into their
    /// consumers (removed as materialization points) — per-stage scheduling,
    /// as in the paper where each Orion expression can individually be
    /// materialized, inlined, or line-buffered. The remaining stages are
    /// then scheduled by the global [`Strategy`].
    ///
    /// # Panics
    ///
    /// Panics if the output stage is requested to be inlined.
    pub fn with_inlined(&self, inline: &[StageId]) -> Pipeline {
        let last = self.stages.len() - 1;
        assert!(
            inline.iter().all(|s| s.0 != last),
            "the output stage cannot be inlined away"
        );
        let inline_set: std::collections::HashSet<usize> = inline.iter().map(|s| s.0).collect();
        // Rewrite each kept stage, substituting inlined stages (with offset
        // accumulation) and renumbering references.
        let mut keep_index = vec![usize::MAX; self.stages.len()];
        let mut out = Pipeline::new(self.n_inputs);
        fn rewrite(
            p: &Pipeline,
            inline_set: &std::collections::HashSet<usize>,
            keep_index: &[usize],
            e: &OrionExpr,
            dx: i32,
            dy: i32,
        ) -> OrionExpr {
            match e {
                OrionExpr::In(k, x, y) => OrionExpr::In(*k, x + dx, y + dy),
                OrionExpr::K(v) => OrionExpr::K(*v),
                OrionExpr::St(sid, x, y) => {
                    if inline_set.contains(&sid.0) {
                        rewrite(p, inline_set, keep_index, &p.stages[sid.0], x + dx, y + dy)
                    } else {
                        OrionExpr::St(StageId(keep_index[sid.0]), x + dx, y + dy)
                    }
                }
                OrionExpr::Bin(op, a, b) => OrionExpr::Bin(
                    *op,
                    Rc::new(rewrite(p, inline_set, keep_index, a, dx, dy)),
                    Rc::new(rewrite(p, inline_set, keep_index, b, dx, dy)),
                ),
            }
        }
        for (i, st) in self.stages.iter().enumerate() {
            if inline_set.contains(&i) {
                continue;
            }
            let e = rewrite(self, &inline_set, &keep_index, st, 0, 0);
            keep_index[i] = out.stage(e).0;
        }
        out
    }

    /// Total padding required around every buffer so that no read, however
    /// scheduled, leaves the allocation: enough for every stage's halo
    /// region plus its own read radius, rounded up for vector alignment.
    pub fn padding(&self) -> usize {
        let (halo, xhalo) = self.halos();
        let mut need = 8i32;
        for (i, st) in self.stages.iter().enumerate() {
            let r = st.radius();
            need = need.max(xhalo[i] + r).max(halo[i] + r);
        }
        (need as usize).div_ceil(8) * 8
    }

    /// Per-stage y-halos: rows beyond the output region each intermediate
    /// must be computed on (sum of downstream radii), and the 8-aligned
    /// x-halos used by vectorized loops.
    fn halos(&self) -> (Vec<i32>, Vec<i32>) {
        let n = self.stages.len();
        let radii: Vec<i32> = self.stages.iter().map(|e| e.radius()).collect();
        let mut halo = vec![0i32; n];
        let mut xhalo = vec![0i32; n];
        for i in (0..n.saturating_sub(1)).rev() {
            halo[i] = halo[i + 1] + radii[i + 1];
            xhalo[i] = (xhalo[i + 1] + radii[i + 1] + 7) / 8 * 8;
        }
        (halo, xhalo)
    }

    /// Stages the pipeline into a compiled Terra function for a `w`×`h`
    /// image and the given schedule.
    ///
    /// # Errors
    ///
    /// Propagates staging errors (a bug in code generation).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline has no stages, or if `vectorize` is requested
    /// with `w` not divisible by 8.
    pub fn compile(
        &self,
        t: &mut Terra,
        w: usize,
        h: usize,
        schedule: Schedule,
    ) -> Result<CompiledStencil, LuaError> {
        self.compile_padded(t, w, h, schedule, self.padding())
    }

    /// Like [`Pipeline::compile`] but with an explicit (larger) padding, so
    /// that several pipelines can share buffers (the fluid solver does this).
    ///
    /// # Errors
    ///
    /// Propagates staging errors.
    ///
    /// # Panics
    ///
    /// Panics if `padding` is smaller than [`Pipeline::padding`].
    pub fn compile_padded(
        &self,
        t: &mut Terra,
        w: usize,
        h: usize,
        schedule: Schedule,
        padding: usize,
    ) -> Result<CompiledStencil, LuaError> {
        assert!(!self.stages.is_empty(), "pipeline has no stages");
        assert!(padding >= self.padding(), "padding too small for pipeline");
        if schedule.vectorize {
            assert!(
                w.is_multiple_of(VW),
                "vectorized schedules require W % 8 == 0"
            );
        }
        let src = self.codegen_at(w, h, schedule, padding);
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let name = format!("__orion_{id}");
        t.exec(&format!("{name} = (function()\n{src}\nend)()"))
            .map_err(|e| e.traced("orion-generated code"))?;
        let f = t.function(&name)?;
        Ok(CompiledStencil {
            f,
            w,
            h,
            padding,
            n_inputs: self.n_inputs,
            source: src,
        })
    }

    // -- code generation ----------------------------------------------------

    fn codegen_at(&self, w: usize, h: usize, schedule: Schedule, p: usize) -> String {
        let s = w + 2 * p; // stride
        let mut out = String::new();
        let _ = writeln!(out, "local std = terralib.includec(\"stdlib.h\")");
        let _ = writeln!(out, "local v8 = vector(float, 8)");
        let _ = writeln!(out, "local pv8 = &v8");
        let mut params: Vec<String> = (0..self.n_inputs)
            .map(|i| format!("in{i} : &float"))
            .collect();
        params.push("out : &float".to_string());
        let _ = writeln!(out, "return terra({})", params.join(", "));
        match schedule.strategy {
            Strategy::Inline => self.gen_inline(&mut out, w, h, p, s, schedule.vectorize),
            Strategy::Materialize => self.gen_materialize(&mut out, w, h, p, s, schedule.vectorize),
            Strategy::LineBuffer => self.gen_linebuffer(&mut out, w, h, p, s, schedule.vectorize),
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Fully-inlined single loop: every stage substituted into the output
    /// expression with accumulated offsets.
    fn gen_inline(&self, out: &mut String, w: usize, h: usize, p: usize, s: usize, vec: bool) {
        let expr = self.resolve_inline(self.stages.len() - 1, 0, 0);
        let body = emit_expr(&expr, s as i32, vec);
        emit_loop(out, "out", w, h, p, s, vec, &body, 1);
    }

    fn resolve_inline(&self, stage: usize, dx: i32, dy: i32) -> OrionExpr {
        fn go(p: &Pipeline, e: &OrionExpr, dx: i32, dy: i32) -> OrionExpr {
            match e {
                OrionExpr::In(k, x, y) => OrionExpr::In(*k, x + dx, y + dy),
                OrionExpr::K(v) => OrionExpr::K(*v),
                OrionExpr::St(sid, x, y) => p.resolve_inline(sid.0, x + dx, y + dy),
                OrionExpr::Bin(op, a, b) => {
                    OrionExpr::Bin(*op, Rc::new(go(p, a, dx, dy)), Rc::new(go(p, b, dx, dy)))
                }
            }
        }
        go(self, &self.stages[stage], dx, dy)
    }

    /// One full-sized buffer and loop per stage — what a straightforward C
    /// implementation would do. Intermediates are computed over their halo
    /// region so that boundary conditions apply only at the source images.
    fn gen_materialize(&self, out: &mut String, w: usize, h: usize, p: usize, s: usize, vec: bool) {
        let bytes = s * (h + 2 * p) * 4;
        let n = self.stages.len();
        let (halo, xhalo) = self.halos();
        for i in 0..n - 1 {
            let _ = writeln!(out, "  var st{i} = [&float](std.malloc({bytes}))");
            let _ = writeln!(out, "  std.memset([&uint8](st{i}), 0, {bytes})");
        }
        for (i, stage) in self.stages.iter().enumerate() {
            let dst = if i == n - 1 {
                "out".to_string()
            } else {
                format!("st{i}")
            };
            let body = emit_expr(stage, s as i32, vec);
            let (hy, hx) = (halo[i], xhalo[i]);
            let pad = "  ";
            let _ = writeln!(out, "{pad}for y = {}, {} do", -hy, h as i32 + hy);
            let _ = writeln!(out, "{pad}  var inrow = (y + {p}) * {s} + {p}");
            emit_x_loop_range(out, &dst, "inrow", -hx, w as i32 + hx, vec, &body, 2);
            let _ = writeln!(out, "{pad}end");
        }
        for i in 0..n - 1 {
            let _ = writeln!(out, "  std.free(st{i})");
        }
    }

    /// Strip-interleaved execution: intermediates live in small scratch
    /// buffers of `STRIP + 2·halo` rows; strips recompute halo rows
    /// (overlapped tiling), trading a little compute for the memory-traffic
    /// profile of classic line buffering.
    fn gen_linebuffer(&self, out: &mut String, w: usize, h: usize, p: usize, s: usize, vec: bool) {
        let n = self.stages.len();
        let (halo, xhalo) = self.halos();
        let scratch_rows: Vec<usize> = halo.iter().map(|h_| STRIP + 2 * (*h_ as usize)).collect();
        for (i, rows) in scratch_rows.iter().enumerate().take(n - 1) {
            let bytes = s * rows * 4;
            let _ = writeln!(out, "  var st{i} = [&float](std.malloc({bytes}))");
            let _ = writeln!(out, "  std.memset([&uint8](st{i}), 0, {bytes})");
        }
        let _ = writeln!(out, "  for y0 = 0, {h}, {STRIP} do");
        for (i, stage) in self.stages.iter().enumerate() {
            let is_out = i == n - 1;
            let (lo, hi) = if is_out {
                ("y0".to_string(), format!("terralib.min(y0 + {STRIP}, {h})"))
            } else {
                (
                    format!("y0 - {}", halo[i]),
                    format!(
                        "terralib.min(y0 + {}, {} + {})",
                        STRIP + halo[i] as usize,
                        h,
                        halo[i]
                    ),
                )
            };
            let _ = writeln!(out, "    for y = {lo}, {hi} do");
            // Row-base variables: `inrow` addresses full padded buffers,
            // `scr<j>` addresses stage j's scratch (its own row mapping:
            // absolute row y lives in slot y - y0 + halo_j).
            let _ = writeln!(out, "      var inrow = (y + {p}) * {s} + {p}");
            for (j, h_j) in halo.iter().enumerate().take(i) {
                let _ = writeln!(out, "      var scr{j} = (y - y0 + {h_j}) * {s} + {p}");
            }
            let dst_base = if is_out {
                "inrow".to_string()
            } else {
                let _ = writeln!(out, "      var scrd = (y - y0 + {}) * {s} + {p}", halo[i]);
                "scrd".to_string()
            };
            let dst = if is_out {
                "out".to_string()
            } else {
                format!("st{i}")
            };
            let body = emit_expr_with_bases(
                stage,
                s as i32,
                vec,
                &|kk| (format!("in{kk}"), "inrow".to_string()),
                &|sid| (format!("st{}", sid.0), format!("scr{}", sid.0)),
            );
            let hx = if is_out { 0 } else { xhalo[i] };
            emit_x_loop_range(out, &dst, &dst_base, -hx, w as i32 + hx, vec, &body, 3);
            let _ = writeln!(out, "    end");
        }
        let _ = writeln!(out, "  end");
        for i in 0..n - 1 {
            let _ = writeln!(out, "  std.free(st{i})");
        }
    }
}

/// Emits the standard y/x loop nest writing `dst[(y+p)*s + p + x]`.
#[allow(clippy::too_many_arguments)]
fn emit_loop(
    out: &mut String,
    dst: &str,
    w: usize,
    h: usize,
    p: usize,
    s: usize,
    vec: bool,
    body: &str,
    indent: usize,
) {
    let pad = "  ".repeat(indent);
    let _ = writeln!(out, "{pad}for y = 0, {h} do");
    let _ = writeln!(out, "{pad}  var inrow = (y + {p}) * {s} + {p}");
    emit_x_loop(out, dst, "inrow", w, vec, body, indent + 1);
    let _ = writeln!(out, "{pad}end");
}

/// Emits an x loop over `[lo, hi)` (scalar or vector) storing `body` into
/// `dst[dst_base + x]`. Vector loops require `(hi - lo) % 8 == 0`, which the
/// 8-aligned halos guarantee.
#[allow(clippy::too_many_arguments)]
fn emit_x_loop_range(
    out: &mut String,
    dst: &str,
    dst_base: &str,
    lo: i32,
    hi: i32,
    vec: bool,
    body: &str,
    indent: usize,
) {
    let pad = "  ".repeat(indent);
    if vec {
        let _ = writeln!(out, "{pad}for x = {lo}, {hi}, {VW} do");
        let _ = writeln!(out, "{pad}  @pv8(&{dst}[{dst_base} + x]) = {body}");
        let _ = writeln!(out, "{pad}end");
    } else {
        let _ = writeln!(out, "{pad}for x = {lo}, {hi} do");
        let _ = writeln!(out, "{pad}  {dst}[{dst_base} + x] = {body}");
        let _ = writeln!(out, "{pad}end");
    }
}

/// Emits the x loop (scalar or vector) storing `body` into
/// `dst[dst_base + x]`.
fn emit_x_loop(
    out: &mut String,
    dst: &str,
    dst_base: &str,
    w: usize,
    vec: bool,
    body: &str,
    indent: usize,
) {
    let pad = "  ".repeat(indent);
    if vec {
        let _ = writeln!(out, "{pad}for x = 0, {w}, {VW} do");
        let _ = writeln!(out, "{pad}  @pv8(&{dst}[{dst_base} + x]) = {body}");
        let _ = writeln!(out, "{pad}end");
    } else {
        let _ = writeln!(out, "{pad}for x = 0, {w} do");
        let _ = writeln!(out, "{pad}  {dst}[{dst_base} + x] = {body}");
        let _ = writeln!(out, "{pad}end");
    }
}

/// Renders an Orion expression as Terra source; reads are relative to the
/// row-base variable `inrow`.
fn emit_expr(e: &OrionExpr, stride: i32, vec: bool) -> String {
    emit_expr_with_bases(
        e,
        stride,
        vec,
        &|k| (format!("in{k}"), "inrow".to_string()),
        &|s| (format!("st{}", s.0), "inrow".to_string()),
    )
}

fn emit_expr_with_bases(
    e: &OrionExpr,
    stride: i32,
    vec: bool,
    in_ref: &dyn Fn(usize) -> (String, String),
    st_ref: &dyn Fn(StageId) -> (String, String),
) -> String {
    let read = |name: String, base: String, dx: i32, dy: i32| -> String {
        let off = dy * stride + dx;
        let idx = if off == 0 {
            format!("{base} + x")
        } else {
            format!("{base} + x + {off}")
        };
        if vec {
            format!("(@pv8(&{name}[{idx}]))")
        } else {
            format!("{name}[{idx}]")
        }
    };
    match e {
        OrionExpr::In(k, dx, dy) => {
            let (name, base) = in_ref(*k);
            read(name, base, *dx, *dy)
        }
        OrionExpr::St(sid, dx, dy) => {
            let (name, base) = st_ref(*sid);
            read(name, base, *dx, *dy)
        }
        OrionExpr::K(v) => format!("{v:?}f"),
        OrionExpr::Bin(op, a, b) => {
            let a = emit_expr_with_bases(a, stride, vec, in_ref, st_ref);
            let b = emit_expr_with_bases(b, stride, vec, in_ref, st_ref);
            match op {
                Op::Add => format!("({a} + {b})"),
                Op::Sub => format!("({a} - {b})"),
                Op::Mul => format!("({a} * {b})"),
                Op::Div => format!("({a} / {b})"),
                Op::Min => format!("terralib.min({a}, {b})"),
                Op::Max => format!("terralib.max({a}, {b})"),
            }
        }
    }
}

/// A compiled stencil pipeline.
pub struct CompiledStencil {
    f: TerraFn,
    /// Image width (interior).
    pub w: usize,
    /// Image height (interior).
    pub h: usize,
    /// Padding baked into every buffer.
    pub padding: usize,
    /// Number of source images.
    pub n_inputs: usize,
    /// The generated Terra source (useful for inspection/tests).
    pub source: String,
}

impl CompiledStencil {
    /// Runs the pipeline.
    ///
    /// # Panics
    ///
    /// Panics on input-count mismatch, buffer geometry mismatch, or a VM
    /// trap (all indicate a harness bug).
    pub fn run(&self, t: &mut Terra, inputs: &[&ImageBuf], out: &ImageBuf) {
        assert_eq!(inputs.len(), self.n_inputs, "input count mismatch");
        for b in inputs.iter().chain([&out]) {
            assert_eq!(
                (b.w, b.h, b.padding),
                (self.w, self.h, self.padding),
                "buffer geometry mismatch"
            );
        }
        let mut args: Vec<Value> = inputs.iter().map(|b| Value::Ptr(b.addr)).collect();
        args.push(Value::Ptr(out.addr));
        t.invoke(&self.f, &args).expect("stencil kernel trapped");
    }
}

/// A padded, zero-boundary f32 image in Terra memory.
#[derive(Debug, Clone, Copy)]
pub struct ImageBuf {
    /// Base address of the padded allocation.
    pub addr: u64,
    /// Interior width.
    pub w: usize,
    /// Interior height.
    pub h: usize,
    /// Padding on each side.
    pub padding: usize,
}

impl ImageBuf {
    /// Allocates a zeroed buffer matching a compiled pipeline's geometry.
    pub fn alloc(t: &mut Terra, c: &CompiledStencil) -> ImageBuf {
        Self::alloc_raw(t, c.w, c.h, c.padding)
    }

    /// Allocates a zeroed buffer with explicit geometry.
    pub fn alloc_raw(t: &mut Terra, w: usize, h: usize, padding: usize) -> ImageBuf {
        let s = w + 2 * padding;
        let total = s * (h + 2 * padding);
        let addr = t.malloc((total * 4) as u64);
        t.write_f32s(addr, &vec![0.0; total]);
        ImageBuf {
            addr,
            w,
            h,
            padding,
        }
    }

    fn stride(&self) -> usize {
        self.w + 2 * self.padding
    }

    /// Writes row-major interior data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != w*h`.
    pub fn write(&self, t: &mut Terra, data: &[f32]) {
        assert_eq!(data.len(), self.w * self.h);
        let s = self.stride();
        let p = self.padding;
        for y in 0..self.h {
            let row = &data[y * self.w..(y + 1) * self.w];
            let addr = self.addr + (((y + p) * s + p) * 4) as u64;
            t.write_f32s(addr, row);
        }
    }

    /// Reads the interior back.
    pub fn read(&self, t: &Terra) -> Vec<f32> {
        let s = self.stride();
        let p = self.padding;
        let mut out = Vec::with_capacity(self.w * self.h);
        for y in 0..self.h {
            let addr = self.addr + (((y + p) * s + p) * 4) as u64;
            out.extend(t.read_f32s(addr, self.w));
        }
        out
    }
}

/// The schedule ladder of Figure 8, in report order.
pub fn figure8_schedules() -> Vec<(&'static str, Schedule)> {
    vec![
        (
            "Matching Orion",
            Schedule {
                strategy: Strategy::Materialize,
                vectorize: false,
            },
        ),
        (
            "+ Vectorization",
            Schedule {
                strategy: Strategy::Materialize,
                vectorize: true,
            },
        ),
        (
            "+ Line buffering",
            Schedule {
                strategy: Strategy::LineBuffer,
                vectorize: true,
            },
        ),
    ]
}

/// The separable 5×5 area filter from §6.2: a 1-D average in y, then in x.
pub fn area_filter() -> Pipeline {
    let f = input(0);
    let mut p = Pipeline::new(1);
    let pass_y = (f.at(0, -2) + f.at(0, -1) + f.at(0, 0) + f.at(0, 1) + f.at(0, 2)) * (1.0 / 5.0);
    let y = p.stage(pass_y);
    let g = stage_ref(y);
    let pass_x = (g.at(-2, 0) + g.at(-1, 0) + g.at(0, 0) + g.at(1, 0) + g.at(2, 0)) * (1.0 / 5.0);
    p.stage(pass_x);
    p
}

/// The four point-wise kernels of §6.2 (blacklevel offset, brightness,
/// clamp, invert) as a chain — the inlining demonstration.
pub fn pointwise_pipeline(blacklevel: f64, brightness: f64) -> Pipeline {
    let mut p = Pipeline::new(1);
    let a = p.stage(input(0) - blacklevel);
    let b = p.stage(stage_ref(a) * brightness);
    let c = p.stage(stage_ref(b).clamp(0.0, 1.0));
    p.stage(1.0 - stage_ref(c));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: usize, h: usize) -> Vec<f32> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                ((x + y) % 7) as f32 * 0.25
            })
            .collect()
    }

    /// Host-side reference: boundary conditions apply at source images
    /// only, so every schedule must equal the fully-inlined evaluation.
    fn reference(p: &Pipeline, inputs: &[Vec<f32>], w: usize, h: usize) -> Vec<f32> {
        fn eval(inputs: &[Vec<f32>], e: &OrionExpr, x: i32, y: i32, w: i32, h: i32) -> f32 {
            match e {
                OrionExpr::In(k, dx, dy) => {
                    let (x, y) = (x + dx, y + dy);
                    if x < 0 || y < 0 || x >= w || y >= h {
                        0.0
                    } else {
                        inputs[*k][(y * w + x) as usize]
                    }
                }
                OrionExpr::St(..) => unreachable!("resolved"),
                OrionExpr::K(v) => *v as f32,
                OrionExpr::Bin(op, a, b) => {
                    let a = eval(inputs, a, x, y, w, h);
                    let b = eval(inputs, b, x, y, w, h);
                    match op {
                        Op::Add => a + b,
                        Op::Sub => a - b,
                        Op::Mul => a * b,
                        Op::Div => a / b,
                        Op::Min => a.min(b),
                        Op::Max => a.max(b),
                    }
                }
            }
        }
        let expr = p.resolve_inline(p.stages.len() - 1, 0, 0);
        let mut buf = vec![0.0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                buf[y * w + x] = eval(inputs, &expr, x as i32, y as i32, w as i32, h as i32);
            }
        }
        buf
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "{what}: mismatch at {i}: {x} vs {y}");
        }
    }

    fn run_all_schedules(p: &Pipeline, w: usize, h: usize) {
        let input_data = checker(w, h);
        let expect = reference(p, std::slice::from_ref(&input_data), w, h);
        for strategy in [
            Strategy::Materialize,
            Strategy::Inline,
            Strategy::LineBuffer,
        ] {
            for vectorize in [false, true] {
                let mut t = Terra::new();
                let sched = Schedule {
                    strategy,
                    vectorize,
                };
                let c = p
                    .compile(&mut t, w, h, sched)
                    .unwrap_or_else(|e| panic!("compile failed for {strategy:?}/{vectorize}: {e}"));
                let img = ImageBuf::alloc(&mut t, &c);
                let out = ImageBuf::alloc(&mut t, &c);
                img.write(&mut t, &input_data);
                c.run(&mut t, &[&img], &out);
                let got = out.read(&t);
                assert_close(
                    &got,
                    &expect,
                    1e-4,
                    &format!("{strategy:?} vectorize={vectorize}"),
                );
            }
        }
    }

    #[test]
    fn area_filter_all_schedules_agree() {
        run_all_schedules(&area_filter(), 32, 24);
    }

    #[test]
    fn pointwise_pipeline_all_schedules_agree() {
        run_all_schedules(&pointwise_pipeline(0.1, 1.4), 16, 16);
    }

    #[test]
    fn single_stage_laplace() {
        let f = input(0);
        let lap = f.at(-1, 0) + f.at(1, 0) + f.at(0, -1) + f.at(0, 1) - f.at(0, 0) * 4.0;
        let mut p = Pipeline::new(1);
        p.stage(lap);
        run_all_schedules(&p, 16, 16);
    }

    #[test]
    fn two_input_pipeline() {
        // diffuse-like: (in1 + 0.5*(in0(-1,0)+in0(1,0))) / 2
        let x = input(0);
        let x0 = input(1);
        let mut p = Pipeline::new(2);
        p.stage((x0 + (x.at(-1, 0) + x.at(1, 0)) * 0.5) * 0.5);
        let w = 16;
        let h = 8;
        let d0 = checker(w, h);
        let d1: Vec<f32> = d0.iter().map(|v| v * 2.0 + 0.25).collect();
        let expect = reference(&p, &[d0.clone(), d1.clone()], w, h);
        for strategy in [
            Strategy::Materialize,
            Strategy::Inline,
            Strategy::LineBuffer,
        ] {
            let mut t = Terra::new();
            let c = p
                .compile(
                    &mut t,
                    w,
                    h,
                    Schedule {
                        strategy,
                        vectorize: true,
                    },
                )
                .unwrap();
            let b0 = ImageBuf::alloc(&mut t, &c);
            let b1 = ImageBuf::alloc(&mut t, &c);
            let out = ImageBuf::alloc(&mut t, &c);
            b0.write(&mut t, &d0);
            b1.write(&mut t, &d1);
            c.run(&mut t, &[&b0, &b1], &out);
            assert_close(&out.read(&t), &expect, 1e-4, &format!("{strategy:?}"));
        }
    }

    #[test]
    fn deep_chain_linebuffer() {
        // 4 chained vertical blurs — exercises multi-stage halos.
        let mut p = Pipeline::new(1);
        let mut prev = p.stage((input(0).at(0, -1) + input(0).at(0, 1)) * 0.5);
        for _ in 0..3 {
            let e = (stage_ref(prev).at(0, -1) + stage_ref(prev).at(0, 1)) * 0.5;
            prev = p.stage(e);
        }
        run_all_schedules(&p, 16, 32);
    }

    #[test]
    fn clamp_and_minmax() {
        let mut p = Pipeline::new(1);
        p.stage((input(0) * 3.0).clamp(0.2, 0.9));
        run_all_schedules(&p, 16, 8);
    }

    #[test]
    fn non_multiple_strip_heights() {
        // h = 13 is not a multiple of the strip height 8.
        let p = area_filter();
        let input_data = checker(16, 13);
        let expect = reference(&p, std::slice::from_ref(&input_data), 16, 13);
        let mut t = Terra::new();
        let c = p
            .compile(
                &mut t,
                16,
                13,
                Schedule {
                    strategy: Strategy::LineBuffer,
                    vectorize: false,
                },
            )
            .unwrap();
        let img = ImageBuf::alloc(&mut t, &c);
        let out = ImageBuf::alloc(&mut t, &c);
        img.write(&mut t, &input_data);
        c.run(&mut t, &[&img], &out);
        assert_close(&out.read(&t), &expect, 1e-4, "strip remainder");
    }

    #[test]
    fn per_stage_inlining_preserves_semantics() {
        // Area filter with the y-pass inlined into the x-pass must equal the
        // two-stage version under every remaining strategy.
        let p = area_filter();
        let inlined = p.with_inlined(&[StageId(0)]);
        assert_eq!(inlined.len(), 1);
        let data = checker(24, 16);
        let expect = reference(&p, std::slice::from_ref(&data), 24, 16);
        for strategy in [Strategy::Materialize, Strategy::LineBuffer] {
            let mut t = Terra::new();
            let c = inlined
                .compile(
                    &mut t,
                    24,
                    16,
                    Schedule {
                        strategy,
                        vectorize: true,
                    },
                )
                .unwrap();
            let img = ImageBuf::alloc(&mut t, &c);
            let out = ImageBuf::alloc(&mut t, &c);
            img.write(&mut t, &data);
            c.run(&mut t, &[&img], &out);
            assert_close(&out.read(&t), &expect, 1e-4, "per-stage inline");
        }
    }

    #[test]
    fn partial_inlining_of_long_chain() {
        // 3-stage chain; inline only the middle stage.
        let mut p = Pipeline::new(1);
        let a = p.stage((input(0).at(-1, 0) + input(0).at(1, 0)) * 0.5);
        let b = p.stage(stage_ref(a) * 2.0);
        p.stage(stage_ref(b).at(0, -1) + stage_ref(b).at(0, 1));
        let q = p.with_inlined(&[b]);
        assert_eq!(q.len(), 2);
        let data = checker(16, 16);
        let expect = reference(&p, std::slice::from_ref(&data), 16, 16);
        let mut t = Terra::new();
        let c = q.compile(&mut t, 16, 16, Schedule::match_c()).unwrap();
        let img = ImageBuf::alloc(&mut t, &c);
        let out = ImageBuf::alloc(&mut t, &c);
        img.write(&mut t, &data);
        c.run(&mut t, &[&img], &out);
        assert_close(&out.read(&t), &expect, 1e-4, "partial inline");
    }

    #[test]
    fn stage_validation() {
        let mut p = Pipeline::new(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.stage(stage_ref(StageId(5)));
        }));
        assert!(r.is_err());
    }
}
