//! Development probe for the Figure 8 shape.
use std::time::Instant;
use terra_core::Terra;
use terra_orion::*;

fn time_pipeline(p: &Pipeline, w: usize, h: usize, sched: Schedule, reps: usize) -> f64 {
    let mut t = Terra::new();
    let c = p.compile(&mut t, w, h, sched).unwrap();
    let img = ImageBuf::alloc(&mut t, &c);
    let out = ImageBuf::alloc(&mut t, &c);
    img.write(&mut t, &vec![0.5; w * h]);
    c.run(&mut t, &[&img], &out);
    let start = Instant::now();
    for _ in 0..reps {
        c.run(&mut t, &[&img], &out);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let (w, h) = (2048, 2048);
    let area = area_filter();
    let base = time_pipeline(&area, w, h, Schedule::match_c(), 3);
    println!("area filter, {w}x{h}:");
    for (name, sched) in figure8_schedules() {
        let dt = time_pipeline(&area, w, h, sched, 3);
        println!("  {name:<18} {:>8.1} ms   {:.2}x", dt * 1e3, base / dt);
    }
    let pw = pointwise_pipeline(0.1, 1.3);
    println!("pointwise pipeline (materialize vs inline):");
    let m = time_pipeline(&pw, w, h, Schedule::match_c(), 3);
    let i = time_pipeline(
        &pw,
        w,
        h,
        Schedule {
            strategy: Strategy::Inline,
            vectorize: false,
        },
        3,
    );
    println!(
        "  materialized {:.1} ms, inlined {:.1} ms ({:.2}x)",
        m * 1e3,
        i * 1e3,
        m / i
    );
}
