//! Throwaway review probe: does CSE mishandle self-referential assigns?

use terra_ir::{
    optimize, BinKind, ExprKind, IrExpr, IrFunction, IrStmt, LocalId, NoEnv, NoInline, OptLevel,
    PassConfig, StmtKind, Ty,
};

fn func(params: Vec<Ty>, ret: Ty) -> IrFunction {
    let mut f = IrFunction {
        name: "probe".into(),
        ty: terra_ir::FuncTy {
            params: params.clone(),
            ret,
        },
        locals: Vec::new(),
        body: Vec::new(),
    };
    for (i, p) in params.into_iter().enumerate() {
        f.add_local(format!("p{i}"), p, false);
    }
    f
}

#[test]
fn cse_self_referential_assign() {
    // x = x + 1; y = x + 1; return y   (x is param p0)
    let mut f = func(vec![Ty::INT], Ty::INT);
    let x = LocalId(0);
    let y = f.add_local("y", Ty::INT, false);
    let x_plus_1 = || {
        IrExpr::binary(
            BinKind::Add,
            IrExpr::local(x, Ty::INT),
            IrExpr {
                ty: Ty::INT,
                kind: ExprKind::ConstInt(1),
            },
        )
    };
    f.body = vec![
        IrStmt::new(StmtKind::Assign {
            dst: x,
            value: x_plus_1(),
        }),
        IrStmt::new(StmtKind::Assign {
            dst: y,
            value: x_plus_1(),
        }),
        IrStmt::new(StmtKind::Return(Some(IrExpr::local(y, Ty::INT)))),
    ];
    let cfg = PassConfig {
        level: OptLevel::O2,
        types: None,
        env: &NoEnv,
        inline: &NoInline,
        summaries: None,
        elide_checks: true,
    };
    optimize(&mut f, &cfg);
    eprintln!("{f:#?}");
    // After `x = x + 1`, y must still be computed as x + 1 (an Add must
    // survive feeding y / the return), not collapse to a plain read of x.
    let second_is_copy_of_x = f.body.iter().any(|s| match &s.kind {
        StmtKind::Return(Some(e)) => e.kind == ExprKind::Local(x),
        StmtKind::Assign { dst, value } => *dst == y && value.kind == ExprKind::Local(x),
        _ => false,
    });
    assert!(
        !second_is_copy_of_x,
        "MISCOMPILE: y = x+1 after x = x+1 was CSE'd into a read of x"
    );
}
