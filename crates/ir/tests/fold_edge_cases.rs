//! Golden tests for constant-folder edge cases: wrapping integer overflow,
//! division/modulo by zero (left unfolded for the VM to trap), and float
//! NaN propagation.

use terra_ir::{fold_expr, BinKind, CmpKind, ExprKind, IrExpr, ScalarTy, Ty, UnKind};

fn int_const(ty: Ty, v: i64) -> IrExpr {
    IrExpr {
        ty,
        kind: ExprKind::ConstInt(v),
    }
}

fn folded_int(e: &IrExpr) -> Option<i64> {
    match e.kind {
        ExprKind::ConstInt(v) => Some(v),
        _ => None,
    }
}

fn folded_float(e: &IrExpr) -> Option<f64> {
    match e.kind {
        ExprKind::ConstFloat(v) => Some(v),
        _ => None,
    }
}

fn bin(op: BinKind, lhs: IrExpr, rhs: IrExpr) -> IrExpr {
    IrExpr::binary(op, lhs, rhs)
}

// ---------------------------------------------------------------- wrapping

#[test]
fn i32_add_wraps_like_two_complement() {
    let mut e = bin(BinKind::Add, IrExpr::int32(i32::MAX), IrExpr::int32(1));
    fold_expr(&mut e);
    assert_eq!(folded_int(&e), Some(i32::MIN as i64));
}

#[test]
fn i32_mul_wraps() {
    let mut e = bin(BinKind::Mul, IrExpr::int32(0x4000_0000), IrExpr::int32(4));
    fold_expr(&mut e);
    // 2^30 * 4 = 2^32 ≡ 0 (mod 2^32)
    assert_eq!(folded_int(&e), Some(0));
}

#[test]
fn i32_sub_wraps_at_min() {
    let mut e = bin(BinKind::Sub, IrExpr::int32(i32::MIN), IrExpr::int32(1));
    fold_expr(&mut e);
    assert_eq!(folded_int(&e), Some(i32::MAX as i64));
}

#[test]
fn i64_add_wraps() {
    let mut e = bin(BinKind::Add, IrExpr::int64(i64::MAX), IrExpr::int64(1));
    fold_expr(&mut e);
    assert_eq!(folded_int(&e), Some(i64::MIN));
}

#[test]
fn u8_add_wraps_to_width() {
    let mut e = bin(BinKind::Add, int_const(Ty::U8, 250), int_const(Ty::U8, 10));
    fold_expr(&mut e);
    assert_eq!(folded_int(&e), Some((250 + 10) % 256));
}

#[test]
fn u8_mul_stays_in_width() {
    let mut e = bin(BinKind::Mul, int_const(Ty::U8, 16), int_const(Ty::U8, 16));
    fold_expr(&mut e);
    assert_eq!(folded_int(&e), Some(0));
}

#[test]
fn i32_shl_wraps_into_sign_bit() {
    let mut e = bin(BinKind::Shl, IrExpr::int32(1), IrExpr::int32(31));
    fold_expr(&mut e);
    assert_eq!(folded_int(&e), Some(i32::MIN as i64));
}

#[test]
fn neg_of_int_min_wraps_to_itself() {
    let mut e = IrExpr {
        ty: Ty::INT,
        kind: ExprKind::Unary {
            op: UnKind::Neg,
            expr: Box::new(IrExpr::int32(i32::MIN)),
        },
    };
    fold_expr(&mut e);
    assert_eq!(folded_int(&e), Some(i32::MIN as i64));
}

// ----------------------------------------------------- division by zero

#[test]
fn signed_div_by_zero_not_folded() {
    let mut e = bin(BinKind::Div, IrExpr::int32(7), IrExpr::int32(0));
    fold_expr(&mut e);
    // Must survive to runtime so the VM traps, exactly like unoptimized code.
    assert!(matches!(
        e.kind,
        ExprKind::Binary {
            op: BinKind::Div,
            ..
        }
    ));
}

#[test]
fn signed_rem_by_zero_not_folded() {
    let mut e = bin(BinKind::Rem, IrExpr::int32(7), IrExpr::int32(0));
    fold_expr(&mut e);
    assert!(matches!(
        e.kind,
        ExprKind::Binary {
            op: BinKind::Rem,
            ..
        }
    ));
}

#[test]
fn unsigned_div_by_zero_not_folded() {
    let mut e = bin(BinKind::Div, int_const(Ty::U64, 7), int_const(Ty::U64, 0));
    fold_expr(&mut e);
    assert!(matches!(
        e.kind,
        ExprKind::Binary {
            op: BinKind::Div,
            ..
        }
    ));
}

#[test]
fn div_overflow_int_min_by_minus_one_wraps() {
    // i32::MIN / -1 overflows in hardware; the folder either wraps it or
    // leaves it alone — it must not panic. Wrapping semantics give MIN back.
    let mut e = bin(BinKind::Div, IrExpr::int32(i32::MIN), IrExpr::int32(-1));
    fold_expr(&mut e);
    if let Some(v) = folded_int(&e) {
        assert_eq!(v, i32::MIN as i64);
    }
}

#[test]
fn float_div_by_zero_folds_to_infinity() {
    // IEEE semantics: no trap, fold freely.
    let mut e = bin(BinKind::Div, IrExpr::f64(1.0), IrExpr::f64(0.0));
    fold_expr(&mut e);
    assert_eq!(folded_float(&e), Some(f64::INFINITY));
}

#[test]
fn float_zero_div_zero_folds_to_nan() {
    let mut e = bin(BinKind::Div, IrExpr::f64(0.0), IrExpr::f64(0.0));
    fold_expr(&mut e);
    assert!(folded_float(&e).unwrap().is_nan());
}

// ------------------------------------------------------- NaN propagation

#[test]
fn nan_propagates_through_arithmetic() {
    for op in [BinKind::Add, BinKind::Sub, BinKind::Mul, BinKind::Div] {
        let mut e = bin(op, IrExpr::f64(f64::NAN), IrExpr::f64(2.0));
        fold_expr(&mut e);
        assert!(
            folded_float(&e).unwrap().is_nan(),
            "{op:?} must propagate NaN"
        );
    }
}

#[test]
fn mul_by_one_identity_preserves_nan_operand() {
    // x * 1.0 → x is NaN-safe (returns the NaN unchanged); the fold must
    // produce the NaN itself when x is constant.
    let mut e = bin(BinKind::Mul, IrExpr::f64(f64::NAN), IrExpr::f64(1.0));
    fold_expr(&mut e);
    assert!(folded_float(&e).unwrap().is_nan());
}

#[test]
fn add_zero_is_not_an_identity_for_floats() {
    use terra_ir::LocalId;
    // -0.0 + 0.0 == +0.0, so x + 0.0 must NOT fold to x for a non-constant
    // x. (Constant arguments fold to the correct IEEE result instead.)
    let x = IrExpr::local(LocalId(0), Ty::F64);
    let mut e = bin(BinKind::Add, x, IrExpr::f64(0.0));
    fold_expr(&mut e);
    assert!(matches!(
        e.kind,
        ExprKind::Binary {
            op: BinKind::Add,
            ..
        }
    ));
}

#[test]
fn nan_comparisons_fold_ieee_false() {
    // All ordered comparisons with NaN are false; != is true.
    let cases = [
        (CmpKind::Eq, false),
        (CmpKind::Lt, false),
        (CmpKind::Le, false),
        (CmpKind::Gt, false),
        (CmpKind::Ge, false),
        (CmpKind::Ne, true),
    ];
    for (op, want) in cases {
        let mut e = IrExpr::cmp(op, IrExpr::f64(f64::NAN), IrExpr::f64(f64::NAN));
        fold_expr(&mut e);
        assert_eq!(
            e.kind,
            ExprKind::ConstBool(want),
            "NaN {op:?} NaN must fold to {want}"
        );
    }
}

#[test]
fn float_min_max_with_nan_folds_consistently() {
    // Whatever the folder picks must match the VM's runtime IEEE-style
    // behavior; at minimum it must produce *a* constant and not panic.
    let mut e = bin(BinKind::Min, IrExpr::f64(f64::NAN), IrExpr::f64(2.0));
    fold_expr(&mut e);
    if let ExprKind::Binary { .. } = e.kind {
        // Left unfolded is also acceptable — runtime decides.
    }
}

#[test]
fn unsigned_compare_uses_unsigned_ordering() {
    // 0xFFFF_FFFF as u32 is 4294967295, not -1: it must compare greater
    // than 1 under unsigned ordering.
    let u32ty = Ty::Scalar(ScalarTy::U32);
    let mut e = IrExpr::cmp(
        CmpKind::Gt,
        int_const(u32ty.clone(), 0xFFFF_FFFF),
        int_const(u32ty, 1),
    );
    fold_expr(&mut e);
    assert_eq!(e.kind, ExprKind::ConstBool(true));
}
