//! Per-pass behavioral tests for the mid-end pipeline, driven through the
//! public [`terra_ir::optimize`] entry point. These run in debug builds, so
//! any pass that breaks the verifier invariant panics inside `optimize`.

use terra_ir::{
    optimize, BinKind, Callee, ExprKind, FuncId, FuncTy, InlineEnv, IrExpr, IrFunction, IrStmt,
    LocalId, NoEnv, NoInline, OptLevel, PassConfig, StmtKind, Ty,
};

fn func(params: Vec<Ty>, ret: Ty) -> IrFunction {
    let mut f = IrFunction {
        name: "test".into(),
        ty: FuncTy {
            params: params.clone(),
            ret,
        },
        locals: Vec::new(),
        body: Vec::new(),
    };
    for (i, p) in params.into_iter().enumerate() {
        f.add_local(format!("p{i}"), p, false);
    }
    f
}

fn cfg(level: OptLevel, inline: &dyn InlineEnv) -> PassConfig<'_> {
    PassConfig {
        level,
        types: None,
        env: &NoEnv,
        inline,
        summaries: None,
        elide_checks: true,
    }
}

fn run_opt(f: &mut IrFunction, level: OptLevel) {
    let stats = optimize(f, &cfg(level, &NoInline));
    assert!(
        stats.runs.iter().all(|r| !r.reverted),
        "no pass should be reverted: {stats:?}"
    );
}

/// Counts expression nodes matching `pred` anywhere in the body.
fn count_exprs(f: &IrFunction, pred: &dyn Fn(&ExprKind) -> bool) -> usize {
    fn expr(e: &IrExpr, pred: &dyn Fn(&ExprKind) -> bool, n: &mut usize) {
        if pred(&e.kind) {
            *n += 1;
        }
        match &e.kind {
            ExprKind::Load(a) | ExprKind::Cast(a) => expr(a, pred, n),
            ExprKind::Unary { expr: a, .. } => expr(a, pred, n),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Cmp { lhs, rhs, .. } => {
                expr(lhs, pred, n);
                expr(rhs, pred, n);
            }
            ExprKind::Select {
                cond,
                then_value,
                else_value,
            } => {
                expr(cond, pred, n);
                expr(then_value, pred, n);
                expr(else_value, pred, n);
            }
            ExprKind::Call { args, .. } => args.iter().for_each(|a| expr(a, pred, n)),
            _ => {}
        }
    }
    fn block(stmts: &[IrStmt], pred: &dyn Fn(&ExprKind) -> bool, n: &mut usize) {
        for s in stmts {
            match &s.kind {
                StmtKind::Assign { value, .. } => expr(value, pred, n),
                StmtKind::Store { addr, value } => {
                    expr(addr, pred, n);
                    expr(value, pred, n);
                }
                StmtKind::CopyMem { dst, src, .. } => {
                    expr(dst, pred, n);
                    expr(src, pred, n);
                }
                StmtKind::Expr(e) => expr(e, pred, n),
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    expr(cond, pred, n);
                    block(then_body, pred, n);
                    block(else_body, pred, n);
                }
                StmtKind::While { cond, body } => {
                    expr(cond, pred, n);
                    block(body, pred, n);
                }
                StmtKind::For {
                    start,
                    stop,
                    step,
                    body,
                    ..
                } => {
                    expr(start, pred, n);
                    expr(stop, pred, n);
                    expr(step, pred, n);
                    block(body, pred, n);
                }
                StmtKind::ParallelFor {
                    start, stop, args, ..
                } => {
                    expr(start, pred, n);
                    expr(stop, pred, n);
                    args.iter().for_each(|a| expr(a, pred, n));
                }
                StmtKind::Return(Some(e)) => expr(e, pred, n),
                StmtKind::Return(None) | StmtKind::Break => {}
            }
        }
    }
    let mut n = 0;
    block(&f.body, pred, &mut n);
    n
}

fn assign(dst: LocalId, value: IrExpr) -> IrStmt {
    IrStmt::new(StmtKind::Assign { dst, value })
}

fn ret(e: IrExpr) -> IrStmt {
    IrStmt::new(StmtKind::Return(Some(e)))
}

#[test]
fn o0_is_identity() {
    let mut f = func(vec![Ty::INT], Ty::INT);
    let p = LocalId(0);
    let t = f.add_local("t", Ty::INT, false);
    f.body = vec![
        assign(
            t,
            IrExpr::binary(BinKind::Mul, IrExpr::local(p, Ty::INT), IrExpr::int32(8)),
        ),
        ret(IrExpr::local(t, Ty::INT)),
    ];
    let before = f.clone();
    let stats = optimize(&mut f, &cfg(OptLevel::O0, &NoInline));
    assert_eq!(f, before);
    assert!(stats.runs.is_empty());
}

#[test]
fn simplify_strength_reduces_mul_by_power_of_two() {
    let mut f = func(vec![Ty::INT], Ty::INT);
    let p = LocalId(0);
    f.body = vec![ret(IrExpr::binary(
        BinKind::Mul,
        IrExpr::local(p, Ty::INT),
        IrExpr::int32(8),
    ))];
    run_opt(&mut f, OptLevel::O1);
    assert_eq!(
        count_exprs(&f, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Mul,
                ..
            }
        )),
        0,
        "x*8 should become a shift: {f:?}"
    );
    assert_eq!(
        count_exprs(&f, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Shl,
                ..
            }
        )),
        1
    );
}

#[test]
fn cse_shares_repeated_computation() {
    // a = p0*p1; b = p0*p1; return a+b  — second product becomes a reuse.
    let mut f = func(vec![Ty::INT, Ty::INT], Ty::INT);
    let (p0, p1) = (LocalId(0), LocalId(1));
    let a = f.add_local("a", Ty::INT, false);
    let b = f.add_local("b", Ty::INT, false);
    let prod = || {
        IrExpr::binary(
            BinKind::Mul,
            IrExpr::local(p0, Ty::INT),
            IrExpr::local(p1, Ty::INT),
        )
    };
    f.body = vec![
        assign(a, prod()),
        assign(b, prod()),
        ret(IrExpr::binary(
            BinKind::Add,
            IrExpr::local(a, Ty::INT),
            IrExpr::local(b, Ty::INT),
        )),
    ];
    run_opt(&mut f, OptLevel::O2);
    assert_eq!(
        count_exprs(&f, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Mul,
                ..
            }
        )),
        1,
        "p0*p1 must be computed once: {f:?}"
    );
}

#[test]
fn cse_does_not_share_across_clobber() {
    // a = p0*p1; p0 = 7; b = p0*p1 — the second product reads the new p0.
    let mut f = func(vec![Ty::INT, Ty::INT], Ty::INT);
    let (p0, p1) = (LocalId(0), LocalId(1));
    let a = f.add_local("a", Ty::INT, false);
    let b = f.add_local("b", Ty::INT, false);
    let prod = || {
        IrExpr::binary(
            BinKind::Mul,
            IrExpr::local(p0, Ty::INT),
            IrExpr::local(p1, Ty::INT),
        )
    };
    f.body = vec![
        assign(a, prod()),
        assign(p0, IrExpr::int32(7)),
        assign(b, prod()),
        ret(IrExpr::binary(
            BinKind::Add,
            IrExpr::local(a, Ty::INT),
            IrExpr::local(b, Ty::INT),
        )),
    ];
    run_opt(&mut f, OptLevel::O2);
    assert_eq!(
        count_exprs(&f, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Mul,
                ..
            }
        )),
        2,
        "clobbered expression must be recomputed: {f:?}"
    );
}

#[test]
fn copyprop_forwards_through_copies() {
    // y = x; z = y; return z  →  return x
    let mut f = func(vec![Ty::INT], Ty::INT);
    let x = LocalId(0);
    let y = f.add_local("y", Ty::INT, false);
    let z = f.add_local("z", Ty::INT, false);
    f.body = vec![
        assign(y, IrExpr::local(x, Ty::INT)),
        assign(z, IrExpr::local(y, Ty::INT)),
        ret(IrExpr::local(z, Ty::INT)),
    ];
    run_opt(&mut f, OptLevel::O1);
    assert_eq!(
        f.body.len(),
        1,
        "copies should be propagated and DCE'd: {f:?}"
    );
    assert!(matches!(
        &f.body[0].kind,
        StmtKind::Return(Some(e)) if e.kind == ExprKind::Local(x)
    ));
}

#[test]
fn dce_removes_dead_assign_keeps_observable_effects() {
    let mut f = func(vec![Ty::INT], Ty::INT);
    let p = LocalId(0);
    let dead = f.add_local("dead", Ty::INT, false);
    let risky = f.add_local("risky", Ty::INT, false);
    f.body = vec![
        // Dead: pure value, never read.
        assign(
            dead,
            IrExpr::binary(BinKind::Add, IrExpr::local(p, Ty::INT), IrExpr::int32(1)),
        ),
        // Not removable even though unread: division may trap at runtime.
        assign(
            risky,
            IrExpr::binary(BinKind::Div, IrExpr::int32(1), IrExpr::local(p, Ty::INT)),
        ),
        ret(IrExpr::local(p, Ty::INT)),
    ];
    run_opt(&mut f, OptLevel::O2);
    assert_eq!(
        count_exprs(&f, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Add,
                ..
            }
        )),
        0,
        "dead pure assign must go: {f:?}"
    );
    assert_eq!(
        count_exprs(&f, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Div,
                ..
            }
        )),
        1,
        "possibly-trapping division must stay: {f:?}"
    );
}

#[test]
fn dce_prunes_code_after_return() {
    let mut f = func(vec![Ty::INT], Ty::INT);
    let p = LocalId(0);
    let t = f.add_local("t", Ty::INT, false);
    f.body = vec![
        ret(IrExpr::local(p, Ty::INT)),
        assign(t, IrExpr::int32(1)),
        ret(IrExpr::local(t, Ty::INT)),
    ];
    run_opt(&mut f, OptLevel::O1);
    assert_eq!(f.body.len(), 1, "unreachable tail must be pruned: {f:?}");
}

#[test]
fn licm_hoists_invariant_multiply_out_of_loop() {
    // for i = 0, n: acc = acc + a*b  — a*b moves out; i*1 stays (writes i).
    let mut f = func(vec![Ty::INT, Ty::INT, Ty::INT], Ty::INT);
    let (a, b, n) = (LocalId(0), LocalId(1), LocalId(2));
    let acc = f.add_local("acc", Ty::INT, false);
    let i = f.add_local("i", Ty::INT, false);
    let invariant = IrExpr::binary(
        BinKind::Mul,
        IrExpr::local(a, Ty::INT),
        IrExpr::local(b, Ty::INT),
    );
    f.body = vec![
        assign(acc, IrExpr::int32(0)),
        IrStmt::new(StmtKind::For {
            var: i,
            start: IrExpr::int32(0),
            stop: IrExpr::local(n, Ty::INT),
            step: IrExpr::int32(1),
            body: vec![assign(
                acc,
                IrExpr::binary(BinKind::Add, IrExpr::local(acc, Ty::INT), invariant),
            )],
        }),
        ret(IrExpr::local(acc, Ty::INT)),
    ];
    run_opt(&mut f, OptLevel::O2);
    // The multiply must not be inside the loop body anymore.
    let in_loop = f
        .body
        .iter()
        .find_map(|s| match &s.kind {
            StmtKind::For { body, .. } => Some(body),
            _ => None,
        })
        .expect("loop survives");
    let mut probe = func(vec![], Ty::Unit);
    probe.body = in_loop.clone();
    assert_eq!(
        count_exprs(&probe, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Mul,
                ..
            }
        )),
        0,
        "invariant multiply must be hoisted: {f:?}"
    );
    assert_eq!(
        count_exprs(&f, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Mul,
                ..
            }
        )),
        1,
        "hoisted multiply executes once, before the loop: {f:?}"
    );
}

struct OneCallee(IrFunction);

impl InlineEnv for OneCallee {
    fn callee_ir(&self, id: FuncId) -> Option<IrFunction> {
        (id == FuncId(0)).then(|| self.0.clone())
    }
}

#[test]
fn inline_replaces_small_leaf_call() {
    // callee: add1(x) = x + 1
    let mut callee = func(vec![Ty::INT], Ty::INT);
    callee.name = "add1".into();
    callee.body = vec![ret(IrExpr::binary(
        BinKind::Add,
        IrExpr::local(LocalId(0), Ty::INT),
        IrExpr::int32(1),
    ))];
    // caller: r = add1(p); return r
    let mut caller = func(vec![Ty::INT], Ty::INT);
    let p = LocalId(0);
    let r = caller.add_local("r", Ty::INT, false);
    caller.body = vec![
        assign(
            r,
            IrExpr {
                ty: Ty::INT,
                kind: ExprKind::Call {
                    callee: Callee::Direct(FuncId(0)),
                    args: vec![IrExpr::local(p, Ty::INT)],
                },
            },
        ),
        ret(IrExpr::local(r, Ty::INT)),
    ];
    let env = OneCallee(callee);
    let stats = optimize(&mut caller, &cfg(OptLevel::O2, &env));
    assert!(stats.runs.iter().any(|r| r.pass == "inline" && r.changed));
    assert_eq!(
        count_exprs(&caller, &|k| matches!(k, ExprKind::Call { .. })),
        0,
        "call must be inlined away: {caller:?}"
    );
    assert_eq!(
        count_exprs(&caller, &|k| matches!(
            k,
            ExprKind::Binary {
                op: BinKind::Add,
                ..
            }
        )),
        1
    );
}

#[test]
fn inline_skips_recursive_callee() {
    // callee calls itself: f(x) = f(x) — not a leaf, never inlined.
    let mut callee = func(vec![Ty::INT], Ty::INT);
    callee.body = vec![ret(IrExpr {
        ty: Ty::INT,
        kind: ExprKind::Call {
            callee: Callee::Direct(FuncId(0)),
            args: vec![IrExpr::local(LocalId(0), Ty::INT)],
        },
    })];
    let mut caller = func(vec![Ty::INT], Ty::INT);
    caller.body = vec![ret(IrExpr {
        ty: Ty::INT,
        kind: ExprKind::Call {
            callee: Callee::Direct(FuncId(0)),
            args: vec![IrExpr::local(LocalId(0), Ty::INT)],
        },
    })];
    let env = OneCallee(callee);
    optimize(&mut caller, &cfg(OptLevel::O2, &env));
    assert_eq!(
        count_exprs(&caller, &|k| matches!(k, ExprKind::Call { .. })),
        1,
        "recursive callee must not be inlined: {caller:?}"
    );
}

#[test]
fn pipeline_reports_per_pass_timing() {
    let mut f = func(vec![Ty::INT], Ty::INT);
    f.body = vec![ret(IrExpr::binary(
        BinKind::Mul,
        IrExpr::local(LocalId(0), Ty::INT),
        IrExpr::int32(4),
    ))];
    let stats = optimize(&mut f, &cfg(OptLevel::O2, &NoInline));
    let names: Vec<_> = stats.runs.iter().map(|r| r.pass).collect();
    assert_eq!(
        names,
        [
            "inline",
            "fold",
            "simplify",
            "cse",
            "copyprop",
            "licm",
            "copyprop",
            "dce",
            "checkelim"
        ]
    );
    assert!(stats.runs.iter().any(|r| r.changed), "simplify should fire");
}
