//! Pretty-printing of IR functions, for debugging and golden tests.

use crate::ir::{Callee, ExprKind, IrExpr, IrFunction, IrStmt, StmtKind};
use std::fmt::Write;

/// Renders a function as indented pseudo-code.
///
/// # Examples
///
/// ```
/// use terra_ir::{IrFunction, FuncTy, Ty, dump_function};
/// let f = IrFunction {
///     name: "empty".into(),
///     ty: FuncTy { params: vec![], ret: Ty::Unit },
///     locals: vec![],
///     body: vec![],
/// };
/// assert!(dump_function(&f).starts_with("function empty"));
/// ```
pub fn dump_function(f: &IrFunction) -> String {
    let mut out = String::new();
    let _ = write!(out, "function {}(", f.name);
    for (i, p) in f.ty.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "l{}: {}", i, p);
    }
    let _ = writeln!(out, ") : {}", f.ty.ret);
    for (i, l) in f.locals.iter().enumerate().skip(f.ty.params.len()) {
        let _ = writeln!(
            out,
            "  local l{}: {}{}  -- {}",
            i,
            l.ty,
            if l.in_memory { " [mem]" } else { "" },
            l.name
        );
    }
    dump_stmts(&f.body, 1, &mut out);
    out.push_str("end\n");
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn dump_stmts(stmts: &[IrStmt], depth: usize, out: &mut String) {
    for s in stmts {
        indent(depth, out);
        match &s.kind {
            StmtKind::Assign { dst, value } => {
                let _ = writeln!(out, "l{} = {}", dst.0, expr(value));
            }
            StmtKind::Store { addr, value } => {
                let _ = writeln!(out, "store {} <- {}", expr(addr), expr(value));
            }
            StmtKind::CopyMem { dst, src, size } => {
                let _ = writeln!(out, "copy {} <- {} [{} bytes]", expr(dst), expr(src), size);
            }
            StmtKind::Expr(e) => {
                let _ = writeln!(out, "{}", expr(e));
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = writeln!(out, "if {} then", expr(cond));
                dump_stmts(then_body, depth + 1, out);
                if !else_body.is_empty() {
                    indent(depth, out);
                    out.push_str("else\n");
                    dump_stmts(else_body, depth + 1, out);
                }
                indent(depth, out);
                out.push_str("end\n");
            }
            StmtKind::While { cond, body } => {
                let _ = writeln!(out, "while {} do", expr(cond));
                dump_stmts(body, depth + 1, out);
                indent(depth, out);
                out.push_str("end\n");
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "for l{} = {}, {}, {} do",
                    var.0,
                    expr(start),
                    expr(stop),
                    expr(step)
                );
                dump_stmts(body, depth + 1, out);
                indent(depth, out);
                out.push_str("end\n");
            }
            StmtKind::ParallelFor {
                kernel,
                start,
                stop,
                args,
            } => {
                let args = args.iter().map(expr).collect::<Vec<_>>().join(", ");
                let _ = writeln!(
                    out,
                    "parallelfor fn{}({}, {}) captures [{}]",
                    kernel.0,
                    expr(start),
                    expr(stop),
                    args
                );
            }
            StmtKind::Return(Some(e)) => {
                let _ = writeln!(out, "return {}", expr(e));
            }
            StmtKind::Return(None) => out.push_str("return\n"),
            StmtKind::Break => out.push_str("break\n"),
        }
    }
}

fn expr(e: &IrExpr) -> String {
    match &e.kind {
        ExprKind::ConstInt(v) => format!("{v}"),
        ExprKind::ConstFloat(v) => format!("{v:?}"),
        ExprKind::ConstBool(b) => format!("{b}"),
        ExprKind::ConstNull => "null".to_string(),
        ExprKind::ConstFunc(id) => format!("@fn{}", id.0),
        ExprKind::ConstStr(s) => format!("{s:?}"),
        ExprKind::Local(id) => format!("l{}", id.0),
        ExprKind::LocalAddr(id) => format!("&l{}", id.0),
        ExprKind::GlobalAddr(id) => format!("&g{}", id.0),
        ExprKind::Load(a) => format!("load[{}]({})", e.ty, expr(a)),
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {:?} {})", expr(lhs), op, expr(rhs))
        }
        ExprKind::Cmp { op, lhs, rhs } => {
            format!("({} {:?} {})", expr(lhs), op, expr(rhs))
        }
        ExprKind::Unary { op, expr: x } => format!("({op:?} {})", expr(x)),
        ExprKind::Cast(x) => format!("cast[{}]({})", e.ty, expr(x)),
        ExprKind::Call { callee, args } => {
            let name = match callee {
                Callee::Direct(id) => format!("fn{}", id.0),
                Callee::Builtin(b) => b.name().to_string(),
                Callee::Indirect(p) => format!("*{}", expr(p)),
            };
            let args: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", args.join(", "))
        }
        ExprKind::Select {
            cond,
            then_value,
            else_value,
        } => format!(
            "select({}, {}, {})",
            expr(cond),
            expr(then_value),
            expr(else_value)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinKind, CmpKind, LocalId};
    use crate::types::{FuncTy, Ty};

    #[test]
    fn dumps_a_loop() {
        let mut f = IrFunction {
            name: "sum".into(),
            ty: FuncTy {
                params: vec![Ty::INT],
                ret: Ty::INT,
            },
            locals: vec![],
            body: vec![],
        };
        let n = f.add_local("n", Ty::INT, false);
        let acc = f.add_local("acc", Ty::INT, false);
        let i = f.add_local("i", Ty::INT, false);
        f.body = vec![
            StmtKind::Assign {
                dst: acc,
                value: IrExpr::int32(0),
            }
            .into(),
            StmtKind::For {
                var: i,
                start: IrExpr::int32(0),
                stop: IrExpr::local(n, Ty::INT),
                step: IrExpr::int32(1),
                body: vec![StmtKind::Assign {
                    dst: acc,
                    value: IrExpr::binary(
                        BinKind::Add,
                        IrExpr::local(acc, Ty::INT),
                        IrExpr::local(i, Ty::INT),
                    ),
                }
                .into()],
            }
            .into(),
            StmtKind::If {
                cond: IrExpr::cmp(CmpKind::Gt, IrExpr::local(acc, Ty::INT), IrExpr::int32(10)),
                then_body: vec![StmtKind::Return(Some(IrExpr::local(acc, Ty::INT))).into()],
                else_body: vec![],
            }
            .into(),
            StmtKind::Return(Some(IrExpr::int32(0))).into(),
        ];
        let text = dump_function(&f);
        assert!(text.contains("for l2 = 0, l0, 1 do"), "{text}");
        assert!(text.contains("if (l1 Gt 10) then"), "{text}");
        assert!(text.contains("return 0"), "{text}");
        let _ = LocalId(0);
    }
}
