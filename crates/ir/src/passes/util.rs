//! Shared machinery for the optimization passes: local-id sets, expression
//! walkers, purity/effect classification, write sets, and block termination.
//!
//! The effect tests here define what every transform pass is allowed to
//! delete, duplicate, or reorder. They are deliberately conservative: a
//! `Load` counts as an effect (it can trap on out-of-bounds or poisoned
//! memory), and an integer division counts as an effect unless its divisor
//! is a non-zero constant (it can trap on zero). Optimized code must trap
//! exactly when unoptimized code would.

use crate::ir::{BinKind, ExprKind, IrExpr, IrFunction, IrStmt, LocalId, LocalSlot, StmtKind};

/// Dense bitset over [`LocalId`]s that grows on insert (passes may add
/// locals while a set is alive).
#[derive(Debug, Clone, Default)]
pub struct LocalSet {
    words: Vec<u64>,
}

impl LocalSet {
    /// An empty set sized for `n` locals.
    pub fn new(n: usize) -> Self {
        LocalSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// A set containing every one of `n` locals.
    pub fn full(n: usize) -> Self {
        let mut s = Self::new(n);
        for i in 0..n {
            s.insert(LocalId(i as u32));
        }
        s
    }

    /// Adds `l`, growing the backing store if needed.
    pub fn insert(&mut self, l: LocalId) {
        let i = l.0 as usize;
        if i / 64 >= self.words.len() {
            self.words.resize(i / 64 + 1, 0);
        }
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `l`.
    pub fn remove(&mut self, l: LocalId) {
        let i = l.0 as usize;
        if i / 64 < self.words.len() {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, l: LocalId) -> bool {
        let i = l.0 as usize;
        i / 64 < self.words.len() && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// In-place union.
    pub fn union(&mut self, other: &LocalSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

impl PartialEq for LocalSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

/// Calls `f` on each direct child expression of `e`.
pub fn each_child(e: &IrExpr, f: &mut dyn FnMut(&IrExpr)) {
    match &e.kind {
        ExprKind::Load(a) => f(a),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Cmp { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast(expr) => f(expr),
        ExprKind::Call { callee, args } => {
            if let crate::ir::Callee::Indirect(p) = callee {
                f(p);
            }
            for a in args {
                f(a);
            }
        }
        ExprKind::Select {
            cond,
            then_value,
            else_value,
        } => {
            f(cond);
            f(then_value);
            f(else_value);
        }
        _ => {}
    }
}

/// Calls `f` on each direct child expression of `e`, mutably.
pub fn each_child_mut(e: &mut IrExpr, f: &mut dyn FnMut(&mut IrExpr)) {
    match &mut e.kind {
        ExprKind::Load(a) => f(a),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Cmp { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast(expr) => f(expr),
        ExprKind::Call { callee, args } => {
            if let crate::ir::Callee::Indirect(p) = callee {
                f(p);
            }
            for a in args {
                f(a);
            }
        }
        ExprKind::Select {
            cond,
            then_value,
            else_value,
        } => {
            f(cond);
            f(then_value);
            f(else_value);
        }
        _ => {}
    }
}

/// Calls `f` on each expression a statement evaluates directly (not those
/// inside nested statement blocks).
pub fn for_each_stmt_expr_mut(s: &mut IrStmt, f: &mut dyn FnMut(&mut IrExpr)) {
    match &mut s.kind {
        StmtKind::Assign { value, .. } => f(value),
        StmtKind::Store { addr, value } => {
            f(addr);
            f(value);
        }
        StmtKind::CopyMem { dst, src, .. } => {
            f(dst);
            f(src);
        }
        StmtKind::Expr(e) => f(e),
        StmtKind::If { cond, .. } => f(cond),
        StmtKind::While { cond, .. } => f(cond),
        StmtKind::For {
            start, stop, step, ..
        } => {
            f(start);
            f(stop);
            f(step);
        }
        StmtKind::ParallelFor {
            start, stop, args, ..
        } => {
            f(start);
            f(stop);
            for a in args {
                f(a);
            }
        }
        StmtKind::Return(Some(e)) => f(e),
        StmtKind::Return(None) | StmtKind::Break => {}
    }
}

/// Whether an integer `Div`/`Rem` node can trap at runtime (divisor not a
/// known non-zero constant). Float division never traps.
fn divides_by_possible_zero(e: &IrExpr) -> bool {
    let ExprKind::Binary { op, rhs, .. } = &e.kind else {
        return false;
    };
    if !matches!(op, BinKind::Div | BinKind::Rem) || e.ty.is_float() {
        return false;
    }
    !matches!(rhs.kind, ExprKind::ConstInt(v) if v != 0)
}

/// Whether evaluating `e` is free of observable effects: no calls, no memory
/// reads (loads can trap), no possible division traps, and no string
/// interning. Pure expressions may be deleted, duplicated, or hoisted.
pub fn expr_is_pure(e: &IrExpr) -> bool {
    match &e.kind {
        ExprKind::Call { .. } | ExprKind::Load(_) | ExprKind::ConstStr(_) => return false,
        _ => {}
    }
    if divides_by_possible_zero(e) {
        return false;
    }
    let mut pure = true;
    each_child(e, &mut |c| pure &= expr_is_pure(c));
    pure
}

/// Whether `e` denotes a *stable value*: pure, and independent of mutable
/// memory (no reads of `in_memory` locals, whose frame slots can change
/// through stores). Stable values can be cached in a register and reused.
pub fn expr_is_stable(e: &IrExpr, locals: &[LocalSlot]) -> bool {
    match &e.kind {
        ExprKind::Call { .. } | ExprKind::Load(_) | ExprKind::ConstStr(_) => return false,
        ExprKind::Local(l) if locals[l.0 as usize].in_memory => return false,
        _ => {}
    }
    if divides_by_possible_zero(e) {
        return false;
    }
    let mut ok = true;
    each_child(e, &mut |c| ok &= expr_is_stable(c, locals));
    ok
}

/// Adds every local `e` mentions (reads and address-takes) to `out`.
pub fn add_uses(e: &IrExpr, out: &mut LocalSet) {
    match e.kind {
        ExprKind::Local(l) | ExprKind::LocalAddr(l) => out.insert(l),
        _ => {}
    }
    each_child(e, &mut |c| add_uses(c, out));
}

/// Whether `e` mentions local `l` (as a read or address-take).
pub fn expr_uses(e: &IrExpr, l: LocalId) -> bool {
    match e.kind {
        ExprKind::Local(x) | ExprKind::LocalAddr(x) if x == l => return true,
        _ => {}
    }
    let mut found = false;
    each_child(e, &mut |c| found |= expr_uses(c, l));
    found
}

/// Records every register local that statements in `stmts` (recursively)
/// assign: `Assign` destinations and `for` loop variables. Writes to memory
/// (stores, copies) don't change register locals and are not collected.
pub fn collect_assigned(stmts: &[IrStmt], out: &mut LocalSet) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign { dst, .. } => out.insert(*dst),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            StmtKind::While { body, .. } => collect_assigned(body, out),
            StmtKind::For { var, body, .. } => {
                out.insert(*var);
                collect_assigned(body, out);
            }
            _ => {}
        }
    }
}

/// Whether `stmts` contains a `break` targeting the enclosing loop (not one
/// inside a nested loop).
pub fn has_toplevel_break(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Break => true,
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => has_toplevel_break(then_body) || has_toplevel_break(else_body),
        _ => false,
    })
}

/// Whether control cannot continue past `s`.
pub fn stmt_terminates(s: &IrStmt) -> bool {
    match &s.kind {
        StmtKind::Return(_) | StmtKind::Break => true,
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => block_terminates(then_body) && block_terminates(else_body),
        StmtKind::While { cond, body } => {
            matches!(cond.kind, ExprKind::ConstBool(true)) && !has_toplevel_break(body)
        }
        _ => false,
    }
}

/// Whether control cannot fall through the end of `stmts`.
pub fn block_terminates(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(stmt_terminates)
}

/// IR size of a function: statements plus expression nodes. Used for the
/// inliner's budget.
pub fn count_nodes(f: &IrFunction) -> usize {
    fn expr(e: &IrExpr) -> usize {
        let mut n = 1;
        each_child(e, &mut |c| n += expr(c));
        n
    }
    fn block(stmts: &[IrStmt]) -> usize {
        let mut n = 0;
        for s in stmts {
            n += 1;
            match &s.kind {
                StmtKind::Assign { value, .. } => n += expr(value),
                StmtKind::Store { addr, value } => n += expr(addr) + expr(value),
                StmtKind::CopyMem { dst, src, .. } => n += expr(dst) + expr(src),
                StmtKind::Expr(e) => n += expr(e),
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => n += expr(cond) + block(then_body) + block(else_body),
                StmtKind::While { cond, body } => n += expr(cond) + block(body),
                StmtKind::For {
                    start,
                    stop,
                    step,
                    body,
                    ..
                } => n += expr(start) + expr(stop) + expr(step) + block(body),
                StmtKind::ParallelFor {
                    start, stop, args, ..
                } => {
                    n += expr(start) + expr(stop);
                    for a in args {
                        n += expr(a);
                    }
                }
                StmtKind::Return(Some(e)) => n += expr(e),
                StmtKind::Return(None) | StmtKind::Break => {}
            }
        }
        n
    }
    block(&f.body)
}
