//! Dead-code and dead-store elimination.
//!
//! This promotes the diagnostic dataflow analyses (`crates/ir/src/analysis/
//! dataflow.rs`) from lint to transform. Three sub-passes iterate to a
//! fixpoint:
//!
//! 1. **Unreachable statements** — anything after a statement control cannot
//!    continue past (`return`, `break`, an `if` whose arms both terminate, a
//!    `while true` without a top-level `break`) is removed.
//! 2. **Effect-free statements** — a bare `Expr` whose expression is pure,
//!    and self-assignments `x = x`, are removed.
//! 3. **Dead stores** — a backward liveness walk (union fixpoint over loop
//!    back edges, mirroring the lint's structure) removes assignments to
//!    register locals whose value is never read, when the right-hand side is
//!    pure.
//!
//! "Pure" is the strict [`expr_is_pure`] notion: loads and possibly-trapping
//! divisions are effects, so eliminating a dead store can never eliminate a
//! trap the program would have hit. Assignments to `in_memory` locals are
//! never removed (their slots are readable through pointers).

use super::util::{add_uses, expr_is_pure, stmt_terminates, LocalSet};
use super::Remark;
use crate::ir::{ExprKind, IrFunction, IrStmt, LocalSlot, StmtKind};

/// Removes code that cannot execute or whose results are never observed.
pub(crate) fn run(f: &mut IrFunction, remarks: &mut Vec<Remark>) {
    // Each round can expose more dead code (a dead store's operands die with
    // it); iterate until nothing changes.
    let (mut unreachable, mut effect_free, mut dead_stores) = (0usize, 0usize, 0usize);
    loop {
        let a = prune_unreachable(&mut f.body);
        let b = drop_effect_free(&mut f.body);
        let c = sweep_dead_stores(f);
        unreachable += a;
        effect_free += b;
        dead_stores += c;
        if a + b + c == 0 {
            break;
        }
    }
    // One aggregate remark per category keeps the stream proportional to
    // what happened, not to function size.
    for (count, what) in [
        (unreachable, "unreachable"),
        (effect_free, "effect-free"),
        (dead_stores, "dead-store"),
    ] {
        if count > 0 {
            remarks.push(Remark::applied(
                "dce",
                0,
                None,
                format!("removed {count} {what} statement(s)"),
            ));
        }
    }
}

/// Truncates every block after its first terminating statement, returning
/// the number of statements removed.
fn prune_unreachable(stmts: &mut Vec<IrStmt>) -> usize {
    let mut removed = 0;
    for s in stmts.iter_mut() {
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                removed += prune_unreachable(then_body);
                removed += prune_unreachable(else_body);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                removed += prune_unreachable(body);
            }
            _ => {}
        }
    }
    if let Some(end) = stmts.iter().position(stmt_terminates) {
        if end + 1 < stmts.len() {
            removed += stmts.len() - (end + 1);
            stmts.truncate(end + 1);
        }
    }
    removed
}

/// Removes statements that compute nothing observable, returning how many.
fn drop_effect_free(stmts: &mut Vec<IrStmt>) -> usize {
    let mut removed = 0;
    for s in stmts.iter_mut() {
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                removed += drop_effect_free(then_body);
                removed += drop_effect_free(else_body);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                removed += drop_effect_free(body);
            }
            _ => {}
        }
    }
    let before = stmts.len();
    stmts.retain(|s| match &s.kind {
        StmtKind::Expr(e) => !expr_is_pure(e),
        StmtKind::Assign { dst, value } => value.kind != ExprKind::Local(*dst),
        _ => true,
    });
    removed + (before - stmts.len())
}

struct Sweep<'a> {
    locals: &'a [LocalSlot],
    removed: usize,
}

fn sweep_dead_stores(f: &mut IrFunction) -> usize {
    let n = f.locals.len();
    let mut sweep = Sweep {
        locals: &f.locals,
        removed: 0,
    };
    let exit = LocalSet::new(n);
    let _ = sweep.block(&mut f.body, exit, true);
    sweep.removed
}

impl Sweep<'_> {
    /// Computes live-in of `stmts` given live-out `live`. Deletions happen
    /// only when `act` is set, so loop fixpoint iterations stay read-only.
    fn block(&mut self, stmts: &mut Vec<IrStmt>, mut live: LocalSet, act: bool) -> LocalSet {
        let mut dead: Vec<usize> = Vec::new();
        for (i, s) in stmts.iter_mut().enumerate().rev() {
            live = self.stmt(s, live, act, i, &mut dead);
        }
        for i in dead {
            // Indices were collected back-to-front, so each removal leaves
            // earlier indices valid.
            stmts.remove(i);
            self.removed += 1;
        }
        live
    }

    fn stmt(
        &mut self,
        s: &mut IrStmt,
        mut live: LocalSet,
        act: bool,
        index: usize,
        dead: &mut Vec<usize>,
    ) -> LocalSet {
        match &mut s.kind {
            StmtKind::Assign { dst, value } => {
                let d = *dst;
                if !live.contains(d) && !self.locals[d.0 as usize].in_memory && expr_is_pure(value)
                {
                    if act {
                        dead.push(index);
                    }
                    // The statement disappears: its uses generate nothing.
                    return live;
                }
                live.remove(d);
                add_uses(value, &mut live);
                live
            }
            StmtKind::Store { addr, value } => {
                // Memory isn't tracked; stores are always live.
                add_uses(addr, &mut live);
                add_uses(value, &mut live);
                live
            }
            StmtKind::CopyMem { dst, src, .. } => {
                add_uses(dst, &mut live);
                add_uses(src, &mut live);
                live
            }
            StmtKind::Expr(e) => {
                add_uses(e, &mut live);
                live
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let t = self.block(then_body, live.clone(), act);
                let mut l = self.block(else_body, live, act);
                l.union(&t);
                add_uses(cond, &mut l);
                l
            }
            StmtKind::While { cond, body } => {
                let mut boundary = live;
                add_uses(cond, &mut boundary);
                loop {
                    let li = self.block(body, boundary.clone(), false);
                    let mut next = boundary.clone();
                    next.union(&li);
                    if next == boundary {
                        break;
                    }
                    boundary = next;
                }
                if act {
                    let _ = self.block(body, boundary.clone(), true);
                }
                boundary
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let v = *var;
                let mut boundary = live;
                // Loop variable and bounds are read by the header every
                // iteration.
                boundary.insert(v);
                add_uses(stop, &mut boundary);
                add_uses(step, &mut boundary);
                loop {
                    let li = self.block(body, boundary.clone(), false);
                    let mut next = boundary.clone();
                    next.union(&li);
                    if next == boundary {
                        break;
                    }
                    boundary = next;
                }
                if act {
                    let _ = self.block(body, boundary.clone(), true);
                }
                let mut live_in = boundary;
                live_in.remove(v);
                add_uses(start, &mut live_in);
                add_uses(stop, &mut live_in);
                add_uses(step, &mut live_in);
                live_in
            }
            StmtKind::ParallelFor {
                start, stop, args, ..
            } => {
                add_uses(start, &mut live);
                add_uses(stop, &mut live);
                for a in args.iter() {
                    add_uses(a, &mut live);
                }
                live
            }
            StmtKind::Return(v) => {
                let mut live = LocalSet::new(self.locals.len());
                if let Some(e) = v {
                    add_uses(e, &mut live);
                }
                live
            }
            // `break` jumps to the loop exit, whose liveness this structured
            // walk doesn't thread through; stay conservative.
            StmtKind::Break => LocalSet::full(self.locals.len()),
        }
    }
}
