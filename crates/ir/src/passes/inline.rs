//! Size-bounded inlining of small leaf Terra functions.
//!
//! Staged code composes kernels out of tiny helpers (`min`, index clamps,
//! accessors); calling through the VM's frame machinery costs more than the
//! callee's body. This pass replaces direct calls to *inlinable* callees
//! with the callee's body, remapping its locals into fresh slots of the
//! caller and assigning argument expressions to the remapped parameters in
//! call order.
//!
//! A callee is inlinable when it is:
//!  - **small** — at most [`MAX_CALLEE_NODES`] IR nodes;
//!  - **a leaf** — no direct or indirect calls anywhere in its body
//!    (builtins are fine); this also rules out recursion;
//!  - **single-exit** — either no `return` at all (unit fallthrough) or
//!    exactly one, as the final top-level statement;
//!  - **register-calling** — no `in_memory` parameters (aggregate or
//!    address-taken parameters keep their frame-slot calling convention).
//!
//! Because the callee's body is spliced verbatim (modulo local renumbering),
//! its traps, stores, and builtin calls happen exactly as they would have in
//! the out-of-line version. The caller's `deps` are untouched: callees are
//! still compiled and linked, preserving lazy-linking error behavior.

use super::util::count_nodes;
use super::{InlineEnv, Remark};
use crate::ir::{Callee, ExprKind, FuncId, IrExpr, IrFunction, IrStmt, LocalId, StmtKind};
use terra_syntax::{ProvKind, Provenance};

/// Upper bound on the IR size of a callee worth inlining.
pub const MAX_CALLEE_NODES: usize = 48;

/// Inlines eligible direct calls in statement position.
pub(crate) fn run(f: &mut IrFunction, env: &dyn InlineEnv, remarks: &mut Vec<Remark>) {
    let mut body = std::mem::take(&mut f.body);
    inline_block(f, env, &mut body, remarks);
    f.body = body;
}

fn inline_block(
    f: &mut IrFunction,
    env: &dyn InlineEnv,
    stmts: &mut Vec<IrStmt>,
    remarks: &mut Vec<Remark>,
) {
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i].kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                inline_block(f, env, then_body, remarks);
                inline_block(f, env, else_body, remarks);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                inline_block(f, env, body, remarks);
            }
            _ => {}
        }
        if let Some(expansion) = try_inline(f, env, &stmts[i], remarks) {
            let n = expansion.len();
            stmts.splice(i..=i, expansion);
            // Leaf bodies contain no further calls; skip past the splice.
            i += n;
        } else {
            i += 1;
        }
    }
}

/// Extends the staging chain of every spliced callee statement with an
/// "inlined at line …" frame, so provenance survives inlining.
fn stamp_inline(stmts: &mut [IrStmt], line: u32) {
    for s in stmts {
        s.prov = Some(match &s.prov {
            Some(p) => p.extended(ProvKind::Inline, line),
            None => Provenance::new(ProvKind::Inline, line),
        });
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                stamp_inline(then_body, line);
                stamp_inline(else_body, line);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => stamp_inline(body, line),
            _ => {}
        }
    }
}

/// The three statement shapes a call can appear in.
enum Site {
    Assign(LocalId),
    Discard,
    Return,
}

fn call_of(e: &IrExpr) -> Option<(FuncId, &[IrExpr])> {
    match &e.kind {
        ExprKind::Call {
            callee: Callee::Direct(id),
            args,
        } => Some((*id, args)),
        _ => None,
    }
}

fn try_inline(
    f: &mut IrFunction,
    env: &dyn InlineEnv,
    s: &IrStmt,
    remarks: &mut Vec<Remark>,
) -> Option<Vec<IrStmt>> {
    let (site, id, args) = match &s.kind {
        StmtKind::Assign { dst, value } => {
            let (id, args) = call_of(value)?;
            (Site::Assign(*dst), id, args)
        }
        StmtKind::Expr(e) => {
            let (id, args) = call_of(e)?;
            (Site::Discard, id, args)
        }
        StmtKind::Return(Some(e)) => {
            let (id, args) = call_of(e)?;
            (Site::Return, id, args)
        }
        _ => return None,
    };
    let callee = env.callee_ir(id)?;
    let mut missed = |reason: String| {
        remarks.push(Remark::missed(
            "inline",
            s.span.line,
            s.prov.clone(),
            format!("call to '{}' not inlined: {reason}", callee.name),
        ));
    };
    if args.len() != callee.param_count() {
        missed(format!(
            "arity mismatch ({} args vs {} params)",
            args.len(),
            callee.param_count()
        ));
        return None;
    }
    if let Some(reason) = not_inlinable_reason(&callee) {
        missed(reason);
        return None;
    }
    // A value-producing site needs the callee to end in `return <expr>`.
    if matches!(site, Site::Assign(_) | Site::Return)
        && !matches!(
            callee.body.last().map(|t| &t.kind),
            Some(StmtKind::Return(Some(_)))
        )
    {
        missed("callee does not end in a value-producing return".to_string());
        return None;
    }

    // Append the callee's locals to the caller, remapped by a fixed offset.
    let base = f.locals.len() as u32;
    for slot in &callee.locals {
        f.add_local(
            format!("${}.{}", callee.name, slot.name),
            slot.ty.clone(),
            slot.in_memory,
        );
    }

    let mut out: Vec<IrStmt> = Vec::new();
    // Prologue: bind arguments in call order (argument effects preserved).
    // Argument expressions come from the caller, so they keep the call
    // statement's own provenance rather than gaining an inline frame.
    for (j, arg) in args.iter().enumerate() {
        let mut bind = IrStmt::synthesized(
            s.span,
            StmtKind::Assign {
                dst: LocalId(base + j as u32),
                value: arg.clone(),
            },
        );
        bind.prov = s.prov.clone();
        out.push(bind);
    }

    let mut body = callee.body.clone();
    let tail = match body.last().map(|t| &t.kind) {
        Some(StmtKind::Return(_)) => {
            let Some(IrStmt {
                kind: StmtKind::Return(v),
                ..
            }) = body.pop()
            else {
                unreachable!()
            };
            v
        }
        _ => None,
    };
    remap_block(&mut body, base);
    stamp_inline(&mut body, s.span.line);
    out.extend(body);

    match (site, tail) {
        (Site::Assign(dst), Some(mut e)) => {
            remap_expr(&mut e, base);
            let mut bind = IrStmt::synthesized(s.span, StmtKind::Assign { dst, value: e });
            bind.prov = s.prov.clone();
            out.push(bind);
        }
        (Site::Discard, Some(mut e)) => {
            remap_expr(&mut e, base);
            if !super::util::expr_is_pure(&e) {
                let mut tail = IrStmt::synthesized(s.span, StmtKind::Expr(e));
                tail.prov = s.prov.clone();
                out.push(tail);
            }
        }
        (Site::Discard, None) => {}
        (Site::Return, Some(mut e)) => {
            remap_expr(&mut e, base);
            let mut tail = IrStmt::synthesized(s.span, StmtKind::Return(Some(e)));
            tail.prov = s.prov.clone();
            out.push(tail);
        }
        // A value-producing site needs a value-producing callee; `inlinable`
        // plus the verifier rule this out, but bail defensively.
        (Site::Assign(_) | Site::Return, None) => return None,
    }
    remarks.push(Remark::applied(
        "inline",
        s.span.line,
        s.prov.clone(),
        format!(
            "inlined '{}' ({} IR nodes)",
            callee.name,
            count_nodes(&callee)
        ),
    ));
    Some(out)
}

/// Why `callee` cannot be inlined, or `None` when it is eligible.
fn not_inlinable_reason(callee: &IrFunction) -> Option<String> {
    let nodes = count_nodes(callee);
    if nodes > MAX_CALLEE_NODES {
        return Some(format!(
            "callee over size budget ({nodes} > {MAX_CALLEE_NODES})"
        ));
    }
    if callee.locals[..callee.param_count()]
        .iter()
        .any(|p| p.in_memory)
    {
        return Some("callee has aggregate or address-taken parameters".to_string());
    }
    if block_has_calls(&callee.body) {
        return Some("callee is not a leaf (contains calls)".to_string());
    }
    // Single-exit: zero returns (unit fallthrough) or exactly one, as the
    // final top-level statement.
    let total = count_returns(&callee.body);
    let single_exit = match total {
        0 => true,
        1 => matches!(
            callee.body.last().map(|s| &s.kind),
            Some(StmtKind::Return(_))
        ),
        _ => false,
    };
    if !single_exit {
        return Some(format!("callee has multiple exits ({total} returns)"));
    }
    None
}

fn count_returns(stmts: &[IrStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match &s.kind {
            StmtKind::Return(_) => 1,
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => count_returns(then_body) + count_returns(else_body),
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => count_returns(body),
            _ => 0,
        })
        .sum()
}

fn expr_has_calls(e: &IrExpr) -> bool {
    if matches!(
        e.kind,
        ExprKind::Call {
            callee: Callee::Direct(_) | Callee::Indirect(_),
            ..
        }
    ) {
        return true;
    }
    let mut found = false;
    super::util::each_child(e, &mut |c| found |= expr_has_calls(c));
    found
}

fn block_has_calls(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Assign { value, .. } => expr_has_calls(value),
        StmtKind::Store { addr, value } => expr_has_calls(addr) || expr_has_calls(value),
        StmtKind::CopyMem { dst, src, .. } => expr_has_calls(dst) || expr_has_calls(src),
        StmtKind::Expr(e) => expr_has_calls(e),
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => expr_has_calls(cond) || block_has_calls(then_body) || block_has_calls(else_body),
        StmtKind::While { cond, body } => expr_has_calls(cond) || block_has_calls(body),
        StmtKind::For {
            start,
            stop,
            step,
            body,
            ..
        } => {
            expr_has_calls(start)
                || expr_has_calls(stop)
                || expr_has_calls(step)
                || block_has_calls(body)
        }
        // A parallel loop is a call to its kernel.
        StmtKind::ParallelFor { .. } => true,
        StmtKind::Return(Some(e)) => expr_has_calls(e),
        StmtKind::Return(None) | StmtKind::Break => false,
    })
}

fn remap_expr(e: &mut IrExpr, base: u32) {
    match &mut e.kind {
        ExprKind::Local(l) | ExprKind::LocalAddr(l) => l.0 += base,
        _ => {}
    }
    super::util::each_child_mut(e, &mut |c| remap_expr(c, base));
}

fn remap_block(stmts: &mut [IrStmt], base: u32) {
    for s in stmts {
        match &mut s.kind {
            StmtKind::Assign { dst, .. } => dst.0 += base,
            StmtKind::For { var, .. } => var.0 += base,
            _ => {}
        }
        super::util::for_each_stmt_expr_mut(s, &mut |e| remap_expr(e, base));
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                remap_block(then_body, base);
                remap_block(else_body, base);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => remap_block(body, base),
            _ => {}
        }
    }
}
