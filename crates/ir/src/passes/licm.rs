//! Loop-invariant code motion for address arithmetic and other pure
//! computation.
//!
//! Staged kernels are dense with per-iteration address math whose inputs
//! never change inside the loop — `i * lda * 8` style products of spliced
//! constants and loop-invariant strides. This pass walks loops innermost
//! first; for each loop it computes the set of register locals the body (or
//! loop header) reassigns and then hoists every *maximal* invariant compound
//! subexpression into a fresh temporary assigned immediately before the
//! loop. Equal subtrees share one temporary.
//!
//! Hoistable expressions are [stable](super::util::expr_is_stable) — no
//! loads, calls, possible traps, or `in_memory` reads — so executing one
//! even when the loop would run zero times is unobservable. Hoisting out of
//! a conditional inside the loop is safe for the same reason. Temporaries
//! cascade: an inner loop's hoisted assignment is itself a candidate when
//! the enclosing loop is processed, so deeply nested address math migrates
//! all the way out in a single pass.
//!
//! One exception to the no-loads rule: when the loop body performs no
//! stores, memory copies, or calls (so memory cannot change between
//! iterations) and the abstract interpreter proves the address in-bounds of
//! a frame local (so the load cannot trap even when the loop runs zero
//! times), an invariant load is hoisted like any other invariant value.

use super::util::{collect_assigned, LocalSet};
use super::{PassConfig, Remark};
use crate::analysis::absint::proven_const_access;
use crate::ir::{ExprKind, IrExpr, IrFunction, IrStmt, LocalId, StmtKind};
use crate::types::TypeRegistry;
use terra_syntax::Span;

/// Hoists loop-invariant computation out of every loop in the function.
pub(crate) fn run(f: &mut IrFunction, cfg: &PassConfig, remarks: &mut Vec<Remark>) {
    let mut body = std::mem::take(&mut f.body);
    let mut licm = Licm {
        f,
        types: cfg.types,
        counter: 0,
        mem_pure: false,
        remarks,
    };
    licm.block(&mut body);
    f.body = body;
}

struct Licm<'a> {
    f: &'a mut IrFunction,
    types: Option<&'a TypeRegistry>,
    counter: usize,
    /// Whether the loop currently being hoisted from cannot change memory
    /// (no stores, memory copies, or calls anywhere inside it).
    mem_pure: bool,
    remarks: &'a mut Vec<Remark>,
}

impl Licm<'_> {
    fn block(&mut self, stmts: &mut Vec<IrStmt>) {
        let mut i = 0;
        while i < stmts.len() {
            match &mut stmts[i].kind {
                StmtKind::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.block(then_body);
                    self.block(else_body);
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => self.block(body),
                _ => {}
            }
            if matches!(stmts[i].kind, StmtKind::While { .. } | StmtKind::For { .. }) {
                let hoists = self.hoist_loop(&mut stmts[i]);
                let n = hoists.len();
                for (k, h) in hoists.into_iter().enumerate() {
                    stmts.insert(i + k, h);
                }
                i += n;
            }
            i += 1;
        }
    }

    /// Hoists from one loop statement, returning the prelude assignments to
    /// insert before it.
    fn hoist_loop(&mut self, s: &mut IrStmt) -> Vec<IrStmt> {
        let mut writes = LocalSet::new(self.f.locals.len());
        match &s.kind {
            StmtKind::While { body, .. } => collect_assigned(body, &mut writes),
            StmtKind::For { var, body, .. } => {
                writes.insert(*var);
                collect_assigned(body, &mut writes);
            }
            _ => unreachable!("hoist_loop called on a non-loop"),
        }
        let mut hoisted: Vec<(IrExpr, LocalId)> = Vec::new();
        match &mut s.kind {
            StmtKind::While { cond, body } => {
                self.mem_pure = block_is_memory_pure(body) && !expr_has_call(cond);
                // The condition re-evaluates every iteration: its invariant
                // parts are worth hoisting too.
                self.scan_expr(cond, &writes, &mut hoisted);
                self.scan_block(body, &writes, &mut hoisted);
            }
            StmtKind::For { body, .. } => {
                self.mem_pure = block_is_memory_pure(body);
                // start/stop/step evaluate once already; only the body pays
                // per iteration.
                self.scan_block(body, &writes, &mut hoisted);
            }
            _ => unreachable!(),
        }
        hoisted
            .into_iter()
            .map(|(value, dst)| {
                let what = if matches!(value.kind, ExprKind::Load(_)) {
                    "hoisted loop-invariant load (proven in-bounds) into"
                } else {
                    "hoisted loop-invariant expression into"
                };
                self.remarks.push(Remark::applied(
                    "licm",
                    s.span.line,
                    s.prov.clone(),
                    format!("{} '{}'", what, self.f.locals[dst.0 as usize].name),
                ));
                let mut prelude =
                    IrStmt::synthesized(Span::synthetic(), StmtKind::Assign { dst, value });
                // The hoisted computation came out of this loop; it keeps
                // the loop statement's staging chain.
                prelude.prov = s.prov.clone();
                prelude
            })
            .collect()
    }

    fn scan_block(
        &mut self,
        stmts: &mut [IrStmt],
        writes: &LocalSet,
        out: &mut Vec<(IrExpr, LocalId)>,
    ) {
        for s in stmts {
            match &mut s.kind {
                StmtKind::Assign { value, .. } => self.scan_expr(value, writes, out),
                StmtKind::Store { addr, value } => {
                    self.scan_expr(addr, writes, out);
                    self.scan_expr(value, writes, out);
                }
                StmtKind::CopyMem { dst, src, .. } => {
                    self.scan_expr(dst, writes, out);
                    self.scan_expr(src, writes, out);
                }
                StmtKind::Expr(e) => self.scan_expr(e, writes, out),
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.scan_expr(cond, writes, out);
                    self.scan_block(then_body, writes, out);
                    self.scan_block(else_body, writes, out);
                }
                StmtKind::While { cond, body } => {
                    // `writes` covers the whole outer body, including this
                    // nested loop, so invariance is still sound here.
                    self.scan_expr(cond, writes, out);
                    self.scan_block(body, writes, out);
                }
                StmtKind::For {
                    start,
                    stop,
                    step,
                    body,
                    ..
                } => {
                    self.scan_expr(start, writes, out);
                    self.scan_expr(stop, writes, out);
                    self.scan_expr(step, writes, out);
                    self.scan_block(body, writes, out);
                }
                StmtKind::ParallelFor {
                    start, stop, args, ..
                } => {
                    self.scan_expr(start, writes, out);
                    self.scan_expr(stop, writes, out);
                    for a in args {
                        self.scan_expr(a, writes, out);
                    }
                }
                StmtKind::Return(Some(e)) => self.scan_expr(e, writes, out),
                StmtKind::Return(None) | StmtKind::Break => {}
            }
        }
    }

    /// Replaces maximal invariant compound subtrees of `e` with temporary
    /// reads, recording the hoisted computations in `out`.
    fn scan_expr(&mut self, e: &mut IrExpr, writes: &LocalSet, out: &mut Vec<(IrExpr, LocalId)>) {
        if self.hoistable(e, writes) {
            let dst = match out.iter().find(|(known, _)| known == e) {
                Some((_, l)) => *l,
                None => {
                    let name = format!("$licm{}", self.counter);
                    self.counter += 1;
                    let l = self.f.add_local(name, e.ty.clone(), false);
                    out.push((e.clone(), l));
                    l
                }
            };
            e.kind = ExprKind::Local(dst);
            return;
        }
        super::util::each_child_mut(e, &mut |c| self.scan_expr(c, writes, out));
    }

    /// A hoist candidate is a compound register-valued expression that is
    /// stable and mentions no local the loop writes — or, when the loop
    /// cannot change memory, an invariant load whose address is proven
    /// in-bounds of a frame local (so it cannot trap on a zero-trip loop).
    fn hoistable(&self, e: &IrExpr, writes: &LocalSet) -> bool {
        if let ExprKind::Load(addr) = &e.kind {
            return self.mem_pure
                && e.ty.is_register()
                && self.invariant(addr, writes)
                && addr_bases_unwritten(addr, writes)
                && self.types.is_some_and(|reg| {
                    proven_const_access(addr, &self.f.locals, reg, e.ty.size(reg))
                });
        }
        let compound = matches!(
            e.kind,
            ExprKind::Binary { .. }
                | ExprKind::Unary { .. }
                | ExprKind::Cast(_)
                | ExprKind::Cmp { .. }
                | ExprKind::Select { .. }
        );
        compound && e.ty.is_register() && self.invariant(e, writes)
    }

    fn invariant(&self, e: &IrExpr, writes: &LocalSet) -> bool {
        if !expr_is_stable_shallow(e, &self.f.locals) {
            return false;
        }
        match e.kind {
            ExprKind::Local(l) if writes.contains(l) => return false,
            _ => {}
        }
        let mut ok = true;
        super::util::each_child(e, &mut |c| ok &= self.invariant(c, writes));
        ok
    }
}

/// No statement in the block (or any nested block) can change memory: no
/// stores, no memory copies, and no calls anywhere, including in expression
/// position.
fn block_is_memory_pure(stmts: &[IrStmt]) -> bool {
    stmts.iter().all(|s| match &s.kind {
        StmtKind::Store { .. } | StmtKind::CopyMem { .. } => false,
        StmtKind::Assign { value, .. } => !expr_has_call(value),
        StmtKind::Expr(e) => !expr_has_call(e),
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            !expr_has_call(cond)
                && block_is_memory_pure(then_body)
                && block_is_memory_pure(else_body)
        }
        StmtKind::While { cond, body } => !expr_has_call(cond) && block_is_memory_pure(body),
        StmtKind::For {
            start,
            stop,
            step,
            body,
            ..
        } => {
            !expr_has_call(start)
                && !expr_has_call(stop)
                && !expr_has_call(step)
                && block_is_memory_pure(body)
        }
        // The kernel may write memory through captured pointers.
        StmtKind::ParallelFor { .. } => false,
        StmtKind::Return(Some(e)) => !expr_has_call(e),
        StmtKind::Return(None) | StmtKind::Break => true,
    })
}

fn expr_has_call(e: &IrExpr) -> bool {
    if matches!(e.kind, ExprKind::Call { .. }) {
        return true;
    }
    let mut found = false;
    super::util::each_child(e, &mut |c| found |= expr_has_call(c));
    found
}

/// Every frame local whose address feeds `addr` is unwritten by the loop
/// (wholesale reassignment of the local would change what the load sees).
fn addr_bases_unwritten(addr: &IrExpr, writes: &LocalSet) -> bool {
    if let ExprKind::LocalAddr(l) = addr.kind {
        if writes.contains(l) {
            return false;
        }
    }
    let mut ok = true;
    super::util::each_child(addr, &mut |c| ok &= addr_bases_unwritten(c, writes));
    ok
}

/// Non-recursive stability test (the recursion happens in `invariant`).
fn expr_is_stable_shallow(e: &IrExpr, locals: &[crate::ir::LocalSlot]) -> bool {
    // Reuse the full test on the node alone by checking its own kind; the
    // recursive walk over children is done by `invariant`.
    match &e.kind {
        ExprKind::Call { .. } | ExprKind::Load(_) | ExprKind::ConstStr(_) => false,
        ExprKind::Local(l) => !locals[l.0 as usize].in_memory,
        ExprKind::Binary { op, rhs, .. }
            if matches!(op, crate::ir::BinKind::Div | crate::ir::BinKind::Rem)
                && !e.ty.is_float() =>
        {
            matches!(rhs.kind, ExprKind::ConstInt(v) if v != 0)
        }
        _ => true,
    }
}
