//! Algebraic simplification and strength reduction.
//!
//! Runs after constant folding and catches the non-constant shapes the
//! folder leaves behind: multiplications by powers of two become shifts,
//! unsigned division/remainder by powers of two become shifts/masks,
//! self-cancelling integer operations (`x - x`, `x ^ x`) become constants,
//! double negations and identity casts disappear.
//!
//! Every rewrite is exact on the bit patterns the VM computes (two's
//! complement wrapping makes `x * 2^k` and `x << k` identical), and any
//! rewrite that *drops* an operand requires that operand to be pure, so
//! traps and side effects are preserved. Floating point is left entirely to
//! the folder's NaN-safe rules. The bytecode compiler's address-fusion
//! peephole recognizes `<<` by a constant as a scale, so reducing a
//! multiplication inside an address computation never defeats `lea` fusion.

use super::util::{each_child_mut, expr_is_pure, expr_is_stable, for_each_stmt_expr_mut};
use super::Remark;
use crate::ir::{BinKind, CmpKind, ExprKind, IrExpr, IrFunction, IrStmt, LocalSlot, StmtKind};
use crate::types::{ScalarTy, Ty};

/// Simplifies every expression in the function, bottom-up.
pub(crate) fn run(f: &mut IrFunction, remarks: &mut Vec<Remark>) {
    let IrFunction { locals, body, .. } = f;
    let mut rewrites = 0usize;
    block(locals, body, &mut rewrites);
    if rewrites > 0 {
        remarks.push(Remark::applied(
            "simplify",
            0,
            None,
            format!("rewrote {rewrites} expression(s) (algebraic / strength reduction)"),
        ));
    }
}

fn block(locals: &[LocalSlot], stmts: &mut [IrStmt], rewrites: &mut usize) {
    for s in stmts {
        for_each_stmt_expr_mut(s, &mut |e| simplify(locals, e, rewrites));
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                block(locals, then_body, rewrites);
                block(locals, else_body, rewrites);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                block(locals, body, rewrites)
            }
            _ => {}
        }
    }
}

fn int_const(e: &IrExpr) -> Option<i64> {
    match e.kind {
        ExprKind::ConstInt(v) => Some(v),
        _ => None,
    }
}

/// `Some(k)` when `c == 2^k` with `k >= 1` (interpreting `c` as the
/// unsigned bit pattern of width `st`, which the folder has normalized).
fn power_of_two(st: ScalarTy, c: i64) -> Option<u32> {
    let width_mask: u64 = match st {
        ScalarTy::I8 | ScalarTy::U8 => 0xff,
        ScalarTy::I16 | ScalarTy::U16 => 0xffff,
        ScalarTy::I32 | ScalarTy::U32 => 0xffff_ffff,
        _ => u64::MAX,
    };
    let u = c as u64 & width_mask;
    if u > 1 && u.is_power_of_two() {
        Some(u.trailing_zeros())
    } else {
        None
    }
}

fn simplify(locals: &[LocalSlot], e: &mut IrExpr, rewrites: &mut usize) {
    each_child_mut(e, &mut |c| simplify(locals, c, rewrites));

    let new_kind: Option<ExprKind> = match (&e.ty, &e.kind) {
        (Ty::Scalar(st), ExprKind::Binary { op, lhs, rhs }) if st.is_integer() => {
            int_binary(locals, *st, *op, lhs, rhs)
        }
        (Ty::Scalar(ScalarTy::Bool), ExprKind::Binary { op, lhs, rhs }) => {
            bool_binary(*op, lhs, rhs)
        }
        // Pointer offset by zero.
        (ty, ExprKind::Binary { op, lhs, rhs })
            if ty.is_pointer()
                && matches!(op, BinKind::Add | BinKind::Sub)
                && int_const(rhs) == Some(0) =>
        {
            Some(lhs.kind.clone())
        }
        (_, ExprKind::Cmp { op, lhs, rhs })
            if !lhs.ty.is_float() && lhs == rhs && expr_is_pure(lhs) =>
        {
            // Exact on integers/pointers/bools; floats excluded (NaN != NaN).
            Some(ExprKind::ConstBool(matches!(
                op,
                CmpKind::Eq | CmpKind::Le | CmpKind::Ge
            )))
        }
        // --x → x and (not (not x)) → x: both operators are involutions.
        (_, ExprKind::Unary { op, expr }) => match &expr.kind {
            ExprKind::Unary {
                op: inner_op,
                expr: inner,
            } if inner_op == op => Some(inner.kind.clone()),
            _ => None,
        },
        (ty, ExprKind::Cast(inner)) if inner.ty == *ty => Some(inner.kind.clone()),
        (
            _,
            ExprKind::Select {
                cond,
                then_value,
                else_value,
            },
        ) if then_value == else_value
            && expr_is_pure(cond)
            && expr_is_stable(then_value, locals) =>
        {
            Some(then_value.kind.clone())
        }
        _ => None,
    };
    if let Some(kind) = new_kind {
        e.kind = kind;
        *rewrites += 1;
    }
}

fn int_binary(
    locals: &[LocalSlot],
    st: ScalarTy,
    op: BinKind,
    lhs: &IrExpr,
    rhs: &IrExpr,
) -> Option<ExprKind> {
    let shift = |x: &IrExpr, dir: BinKind, k: u32| {
        Some(ExprKind::Binary {
            op: dir,
            lhs: Box::new(x.clone()),
            rhs: Box::new(IrExpr {
                ty: x.ty.clone(),
                kind: ExprKind::ConstInt(k as i64),
            }),
        })
    };
    match op {
        // x * 2^k → x << k (exact under two's-complement wrapping).
        BinKind::Mul => {
            if let Some(c) = int_const(rhs) {
                if let Some(k) = power_of_two(st, c) {
                    return shift(lhs, BinKind::Shl, k);
                }
            }
            if let Some(c) = int_const(lhs) {
                if let Some(k) = power_of_two(st, c) {
                    return shift(rhs, BinKind::Shl, k);
                }
            }
            None
        }
        // Unsigned x / 2^k → logical shift; x / 1 is exact for any sign.
        BinKind::Div => match int_const(rhs) {
            Some(1) => Some(lhs.kind.clone()),
            Some(c) if !st.is_signed() => {
                power_of_two(st, c).and_then(|k| shift(lhs, BinKind::Shr, k))
            }
            _ => None,
        },
        // x % 1 → 0; unsigned x % 2^k → x & (2^k - 1).
        BinKind::Rem => match int_const(rhs) {
            Some(1) if expr_is_pure(lhs) => Some(ExprKind::ConstInt(0)),
            Some(c) if !st.is_signed() => power_of_two(st, c).map(|_| ExprKind::Binary {
                op: BinKind::And,
                lhs: Box::new(lhs.clone()),
                rhs: Box::new(IrExpr {
                    ty: lhs.ty.clone(),
                    kind: ExprKind::ConstInt(c - 1),
                }),
            }),
            _ => None,
        },
        // Self-cancelling / self-absorbing forms on a repeated pure operand.
        BinKind::Sub | BinKind::Xor if lhs == rhs && expr_is_pure(lhs) => {
            Some(ExprKind::ConstInt(0))
        }
        BinKind::And | BinKind::Or | BinKind::Min | BinKind::Max
            if lhs == rhs && expr_is_stable(lhs, locals) =>
        {
            Some(lhs.kind.clone())
        }
        _ => None,
    }
}

fn bool_binary(op: BinKind, lhs: &IrExpr, rhs: &IrExpr) -> Option<ExprKind> {
    let as_bool = |e: &IrExpr| match e.kind {
        ExprKind::ConstBool(b) => Some(b),
        _ => None,
    };
    match (op, as_bool(lhs), as_bool(rhs)) {
        (BinKind::And, Some(true), _) => Some(rhs.kind.clone()),
        (BinKind::And, _, Some(true)) => Some(lhs.kind.clone()),
        (BinKind::And, Some(false), _) if expr_is_pure(rhs) => Some(ExprKind::ConstBool(false)),
        (BinKind::And, _, Some(false)) if expr_is_pure(lhs) => Some(ExprKind::ConstBool(false)),
        (BinKind::Or, Some(false), _) => Some(rhs.kind.clone()),
        (BinKind::Or, _, Some(false)) => Some(lhs.kind.clone()),
        (BinKind::Or, Some(true), _) if expr_is_pure(rhs) => Some(ExprKind::ConstBool(true)),
        (BinKind::Or, _, Some(true)) if expr_is_pure(lhs) => Some(ExprKind::ConstBool(true)),
        _ => None,
    }
}
