//! Common-subexpression elimination over stable values.
//!
//! A forward walk carries a table of *available expressions*: pairs of a
//! previously computed expression and the register local that still holds
//! its value. Any structurally identical subexpression seen later is
//! replaced by a read of that local.
//!
//! Only [stable](super::util::expr_is_stable) expressions participate — no
//! loads, calls, possible traps, or reads of `in_memory` locals — so an
//! entry's value can't change behind the table's back through memory; it
//! only dies when a local it mentions (or the holding local) is reassigned.
//! Branch arms extend private copies of the table; after the branch,
//! entries clobbered by either arm are dropped. Loop bodies start from a
//! table purged of everything the body reassigns.

use super::util::{collect_assigned, each_child_mut, expr_is_stable, expr_uses, LocalSet};
use super::Remark;
use crate::ir::{ExprKind, IrExpr, IrFunction, IrStmt, LocalId, LocalSlot, StmtKind};
use terra_syntax::Provenance;

type Avail = Vec<(IrExpr, LocalId)>;

/// Eliminates recomputation of stable expressions within the function.
pub(crate) fn run(f: &mut IrFunction, remarks: &mut Vec<Remark>) {
    let IrFunction { locals, body, .. } = f;
    let mut avail: Avail = Vec::new();
    block(locals, body, &mut avail, remarks);
}

/// Where replacements currently land, for remark attribution: the enclosing
/// statement's source line and staging chain.
struct Site<'a> {
    line: u32,
    prov: &'a Option<Provenance>,
}

/// Whether `e` is worth tracking: a stable compound computation (never a
/// bare constant, local, or address, which are as cheap as a register read).
fn eligible(e: &IrExpr, locals: &[LocalSlot]) -> bool {
    matches!(
        e.kind,
        ExprKind::Binary { .. }
            | ExprKind::Unary { .. }
            | ExprKind::Cast(_)
            | ExprKind::Cmp { .. }
            | ExprKind::Select { .. }
    ) && expr_is_stable(e, locals)
}

/// Replaces available subexpressions in `e`, outermost match first.
fn replace(
    e: &mut IrExpr,
    avail: &Avail,
    locals: &[LocalSlot],
    site: &Site,
    remarks: &mut Vec<Remark>,
) {
    if eligible(e, locals) {
        if let Some((_, holder)) = avail.iter().find(|(known, _)| known == e) {
            remarks.push(Remark::applied(
                "cse",
                site.line,
                site.prov.clone(),
                format!(
                    "reused previously computed value held in '{}'",
                    locals[holder.0 as usize].name
                ),
            ));
            e.kind = ExprKind::Local(*holder);
            return;
        }
    }
    each_child_mut(e, &mut |c| replace(c, avail, locals, site, remarks));
}

/// Whether `e` mentions any local in `writes`.
fn mentions(e: &IrExpr, writes: &LocalSet) -> bool {
    match e.kind {
        ExprKind::Local(l) | ExprKind::LocalAddr(l) if writes.contains(l) => return true,
        _ => {}
    }
    let mut found = false;
    super::util::each_child(e, &mut |c| found |= mentions(c, writes));
    found
}

/// Drops entries held by or mentioning `w`.
fn kill(avail: &mut Avail, w: LocalId) {
    avail.retain(|(e, holder)| *holder != w && !expr_uses(e, w));
}

fn kill_set(avail: &mut Avail, writes: &LocalSet) {
    avail.retain(|(e, holder)| !writes.contains(*holder) && !mentions(e, writes));
}

fn block(locals: &[LocalSlot], stmts: &mut [IrStmt], avail: &mut Avail, remarks: &mut Vec<Remark>) {
    for s in stmts {
        let site = Site {
            line: s.span.line,
            prov: &s.prov,
        };
        match &mut s.kind {
            StmtKind::Assign { dst, value } => {
                replace(value, avail, locals, &site, remarks);
                let dst = *dst;
                kill(avail, dst);
                // `value` read the *pre-assignment* dst, so a self-referential
                // assign (`x = x + 1`) must not advertise `x + 1` as held by
                // the post-assignment x.
                if eligible(value, locals)
                    && !expr_uses(value, dst)
                    && !locals[dst.0 as usize].in_memory
                    && locals[dst.0 as usize].ty == value.ty
                {
                    avail.push((value.clone(), dst));
                }
            }
            StmtKind::Store { addr, value } => {
                // Stores don't invalidate anything: table entries never
                // depend on memory.
                replace(addr, avail, locals, &site, remarks);
                replace(value, avail, locals, &site, remarks);
            }
            StmtKind::CopyMem { dst, src, .. } => {
                replace(dst, avail, locals, &site, remarks);
                replace(src, avail, locals, &site, remarks);
            }
            StmtKind::Expr(e) => replace(e, avail, locals, &site, remarks),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                replace(cond, avail, locals, &site, remarks);
                let mut writes = LocalSet::new(locals.len());
                collect_assigned(then_body, &mut writes);
                collect_assigned(else_body, &mut writes);
                let mut tavail = avail.clone();
                block(locals, then_body, &mut tavail, remarks);
                let mut eavail = avail.clone();
                block(locals, else_body, &mut eavail, remarks);
                kill_set(avail, &writes);
            }
            StmtKind::While { cond, body } => {
                let mut writes = LocalSet::new(locals.len());
                collect_assigned(body, &mut writes);
                kill_set(avail, &writes);
                replace(cond, avail, locals, &site, remarks);
                let mut bavail = avail.clone();
                block(locals, body, &mut bavail, remarks);
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                replace(start, avail, locals, &site, remarks);
                replace(stop, avail, locals, &site, remarks);
                replace(step, avail, locals, &site, remarks);
                let mut writes = LocalSet::new(locals.len());
                collect_assigned(body, &mut writes);
                writes.insert(*var);
                kill_set(avail, &writes);
                let mut bavail = avail.clone();
                block(locals, body, &mut bavail, remarks);
            }
            StmtKind::ParallelFor {
                start, stop, args, ..
            } => {
                replace(start, avail, locals, &site, remarks);
                replace(stop, avail, locals, &site, remarks);
                for a in args {
                    replace(a, avail, locals, &site, remarks);
                }
            }
            StmtKind::Return(Some(e)) => replace(e, avail, locals, &site, remarks),
            StmtKind::Return(None) | StmtKind::Break => {}
        }
    }
}
