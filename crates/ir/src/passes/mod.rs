//! The mid-end: an explicit pass manager over the typed IR.
//!
//! The IR→bytecode path runs every function through a pipeline of
//! independent transform passes selected by an [`OptLevel`]:
//!
//! | level | pipeline |
//! |-------|----------|
//! | `-O0` | none — the typechecker's IR compiles as-is |
//! | `-O1` | fold → simplify → copyprop → dce |
//! | `-O2` | inline → fold → simplify → cse → copyprop → licm → copyprop → dce → checkelim |
//!
//! Every pass must preserve *observable semantics*: outputs, stores, traps
//! (including which trap fires first), and calls. The shared vocabulary for
//! that contract lives in [`util`]: a pass may delete or duplicate only
//! [pure](util::expr_is_pure) computation and may cache/reuse only
//! [stable](util::expr_is_stable) values.
//!
//! **Verifier-between-passes invariant:** if a function verifies cleanly
//! going into the pipeline, it must verify cleanly after every pass that
//! changed it. A violation is a compiler bug: debug builds panic at the
//! offending pass; release builds revert that pass's effect (the pipeline
//! snapshots the function before each pass) and continue, preferring slower
//! correct code over a miscompile.
//!
//! Per-pass wall-clock timings are returned in [`PassStats`] so the driver
//! can emit one trace span per pass (`--profile` shows where compile time
//! goes).

mod checkelim;
mod copyprop;
mod cse;
mod dce;
pub mod fold;
mod inline;
mod licm;
mod simplify;
pub mod util;

use crate::analysis::{verify_function, ModuleEnv, Summaries};
use crate::ir::{FuncId, IrFunction};
use crate::types::TypeRegistry;
use std::sync::Arc;
use std::time::Instant;
use terra_syntax::Provenance;

pub use inline::MAX_CALLEE_NODES;

/// How hard the mid-end works on each function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// No transformations: compile the typechecker's IR directly.
    O0,
    /// Cheap cleanups: constant folding, algebraic simplification, copy
    /// propagation, dead-code elimination.
    O1,
    /// The full pipeline, adding inlining, CSE, and loop-invariant code
    /// motion.
    #[default]
    O2,
}

impl OptLevel {
    /// Parses a CLI spelling (`"0"`, `"1"`, `"2"`).
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s {
            "0" => Some(OptLevel::O0),
            "1" => Some(OptLevel::O1),
            "2" => Some(OptLevel::O2),
            _ => None,
        }
    }

    /// The flag spelling (`"-O2"`).
    pub fn flag(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
        }
    }
}

/// The inliner's window into the module: the typed IR of potential callees.
///
/// Returning `None` simply makes the call ineligible for inlining — e.g.
/// for functions that are declared but not yet typechecked.
pub trait InlineEnv {
    /// The callee's IR, if available.
    fn callee_ir(&self, id: FuncId) -> Option<IrFunction>;
}

/// An [`InlineEnv`] with no visibility: disables inlining.
pub struct NoInline;

impl InlineEnv for NoInline {
    fn callee_ir(&self, _id: FuncId) -> Option<IrFunction> {
        None
    }
}

/// Everything the pipeline needs to know about the world around a function.
pub struct PassConfig<'a> {
    /// Optimization level selecting the pipeline.
    pub level: OptLevel,
    /// Struct layouts for the verifier (None skips layout checks).
    pub types: Option<&'a TypeRegistry>,
    /// Module signatures/globals for the verifier.
    pub env: &'a dyn ModuleEnv,
    /// Callee IR source for the inliner.
    pub inline: &'a dyn InlineEnv,
    /// Interprocedural summaries for the abstract interpreter (`None` runs
    /// it intraprocedurally).
    pub summaries: Option<&'a Summaries>,
    /// Whether the `checkelim` pass may stamp proven accesses check-free at
    /// `-O2`. Off under `--sanitize` or `--no-checkelim`.
    pub elide_checks: bool,
}

/// Whether a remark reports a transformation that happened or an
/// opportunity the pass saw but declined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemarkKind {
    /// The pass transformed the code as described.
    Applied,
    /// The pass recognized a candidate but could not transform it; the
    /// message says why (size budget, effects, multiple exits, …).
    Missed,
}

impl RemarkKind {
    /// Lower-case label for report rendering (`"applied"` / `"missed"`).
    pub fn label(self) -> &'static str {
        match self {
            RemarkKind::Applied => "applied",
            RemarkKind::Missed => "missed",
        }
    }
}

/// One structured optimization remark: what a pass did (or declined to do),
/// where, and to code of what staging origin. Remarks are emitted in pass
/// execution order and carry no wall-clock data, so two identical runs
/// produce byte-identical remark streams.
#[derive(Debug, Clone)]
pub struct Remark {
    /// Emitting pass (`"inline"`, `"licm"`, …).
    pub pass: &'static str,
    /// Applied or missed.
    pub kind: RemarkKind,
    /// Function being optimized (filled in by [`optimize`]).
    pub function: Arc<str>,
    /// 1-based source line the remark anchors to (0 = whole function).
    pub line: u32,
    /// Staging chain of the affected code, when it was generated.
    pub prov: Option<Provenance>,
    /// Human-readable explanation.
    pub message: String,
}

impl Remark {
    /// An applied-transformation remark (function name filled in later).
    pub(crate) fn applied(
        pass: &'static str,
        line: u32,
        prov: Option<Provenance>,
        message: String,
    ) -> Self {
        Remark {
            pass,
            kind: RemarkKind::Applied,
            function: Arc::from(""),
            line,
            prov,
            message,
        }
    }

    /// A missed-opportunity remark (function name filled in later).
    pub(crate) fn missed(
        pass: &'static str,
        line: u32,
        prov: Option<Provenance>,
        message: String,
    ) -> Self {
        Remark {
            pass,
            kind: RemarkKind::Missed,
            function: Arc::from(""),
            line,
            prov,
            message,
        }
    }
}

/// The record of one pass execution.
#[derive(Debug, Clone)]
pub struct PassRun {
    /// Pass name (`"fold"`, `"cse"`, …).
    pub pass: &'static str,
    /// Whether the pass changed the function.
    pub changed: bool,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Whether the pass's effect was reverted because it broke the
    /// verifier invariant (release builds only; debug builds panic).
    pub reverted: bool,
}

/// Per-function pipeline statistics, in execution order.
#[derive(Debug, Clone, Default)]
pub struct PassStats {
    /// One entry per executed pass.
    pub runs: Vec<PassRun>,
    /// Structured optimization remarks, in emission order. Remarks from a
    /// reverted pass are discarded along with its effect.
    pub remarks: Vec<Remark>,
}

#[derive(Clone, Copy)]
enum Pass {
    Inline,
    Fold,
    Simplify,
    Cse,
    CopyProp,
    Licm,
    Dce,
    CheckElim,
}

impl Pass {
    fn name(self) -> &'static str {
        match self {
            Pass::Inline => "inline",
            Pass::Fold => "fold",
            Pass::Simplify => "simplify",
            Pass::Cse => "cse",
            Pass::CopyProp => "copyprop",
            Pass::Licm => "licm",
            Pass::Dce => "dce",
            Pass::CheckElim => "checkelim",
        }
    }

    fn apply(self, f: &mut IrFunction, cfg: &PassConfig, remarks: &mut Vec<Remark>) {
        match self {
            Pass::Inline => inline::run(f, cfg.inline, remarks),
            Pass::Fold => fold::run(f, remarks),
            Pass::Simplify => simplify::run(f, remarks),
            Pass::Cse => cse::run(f, remarks),
            Pass::CopyProp => copyprop::run(f, remarks),
            Pass::Licm => licm::run(f, cfg, remarks),
            Pass::Dce => dce::run(f, remarks),
            Pass::CheckElim => {
                if cfg.elide_checks {
                    checkelim::run(f, cfg, remarks);
                }
            }
        }
    }
}

fn pipeline(level: OptLevel) -> &'static [Pass] {
    match level {
        OptLevel::O0 => &[],
        OptLevel::O1 => &[Pass::Fold, Pass::Simplify, Pass::CopyProp, Pass::Dce],
        OptLevel::O2 => &[
            Pass::Inline,
            Pass::Fold,
            Pass::Simplify,
            Pass::Cse,
            Pass::CopyProp,
            Pass::Licm,
            Pass::CopyProp,
            Pass::Dce,
            // Must stay last: it stamps address expressions that later
            // rewrites would invalidate.
            Pass::CheckElim,
        ],
    }
}

/// Runs the pipeline selected by `cfg.level` over `f`, enforcing the
/// verifier-between-passes invariant, and returns per-pass statistics.
pub fn optimize(f: &mut IrFunction, cfg: &PassConfig) -> PassStats {
    let mut stats = PassStats::default();
    let passes = pipeline(cfg.level);
    if passes.is_empty() {
        return stats;
    }
    // Only police passes on functions that were consistent to begin with;
    // the driver separately rejects functions that fail verification.
    let baseline_ok = verify_function(f, cfg.types, cfg.env).is_ok();
    for pass in passes {
        let snapshot = f.clone();
        let remarks_before = stats.remarks.len();
        let t0 = Instant::now();
        pass.apply(f, cfg, &mut stats.remarks);
        let dur_us = t0.elapsed().as_micros() as u64;
        let changed = *f != snapshot;
        let mut reverted = false;
        if changed && baseline_ok {
            if let Err(d) = verify_function(f, cfg.types, cfg.env) {
                if cfg!(debug_assertions) {
                    panic!(
                        "optimization pass '{}' broke IR consistency in '{}': {}",
                        pass.name(),
                        f.name,
                        d
                    );
                }
                *f = snapshot;
                reverted = true;
                // A reverted pass's remarks describe changes that were
                // undone; drop them so the stream matches the final code.
                stats.remarks.truncate(remarks_before);
            }
        }
        for r in &mut stats.remarks[remarks_before..] {
            r.function = Arc::clone(&f.name);
        }
        stats.runs.push(PassRun {
            pass: pass.name(),
            changed: changed && !reverted,
            dur_us,
            reverted,
        });
    }
    stats
}
