//! Constant folding and algebraic simplification over the typed IR.
//!
//! Staged Terra code is full of constants spliced from Lua (block sizes,
//! unroll factors, field offsets), so expressions like `0 * ldc + 3 * 8`
//! are common in generated kernels. This pass folds them before bytecode
//! compilation. Integer identities (`x*0`, `x*1`, `x+0`, `x<<0`) are applied;
//! floating-point identities are restricted to the NaN-safe `x*1.0` and the
//! constant-only cases.

use super::Remark;
use crate::ir::{BinKind, CmpKind, ExprKind, IrExpr, IrFunction, IrStmt, StmtKind, UnKind};
use crate::types::{ScalarTy, Ty};

/// Folds constants in-place throughout a function body.
///
/// In debug builds, a function that verified cleanly before folding is
/// re-verified afterwards; a fold pass that breaks type consistency is a
/// compiler bug and panics immediately rather than miscompiling.
pub fn fold_function(f: &mut IrFunction) {
    #[cfg(debug_assertions)]
    let was_consistent = crate::analysis::verify_function(f, None, &crate::analysis::NoEnv).is_ok();

    let mut folded = 0usize;
    fold_stmts(&mut f.body, &mut folded, &mut Vec::new());

    #[cfg(debug_assertions)]
    if was_consistent {
        if let Err(d) = crate::analysis::verify_function(f, None, &crate::analysis::NoEnv) {
            panic!(
                "constant folding broke IR consistency in '{}': {}",
                f.name, d
            );
        }
    }
}

/// Pass-manager entry point: fold without the standalone verify wrapper
/// (the pass manager verifies between passes itself).
pub(crate) fn run(f: &mut IrFunction, remarks: &mut Vec<Remark>) {
    let mut folded = 0usize;
    fold_stmts(&mut f.body, &mut folded, remarks);
    if folded > 0 {
        remarks.push(Remark::applied(
            "fold",
            0,
            None,
            format!("folded {folded} constant expression(s)"),
        ));
    }
}

fn fold_stmts(stmts: &mut Vec<IrStmt>, folded: &mut usize, remarks: &mut Vec<Remark>) {
    for s in stmts.iter_mut() {
        match &mut s.kind {
            StmtKind::Assign { value, .. } => fold_expr_counted(value, folded),
            StmtKind::Store { addr, value } => {
                fold_expr_counted(addr, folded);
                fold_expr_counted(value, folded);
            }
            StmtKind::CopyMem { dst, src, .. } => {
                fold_expr_counted(dst, folded);
                fold_expr_counted(src, folded);
            }
            StmtKind::Expr(e) => fold_expr_counted(e, folded),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                fold_expr_counted(cond, folded);
                fold_stmts(then_body, folded, remarks);
                fold_stmts(else_body, folded, remarks);
            }
            StmtKind::While { cond, body } => {
                fold_expr_counted(cond, folded);
                fold_stmts(body, folded, remarks);
            }
            StmtKind::For {
                start,
                stop,
                step,
                body,
                ..
            } => {
                fold_expr_counted(start, folded);
                fold_expr_counted(stop, folded);
                fold_expr_counted(step, folded);
                fold_stmts(body, folded, remarks);
            }
            StmtKind::ParallelFor {
                start, stop, args, ..
            } => {
                fold_expr_counted(start, folded);
                fold_expr_counted(stop, folded);
                for a in args {
                    fold_expr_counted(a, folded);
                }
            }
            StmtKind::Return(Some(e)) => fold_expr_counted(e, folded),
            StmtKind::Return(None) | StmtKind::Break => {}
        }
    }
    // Statically-decided `if`s collapse to one arm.
    let mut out: Vec<IrStmt> = Vec::with_capacity(stmts.len());
    for s in stmts.drain(..) {
        let const_if = matches!(
            &s.kind,
            StmtKind::If {
                cond: IrExpr {
                    kind: ExprKind::ConstBool(_),
                    ..
                },
                ..
            }
        );
        if const_if {
            remarks.push(Remark::applied(
                "fold",
                s.span.line,
                s.prov.clone(),
                "collapsed statically-decided branch".to_string(),
            ));
            let StmtKind::If {
                cond,
                then_body,
                else_body,
            } = s.kind
            else {
                unreachable!()
            };
            let ExprKind::ConstBool(b) = cond.kind else {
                unreachable!()
            };
            out.extend(if b { then_body } else { else_body });
        } else {
            out.push(s);
        }
    }
    *stmts = out;
}

/// Folds one expression tree in-place.
pub fn fold_expr(e: &mut IrExpr) {
    let mut n = 0usize;
    fold_expr_counted(e, &mut n);
}

/// [`fold_expr`] with a rewrite counter, for the pass manager's remarks.
fn fold_expr_counted(e: &mut IrExpr, folded: &mut usize) {
    // Fold children first.
    match &mut e.kind {
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Cmp { lhs, rhs, .. } => {
            fold_expr_counted(lhs, folded);
            fold_expr_counted(rhs, folded);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast(expr) | ExprKind::Load(expr) => {
            fold_expr_counted(expr, folded)
        }
        ExprKind::Call { args, callee } => {
            if let crate::ir::Callee::Indirect(p) = callee {
                fold_expr_counted(p, folded);
            }
            for a in args {
                fold_expr_counted(a, folded);
            }
        }
        ExprKind::Select {
            cond,
            then_value,
            else_value,
        } => {
            fold_expr_counted(cond, folded);
            fold_expr_counted(then_value, folded);
            fold_expr_counted(else_value, folded);
        }
        _ => {}
    }

    let new_kind: Option<ExprKind> = match (&e.ty, &e.kind) {
        (Ty::Scalar(st), ExprKind::Binary { op, lhs, rhs }) if st.is_integer() => {
            fold_int_binary(*st, *op, lhs, rhs)
        }
        (Ty::Scalar(st), ExprKind::Binary { op, lhs, rhs }) if st.is_float() => {
            fold_float_binary(*op, lhs, rhs)
        }
        (_, ExprKind::Cmp { op, lhs, rhs }) => fold_cmp(*op, lhs, rhs),
        (Ty::Scalar(st), ExprKind::Unary { op, expr }) => fold_unary(*st, *op, expr),
        (Ty::Scalar(to), ExprKind::Cast(inner)) => fold_cast(*to, inner),
        (
            _,
            ExprKind::Select {
                cond,
                then_value,
                else_value,
            },
        ) => match cond.kind {
            ExprKind::ConstBool(true) => Some(then_value.kind.clone()),
            ExprKind::ConstBool(false) => Some(else_value.kind.clone()),
            _ => None,
        },
        _ => None,
    };
    if let Some(kind) = new_kind {
        e.kind = kind;
        *folded += 1;
    }
}

fn int_const(e: &IrExpr) -> Option<i64> {
    match e.kind {
        ExprKind::ConstInt(v) => Some(v),
        _ => None,
    }
}

fn float_const(e: &IrExpr) -> Option<f64> {
    match e.kind {
        ExprKind::ConstFloat(v) => Some(v),
        _ => None,
    }
}

/// Truncates `v` to the width/signedness of `st` (as the VM would).
fn normalize_int(st: ScalarTy, v: i64) -> i64 {
    match st {
        ScalarTy::I8 => v as i8 as i64,
        ScalarTy::U8 => v as u8 as i64,
        ScalarTy::I16 => v as i16 as i64,
        ScalarTy::U16 => v as u16 as i64,
        ScalarTy::I32 => v as i32 as i64,
        ScalarTy::U32 => v as u32 as i64,
        _ => v,
    }
}

/// Test-only miscompile knob: when the `TERRA_TEST_MISCOMPILE` environment
/// variable is set, constant multiplication folds to the wrong product.
/// This exists solely so the flight recorder's bisection machinery has a
/// real miscompiling pass to pinpoint (the fold runs at -O1/-O2 but not
/// -O0, so the seeded bug shows up as an opt-level divergence). The result
/// is still a well-typed constant, so the IR verifier — which checks
/// consistency, not values — accepts it.
fn seeded_miscompile() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("TERRA_TEST_MISCOMPILE").is_some())
}

fn fold_int_binary(st: ScalarTy, op: BinKind, lhs: &IrExpr, rhs: &IrExpr) -> Option<ExprKind> {
    if let (Some(a), Some(b)) = (int_const(lhs), int_const(rhs)) {
        let v = match op {
            BinKind::Add => a.wrapping_add(b),
            BinKind::Sub => a.wrapping_sub(b),
            BinKind::Mul if seeded_miscompile() => a.wrapping_mul(b).wrapping_add(1),
            BinKind::Mul => a.wrapping_mul(b),
            BinKind::Div => {
                if b == 0 {
                    return None; // keep the runtime trap
                } else if st.is_signed() {
                    a.wrapping_div(b)
                } else {
                    ((a as u64) / (b as u64)) as i64
                }
            }
            BinKind::Rem => {
                if b == 0 {
                    return None;
                } else if st.is_signed() {
                    a.wrapping_rem(b)
                } else {
                    ((a as u64) % (b as u64)) as i64
                }
            }
            BinKind::Shl => a.wrapping_shl(b as u32 & 63),
            BinKind::Shr => {
                if st.is_signed() {
                    a.wrapping_shr(b as u32 & 63)
                } else {
                    ((a as u64).wrapping_shr(b as u32 & 63)) as i64
                }
            }
            BinKind::And => a & b,
            BinKind::Or => a | b,
            BinKind::Xor => a ^ b,
            BinKind::Min => a.min(b),
            BinKind::Max => a.max(b),
        };
        return Some(ExprKind::ConstInt(normalize_int(st, v)));
    }
    // Algebraic identities (exact on integers).
    match (op, int_const(lhs), int_const(rhs)) {
        (BinKind::Add, Some(0), _) | (BinKind::Mul, Some(1), _) => Some(rhs.kind.clone()),
        (BinKind::Add, _, Some(0))
        | (BinKind::Sub, _, Some(0))
        | (BinKind::Mul, _, Some(1))
        | (BinKind::Shl, _, Some(0))
        | (BinKind::Shr, _, Some(0)) => Some(lhs.kind.clone()),
        (BinKind::Mul, Some(0), _) | (BinKind::Mul, _, Some(0)) => Some(ExprKind::ConstInt(0)),
        _ => None,
    }
}

fn fold_float_binary(op: BinKind, lhs: &IrExpr, rhs: &IrExpr) -> Option<ExprKind> {
    if let (Some(a), Some(b)) = (float_const(lhs), float_const(rhs)) {
        let v = match op {
            BinKind::Add => a + b,
            BinKind::Sub => a - b,
            BinKind::Mul => a * b,
            BinKind::Div => a / b,
            BinKind::Rem => a % b,
            BinKind::Min => a.min(b),
            BinKind::Max => a.max(b),
            _ => return None,
        };
        return Some(ExprKind::ConstFloat(v));
    }
    // NaN-safe identities only.
    let (lc, rc) = (float_const(lhs), float_const(rhs));
    if op == BinKind::Mul && lc == Some(1.0) {
        Some(rhs.kind.clone())
    } else if matches!(op, BinKind::Mul | BinKind::Div) && rc == Some(1.0) {
        Some(lhs.kind.clone())
    } else {
        None
    }
}

fn fold_cmp(op: CmpKind, lhs: &IrExpr, rhs: &IrExpr) -> Option<ExprKind> {
    let signed = matches!(&lhs.ty, Ty::Scalar(s) if s.is_signed());
    if let (Some(a), Some(b)) = (int_const(lhs), int_const(rhs)) {
        let (a, b) = if signed {
            (a, b)
        } else {
            // Compare as unsigned by biasing.
            return Some(ExprKind::ConstBool(cmp_u64(op, a as u64, b as u64)));
        };
        return Some(ExprKind::ConstBool(match op {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        }));
    }
    if let (Some(a), Some(b)) = (float_const(lhs), float_const(rhs)) {
        return Some(ExprKind::ConstBool(match op {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        }));
    }
    None
}

fn cmp_u64(op: CmpKind, a: u64, b: u64) -> bool {
    match op {
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
        CmpKind::Lt => a < b,
        CmpKind::Le => a <= b,
        CmpKind::Gt => a > b,
        CmpKind::Ge => a >= b,
    }
}

fn fold_unary(st: ScalarTy, op: UnKind, expr: &IrExpr) -> Option<ExprKind> {
    match (op, &expr.kind) {
        (UnKind::Neg, ExprKind::ConstInt(v)) => {
            Some(ExprKind::ConstInt(normalize_int(st, v.wrapping_neg())))
        }
        (UnKind::Neg, ExprKind::ConstFloat(v)) => Some(ExprKind::ConstFloat(-v)),
        (UnKind::Not, ExprKind::ConstBool(b)) => Some(ExprKind::ConstBool(!b)),
        (UnKind::Not, ExprKind::ConstInt(v)) => Some(ExprKind::ConstInt(normalize_int(st, !v))),
        _ => None,
    }
}

fn fold_cast(to: ScalarTy, inner: &IrExpr) -> Option<ExprKind> {
    match (&inner.ty, &inner.kind) {
        (Ty::Scalar(from), ExprKind::ConstInt(v)) => {
            if to.is_float() {
                let f = if from.is_signed() {
                    *v as f64
                } else {
                    *v as u64 as f64
                };
                Some(ExprKind::ConstFloat(if to == ScalarTy::F32 {
                    f as f32 as f64
                } else {
                    f
                }))
            } else if to == ScalarTy::Bool {
                Some(ExprKind::ConstBool(*v != 0))
            } else {
                Some(ExprKind::ConstInt(normalize_int(to, *v)))
            }
        }
        (Ty::Scalar(_), ExprKind::ConstFloat(v)) => {
            if to.is_float() {
                Some(ExprKind::ConstFloat(if to == ScalarTy::F32 {
                    *v as f32 as f64
                } else {
                    *v
                }))
            } else if to == ScalarTy::Bool {
                Some(ExprKind::ConstBool(*v != 0.0))
            } else if to.is_signed() {
                Some(ExprKind::ConstInt(normalize_int(to, *v as i64)))
            } else {
                Some(ExprKind::ConstInt(normalize_int(to, *v as u64 as i64)))
            }
        }
        (Ty::Scalar(_), ExprKind::ConstBool(b)) => {
            if to.is_float() {
                Some(ExprKind::ConstFloat(if *b { 1.0 } else { 0.0 }))
            } else {
                Some(ExprKind::ConstInt(i64::from(*b)))
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::LocalId;

    fn fold(mut e: IrExpr) -> IrExpr {
        fold_expr(&mut e);
        e
    }

    #[test]
    fn folds_int_arithmetic() {
        let e = fold(IrExpr::binary(
            BinKind::Add,
            IrExpr::int32(2),
            IrExpr::binary(BinKind::Mul, IrExpr::int32(3), IrExpr::int32(4)),
        ));
        assert_eq!(e.kind, ExprKind::ConstInt(14));
    }

    #[test]
    fn folds_identities_with_variables() {
        let x = IrExpr::local(LocalId(0), Ty::INT);
        let e = fold(IrExpr::binary(BinKind::Mul, x.clone(), IrExpr::int32(0)));
        assert_eq!(e.kind, ExprKind::ConstInt(0));
        let e = fold(IrExpr::binary(BinKind::Add, x.clone(), IrExpr::int32(0)));
        assert_eq!(e.kind, ExprKind::Local(LocalId(0)));
        let e = fold(IrExpr::binary(BinKind::Mul, IrExpr::int32(1), x.clone()));
        assert_eq!(e.kind, ExprKind::Local(LocalId(0)));
    }

    #[test]
    fn no_unsafe_float_identities() {
        let x = IrExpr::local(LocalId(0), Ty::F64);
        // x * 0.0 must NOT fold (NaN/−0 semantics).
        let e = fold(IrExpr::binary(BinKind::Mul, x.clone(), IrExpr::f64(0.0)));
        assert!(matches!(e.kind, ExprKind::Binary { .. }));
        // x * 1.0 is exact.
        let e = fold(IrExpr::binary(BinKind::Mul, x, IrExpr::f64(1.0)));
        assert_eq!(e.kind, ExprKind::Local(LocalId(0)));
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let e = fold(IrExpr::binary(
            BinKind::Div,
            IrExpr::int32(1),
            IrExpr::int32(0),
        ));
        assert!(matches!(e.kind, ExprKind::Binary { .. }));
    }

    #[test]
    fn wrapping_respects_width() {
        let big = IrExpr {
            ty: Ty::INT,
            kind: ExprKind::ConstInt(i32::MAX as i64),
        };
        let e = fold(IrExpr::binary(BinKind::Add, big, IrExpr::int32(1)));
        assert_eq!(e.kind, ExprKind::ConstInt(i32::MIN as i64));
    }

    #[test]
    fn folds_comparisons_and_selects() {
        let c = fold(IrExpr::cmp(CmpKind::Lt, IrExpr::int32(1), IrExpr::int32(2)));
        assert_eq!(c.kind, ExprKind::ConstBool(true));
        let sel = fold(IrExpr {
            ty: Ty::INT,
            kind: ExprKind::Select {
                cond: Box::new(IrExpr::boolean(false)),
                then_value: Box::new(IrExpr::int32(1)),
                else_value: Box::new(IrExpr::int32(2)),
            },
        });
        assert_eq!(sel.kind, ExprKind::ConstInt(2));
    }

    #[test]
    fn folds_casts() {
        let e = fold(IrExpr {
            ty: Ty::F64,
            kind: ExprKind::Cast(Box::new(IrExpr::int32(7))),
        });
        assert_eq!(e.kind, ExprKind::ConstFloat(7.0));
        let e = fold(IrExpr {
            ty: Ty::U8,
            kind: ExprKind::Cast(Box::new(IrExpr::int32(300))),
        });
        assert_eq!(e.kind, ExprKind::ConstInt(44));
    }

    #[test]
    fn collapses_constant_ifs() {
        let mut f = IrFunction {
            name: "t".into(),
            ty: crate::types::FuncTy {
                params: vec![],
                ret: Ty::Unit,
            },
            locals: vec![],
            body: vec![IrStmt::new(StmtKind::If {
                cond: IrExpr::cmp(CmpKind::Gt, IrExpr::int32(3), IrExpr::int32(2)),
                then_body: vec![StmtKind::Return(None).into()],
                else_body: vec![StmtKind::Break.into()],
            })],
        };
        fold_function(&mut f);
        assert_eq!(f.body, vec![StmtKind::Return(None).into()]);
    }

    #[test]
    fn unsigned_comparison_semantics() {
        let a = IrExpr {
            ty: Ty::U64,
            kind: ExprKind::ConstInt(-1), // bit pattern of u64::MAX
        };
        let e = fold(IrExpr::cmp(CmpKind::Gt, a, {
            IrExpr {
                ty: Ty::U64,
                kind: ExprKind::ConstInt(1),
            }
        }));
        assert_eq!(e.kind, ExprKind::ConstBool(true));
    }
}
