//! Copy propagation: after `a = b`, uses of `a` read `b` directly until
//! either local is reassigned.
//!
//! The pass runs a forward walk over the structured statement tree carrying
//! a `copy-of` map. Copies are only tracked between register locals of
//! identical type — `in_memory` locals live in frame slots whose contents
//! can change through stores, so reads of them are never forwarded. Maps are
//! kept canonical (the source of a copy is itself resolved through the map
//! at insertion), branch arms propagate independently and merge by
//! intersection, and loop bodies start from a map purged of everything the
//! body reassigns, which makes the single forward walk sound in the presence
//! of back edges.
//!
//! Propagated-over copies whose destination is no longer read are removed
//! later by dead-code elimination, not here.

use super::util::{collect_assigned, LocalSet};
use super::Remark;
use crate::ir::{ExprKind, IrExpr, IrFunction, IrStmt, LocalId, LocalSlot, StmtKind};

type CopyMap = Vec<Option<LocalId>>;

/// Propagates register-to-register copies through the function body.
pub(crate) fn run(f: &mut IrFunction, remarks: &mut Vec<Remark>) {
    let IrFunction { locals, body, .. } = f;
    let mut map: CopyMap = vec![None; locals.len()];
    let mut forwarded = 0usize;
    block(locals, body, &mut map, &mut forwarded);
    if forwarded > 0 {
        remarks.push(Remark::applied(
            "copyprop",
            0,
            None,
            format!("forwarded {forwarded} copied value read(s)"),
        ));
    }
}

/// Forgets every fact involving `w`: its own mapping and any copy sourced
/// from it (whose cached value goes stale when `w` changes).
fn kill(map: &mut CopyMap, w: LocalId) {
    map[w.0 as usize] = None;
    for m in map.iter_mut() {
        if *m == Some(w) {
            *m = None;
        }
    }
}

fn kill_set(map: &mut CopyMap, writes: &LocalSet) {
    for (i, m) in map.iter_mut().enumerate() {
        let clobbered = writes.contains(LocalId(i as u32))
            || m.map(|src| writes.contains(src)).unwrap_or(false);
        if clobbered {
            *m = None;
        }
    }
}

/// Rewrites every `Local(l)` read in `e` through the map, counting rewrites.
fn replace_uses(e: &mut IrExpr, map: &CopyMap, forwarded: &mut usize) {
    if let ExprKind::Local(l) = e.kind {
        if let Some(src) = map[l.0 as usize] {
            e.kind = ExprKind::Local(src);
            *forwarded += 1;
        }
    }
    super::util::each_child_mut(e, &mut |c| replace_uses(c, map, forwarded));
}

fn intersect(a: CopyMap, b: &CopyMap) -> CopyMap {
    a.into_iter()
        .zip(b)
        .map(|(x, y)| if x == *y { x } else { None })
        .collect()
}

fn block(locals: &[LocalSlot], stmts: &mut [IrStmt], map: &mut CopyMap, forwarded: &mut usize) {
    for s in stmts {
        match &mut s.kind {
            StmtKind::Assign { dst, value } => {
                replace_uses(value, map, forwarded);
                let dst = *dst;
                kill(map, dst);
                if let ExprKind::Local(src) = value.kind {
                    let (d, s) = (&locals[dst.0 as usize], &locals[src.0 as usize]);
                    if src != dst && !d.in_memory && !s.in_memory && d.ty == s.ty {
                        map[dst.0 as usize] = Some(src);
                    }
                }
            }
            StmtKind::Store { addr, value } => {
                replace_uses(addr, map, forwarded);
                replace_uses(value, map, forwarded);
            }
            StmtKind::CopyMem { dst, src, .. } => {
                replace_uses(dst, map, forwarded);
                replace_uses(src, map, forwarded);
            }
            StmtKind::Expr(e) => replace_uses(e, map, forwarded),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                replace_uses(cond, map, forwarded);
                let mut tmap = map.clone();
                block(locals, then_body, &mut tmap, forwarded);
                block(locals, else_body, map, forwarded);
                *map = intersect(tmap, map);
            }
            StmtKind::While { cond, body } => {
                let mut writes = LocalSet::new(locals.len());
                collect_assigned(body, &mut writes);
                kill_set(map, &writes);
                // The condition re-evaluates each iteration, so only facts
                // the body preserves may flow into it.
                replace_uses(cond, map, forwarded);
                let mut bmap = map.clone();
                block(locals, body, &mut bmap, forwarded);
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                // Bounds evaluate once on entry, before the loop clobbers
                // anything.
                replace_uses(start, map, forwarded);
                replace_uses(stop, map, forwarded);
                replace_uses(step, map, forwarded);
                let mut writes = LocalSet::new(locals.len());
                collect_assigned(body, &mut writes);
                writes.insert(*var);
                kill_set(map, &writes);
                let mut bmap = map.clone();
                block(locals, body, &mut bmap, forwarded);
            }
            StmtKind::ParallelFor {
                start, stop, args, ..
            } => {
                replace_uses(start, map, forwarded);
                replace_uses(stop, map, forwarded);
                for a in args {
                    replace_uses(a, map, forwarded);
                }
            }
            StmtKind::Return(Some(e)) => replace_uses(e, map, forwarded),
            StmtKind::Return(None) | StmtKind::Break => {}
        }
    }
}
