//! Bounds-check elision: stamps accesses the abstract interpreter proves
//! in-bounds so the bytecode compiler emits them without runtime checks.
//!
//! Runs **last** in the `-O2` pipeline — the annotations are address
//! expressions matched structurally at bytecode compilation, so no later
//! pass may rewrite them. The pass never changes observable semantics (or
//! even the instruction stream — only a per-instruction flag), and the VM
//! ignores the flag entirely under `--sanitize`, so the safety oracle is
//! unaffected. See `analysis/absint.rs` for the proof obligations.

use super::{PassConfig, Remark};
use crate::analysis::absint;
use crate::ir::IrFunction;

pub(crate) fn run(f: &mut IrFunction, cfg: &PassConfig, remarks: &mut Vec<Remark>) {
    let mut body = std::mem::take(&mut f.body);
    absint::annotate(f, &mut body, cfg.types, cfg.env, cfg.summaries, remarks);
    f.body = body;
}
