//! The typed intermediate representation produced by the Terra typechecker.
//!
//! The IR is a tree of statements over explicit, numbered locals. Scalar and
//! pointer locals live in VM registers; aggregate locals (structs, arrays)
//! and address-taken scalars are marked `in_memory` and get frame slots in
//! the VM's linear memory. All l-value sugar (field access, indexing,
//! dereference) has been lowered to explicit address arithmetic + `Load` /
//! `Store` by the time IR exists.

use crate::types::{FuncTy, Ty};
use std::sync::Arc;
use terra_syntax::{Provenance, Span};

/// Handle to a Terra function in a program's function table. This is the
/// formal semantics' *function address* `l`: it is allocated at declaration
/// time and filled in by definition, enabling mutual recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Handle to a global variable cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// Index of a local slot within an [`IrFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u32);

/// Built-in functions provided by the VM runtime — the simulated libc and
/// math library that `terralib.includec` exposes, plus Terra intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `malloc(size) -> &opaque`
    Malloc,
    /// `free(ptr)`
    Free,
    /// `realloc(ptr, size) -> &opaque`
    Realloc,
    /// `memcpy(dst, src, n)`
    Memcpy,
    /// `memset(dst, byte, n)`
    Memset,
    /// `sqrt(double) -> double` (and `sqrtf`)
    Sqrt,
    /// `fabs`
    Fabs,
    /// `sin`
    Sin,
    /// `cos`
    Cos,
    /// `exp`
    Exp,
    /// `log`
    Log,
    /// `pow(double, double)`
    Pow,
    /// `floor`
    Floor,
    /// `ceil`
    Ceil,
    /// `fmod`
    Fmod,
    /// `clock() -> double` — seconds of CPU time, for in-language timing.
    Clock,
    /// `printf(fmt, …)` — a C-printf subset (`%d %f %g %s %u %lld %p %%`).
    Printf,
    /// `prefetch(addr, rw, locality, cachetype)` — issues a real prefetch
    /// hint for the addressed VM memory.
    Prefetch,
    /// `rand() -> int` — deterministic LCG, seeded by `srand`.
    Rand,
    /// `srand(seed)`
    Srand,
    /// `abort()` — traps.
    Abort,
}

impl Builtin {
    /// The builtin's C-level name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Malloc => "malloc",
            Builtin::Free => "free",
            Builtin::Realloc => "realloc",
            Builtin::Memcpy => "memcpy",
            Builtin::Memset => "memset",
            Builtin::Sqrt => "sqrt",
            Builtin::Fabs => "fabs",
            Builtin::Sin => "sin",
            Builtin::Cos => "cos",
            Builtin::Exp => "exp",
            Builtin::Log => "log",
            Builtin::Pow => "pow",
            Builtin::Floor => "floor",
            Builtin::Ceil => "ceil",
            Builtin::Fmod => "fmod",
            Builtin::Clock => "clock",
            Builtin::Printf => "printf",
            Builtin::Prefetch => "prefetch",
            Builtin::Rand => "rand",
            Builtin::Srand => "srand",
            Builtin::Abort => "abort",
        }
    }
}

/// Arithmetic/bitwise binary operators. The operand and result types are
/// carried by the surrounding [`IrExpr`]; an op is valid on matching scalar
/// or vector types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>` (arithmetic for signed, logical for unsigned)
    Shr,
    /// Bitwise/boolean and.
    And,
    /// Bitwise/boolean or.
    Or,
    /// Bitwise xor.
    Xor,
    /// IEEE min (used by vectorized stencils).
    Min,
    /// IEEE max.
    Max,
}

/// Comparison predicates; result type is `bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnKind {
    /// Arithmetic negation.
    Neg,
    /// Boolean/bitwise not.
    Not,
}

/// What a call targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// A Terra function by id (may still be undefined at IR-build time;
    /// linking resolves it lazily, per the paper).
    Direct(FuncId),
    /// A VM builtin.
    Builtin(Builtin),
    /// An indirect call through a function-pointer value (vtables).
    Indirect(Box<IrExpr>),
}

/// A typed IR expression.
#[derive(Debug, Clone, PartialEq)]
pub struct IrExpr {
    /// Result type.
    pub ty: Ty,
    /// Node kind.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer constant (bit pattern; `ty` gives signedness/width).
    ConstInt(i64),
    /// Floating constant.
    ConstFloat(f64),
    /// Boolean constant.
    ConstBool(bool),
    /// Null pointer.
    ConstNull,
    /// Function pointer constant.
    ConstFunc(FuncId),
    /// String constant (interned into VM memory; type `rawstring`).
    ConstStr(Arc<str>),
    /// Read a register local.
    Local(LocalId),
    /// Address of an in-memory local.
    LocalAddr(LocalId),
    /// Address of a global cell.
    GlobalAddr(GlobalId),
    /// Load `ty` from the address computed by the operand.
    Load(Box<IrExpr>),
    /// Binary arithmetic on matching scalar/vector operands.
    Binary {
        /// Operator.
        op: BinKind,
        /// Left operand.
        lhs: Box<IrExpr>,
        /// Right operand.
        rhs: Box<IrExpr>,
    },
    /// Comparison producing `bool`.
    Cmp {
        /// Predicate.
        op: CmpKind,
        /// Left operand.
        lhs: Box<IrExpr>,
        /// Right operand.
        rhs: Box<IrExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnKind,
        /// Operand.
        expr: Box<IrExpr>,
    },
    /// Conversion from `expr.ty` to `self.ty`: scalar↔scalar, ptr↔ptr,
    /// ptr↔integer, scalar→vector broadcast.
    Cast(Box<IrExpr>),
    /// Function call.
    Call {
        /// Target.
        callee: Callee,
        /// Arguments.
        args: Vec<IrExpr>,
    },
    /// `select(cond, a, b)` — branch-free conditional.
    Select {
        /// Condition (`bool`).
        cond: Box<IrExpr>,
        /// Value when true.
        then_value: Box<IrExpr>,
        /// Value when false.
        else_value: Box<IrExpr>,
    },
}

/// A typed IR statement: a [`StmtKind`] plus source metadata.
///
/// The span and `implicit` flag are diagnostic metadata: equality compares
/// only the `kind`, so structural tests are unaffected by where a statement
/// was lowered from.
#[derive(Debug, Clone)]
pub struct IrStmt {
    /// Source location this statement was lowered from; synthetic when the
    /// statement has no direct source counterpart.
    pub span: Span,
    /// `true` for compiler-synthesized statements (implicit
    /// zero-initialization, defer expansion). Dataflow lints don't treat
    /// these as deliberate user writes.
    pub implicit: bool,
    /// Staging history, when this statement was produced by a `quote`
    /// splice, a macro, or the inliner (`None` for code written inline in
    /// its function). Metadata like `span`: equality ignores it.
    pub prov: Option<Provenance>,
    /// Address expressions within this statement whose memory accesses the
    /// `checkelim` pass proved in-bounds (matched structurally at bytecode
    /// compilation; instructions for these addresses skip the runtime
    /// bounds check). Metadata like `span`: equality ignores it, and it is
    /// only ever populated by the last pass in the `-O2` pipeline.
    pub nochk: Vec<IrExpr>,
    /// The operation itself.
    pub kind: StmtKind,
}

impl IrStmt {
    /// Statement with a synthetic span.
    pub fn new(kind: StmtKind) -> Self {
        IrStmt {
            span: Span::synthetic(),
            implicit: false,
            prov: None,
            nochk: Vec::new(),
            kind,
        }
    }

    /// Statement lowered from source at `span`.
    pub fn at(span: Span, kind: StmtKind) -> Self {
        IrStmt {
            span,
            implicit: false,
            prov: None,
            nochk: Vec::new(),
            kind,
        }
    }

    /// Compiler-synthesized statement attributed to `span`.
    pub fn synthesized(span: Span, kind: StmtKind) -> Self {
        IrStmt {
            span,
            implicit: true,
            prov: None,
            nochk: Vec::new(),
            kind,
        }
    }
}

impl From<StmtKind> for IrStmt {
    fn from(kind: StmtKind) -> Self {
        IrStmt::new(kind)
    }
}

impl PartialEq for IrStmt {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

/// A typed IR statement operation.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `local := value` (register locals only).
    Assign {
        /// Destination register local.
        dst: LocalId,
        /// Value.
        value: IrExpr,
    },
    /// Store `value` (register-sized) to `addr`.
    Store {
        /// Destination address.
        addr: IrExpr,
        /// Stored value.
        value: IrExpr,
    },
    /// `memcpy`-style aggregate copy of `size` bytes.
    CopyMem {
        /// Destination address.
        dst: IrExpr,
        /// Source address.
        src: IrExpr,
        /// Bytes to copy.
        size: u64,
    },
    /// Evaluate for side effects (calls).
    Expr(IrExpr),
    /// Two-armed conditional.
    If {
        /// Condition.
        cond: IrExpr,
        /// Then branch.
        then_body: Vec<IrStmt>,
        /// Else branch.
        else_body: Vec<IrStmt>,
    },
    /// `while cond do body end`
    While {
        /// Condition.
        cond: IrExpr,
        /// Body.
        body: Vec<IrStmt>,
    },
    /// Terra's half-open numeric loop `for v = start, stop, step`.
    For {
        /// Loop variable (register local, integer type).
        var: LocalId,
        /// Initial value.
        start: IrExpr,
        /// Exclusive bound.
        stop: IrExpr,
        /// Step (positive).
        step: IrExpr,
        /// Body.
        body: Vec<IrStmt>,
    },
    /// Data-parallel loop `parallelfor i = start, stop`: invokes `kernel(i,
    /// args...)` for every `i` in the half-open range, potentially across
    /// worker threads. The body lives in the (separately compiled) kernel
    /// function; `args` are the captured values from the enclosing frame.
    /// Optimization passes treat this as an opaque call — the kernel is
    /// optimized on its own when it is compiled.
    ParallelFor {
        /// The kernel function (first parameter is the loop index).
        kernel: FuncId,
        /// Initial index.
        start: IrExpr,
        /// Exclusive bound.
        stop: IrExpr,
        /// Captured arguments (kernel parameters after the index).
        args: Vec<IrExpr>,
    },
    /// Return, with an optional value.
    Return(Option<IrExpr>),
    /// Break out of the innermost loop.
    Break,
}

/// A local slot.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSlot {
    /// Slot type.
    pub ty: Ty,
    /// `true` if the local needs memory (aggregate or address-taken).
    pub in_memory: bool,
    /// Debug name.
    pub name: Arc<str>,
}

/// A function in typed IR form, ready for bytecode compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    /// Name for diagnostics and disassembly.
    pub name: Arc<str>,
    /// Signature.
    pub ty: FuncTy,
    /// All locals; the first `ty.params.len()` slots are the parameters.
    pub locals: Vec<LocalSlot>,
    /// Function body.
    pub body: Vec<IrStmt>,
}

impl IrFunction {
    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.ty.params.len()
    }

    /// Adds a local slot, returning its id.
    pub fn add_local(&mut self, name: impl Into<Arc<str>>, ty: Ty, in_memory: bool) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(LocalSlot {
            ty,
            in_memory,
            name: name.into(),
        });
        id
    }
}

/// A global variable cell: a typed chunk of VM memory with optional constant
/// initialization (created by the language-level `global(...)`).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalCell {
    /// Value type.
    pub ty: Ty,
    /// Initial bytes (zero-filled when `None`).
    pub init: Option<Vec<u8>>,
    /// Debug name.
    pub name: Arc<str>,
}

// Convenience constructors used by the lowering code and tests.
impl IrExpr {
    /// An `int` constant.
    pub fn int32(v: i32) -> IrExpr {
        IrExpr {
            ty: Ty::INT,
            kind: ExprKind::ConstInt(v as i64),
        }
    }

    /// An `int64` constant.
    pub fn int64(v: i64) -> IrExpr {
        IrExpr {
            ty: Ty::I64,
            kind: ExprKind::ConstInt(v),
        }
    }

    /// A `double` constant.
    pub fn f64(v: f64) -> IrExpr {
        IrExpr {
            ty: Ty::F64,
            kind: ExprKind::ConstFloat(v),
        }
    }

    /// A `bool` constant.
    pub fn boolean(v: bool) -> IrExpr {
        IrExpr {
            ty: Ty::BOOL,
            kind: ExprKind::ConstBool(v),
        }
    }

    /// Reads local `id` of type `ty`.
    pub fn local(id: LocalId, ty: Ty) -> IrExpr {
        IrExpr {
            ty,
            kind: ExprKind::Local(id),
        }
    }

    /// Builds `lhs op rhs` with the result typed like `lhs`.
    pub fn binary(op: BinKind, lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr {
            ty: lhs.ty.clone(),
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        }
    }

    /// Builds a comparison producing `bool`.
    pub fn cmp(op: CmpKind, lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr {
            ty: Ty::BOOL,
            kind: ExprKind::Cmp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        }
    }

    /// Whether the expression is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::ConstInt(_)
                | ExprKind::ConstFloat(_)
                | ExprKind::ConstBool(_)
                | ExprKind::ConstNull
                | ExprKind::ConstFunc(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_local_assigns_sequential_ids() {
        let mut f = IrFunction {
            name: "t".into(),
            ty: FuncTy {
                params: vec![],
                ret: Ty::Unit,
            },
            locals: vec![],
            body: vec![],
        };
        let a = f.add_local("a", Ty::INT, false);
        let b = f.add_local("b", Ty::F64, true);
        assert_eq!(a, LocalId(0));
        assert_eq!(b, LocalId(1));
        assert!(f.locals[1].in_memory);
    }

    #[test]
    fn const_detection() {
        assert!(IrExpr::int32(3).is_const());
        assert!(!IrExpr::local(LocalId(0), Ty::INT).is_const());
    }

    #[test]
    fn builtin_names() {
        assert_eq!(Builtin::Malloc.name(), "malloc");
        assert_eq!(Builtin::Prefetch.name(), "prefetch");
    }
}
