//! # terra-ir
//!
//! The Terra type system and typed intermediate representation.
//!
//! Terra (DeVito et al., PLDI 2013) is a statically-typed, C-like language
//! staged from Lua. This crate holds the pieces of it that are independent of
//! staging: machine types with C layout rules ([`Ty`], [`TypeRegistry`]), the
//! typed IR that the typechecker lowers specialized Terra functions into
//! ([`IrFunction`]), and the mid-end optimization pipeline ([`passes`]) —
//! constant folding, algebraic simplification, CSE, copy propagation, LICM,
//! inlining, and dead-code elimination, orchestrated by a pass manager
//! ([`optimize`]) selected by [`OptLevel`].
//!
//! The `terra-vm` crate compiles [`IrFunction`]s to bytecode; the
//! `terra-eval` crate produces them from source. The [`analysis`] module
//! verifies and lints IR between those stages.

#![warn(missing_docs)]

pub mod analysis;
mod display;
mod ir;
pub mod passes;
mod types;

pub use analysis::{
    analyze_function, analyze_function_with, summarize, verify_function, Diagnostic, EnvEntry,
    ModuleEnv, NoEnv, Severity, Summaries,
};
pub use display::dump_function;
pub use ir::{
    BinKind, Builtin, Callee, CmpKind, ExprKind, FuncId, GlobalCell, GlobalId, IrExpr, IrFunction,
    IrStmt, LocalId, LocalSlot, StmtKind, UnKind,
};
pub use passes::fold::{fold_expr, fold_function};
pub use passes::{
    optimize, InlineEnv, NoInline, OptLevel, PassConfig, PassRun, PassStats, Remark, RemarkKind,
    MAX_CALLEE_NODES,
};
pub use types::{Field, FuncTy, ScalarTy, StructId, StructLayout, Ty, TyDisplay, TypeRegistry};
