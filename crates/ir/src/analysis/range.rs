//! The value lattices behind the abstract interpreter: integer intervals
//! with machine-arithmetic wrapping, and a three-point nullness domain.
//!
//! Intervals are inclusive `[lo, hi]` pairs carried in `i128` so that every
//! 64-bit machine value — signed or unsigned — is representable exactly and
//! ordinary arithmetic on bounds cannot overflow for single operations
//! (products of 64-bit values are clamped with saturating math, which only
//! ever *widens* an interval and is therefore sound). There is no explicit
//! bottom element: unreachable state is handled structurally by the
//! interpreter (it stops walking dead branches), so every `Interval` is
//! non-empty (`lo <= hi`).

use crate::types::ScalarTy;

/// An inclusive integer interval `[lo, hi]` with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: i128,
    /// Largest possible value.
    pub hi: i128,
}

impl Interval {
    /// `[lo, hi]`; swaps the endpoints if given in the wrong order.
    pub fn new(lo: i128, hi: i128) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The single value `v`.
    pub fn singleton(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The exact representable range of integer type `ty`.
    pub fn full_for(ty: ScalarTy) -> Interval {
        let bits = (ty.size() * 8) as u32;
        if ty.is_signed() {
            Interval {
                lo: -(1i128 << (bits - 1)),
                hi: (1i128 << (bits - 1)) - 1,
            }
        } else {
            Interval {
                lo: 0,
                hi: (1i128 << bits) - 1,
            }
        }
    }

    /// A range wide enough for any machine integer of any width: the
    /// interpreter's "integer, value unknown" element.
    pub fn top() -> Interval {
        Interval {
            lo: i64::MIN as i128,
            hi: u64::MAX as i128,
        }
    }

    /// Whether the interval is a single value; returns it.
    pub fn as_singleton(self) -> Option<i128> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound: the hull of both intervals.
    pub fn join(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Greatest lower bound, or `None` when the intervals are disjoint.
    pub fn meet(self, o: Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Interval quotient. A divisor of zero traps at runtime, so only the
    /// nonzero divisors contribute; the extrema of truncating division occur
    /// at the divisor endpoints or at ±1 (smallest magnitude).
    fn quotient(self, o: Interval) -> Interval {
        let divisors: Vec<i128> = [o.lo, o.hi, -1, 1]
            .into_iter()
            .filter(|&b| b != 0 && o.contains(b))
            .collect();
        if divisors.is_empty() {
            // Every execution traps; the result value is never observed.
            return Interval::singleton(0);
        }
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for b in divisors {
            for a in [self.lo, self.hi] {
                let q = a.wrapping_div(b);
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval { lo, hi }
    }

    /// Whether every value fits the representable range of `ty`.
    pub fn fits(self, ty: ScalarTy) -> bool {
        let r = Interval::full_for(ty);
        self.lo >= r.lo && self.hi <= r.hi
    }

    /// Whether **no** value fits the representable range of `ty` — i.e. the
    /// operation that produced this interval overflows on every execution.
    pub fn always_overflows(self, ty: ScalarTy) -> bool {
        Interval::full_for(ty).meet(self).is_none()
    }

    /// Reduces an unbounded arithmetic result to the values representable in
    /// `ty` under two's-complement wrapping. A result already in range is
    /// kept exact; a result whose width exceeds the type's span (or whose
    /// wrapped endpoints cross the representable boundary) collapses to the
    /// full type range.
    pub fn wrap_to(self, ty: ScalarTy) -> Interval {
        let full = Interval::full_for(ty);
        if self.lo >= full.lo && self.hi <= full.hi {
            return self;
        }
        let span = full.hi - full.lo + 1;
        if self.hi.saturating_sub(self.lo) >= span {
            return full;
        }
        let wrap = |v: i128| (v - full.lo).rem_euclid(span) + full.lo;
        let (lo, hi) = (wrap(self.lo), wrap(self.hi));
        if lo <= hi {
            Interval { lo, hi }
        } else {
            full
        }
    }

    /// Refines `self` assuming `self OP k` holds, where OP is given by
    /// `(strict, less)`: `<`/`<=` when `less`, `>`/`>=` otherwise. Returns
    /// `None` when the assumption is unsatisfiable.
    pub fn assume_cmp(self, less: bool, strict: bool, k: Interval) -> Option<Interval> {
        if less {
            let bound = if strict { k.hi.saturating_sub(1) } else { k.hi };
            self.meet(Interval::new(i128::MIN, bound))
        } else {
            let bound = if strict { k.lo.saturating_add(1) } else { k.lo };
            self.meet(Interval::new(bound, i128::MAX))
        }
    }
}

/// Interval sum.
impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }
}

/// Interval difference.
impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(o.hi),
            hi: self.hi.saturating_sub(o.lo),
        }
    }
}

/// Interval product (hull of the four corner products).
impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval {
            lo: *c.iter().min().unwrap(),
            hi: *c.iter().max().unwrap(),
        }
    }
}

/// Interval quotient — see [`Interval::quotient`] for the trap semantics.
impl std::ops::Div for Interval {
    type Output = Interval;
    fn div(self, o: Interval) -> Interval {
        self.quotient(o)
    }
}

/// Interval remainder: bounded by the divisor's magnitude and the
/// dividend's own range (truncating `%` never exceeds either).
impl std::ops::Rem for Interval {
    type Output = Interval;
    fn rem(self, o: Interval) -> Interval {
        let mag = o.lo.abs().max(o.hi.abs());
        if mag == 0 {
            return Interval::singleton(0);
        }
        let bound = mag - 1;
        // Truncating `%` keeps the dividend's sign and never exceeds either
        // operand's magnitude.
        let lo = if self.lo < 0 {
            (-bound).max(self.lo)
        } else {
            0
        };
        let hi = if self.hi > 0 { bound.min(self.hi) } else { 0 };
        Interval { lo, hi }
    }
}

/// Arithmetic negation.
impl std::ops::Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval {
            lo: self.hi.saturating_neg(),
            hi: self.lo.saturating_neg(),
        }
    }
}

/// Three-point nullness lattice for pointer values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullness {
    /// Definitely the null pointer.
    Null,
    /// Definitely not null.
    NonNull,
    /// Unknown.
    Maybe,
}

impl Nullness {
    /// Least upper bound.
    pub fn join(self, o: Nullness) -> Nullness {
        if self == o {
            self
        } else {
            Nullness::Maybe
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_meet_basics() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.join(b), Interval::new(0, 20));
        assert_eq!(a.meet(b), Some(Interval::new(5, 10)));
        assert_eq!(a.meet(Interval::new(11, 12)), None);
    }

    #[test]
    fn arithmetic_hulls() {
        let a = Interval::new(-2, 3);
        let b = Interval::new(4, 5);
        assert_eq!(a + b, Interval::new(2, 8));
        assert_eq!(a - b, Interval::new(-7, -1));
        assert_eq!(a * b, Interval::new(-10, 15));
        assert_eq!(-a, Interval::new(-3, 2));
    }

    #[test]
    fn division_is_conservative() {
        let a = Interval::new(10, 20);
        let q = a / Interval::new(2, 5);
        assert!(q.contains(2) && q.contains(10), "{q:?}");
        // Remainder bounded by divisor magnitude.
        let r = Interval::new(0, 100) % Interval::new(1, 7);
        assert!(r.lo >= 0 && r.hi <= 6, "{r:?}");
    }

    #[test]
    fn wrapping_keeps_in_range_values_exact() {
        let v = Interval::new(0, 100);
        assert_eq!(v.wrap_to(ScalarTy::I32), v);
        // INT_MAX + 1 wraps to INT_MIN exactly.
        let over = Interval::singleton(i32::MAX as i128 + 1);
        assert_eq!(
            over.wrap_to(ScalarTy::I32),
            Interval::singleton(i32::MIN as i128)
        );
        assert!(over.always_overflows(ScalarTy::I32));
        // A straddling interval collapses to the full range.
        let wide = Interval::new(i32::MAX as i128 - 1, i32::MAX as i128 + 1);
        assert_eq!(
            wide.wrap_to(ScalarTy::I32),
            Interval::full_for(ScalarTy::I32)
        );
        assert!(!wide.always_overflows(ScalarTy::I32));
    }

    #[test]
    fn unsigned_ranges() {
        let full = Interval::full_for(ScalarTy::U8);
        assert_eq!((full.lo, full.hi), (0, 255));
        assert_eq!(
            Interval::singleton(-1).wrap_to(ScalarTy::U8),
            Interval::singleton(255)
        );
    }

    #[test]
    fn comparison_refinement() {
        let x = Interval::new(0, 100);
        let n = Interval::singleton(10);
        assert_eq!(x.assume_cmp(true, true, n), Some(Interval::new(0, 9)));
        assert_eq!(x.assume_cmp(false, false, n), Some(Interval::new(10, 100)));
        assert_eq!(Interval::new(50, 60).assume_cmp(true, true, n), None);
    }

    #[test]
    fn nullness_join() {
        assert_eq!(Nullness::Null.join(Nullness::Null), Nullness::Null);
        assert_eq!(Nullness::Null.join(Nullness::NonNull), Nullness::Maybe);
        assert_eq!(Nullness::NonNull.join(Nullness::NonNull), Nullness::NonNull);
    }
}
