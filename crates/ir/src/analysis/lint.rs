//! Pointer/bounds lints.
//!
//! After constant folding, an indexing expression whose index was a constant
//! is a pointer `Add` with a constant byte offset hanging off a `LocalAddr`
//! or `GlobalAddr` base. When the base's declared type is known, the whole
//! access range is statically decidable: flag accesses that fall outside the
//! object, and vector loads/stores whose constant offset breaks element
//! alignment.

use super::{diag, Diagnostic, EnvEntry, ModuleEnv, Severity};
use crate::ir::{BinKind, ExprKind, GlobalId, IrExpr, IrFunction, IrStmt, LocalId, StmtKind};
use crate::types::{Ty, TypeRegistry};
use terra_syntax::Span;

pub(super) fn run(
    f: &IrFunction,
    types: &TypeRegistry,
    env: &dyn ModuleEnv,
    diags: &mut Vec<Diagnostic>,
) {
    let mut l = Linter {
        f,
        types,
        env,
        diags,
        span: Span::synthetic(),
    };
    l.stmts(&f.body);
}

struct Linter<'a> {
    f: &'a IrFunction,
    types: &'a TypeRegistry,
    env: &'a dyn ModuleEnv,
    diags: &'a mut Vec<Diagnostic>,
    span: Span,
}

/// Base object of a constant-offset address chain.
enum Base {
    Local(LocalId),
    Global(GlobalId),
}

/// Peels `base + c1 + c2 + …` (and pointer casts) down to an address base,
/// accumulating the constant byte offset. Returns `None` when any offset is
/// dynamic or the base isn't a direct object address.
fn peel(e: &IrExpr) -> Option<(Base, i64)> {
    match &e.kind {
        ExprKind::LocalAddr(l) => Some((Base::Local(*l), 0)),
        ExprKind::GlobalAddr(g) => Some((Base::Global(*g), 0)),
        ExprKind::Binary {
            op: BinKind::Add,
            lhs,
            rhs,
        } if e.ty.is_pointer() => {
            let (base, off) = peel(lhs)?;
            match rhs.kind {
                ExprKind::ConstInt(k) => Some((base, off.wrapping_add(k))),
                _ => None,
            }
        }
        ExprKind::Cast(inner) if e.ty.is_pointer() => peel(inner),
        _ => None,
    }
}

impl Linter<'_> {
    fn warn(&mut self, code: &'static str, message: String) {
        self.diags
            .push(diag(self.f, Severity::Warning, code, self.span, message));
    }

    /// Size of `t` if every struct it references is finalized.
    fn size_of(&self, t: &Ty) -> Option<u64> {
        match t {
            Ty::Struct(id) => {
                if (id.0 as usize) < self.types.len() && self.types.is_finalized(*id) {
                    Some(self.types.layout(*id).size)
                } else {
                    None
                }
            }
            Ty::Array(inner, n) => self.size_of(inner).map(|s| s * n),
            other => Some(other.size(self.types)),
        }
    }

    fn stmts(&mut self, body: &[IrStmt]) {
        for s in body {
            self.span = s.span;
            match &s.kind {
                StmtKind::Assign { value, .. } => self.expr(value),
                StmtKind::Store { addr, value } => {
                    self.expr(addr);
                    self.expr(value);
                    self.access(addr, &value.ty, "store");
                }
                StmtKind::CopyMem { dst, src, size } => {
                    self.expr(dst);
                    self.expr(src);
                    self.range(dst, *size, "copy destination");
                    self.range(src, *size, "copy source");
                }
                StmtKind::Expr(e) => self.expr(e),
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.expr(cond);
                    self.stmts(then_body);
                    self.stmts(else_body);
                }
                StmtKind::While { cond, body } => {
                    self.expr(cond);
                    self.stmts(body);
                }
                StmtKind::For {
                    start,
                    stop,
                    step,
                    body,
                    ..
                } => {
                    self.expr(start);
                    self.expr(stop);
                    self.expr(step);
                    self.stmts(body);
                }
                StmtKind::ParallelFor {
                    start, stop, args, ..
                } => {
                    self.expr(start);
                    self.expr(stop);
                    for a in args {
                        self.expr(a);
                    }
                }
                StmtKind::Return(Some(e)) => self.expr(e),
                StmtKind::Return(None) | StmtKind::Break => {}
            }
        }
    }

    fn expr(&mut self, e: &IrExpr) {
        if let ExprKind::Load(a) = &e.kind {
            self.access(a, &e.ty, "load");
        }
        match &e.kind {
            ExprKind::Load(a) => self.expr(a),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Cmp { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Unary { expr, .. } | ExprKind::Cast(expr) => self.expr(expr),
            ExprKind::Call { callee, args } => {
                if let crate::ir::Callee::Indirect(p) = callee {
                    self.expr(p);
                }
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Select {
                cond,
                then_value,
                else_value,
            } => {
                self.expr(cond);
                self.expr(then_value);
                self.expr(else_value);
            }
            _ => {}
        }
    }

    /// Checks a load/store of `value_ty` through address `addr`.
    fn access(&mut self, addr: &IrExpr, value_ty: &Ty, what: &str) {
        let Some(access_size) = self.size_of(value_ty) else {
            return;
        };
        self.range(addr, access_size, what);
        if let Ty::Vector(s, _) = value_ty {
            if let Some((_, off)) = peel(addr) {
                let elem = s.size() as i64;
                if off % elem != 0 {
                    self.warn(
                        "misaligned-vector",
                        format!(
                            "{what} of {value_ty} at byte offset {off}, which is not a multiple \
                             of the {elem}-byte element size"
                        ),
                    );
                }
            }
        }
    }

    /// Checks that `[offset, offset + size)` fits inside the object `addr`
    /// points into, when both are statically known.
    fn range(&mut self, addr: &IrExpr, size: u64, what: &str) {
        let Some((base, off)) = peel(addr) else {
            return;
        };
        let (obj_ty, name) = match base {
            Base::Local(l) => {
                let Some(slot) = self.f.locals.get(l.0 as usize) else {
                    return;
                };
                (slot.ty.clone(), slot.name.clone())
            }
            Base::Global(g) => match self.env.global_ty(g) {
                EnvEntry::Known(ty) => (ty, format!("global#{}", g.0).into()),
                // Unknown global types fall back to the sanitizer's
                // dynamic checks.
                EnvEntry::Opaque | EnvEntry::Invalid => return,
            },
        };
        let Some(obj_size) = self.size_of(&obj_ty) else {
            return;
        };
        if off < 0 || (off as u64).saturating_add(size) > obj_size {
            self.warn(
                "out-of-bounds",
                format!(
                    "{what} of {size} byte(s) at offset {off} of '{name}', \
                     which is {obj_size} byte(s) ({obj_ty})"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{analyze_function, EnvEntry, ModuleEnv, NoEnv};
    use crate::ir::{BinKind, ExprKind, GlobalId, IrExpr, IrFunction, StmtKind};
    use crate::types::{FuncTy, ScalarTy, Ty, TypeRegistry};
    use std::sync::Arc;

    fn array_fn(elem: Ty, n: u64) -> (IrFunction, crate::ir::LocalId) {
        let mut f = IrFunction {
            name: "t".into(),
            ty: FuncTy {
                params: vec![],
                ret: Ty::Unit,
            },
            locals: vec![],
            body: vec![],
        };
        let a = f.add_local("a", Ty::Array(Arc::new(elem), n), true);
        (f, a)
    }

    fn load_at(base: crate::ir::LocalId, elem: Ty, byte_off: i64) -> IrExpr {
        let addr = IrExpr {
            ty: elem.clone().ptr_to(),
            kind: ExprKind::Binary {
                op: BinKind::Add,
                lhs: Box::new(IrExpr {
                    ty: elem.clone().ptr_to(),
                    kind: ExprKind::LocalAddr(base),
                }),
                rhs: Box::new(IrExpr::int64(byte_off)),
            },
        };
        IrExpr {
            ty: elem,
            kind: ExprKind::Load(Box::new(addr)),
        }
    }

    fn codes(f: &IrFunction, reg: &TypeRegistry) -> Vec<&'static str> {
        analyze_function(f, Some(reg), &NoEnv)
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn flags_constant_oob_index() {
        let reg = TypeRegistry::new();
        let (mut f, a) = array_fn(Ty::INT, 4);
        // a[5] → byte offset 20 of a 16-byte array.
        f.body = vec![
            StmtKind::Store {
                addr: IrExpr {
                    ty: Ty::INT.ptr_to(),
                    kind: ExprKind::LocalAddr(a),
                },
                value: IrExpr::int32(1),
            }
            .into(),
            StmtKind::Expr(load_at(a, Ty::INT, 20)).into(),
            StmtKind::Return(None).into(),
        ];
        assert!(
            codes(&f, &reg).contains(&"out-of-bounds"),
            "{:?}",
            codes(&f, &reg)
        );
    }

    #[test]
    fn in_bounds_access_is_clean() {
        let reg = TypeRegistry::new();
        let (mut f, a) = array_fn(Ty::INT, 4);
        f.body = vec![
            StmtKind::Store {
                addr: IrExpr {
                    ty: Ty::INT.ptr_to(),
                    kind: ExprKind::LocalAddr(a),
                },
                value: IrExpr::int32(1),
            }
            .into(),
            StmtKind::Expr(load_at(a, Ty::INT, 12)).into(),
            StmtKind::Return(None).into(),
        ];
        assert!(codes(&f, &reg).is_empty(), "{:?}", codes(&f, &reg));
    }

    /// Env that knows one global: id 0 is an `int[4]`.
    struct OneGlobal;

    impl ModuleEnv for OneGlobal {
        fn global_ty(&self, id: GlobalId) -> EnvEntry<Ty> {
            if id.0 == 0 {
                EnvEntry::Known(Ty::Array(Arc::new(Ty::INT), 4))
            } else {
                EnvEntry::Invalid
            }
        }
    }

    fn global_load_at(elem: Ty, byte_off: i64) -> IrExpr {
        let addr = IrExpr {
            ty: elem.clone().ptr_to(),
            kind: ExprKind::Binary {
                op: BinKind::Add,
                lhs: Box::new(IrExpr {
                    ty: elem.clone().ptr_to(),
                    kind: ExprKind::GlobalAddr(GlobalId(0)),
                }),
                rhs: Box::new(IrExpr::int64(byte_off)),
            },
        };
        IrExpr {
            ty: elem,
            kind: ExprKind::Load(Box::new(addr)),
        }
    }

    #[test]
    fn flags_constant_oob_global_access() {
        let reg = TypeRegistry::new();
        let (mut f, _) = array_fn(Ty::INT, 4);
        // global[5] → byte offset 20 of a 16-byte global array.
        f.body = vec![
            StmtKind::Expr(global_load_at(Ty::INT, 20)).into(),
            StmtKind::Return(None).into(),
        ];
        let codes: Vec<_> = analyze_function(&f, Some(&reg), &OneGlobal)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert!(codes.contains(&"out-of-bounds"), "{codes:?}");
    }

    #[test]
    fn in_bounds_global_access_is_clean() {
        let reg = TypeRegistry::new();
        let (mut f, _) = array_fn(Ty::INT, 4);
        f.body = vec![
            StmtKind::Expr(global_load_at(Ty::INT, 12)).into(),
            StmtKind::Return(None).into(),
        ];
        let diags = analyze_function(&f, Some(&reg), &OneGlobal);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_global_type_stays_silent() {
        // With NoEnv the same OOB access cannot be checked statically.
        let reg = TypeRegistry::new();
        let (mut f, _) = array_fn(Ty::INT, 4);
        f.body = vec![
            StmtKind::Expr(global_load_at(Ty::INT, 20)).into(),
            StmtKind::Return(None).into(),
        ];
        let diags = analyze_function(&f, Some(&reg), &NoEnv);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn flags_misaligned_vector_load() {
        let reg = TypeRegistry::new();
        let vec4 = Ty::Vector(ScalarTy::F32, 4);
        let (mut f, a) = array_fn(Ty::F32, 16);
        f.body = vec![
            StmtKind::Store {
                addr: IrExpr {
                    ty: Ty::F32.ptr_to(),
                    kind: ExprKind::LocalAddr(a),
                },
                value: IrExpr {
                    ty: Ty::F32,
                    kind: ExprKind::ConstFloat(0.0),
                },
            }
            .into(),
            // 6 is not a multiple of the 4-byte element size.
            StmtKind::Expr(load_at(a, vec4, 6)).into(),
            StmtKind::Return(None).into(),
        ];
        assert!(
            codes(&f, &reg).contains(&"misaligned-vector"),
            "{:?}",
            codes(&f, &reg)
        );
    }
}
