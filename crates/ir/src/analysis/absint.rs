//! Forward abstract interpretation over the typed IR: per-local integer
//! intervals (wrapping-aware), pointer nullness, and allocation-size facts.
//!
//! One walker serves three consumers:
//!
//! * **Lints** (`--lint`): definite out-of-bounds, definite null dereference,
//!   definite division by zero, and guaranteed integer overflow — all
//!   *definite-only*: a finding means the bad operation executes on every
//!   path that reaches it, so clean programs stay clean. Findings carry the
//!   staging provenance of the offending statement.
//! * **Check elision** (`checkelim` pass at `-O2`): accesses whose address
//!   is proven inside its allocation are stamped into [`IrStmt::nochk`];
//!   the VM compiles those without runtime bounds checks.
//! * **Summaries**: a bounded interprocedural fixpoint computes, per
//!   function, the return-value fact and a per-pointer-parameter *demand*
//!   (bytes the callee unconditionally accesses), consumed at call sites
//!   for extra precision and caller-side lints.
//!
//! ## Soundness of elision
//!
//! The VM's runtime check (`memory.rs::check`) rejects accesses below the
//! null guard or past the end of linear memory, plus — only under
//! `--sanitize` — accesses overlapping freed blocks. Frame objects, globals,
//! and malloc'd blocks all live inside linear memory, and linear memory
//! never shrinks, so an access proven within `[0, size)` of such an object
//! can never fail the non-sanitize check — even after `free`. Elision is
//! therefore invisible without the sanitizer; *with* the sanitizer the VM
//! ignores the elision flag entirely (the fast-path accessors fall back to
//! the checked path), so the use-after-free oracle is untouched.
//!
//! Pointer parameters are never assumed valid (functions are callable from
//! the host with arbitrary pointers), so intraprocedural proofs only ever
//! rest on objects the function itself can see: its frame, globals, string
//! constants, and `malloc` calls with stage-time-constant sizes.

use super::{diag, Diagnostic, EnvEntry, ModuleEnv, Severity};
use crate::analysis::range::{Interval, Nullness};
use crate::ir::{
    BinKind, Builtin, Callee, CmpKind, ExprKind, FuncId, GlobalId, IrExpr, IrFunction, IrStmt,
    LocalId, LocalSlot, StmtKind, UnKind,
};
use crate::passes::util::{collect_assigned, LocalSet};
use crate::passes::Remark;
use crate::types::{ScalarTy, Ty, TypeRegistry};
use std::collections::HashMap;
use terra_syntax::{Provenance, Span};

/// Abstract value of one register local.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AbsVal {
    /// Integer (or boolean, as `[0,1]`) in the given interval.
    Int(Interval),
    /// Pointer with base object, byte-offset interval, and nullness.
    Ptr(PtrVal),
    /// Anything (floats, vectors, unknown).
    Any,
}

/// Abstract pointer: which object it points into and where.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PtrVal {
    base: PtrBase,
    /// Byte offset from the base object's start.
    off: Interval,
    null: Nullness,
}

/// The object an abstract pointer points into.
#[derive(Debug, Clone, PartialEq)]
enum PtrBase {
    /// Frame slot of an `in_memory` local.
    Local(LocalId),
    /// A global cell.
    Global(GlobalId),
    /// A heap allocation of stage-time-known payload size (malloc with a
    /// constant argument, or an interned string constant).
    Alloc {
        /// Payload size in bytes.
        size: u64,
    },
    /// The `i`-th function parameter's pointee — caller-owned memory of
    /// unknown size. Tracked separately so summaries can report demand.
    Param(usize),
    /// No idea.
    Unknown,
}

impl PtrVal {
    fn unknown() -> PtrVal {
        PtrVal {
            base: PtrBase::Unknown,
            off: Interval::top(),
            null: Nullness::Maybe,
        }
    }
}

/// Per-function interprocedural summary.
#[derive(Debug, Clone, PartialEq, Default)]
struct FnSummary {
    /// Join of all returned values (bases sanitized to caller-meaningful
    /// ones), `None` when the function never returns a value.
    ret: Option<AbsVal>,
    /// Per-parameter demand: `Some(end)` means the callee unconditionally
    /// accesses bytes up to (exclusive) `end` of that pointer argument.
    demand: Vec<Option<u64>>,
}

/// Function summaries from the bounded interprocedural fixpoint, keyed by
/// [`FuncId`]. Opaque to callers; built by [`summarize`] and consumed by
/// the analyses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summaries {
    map: HashMap<FuncId, FnSummary>,
}

impl Summaries {
    /// Number of summarized functions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no function has been summarized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Computes summaries for a set of functions with a bounded fixpoint (three
/// rounds): round one sees unknown callees (sound), later rounds refine
/// through call chains. Order-insensitive by construction.
pub fn summarize(
    fns: &[(FuncId, IrFunction)],
    types: Option<&TypeRegistry>,
    env: &dyn ModuleEnv,
) -> Summaries {
    let mut sums = Summaries::default();
    for _ in 0..3 {
        let mut next = Summaries::default();
        for (id, f) in fns {
            next.map.insert(*id, summarize_one(f, types, env, &sums));
        }
        let done = next == sums;
        sums = next;
        if done {
            break;
        }
    }
    sums
}

fn summarize_one(
    f: &IrFunction,
    types: Option<&TypeRegistry>,
    env: &dyn ModuleEnv,
    sums: &Summaries,
) -> FnSummary {
    let mut body = f.body.clone();
    let mut interp = Interp::new(f, types, env, Some(sums), Mode::Summary);
    interp.block(&mut body);
    let ret = interp.ret.take().map(sanitize_ret);
    FnSummary {
        ret,
        demand: interp.demand,
    }
}

/// Returned facts must make sense in the caller: pointers into the callee's
/// frame or parameters are demoted to unknown-base (keeping nullness).
fn sanitize_ret(v: AbsVal) -> AbsVal {
    match v {
        AbsVal::Ptr(p) => match p.base {
            PtrBase::Local(_) | PtrBase::Param(_) => AbsVal::Ptr(PtrVal {
                base: PtrBase::Unknown,
                off: Interval::top(),
                null: p.null,
            }),
            _ => AbsVal::Ptr(p),
        },
        other => other,
    }
}

/// Runs the definite-bug lints over `f`, appending findings to `diags`.
pub(super) fn lint(
    f: &IrFunction,
    types: Option<&TypeRegistry>,
    env: &dyn ModuleEnv,
    sums: Option<&Summaries>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut body = f.body.clone();
    let mut interp = Interp::new(f, types, env, sums, Mode::Lint(diags));
    interp.block(&mut body);
}

/// Stamps proven-in-bounds accesses into each statement's
/// [`nochk`](IrStmt::nochk) list and emits `checkelim` remarks. Called by
/// the `checkelim` pass with the function body taken out of `f`.
pub(crate) fn annotate(
    f: &IrFunction,
    body: &mut [IrStmt],
    types: Option<&TypeRegistry>,
    env: &dyn ModuleEnv,
    sums: Option<&Summaries>,
    remarks: &mut Vec<Remark>,
) {
    let mut interp = Interp::new(f, types, env, sums, Mode::Elide(remarks));
    interp.block(body);
}

/// State-free proof for LICM: whether an access of `size` bytes through
/// `addr` — a constant-offset chain off an in-memory local — is within that
/// local's object. Needs no flow facts, so it is usable from passes that
/// don't run the full interpreter.
pub(crate) fn proven_const_access(
    addr: &IrExpr,
    locals: &[LocalSlot],
    types: &TypeRegistry,
    size: u64,
) -> bool {
    fn peel(e: &IrExpr) -> Option<(LocalId, i64)> {
        match &e.kind {
            ExprKind::LocalAddr(l) => Some((*l, 0)),
            ExprKind::Binary {
                op: BinKind::Add,
                lhs,
                rhs,
            } if e.ty.is_pointer() => {
                let (base, off) = peel(lhs)?;
                match rhs.kind {
                    ExprKind::ConstInt(k) => Some((base, off.checked_add(k)?)),
                    _ => None,
                }
            }
            ExprKind::Cast(inner) if e.ty.is_pointer() => peel(inner),
            _ => None,
        }
    }
    let Some((l, off)) = peel(addr) else {
        return false;
    };
    let Some(slot) = locals.get(l.0 as usize) else {
        return false;
    };
    if !slot.in_memory {
        return false;
    }
    let Some(obj) = size_of_ty(&slot.ty, Some(types)) else {
        return false;
    };
    off >= 0 && (off as u64).saturating_add(size) <= obj
}

/// Size of `t` if every struct it references is finalized (mirrors the
/// linter's cautious version of [`Ty::size`]).
fn size_of_ty(t: &Ty, types: Option<&TypeRegistry>) -> Option<u64> {
    let reg = types?;
    match t {
        Ty::Struct(id) => {
            if (id.0 as usize) < reg.len() && reg.is_finalized(*id) {
                Some(reg.layout(*id).size)
            } else {
                None
            }
        }
        Ty::Array(inner, n) => size_of_ty(inner, types).map(|s| s * n),
        other => Some(other.size(reg)),
    }
}

/// Bit-pattern constant `v` interpreted at type `s`.
fn const_int_value(v: i64, s: ScalarTy) -> i128 {
    match s {
        ScalarTy::Bool => (v != 0) as i128,
        ScalarTy::I8 => (v as i8) as i128,
        ScalarTy::I16 => (v as i16) as i128,
        ScalarTy::I32 => (v as i32) as i128,
        ScalarTy::I64 => v as i128,
        ScalarTy::U8 => (v as u8) as i128,
        ScalarTy::U16 => (v as u16) as i128,
        ScalarTy::U32 => (v as u32) as i128,
        ScalarTy::U64 => (v as u64) as i128,
        ScalarTy::F32 | ScalarTy::F64 => v as i128,
    }
}

fn join_absval(a: &AbsVal, b: &AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(x.join(*y)),
        (AbsVal::Ptr(x), AbsVal::Ptr(y)) => {
            if x.base == y.base {
                AbsVal::Ptr(PtrVal {
                    base: x.base.clone(),
                    off: x.off.join(y.off),
                    null: x.null.join(y.null),
                })
            } else {
                AbsVal::Ptr(PtrVal {
                    base: PtrBase::Unknown,
                    off: Interval::top(),
                    null: x.null.join(y.null),
                })
            }
        }
        _ => AbsVal::Any,
    }
}

/// `break` reachable without crossing into a nested loop.
fn contains_break(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Break => true,
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => contains_break(then_body) || contains_break(else_body),
        _ => false,
    })
}

enum Mode<'m> {
    /// Emit definite-bug diagnostics.
    Lint(&'m mut Vec<Diagnostic>),
    /// Stamp proven accesses and emit checkelim remarks.
    Elide(&'m mut Vec<Remark>),
    /// Collect return/demand facts only.
    Summary,
}

enum Flow {
    FallThrough,
    Terminated,
}

enum Verdict {
    Proven,
    DefiniteNull,
    DefiniteOob { detail: String },
    Unknown { reason: String },
}

struct Interp<'a> {
    f: &'a IrFunction,
    types: Option<&'a TypeRegistry>,
    env: &'a dyn ModuleEnv,
    sums: Option<&'a Summaries>,
    mode: Mode<'a>,
    state: Vec<AbsVal>,
    /// Join of returned values (summary mode).
    ret: Option<AbsVal>,
    /// Per-parameter unconditional access demand (summary mode).
    demand: Vec<Option<u64>>,
    /// Branch/loop nesting depth; 0 means unconditionally reached.
    depth: u32,
    /// Loop nesting depth (missed-elision remarks only fire inside loops,
    /// where a kept check actually costs per iteration).
    loop_depth: u32,
    /// Proven address expressions of the statement being walked.
    pending: Vec<IrExpr>,
    cur_span: Span,
    cur_prov: Option<Provenance>,
}

impl<'a> Interp<'a> {
    fn new(
        f: &'a IrFunction,
        types: Option<&'a TypeRegistry>,
        env: &'a dyn ModuleEnv,
        sums: Option<&'a Summaries>,
        mode: Mode<'a>,
    ) -> Self {
        let state = f
            .locals
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                if i < f.param_count() {
                    match &slot.ty {
                        Ty::Ptr(_) => AbsVal::Ptr(PtrVal {
                            base: PtrBase::Param(i),
                            off: Interval::singleton(0),
                            null: Nullness::Maybe,
                        }),
                        Ty::Scalar(s) if s.is_integer() => AbsVal::Int(Interval::full_for(*s)),
                        _ => AbsVal::Any,
                    }
                } else {
                    // Every `var` is zero-initialized by the VM before any
                    // explicit write.
                    match &slot.ty {
                        _ if slot.in_memory => AbsVal::Any,
                        Ty::Scalar(s) if s.is_integer() => AbsVal::Int(Interval::singleton(0)),
                        Ty::Ptr(_) => AbsVal::Ptr(PtrVal {
                            base: PtrBase::Unknown,
                            off: Interval::singleton(0),
                            null: Nullness::Null,
                        }),
                        _ => AbsVal::Any,
                    }
                }
            })
            .collect();
        Interp {
            f,
            types,
            env,
            sums,
            mode,
            state,
            ret: None,
            demand: vec![None; f.param_count()],
            depth: 0,
            loop_depth: 0,
            pending: Vec::new(),
            cur_span: Span::synthetic(),
            cur_prov: None,
        }
    }

    fn size_of(&self, t: &Ty) -> Option<u64> {
        size_of_ty(t, self.types)
    }

    fn set(&mut self, l: LocalId, v: AbsVal) {
        if let Some(slot) = self.state.get_mut(l.0 as usize) {
            *slot = v;
        }
    }

    fn get(&self, l: LocalId) -> AbsVal {
        self.state.get(l.0 as usize).cloned().unwrap_or(AbsVal::Any)
    }

    fn widen(&mut self, writes: &LocalSet) {
        for (i, slot) in self.f.locals.iter().enumerate() {
            if writes.contains(LocalId(i as u32)) {
                self.state[i] = match &slot.ty {
                    Ty::Scalar(s) if s.is_integer() => AbsVal::Int(Interval::full_for(*s)),
                    Ty::Ptr(_) => AbsVal::Ptr(PtrVal::unknown()),
                    _ => AbsVal::Any,
                };
            }
        }
    }

    fn warn(&mut self, code: &'static str, message: String) {
        if let Mode::Lint(diags) = &mut self.mode {
            let mut d = diag(self.f, Severity::Warning, code, self.cur_span, message);
            d.prov = self.cur_prov.clone();
            diags.push(d);
        }
    }

    // -----------------------------------------------------------------
    // Statement walk.
    // -----------------------------------------------------------------

    fn block(&mut self, stmts: &mut [IrStmt]) -> Flow {
        for s in stmts.iter_mut() {
            if let Flow::Terminated = self.stmt(s) {
                // Anything after a terminator is unreachable; the dataflow
                // pass reports it, we just don't analyze it.
                return Flow::Terminated;
            }
        }
        Flow::FallThrough
    }

    fn stmt(&mut self, s: &mut IrStmt) -> Flow {
        self.cur_span = s.span;
        self.cur_prov = s.prov.clone();
        let mut own: Vec<IrExpr> = Vec::new();
        let flow = match &mut s.kind {
            StmtKind::Assign { dst, value } => {
                let dst = *dst;
                let v = self.eval(value);
                own = std::mem::take(&mut self.pending);
                self.set(dst, v);
                Flow::FallThrough
            }
            StmtKind::Store { addr, value } => {
                let size = self.size_of(&value.ty);
                self.eval(value);
                let av = self.eval(addr);
                self.access(addr, &av, size, "store");
                own = std::mem::take(&mut self.pending);
                Flow::FallThrough
            }
            StmtKind::CopyMem { dst, src, size } => {
                let size = *size;
                let dv = self.eval(dst);
                let sv = self.eval(src);
                // The VM's CopyMem is one instruction over two addresses;
                // both must be proven for the check to go away, which falls
                // out naturally: the compiler only drops the check when
                // every address of the instruction is stamped.
                self.access(dst, &dv, Some(size), "copy destination");
                self.access(src, &sv, Some(size), "copy source");
                own = std::mem::take(&mut self.pending);
                Flow::FallThrough
            }
            StmtKind::Expr(e) => {
                self.eval(e);
                own = std::mem::take(&mut self.pending);
                Flow::FallThrough
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond);
                own = std::mem::take(&mut self.pending);
                self.walk_if(&c, cond, then_body, else_body)
            }
            StmtKind::While { cond, body } => {
                // Widen everything the body can write, then evaluate the
                // condition over the widened state (it re-runs every
                // iteration).
                let mut writes = LocalSet::new(self.f.locals.len());
                collect_assigned(body, &mut writes);
                self.widen(&writes);
                let c = self.eval(cond);
                own = std::mem::take(&mut self.pending);
                if !self.definitely_false(&c) {
                    let saved = self.state.clone();
                    let feasible = self.refine(cond, true);
                    if feasible {
                        self.depth += 1;
                        self.loop_depth += 1;
                        let _ = self.block(body);
                        self.depth -= 1;
                        self.loop_depth -= 1;
                    }
                    self.state = saved;
                    if !contains_break(body) {
                        // Normal exit: the condition just failed.
                        let _ = self.refine(cond, false);
                    }
                }
                Flow::FallThrough
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let var = *var;
                let sv = self.eval(start);
                let ev = self.eval(stop);
                let stv = self.eval(step);
                own = std::mem::take(&mut self.pending);
                self.walk_for(var, &sv, &ev, &stv, body);
                Flow::FallThrough
            }
            StmtKind::ParallelFor {
                start, stop, args, ..
            } => {
                // Opaque call boundary: the kernel body is analyzed when its
                // own function is; only the operand expressions run here.
                self.eval(start);
                self.eval(stop);
                for a in args.iter_mut() {
                    self.eval(a);
                }
                own = std::mem::take(&mut self.pending);
                Flow::FallThrough
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    let v = self.eval(e);
                    own = std::mem::take(&mut self.pending);
                    self.ret = Some(match self.ret.take() {
                        Some(prev) => join_absval(&prev, &v),
                        None => v,
                    });
                }
                Flow::Terminated
            }
            StmtKind::Break => Flow::Terminated,
        };
        if !own.is_empty() {
            s.nochk.append(&mut own);
        }
        flow
    }

    fn walk_if(
        &mut self,
        c: &AbsVal,
        cond: &IrExpr,
        then_body: &mut [IrStmt],
        else_body: &mut [IrStmt],
    ) -> Flow {
        if self.definitely_true(c) {
            return self.block(then_body);
        }
        if self.definitely_false(c) {
            return self.block(else_body);
        }
        let entry = self.state.clone();
        self.depth += 1;
        let t_live = self.refine(cond, true);
        let t_flow = if t_live {
            self.block(then_body)
        } else {
            Flow::Terminated
        };
        let t_state = std::mem::replace(&mut self.state, entry);
        let f_live = self.refine(cond, false);
        let f_flow = if f_live {
            self.block(else_body)
        } else {
            Flow::Terminated
        };
        self.depth -= 1;
        let t_falls = t_live && matches!(t_flow, Flow::FallThrough);
        let f_falls = f_live && matches!(f_flow, Flow::FallThrough);
        match (t_falls, f_falls) {
            (true, true) => {
                self.state = t_state
                    .iter()
                    .zip(&self.state)
                    .map(|(t, f)| join_absval(t, f))
                    .collect();
                Flow::FallThrough
            }
            (true, false) => {
                self.state = t_state;
                Flow::FallThrough
            }
            (false, true) => Flow::FallThrough,
            (false, false) => Flow::Terminated,
        }
    }

    fn walk_for(
        &mut self,
        var: LocalId,
        start: &AbsVal,
        stop: &AbsVal,
        step: &AbsVal,
        body: &mut [IrStmt],
    ) {
        let bounds = match (start, stop) {
            (AbsVal::Int(s), AbsVal::Int(e)) => Some((*s, *e)),
            _ => None,
        };
        // The loop definitely runs zero times when start >= stop everywhere.
        if let Some((s, e)) = bounds {
            if s.lo >= e.hi {
                return;
            }
        }
        let mut writes = LocalSet::new(self.f.locals.len());
        collect_assigned(body, &mut writes);
        let var_written_in_body = writes.contains(var);
        writes.insert(var);
        let saved_outside = {
            self.widen(&writes);
            // With a positive step the loop variable stays within
            // [start, stop-1]; a body that writes it escapes that argument.
            let step_pos = matches!(step, AbsVal::Int(iv) if iv.lo >= 1);
            if let (Some((s, e)), true, false) = (bounds, step_pos, var_written_in_body) {
                self.set(var, AbsVal::Int(Interval::new(s.lo, e.hi - 1)));
            }
            self.state.clone()
        };
        self.depth += 1;
        self.loop_depth += 1;
        let _ = self.block(body);
        self.depth -= 1;
        self.loop_depth -= 1;
        self.state = saved_outside;
        // After the loop the variable has run past the bound; drop its fact.
        self.widen(&{
            let mut only_var = LocalSet::new(self.f.locals.len());
            only_var.insert(var);
            only_var
        });
    }

    // -----------------------------------------------------------------
    // Condition handling.
    // -----------------------------------------------------------------

    fn definitely_true(&self, v: &AbsVal) -> bool {
        matches!(v, AbsVal::Int(iv) if iv.lo >= 1)
    }

    fn definitely_false(&self, v: &AbsVal) -> bool {
        matches!(v, AbsVal::Int(iv) if iv.hi <= 0)
    }

    /// Side-effect-free evaluation of simple condition operands.
    fn peek(&self, e: &IrExpr) -> Option<AbsVal> {
        match &e.kind {
            ExprKind::Local(l) => Some(self.get(*l)),
            ExprKind::ConstInt(v) => {
                let s = e.ty.element_scalar()?;
                Some(AbsVal::Int(Interval::singleton(const_int_value(*v, s))))
            }
            ExprKind::ConstBool(b) => Some(AbsVal::Int(Interval::singleton(*b as i128))),
            ExprKind::ConstNull => Some(AbsVal::Ptr(PtrVal {
                base: PtrBase::Unknown,
                off: Interval::singleton(0),
                null: Nullness::Null,
            })),
            _ => None,
        }
    }

    /// Narrows the state assuming `cond == truth`; returns `false` when the
    /// assumption is unsatisfiable (the guarded code is unreachable).
    fn refine(&mut self, cond: &IrExpr, truth: bool) -> bool {
        match &cond.kind {
            ExprKind::ConstBool(b) => *b == truth,
            ExprKind::Unary {
                op: UnKind::Not,
                expr,
            } => self.refine(expr, !truth),
            ExprKind::Local(l) if cond.ty == Ty::BOOL => {
                let want = Interval::singleton(truth as i128);
                match self.get(*l) {
                    AbsVal::Int(iv) => match iv.meet(want) {
                        Some(m) => {
                            self.set(*l, AbsVal::Int(m));
                            true
                        }
                        None => false,
                    },
                    _ => true,
                }
            }
            ExprKind::Cmp { op, lhs, rhs } => {
                let op = if truth { *op } else { negate_cmp(*op) };
                let a = self.refine_side(op, lhs, rhs);
                let b = self.refine_side(mirror_cmp(op), rhs, lhs);
                a && b
            }
            _ => true,
        }
    }

    /// Applies `lhs OP rhs` to narrow `lhs` when it is a local.
    fn refine_side(&mut self, op: CmpKind, lhs: &IrExpr, rhs: &IrExpr) -> bool {
        let ExprKind::Local(l) = lhs.kind else {
            return true;
        };
        let Some(rv) = self.peek(rhs) else {
            return true;
        };
        match (self.get(l), rv) {
            (AbsVal::Int(x), AbsVal::Int(k)) => {
                let narrowed = match op {
                    CmpKind::Eq => x.meet(k),
                    CmpKind::Ne => match k.as_singleton() {
                        // Only endpoint trims are expressible in intervals.
                        Some(v) if x.lo == v && x.lo == x.hi => None,
                        Some(v) if x.lo == v => Some(Interval::new(x.lo + 1, x.hi)),
                        Some(v) if x.hi == v => Some(Interval::new(x.lo, x.hi - 1)),
                        _ => Some(x),
                    },
                    CmpKind::Lt => x.assume_cmp(true, true, k),
                    CmpKind::Le => x.assume_cmp(true, false, k),
                    CmpKind::Gt => x.assume_cmp(false, true, k),
                    CmpKind::Ge => x.assume_cmp(false, false, k),
                };
                match narrowed {
                    Some(n) => {
                        self.set(l, AbsVal::Int(n));
                        true
                    }
                    None => false,
                }
            }
            (AbsVal::Ptr(p), AbsVal::Ptr(q)) if q.null == Nullness::Null => {
                // `p == nil` / `p ~= nil` refine nullness.
                match op {
                    CmpKind::Eq => {
                        if p.null == Nullness::NonNull {
                            return false;
                        }
                        self.set(
                            l,
                            AbsVal::Ptr(PtrVal {
                                base: PtrBase::Unknown,
                                off: Interval::singleton(0),
                                null: Nullness::Null,
                            }),
                        );
                        true
                    }
                    CmpKind::Ne => {
                        if p.null == Nullness::Null {
                            return false;
                        }
                        self.set(
                            l,
                            AbsVal::Ptr(PtrVal {
                                null: Nullness::NonNull,
                                ..p
                            }),
                        );
                        true
                    }
                    _ => true,
                }
            }
            _ => true,
        }
    }

    // -----------------------------------------------------------------
    // Expression evaluation.
    // -----------------------------------------------------------------

    fn eval(&mut self, e: &IrExpr) -> AbsVal {
        match &e.kind {
            ExprKind::ConstInt(v) => match e.ty.element_scalar() {
                Some(s) if s.is_integer() || s == ScalarTy::Bool => {
                    AbsVal::Int(Interval::singleton(const_int_value(*v, s)))
                }
                _ => AbsVal::Any,
            },
            ExprKind::ConstFloat(_) => AbsVal::Any,
            ExprKind::ConstBool(b) => AbsVal::Int(Interval::singleton(*b as i128)),
            ExprKind::ConstNull => AbsVal::Ptr(PtrVal {
                base: PtrBase::Unknown,
                off: Interval::singleton(0),
                null: Nullness::Null,
            }),
            ExprKind::ConstFunc(_) => AbsVal::Any,
            // Interned strings are NUL-terminated allocations; every byte
            // up to and including the terminator is readable.
            ExprKind::ConstStr(s) => AbsVal::Ptr(PtrVal {
                base: PtrBase::Alloc {
                    size: s.len() as u64 + 1,
                },
                off: Interval::singleton(0),
                null: Nullness::NonNull,
            }),
            ExprKind::Local(l) => self.get(*l),
            ExprKind::LocalAddr(l) => AbsVal::Ptr(PtrVal {
                base: PtrBase::Local(*l),
                off: Interval::singleton(0),
                null: Nullness::NonNull,
            }),
            ExprKind::GlobalAddr(g) => AbsVal::Ptr(PtrVal {
                base: PtrBase::Global(*g),
                off: Interval::singleton(0),
                null: Nullness::NonNull,
            }),
            ExprKind::Load(addr) => {
                let size = self.size_of(&e.ty);
                let av = self.eval(addr);
                self.access(addr, &av, size, "load");
                AbsVal::Any
            }
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(e, *op, lhs, rhs),
            ExprKind::Cmp { op, lhs, rhs } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                self.eval_cmp(*op, &a, &b)
            }
            ExprKind::Unary { op, expr } => {
                let v = self.eval(expr);
                match (op, v, e.ty.element_scalar()) {
                    (UnKind::Neg, AbsVal::Int(iv), Some(s)) if s.is_integer() => {
                        AbsVal::Int((-iv).wrap_to(s))
                    }
                    (UnKind::Not, AbsVal::Int(iv), _) if e.ty == Ty::BOOL => {
                        AbsVal::Int(Interval::new(1 - iv.hi.clamp(0, 1), 1 - iv.lo.clamp(0, 1)))
                    }
                    _ => AbsVal::Any,
                }
            }
            ExprKind::Cast(inner) => {
                let v = self.eval(inner);
                self.eval_cast(&e.ty, &inner.ty, v)
            }
            ExprKind::Call { callee, args } => self.eval_call(callee, args),
            ExprKind::Select {
                cond,
                then_value,
                else_value,
            } => {
                let c = self.eval(cond);
                let t = self.eval(then_value);
                let f = self.eval(else_value);
                if self.definitely_true(&c) {
                    t
                } else if self.definitely_false(&c) {
                    f
                } else {
                    join_absval(&t, &f)
                }
            }
        }
    }

    fn eval_binary(&mut self, e: &IrExpr, op: BinKind, lhs: &IrExpr, rhs: &IrExpr) -> AbsVal {
        let a = self.eval(lhs);
        let b = self.eval(rhs);
        // Pointer arithmetic: offsets are in bytes at IR level.
        if e.ty.is_pointer() {
            if let (AbsVal::Ptr(p), AbsVal::Int(k)) = (&a, &b) {
                let off = match op {
                    BinKind::Add => p.off + *k,
                    BinKind::Sub => p.off - *k,
                    _ => Interval::top(),
                };
                return AbsVal::Ptr(PtrVal {
                    base: p.base.clone(),
                    off,
                    null: p.null,
                });
            }
            return AbsVal::Ptr(PtrVal::unknown());
        }
        let Some(s) = e.ty.element_scalar() else {
            return AbsVal::Any;
        };
        if e.ty == Ty::BOOL {
            return match (op, &a, &b) {
                (BinKind::And, AbsVal::Int(x), AbsVal::Int(y)) => {
                    AbsVal::Int(Interval::new(x.lo.min(y.lo).clamp(0, 1), x.hi.min(y.hi)))
                }
                (BinKind::Or, AbsVal::Int(x), AbsVal::Int(y)) => {
                    AbsVal::Int(Interval::new(x.lo.max(y.lo), x.hi.max(y.hi).clamp(0, 1)))
                }
                _ => AbsVal::Int(Interval::new(0, 1)),
            };
        }
        if !s.is_integer() || !matches!(e.ty, Ty::Scalar(_)) {
            return AbsVal::Any;
        }
        let (AbsVal::Int(x), AbsVal::Int(y)) = (&a, &b) else {
            return AbsVal::Int(Interval::full_for(s));
        };
        let (x, y) = (*x, *y);
        match op {
            BinKind::Add | BinKind::Sub | BinKind::Mul => {
                let raw = match op {
                    BinKind::Add => x + y,
                    BinKind::Sub => x - y,
                    _ => x * y,
                };
                if s.is_signed() && raw.always_overflows(s) {
                    let sym = match op {
                        BinKind::Add => "+",
                        BinKind::Sub => "-",
                        _ => "*",
                    };
                    let full = Interval::full_for(s);
                    self.warn(
                        "guaranteed-overflow",
                        format!(
                            "'{sym}' on {} overflows on every execution: result in \
                             [{}, {}] but the representable range is [{}, {}]",
                            e.ty, raw.lo, raw.hi, full.lo, full.hi
                        ),
                    );
                }
                AbsVal::Int(raw.wrap_to(s))
            }
            BinKind::Div | BinKind::Rem => {
                if y.lo == 0 && y.hi == 0 {
                    let sym = if op == BinKind::Div { "/" } else { "%" };
                    self.warn(
                        "div-by-zero",
                        format!("right operand of '{sym}' is zero on every execution"),
                    );
                }
                let raw = if op == BinKind::Div { x / y } else { x % y };
                AbsVal::Int(raw.wrap_to(s))
            }
            BinKind::Min => AbsVal::Int(Interval::new(x.lo.min(y.lo), x.hi.min(y.hi))),
            BinKind::Max => AbsVal::Int(Interval::new(x.lo.max(y.lo), x.hi.max(y.hi))),
            BinKind::And if x.lo >= 0 && y.lo >= 0 => AbsVal::Int(Interval::new(0, x.hi.min(y.hi))),
            BinKind::Shr if x.lo >= 0 => match y.as_singleton() {
                Some(k) if (0..64).contains(&k) => AbsVal::Int(Interval::new(x.lo >> k, x.hi >> k)),
                _ => AbsVal::Int(Interval::new(0, x.hi)),
            },
            // Left shift of a non-negative value by a known amount is a
            // multiply — simplify strength-reduces `i * 2^k` into this, so
            // address math depends on it.
            BinKind::Shl if x.lo >= 0 => match y.as_singleton() {
                Some(k) if (0..64).contains(&k) => {
                    let m = 1i128 << k;
                    match (x.lo.checked_mul(m), x.hi.checked_mul(m)) {
                        (Some(lo), Some(hi)) => AbsVal::Int(Interval::new(lo, hi).wrap_to(s)),
                        _ => AbsVal::Int(Interval::full_for(s)),
                    }
                }
                _ => AbsVal::Int(Interval::full_for(s)),
            },
            _ => AbsVal::Int(Interval::full_for(s)),
        }
    }

    fn eval_cmp(&self, op: CmpKind, a: &AbsVal, b: &AbsVal) -> AbsVal {
        let bool_iv = |lo: i128, hi: i128| AbsVal::Int(Interval::new(lo, hi));
        if let (AbsVal::Int(x), AbsVal::Int(y)) = (a, b) {
            let (t, f) = match op {
                CmpKind::Eq => (x.as_singleton().is_some() && *x == *y, x.meet(*y).is_none()),
                CmpKind::Ne => (x.meet(*y).is_none(), x.as_singleton().is_some() && *x == *y),
                CmpKind::Lt => (x.hi < y.lo, x.lo >= y.hi),
                CmpKind::Le => (x.hi <= y.lo, x.lo > y.hi),
                CmpKind::Gt => (x.lo > y.hi, x.hi <= y.lo),
                CmpKind::Ge => (x.lo >= y.hi, x.hi < y.lo),
            };
            if t {
                return bool_iv(1, 1);
            }
            if f {
                return bool_iv(0, 0);
            }
        }
        // Pointer-vs-null comparisons with definite nullness.
        if let (AbsVal::Ptr(p), AbsVal::Ptr(q)) = (a, b) {
            let decided = match (p.null, q.null) {
                (Nullness::Null, Nullness::Null) => Some(true),
                (Nullness::Null, Nullness::NonNull) | (Nullness::NonNull, Nullness::Null) => {
                    Some(false)
                }
                _ => None,
            };
            if let Some(eq) = decided {
                let v = match op {
                    CmpKind::Eq => eq,
                    CmpKind::Ne => !eq,
                    _ => return bool_iv(0, 1),
                };
                return bool_iv(v as i128, v as i128);
            }
        }
        bool_iv(0, 1)
    }

    fn eval_cast(&self, to: &Ty, from: &Ty, v: AbsVal) -> AbsVal {
        match (to, from, v) {
            // Pointer-to-pointer casts preserve the object fact.
            (Ty::Ptr(_), Ty::Ptr(_), v @ AbsVal::Ptr(_)) => v,
            // Integer-to-pointer: 0 is null, a provably nonzero value is a
            // non-null pointer to who-knows-what.
            (Ty::Ptr(_), _, AbsVal::Int(iv)) => {
                let null = if iv.lo == 0 && iv.hi == 0 {
                    Nullness::Null
                } else if !iv.contains(0) {
                    Nullness::NonNull
                } else {
                    Nullness::Maybe
                };
                AbsVal::Ptr(PtrVal {
                    base: PtrBase::Unknown,
                    off: Interval::top(),
                    null,
                })
            }
            (Ty::Scalar(s), _, AbsVal::Int(iv)) if s.is_integer() => AbsVal::Int(iv.wrap_to(*s)),
            (Ty::Scalar(ScalarTy::Bool), _, AbsVal::Int(iv)) => {
                if iv.lo == 0 && iv.hi == 0 {
                    AbsVal::Int(Interval::singleton(0))
                } else if !iv.contains(0) {
                    AbsVal::Int(Interval::singleton(1))
                } else {
                    AbsVal::Int(Interval::new(0, 1))
                }
            }
            _ => AbsVal::Any,
        }
    }

    fn eval_call(&mut self, callee: &Callee, args: &[IrExpr]) -> AbsVal {
        let argv: Vec<AbsVal> = args.iter().map(|a| self.eval(a)).collect();
        match callee {
            Callee::Builtin(b) => match b {
                Builtin::Malloc => {
                    let size = match argv.first() {
                        Some(AbsVal::Int(iv)) => iv.as_singleton().filter(|k| *k >= 0),
                        _ => None,
                    };
                    // The VM's malloc grows linear memory as needed and
                    // always returns a non-null payload pointer.
                    AbsVal::Ptr(match size {
                        Some(k) => PtrVal {
                            base: PtrBase::Alloc { size: k as u64 },
                            off: Interval::singleton(0),
                            null: Nullness::NonNull,
                        },
                        None => PtrVal {
                            base: PtrBase::Unknown,
                            off: Interval::singleton(0),
                            null: Nullness::NonNull,
                        },
                    })
                }
                Builtin::Realloc => AbsVal::Ptr(PtrVal {
                    base: PtrBase::Unknown,
                    off: Interval::singleton(0),
                    null: Nullness::NonNull,
                }),
                Builtin::Rand => AbsVal::Int(Interval::full_for(ScalarTy::I32)),
                _ => AbsVal::Any,
            },
            Callee::Direct(id) => {
                let sum = self.sums.and_then(|s| s.map.get(id)).cloned();
                if let Some(sum) = &sum {
                    self.check_call_demand(sum, &argv);
                }
                sum.and_then(|s| s.ret).unwrap_or(AbsVal::Any)
            }
            Callee::Indirect(p) => {
                self.eval(p);
                AbsVal::Any
            }
        }
    }

    /// Caller-side lint: the callee unconditionally accesses bytes of a
    /// pointer argument beyond what the passed object has, or the argument
    /// is provably null.
    fn check_call_demand(&mut self, sum: &FnSummary, argv: &[AbsVal]) {
        for (i, need) in sum.demand.iter().enumerate() {
            let Some(need) = need else { continue };
            let Some(AbsVal::Ptr(p)) = argv.get(i) else {
                continue;
            };
            if p.null == Nullness::Null {
                self.warn(
                    "null-deref",
                    format!(
                        "argument {} is null on every execution, but the callee \
                         always dereferences it",
                        i + 1
                    ),
                );
                continue;
            }
            if let (Some(obj), Some(k)) = (self.base_size(&p.base), p.off.as_singleton()) {
                if k >= 0 && (k as u64).saturating_add(*need) > obj {
                    self.warn(
                        "definite-oob",
                        format!(
                            "callee always accesses {} byte(s) of argument {}, \
                             which only has {} byte(s)",
                            need,
                            i + 1,
                            obj.saturating_sub(k as u64)
                        ),
                    );
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Access classification.
    // -----------------------------------------------------------------

    fn base_size(&self, base: &PtrBase) -> Option<u64> {
        match base {
            PtrBase::Local(l) => {
                let slot = self.f.locals.get(l.0 as usize)?;
                if !slot.in_memory {
                    return None;
                }
                self.size_of(&slot.ty)
            }
            PtrBase::Global(g) => match self.env.global_ty(*g) {
                EnvEntry::Known(ty) => self.size_of(&ty),
                _ => None,
            },
            PtrBase::Alloc { size } => Some(*size),
            PtrBase::Param(_) | PtrBase::Unknown => None,
        }
    }

    fn base_desc(&self, base: &PtrBase) -> String {
        match base {
            PtrBase::Local(l) => format!("'{}'", self.f.locals[l.0 as usize].name),
            PtrBase::Global(g) => format!("global#{}", g.0),
            PtrBase::Alloc { size } => format!("a {size}-byte heap allocation"),
            PtrBase::Param(i) => format!("parameter {}", i + 1),
            PtrBase::Unknown => "an unknown object".into(),
        }
    }

    fn classify(&self, av: &AbsVal, size: u64) -> Verdict {
        let AbsVal::Ptr(p) = av else {
            return Verdict::Unknown {
                reason: "address value unknown at stage time".into(),
            };
        };
        if p.null == Nullness::Null {
            return Verdict::DefiniteNull;
        }
        match self.base_size(&p.base) {
            Some(obj) => {
                let size = size as i128;
                let obj_i = obj as i128;
                if p.off.lo >= 0 && p.off.hi + size <= obj_i {
                    Verdict::Proven
                } else if p.off.hi < 0 || p.off.lo > obj_i - size {
                    let off = if p.off.lo == p.off.hi {
                        format!("{}", p.off.lo)
                    } else {
                        format!("{}..={}", p.off.lo, p.off.hi)
                    };
                    Verdict::DefiniteOob {
                        detail: format!(
                            "at offset {off} of {}, which is {obj} byte(s)",
                            self.base_desc(&p.base)
                        ),
                    }
                } else {
                    Verdict::Unknown {
                        reason: format!(
                            "offset range [{}, {}] not provably within the {obj}-byte \
                             object",
                            p.off.lo, p.off.hi
                        ),
                    }
                }
            }
            None => Verdict::Unknown {
                reason: match p.base {
                    PtrBase::Param(_) => "points into caller-owned memory of unknown size".into(),
                    _ => "target allocation unknown at stage time".into(),
                },
            },
        }
    }

    fn access(&mut self, addr: &IrExpr, av: &AbsVal, size: Option<u64>, what: &'static str) {
        // Summary demand: unconditional constant-offset accesses through a
        // pointer parameter.
        if let (Mode::Summary, AbsVal::Ptr(p), Some(size)) = (&self.mode, av, size) {
            if let (PtrBase::Param(i), Some(k), 0) = (&p.base, p.off.as_singleton(), self.depth) {
                if k >= 0 {
                    let end = (k as u64).saturating_add(size);
                    let slot = &mut self.demand[*i];
                    *slot = Some(slot.unwrap_or(0).max(end));
                }
            }
        }
        let Some(size) = size else { return };
        match self.classify(av, size) {
            Verdict::Proven => {
                if let Mode::Elide(_) = self.mode {
                    self.pending.push(addr.clone());
                    let (line, prov) = (self.cur_span.line, self.cur_prov.clone());
                    if let Mode::Elide(remarks) = &mut self.mode {
                        let msg = match av {
                            AbsVal::Ptr(p) => format!(
                                "bounds check elided: {what} of {size} byte(s) proven \
                                 within {}",
                                match &p.base {
                                    PtrBase::Local(l) =>
                                        format!("'{}'", self.f.locals[l.0 as usize].name),
                                    PtrBase::Global(g) => format!("global#{}", g.0),
                                    PtrBase::Alloc { size } =>
                                        format!("a {size}-byte heap allocation"),
                                    _ => "its object".into(),
                                }
                            ),
                            _ => format!("bounds check elided: {what} of {size} byte(s)"),
                        };
                        remarks.push(Remark::applied("checkelim", line, prov, msg));
                    }
                }
            }
            Verdict::DefiniteNull => {
                self.warn(
                    "null-deref",
                    format!("{what} through a pointer that is null on every execution"),
                );
            }
            Verdict::DefiniteOob { detail } => {
                self.warn(
                    "definite-oob",
                    format!(
                        "{what} of {size} byte(s) {detail} — out of bounds on every \
                             execution that reaches it"
                    ),
                );
            }
            Verdict::Unknown { reason } => {
                if self.loop_depth > 0 {
                    let (line, prov) = (self.cur_span.line, self.cur_prov.clone());
                    if let Mode::Elide(remarks) = &mut self.mode {
                        remarks.push(Remark::missed(
                            "checkelim",
                            line,
                            prov,
                            format!("{what} kept checked: {reason}"),
                        ));
                    }
                }
            }
        }
    }
}

fn negate_cmp(op: CmpKind) -> CmpKind {
    match op {
        CmpKind::Eq => CmpKind::Ne,
        CmpKind::Ne => CmpKind::Eq,
        CmpKind::Lt => CmpKind::Ge,
        CmpKind::Le => CmpKind::Gt,
        CmpKind::Gt => CmpKind::Le,
        CmpKind::Ge => CmpKind::Lt,
    }
}

fn mirror_cmp(op: CmpKind) -> CmpKind {
    match op {
        CmpKind::Eq => CmpKind::Eq,
        CmpKind::Ne => CmpKind::Ne,
        CmpKind::Lt => CmpKind::Gt,
        CmpKind::Le => CmpKind::Ge,
        CmpKind::Gt => CmpKind::Lt,
        CmpKind::Ge => CmpKind::Le,
    }
}
