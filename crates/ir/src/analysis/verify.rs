//! Type-consistency verifier.
//!
//! Re-derives the type of every expression from its operands and checks the
//! derivation against the annotated `ty`, plus structural rules: local and
//! global ids in range, callee arities matching signatures, `LocalAddr` only
//! on in-memory slots, `Break` only inside loops.
//!
//! The checker is deliberately a little looser than plain type equality.
//! Lowering retypes address expressions freely — an array local's address is
//! typed as a pointer to its element (decay), a struct address is retyped as
//! a pointer to its first field, pointer subtraction reuses the operand node
//! with an `int64` annotation, and `memset` views aggregates through `&uint8`.
//! Those are all address-class types with identical 8-byte representation,
//! so the verifier groups `&T`, function pointers, `int64`, and `uint64`
//! into one *address class* and accepts retypes within it where lowering
//! performs them. Everything outside that class is checked exactly.

use super::{diag, Diagnostic, EnvEntry, ModuleEnv, Severity};
use crate::ir::{
    BinKind, Builtin, Callee, ExprKind, IrExpr, IrFunction, IrStmt, LocalId, StmtKind, UnKind,
};
use crate::types::{Ty, TypeRegistry};
use terra_syntax::Span;

pub(super) fn run(
    f: &IrFunction,
    types: Option<&TypeRegistry>,
    env: &dyn ModuleEnv,
    diags: &mut Vec<Diagnostic>,
) {
    let mut v = Verifier {
        f,
        types,
        env,
        diags,
        loop_depth: 0,
        span: Span::synthetic(),
    };
    v.function();
}

struct Verifier<'a> {
    f: &'a IrFunction,
    types: Option<&'a TypeRegistry>,
    env: &'a dyn ModuleEnv,
    diags: &'a mut Vec<Diagnostic>,
    loop_depth: u32,
    /// Span of the statement currently being checked; expression-level
    /// findings are attributed to it.
    span: Span,
}

/// Types that share the VM's 8-byte address/integer representation and that
/// lowering is allowed to retype between: pointers, function pointers, and
/// the 64-bit integers produced by pointer arithmetic.
fn is_addr_class(t: &Ty) -> bool {
    matches!(t, Ty::Ptr(_) | Ty::Func(_)) || *t == Ty::I64 || *t == Ty::U64
}

/// Compatibility: exact equality, or both sides in the address class.
fn compat(a: &Ty, b: &Ty) -> bool {
    a == b || (is_addr_class(a) && is_addr_class(b))
}

impl Verifier<'_> {
    fn error(&mut self, code: &'static str, message: String) {
        self.diags
            .push(diag(self.f, Severity::Error, code, self.span, message));
    }

    fn function(&mut self) {
        let nparams = self.f.ty.params.len();
        if nparams > self.f.locals.len() {
            self.error(
                "bad-signature",
                format!(
                    "function has {} parameters but only {} locals",
                    nparams,
                    self.f.locals.len()
                ),
            );
            return;
        }
        for (i, pty) in self.f.ty.params.iter().enumerate() {
            if self.f.locals[i].ty != *pty {
                self.error(
                    "bad-signature",
                    format!(
                        "parameter {} declared {} but local slot has type {}",
                        i, pty, self.f.locals[i].ty
                    ),
                );
            }
        }
        if let Some(reg) = self.types {
            for (i, slot) in self.f.locals.iter().enumerate() {
                self.check_ty_wf(&slot.ty, reg, &format!("local l{i} ('{}')", slot.name));
            }
        }
        self.stmts(&self.f.body);
    }

    /// Checks that every struct mentioned by `t` exists and is finalized, so
    /// later `size()` queries can't panic.
    fn check_ty_wf(&mut self, t: &Ty, reg: &TypeRegistry, what: &str) {
        match t {
            Ty::Struct(id) => {
                if id.0 as usize >= reg.len() {
                    self.error(
                        "bad-struct-ref",
                        format!("{what} references struct #{} out of range", id.0),
                    );
                } else if !reg.is_finalized(*id) {
                    self.error(
                        "bad-struct-ref",
                        format!(
                            "{what} references struct '{}' whose layout was never finalized",
                            reg.name(*id)
                        ),
                    );
                }
            }
            Ty::Ptr(inner) => {
                // Pointees may legitimately be forward-declared structs; only
                // range-check them.
                if let Ty::Struct(id) = &**inner {
                    if id.0 as usize >= reg.len() {
                        self.error(
                            "bad-struct-ref",
                            format!("{what} references struct #{} out of range", id.0),
                        );
                    }
                }
            }
            Ty::Array(inner, _) => self.check_ty_wf(inner, reg, what),
            _ => {}
        }
    }

    fn slot(&mut self, l: LocalId) -> Option<&crate::ir::LocalSlot> {
        if (l.0 as usize) < self.f.locals.len() {
            Some(&self.f.locals[l.0 as usize])
        } else {
            self.error(
                "bad-local-ref",
                format!(
                    "local l{} out of range (function has {} locals)",
                    l.0,
                    self.f.locals.len()
                ),
            );
            None
        }
    }

    fn stmts(&mut self, body: &[IrStmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &IrStmt) {
        self.span = s.span;
        match &s.kind {
            StmtKind::Assign { dst, value } => {
                self.expr(value);
                if let Some(slot) = self.slot(*dst) {
                    let slot_ty = slot.ty.clone();
                    if !compat(&slot_ty, &value.ty) {
                        self.error(
                            "type-mismatch",
                            format!(
                                "assignment to l{} of type {} from value of type {}",
                                dst.0, slot_ty, value.ty
                            ),
                        );
                    }
                }
            }
            StmtKind::Store { addr, value } => {
                self.expr(addr);
                self.expr(value);
                match &addr.ty {
                    Ty::Ptr(p) => {
                        if !compat(p, &value.ty) {
                            self.error(
                                "type-mismatch",
                                format!("store of {} through pointer to {}", value.ty, p),
                            );
                        }
                    }
                    other => self.error(
                        "type-mismatch",
                        format!("store address has non-pointer type {other}"),
                    ),
                }
                if !value.ty.is_register() {
                    self.error(
                        "type-mismatch",
                        format!("store of non-register value of type {}", value.ty),
                    );
                }
            }
            StmtKind::CopyMem { dst, src, .. } => {
                self.expr(dst);
                self.expr(src);
                for (what, e) in [("destination", dst), ("source", src)] {
                    if !e.ty.is_pointer() {
                        self.error(
                            "type-mismatch",
                            format!("copy {what} has non-pointer type {}", e.ty),
                        );
                    }
                }
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.cond(cond);
                self.stmts(then_body);
                self.stmts(else_body);
            }
            StmtKind::While { cond, body } => {
                self.cond(cond);
                self.loop_depth += 1;
                self.stmts(body);
                self.loop_depth -= 1;
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                self.expr(start);
                self.expr(stop);
                self.expr(step);
                if let Some(slot) = self.slot(*var) {
                    let var_ty = slot.ty.clone();
                    let in_memory = slot.in_memory;
                    if !var_ty.is_integer() {
                        self.error(
                            "type-mismatch",
                            format!("loop variable l{} has non-integer type {}", var.0, var_ty),
                        );
                    }
                    if in_memory {
                        self.error(
                            "bad-local-ref",
                            format!("loop variable l{} must be a register local", var.0),
                        );
                    }
                    for (what, e) in [("start", start), ("stop", stop), ("step", step)] {
                        if e.ty != var_ty {
                            self.error(
                                "type-mismatch",
                                format!(
                                    "loop {} has type {} but loop variable is {}",
                                    what, e.ty, var_ty
                                ),
                            );
                        }
                    }
                }
                self.loop_depth += 1;
                self.stmts(body);
                self.loop_depth -= 1;
            }
            StmtKind::ParallelFor {
                kernel,
                start,
                stop,
                args,
            } => {
                self.expr(start);
                self.expr(stop);
                for a in args {
                    self.expr(a);
                }
                for (what, e) in [("start", start), ("stop", stop)] {
                    if !e.ty.is_integer() {
                        self.error(
                            "type-mismatch",
                            format!("parallelfor {} has non-integer type {}", what, e.ty),
                        );
                    }
                }
                match self.env.function_sig(*kernel) {
                    EnvEntry::Known(sig) => {
                        if sig.ret != Ty::Unit {
                            self.error(
                                "type-mismatch",
                                format!("parallelfor kernel fn{} returns {}", kernel.0, sig.ret),
                            );
                        }
                        if sig.params.len() != args.len() + 1 {
                            self.error(
                                "bad-arity",
                                format!(
                                    "parallelfor kernel fn{} takes {} parameters but loop \
                                     passes {} (index + captures)",
                                    kernel.0,
                                    sig.params.len(),
                                    args.len() + 1
                                ),
                            );
                        } else {
                            for (i, (a, p)) in args.iter().zip(&sig.params[1..]).enumerate() {
                                if !compat(&a.ty, p) {
                                    self.error(
                                        "type-mismatch",
                                        format!(
                                            "parallelfor capture {} has type {} (kernel \
                                             expects {})",
                                            i, a.ty, p
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    EnvEntry::Opaque => {}
                    EnvEntry::Invalid => self.error(
                        "bad-func-ref",
                        format!("parallelfor kernel fn{} does not exist", kernel.0),
                    ),
                }
            }
            StmtKind::Return(v) => {
                if let Some(e) = v {
                    self.expr(e);
                }
                let ret = &self.f.ty.ret;
                match v {
                    Some(e) => {
                        // `return f()` where `f` returns unit lowers to
                        // `Return(Some(call))` with a unit-typed expression.
                        let unit_call = e.ty == Ty::Unit && *ret == Ty::Unit;
                        if !(compat(ret, &e.ty) || unit_call) {
                            self.error(
                                "type-mismatch",
                                format!("return of {} from function returning {}", e.ty, ret),
                            );
                        }
                    }
                    None => {
                        if *ret != Ty::Unit {
                            self.error(
                                "type-mismatch",
                                format!("bare return in function returning {ret}"),
                            );
                        }
                    }
                }
            }
            StmtKind::Break => {
                if self.loop_depth == 0 {
                    self.error("bad-break", "break outside of any loop".to_string());
                }
            }
        }
    }

    fn cond(&mut self, cond: &IrExpr) {
        self.expr(cond);
        if cond.ty != Ty::BOOL {
            self.error(
                "type-mismatch",
                format!("condition has type {} (expected bool)", cond.ty),
            );
        }
    }

    /// Checks one expression tree; errors are attributed to the enclosing
    /// statement's span.
    fn expr(&mut self, e: &IrExpr) {
        let t = &e.ty;
        match &e.kind {
            ExprKind::ConstInt(_) => {
                if !t.is_integer() {
                    self.error(
                        "type-mismatch",
                        format!("integer constant annotated with non-integer type {t}"),
                    );
                }
            }
            ExprKind::ConstFloat(_) => {
                if !t.is_float() {
                    self.error(
                        "type-mismatch",
                        format!("float constant annotated with non-float type {t}"),
                    );
                }
            }
            ExprKind::ConstBool(_) => {
                if *t != Ty::BOOL {
                    self.error(
                        "type-mismatch",
                        format!("bool constant annotated with type {t}"),
                    );
                }
            }
            ExprKind::ConstNull => {
                if !matches!(t, Ty::Ptr(_) | Ty::Func(_)) {
                    self.error(
                        "type-mismatch",
                        format!("null constant annotated with non-pointer type {t}"),
                    );
                }
            }
            ExprKind::ConstFunc(id) => {
                match t {
                    Ty::Func(ft) => {
                        if let EnvEntry::Known(sig) = self.env.function_sig(*id) {
                            if **ft != sig {
                                self.error(
                                    "bad-func-ref",
                                    format!(
                                        "function constant @fn{} annotated {} but its signature is {}",
                                        id.0,
                                        t,
                                        Ty::Func(sig.into())
                                    ),
                                );
                            }
                        }
                    }
                    other => self.error(
                        "type-mismatch",
                        format!("function constant annotated with non-function type {other}"),
                    ),
                }
                if matches!(self.env.function_sig(*id), EnvEntry::Invalid) {
                    self.error(
                        "bad-func-ref",
                        format!("reference to nonexistent function @fn{}", id.0),
                    );
                }
            }
            ExprKind::ConstStr(_) => {
                if *t != Ty::rawstring() {
                    self.error(
                        "type-mismatch",
                        format!("string constant annotated with type {t} (expected &int8)"),
                    );
                }
            }
            ExprKind::Local(l) => {
                if let Some(slot) = self.slot(*l) {
                    let slot_ty = slot.ty.clone();
                    if !compat(t, &slot_ty) {
                        self.error(
                            "type-mismatch",
                            format!(
                                "read of l{} annotated {} but slot has type {}",
                                l.0, t, slot_ty
                            ),
                        );
                    }
                }
            }
            ExprKind::LocalAddr(l) => {
                if let Some(slot) = self.slot(*l) {
                    if !slot.in_memory {
                        self.error(
                            "bad-local-ref",
                            format!("address taken of register local l{}", l.0),
                        );
                    }
                }
                // Lowering retypes local addresses (array decay, first-field
                // access, byte views), so any pointer annotation is fine.
                if !t.is_pointer() {
                    self.error(
                        "type-mismatch",
                        format!("address-of annotated with non-pointer type {t}"),
                    );
                }
            }
            ExprKind::GlobalAddr(g) => {
                if matches!(self.env.global_ty(*g), EnvEntry::Invalid) {
                    self.error(
                        "bad-global-ref",
                        format!("reference to nonexistent global g{}", g.0),
                    );
                }
                if !t.is_pointer() {
                    self.error(
                        "type-mismatch",
                        format!("global address annotated with non-pointer type {t}"),
                    );
                }
            }
            ExprKind::Load(a) => {
                self.expr(a);
                match &a.ty {
                    Ty::Ptr(p) => {
                        if !compat(t, p) {
                            self.error(
                                "type-mismatch",
                                format!("load of {} through pointer to {}", t, p),
                            );
                        }
                    }
                    other => self.error(
                        "type-mismatch",
                        format!("load address has non-pointer type {other}"),
                    ),
                }
                if !t.is_register() {
                    self.error("type-mismatch", format!("load of non-register type {t}"));
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
                self.binary(t, *op, lhs, rhs);
            }
            ExprKind::Cmp { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
                if *t != Ty::BOOL {
                    self.error(
                        "type-mismatch",
                        format!("comparison annotated with type {t} (expected bool)"),
                    );
                }
                if !compat(&lhs.ty, &rhs.ty) {
                    self.error(
                        "type-mismatch",
                        format!("comparison of {} against {}", lhs.ty, rhs.ty),
                    );
                }
                if !lhs.ty.is_register() {
                    self.error(
                        "type-mismatch",
                        format!("comparison of non-register type {}", lhs.ty),
                    );
                }
            }
            ExprKind::Unary { op, expr: x } => {
                self.expr(x);
                if !compat(t, &x.ty) {
                    self.error(
                        "type-mismatch",
                        format!("unary {op:?} annotated {} on operand of type {}", t, x.ty),
                    );
                }
                let elem_ok = match op {
                    UnKind::Neg => {
                        t.is_arithmetic()
                            || matches!(t, Ty::Vector(s, _) if s.is_integer() || s.is_float())
                    }
                    UnKind::Not => {
                        *t == Ty::BOOL
                            || t.is_integer()
                            || matches!(t, Ty::Vector(s, _) if s.is_integer())
                    }
                };
                if !elem_ok {
                    self.error(
                        "type-mismatch",
                        format!("unary {op:?} on non-arithmetic type {t}"),
                    );
                }
            }
            ExprKind::Cast(x) => {
                self.expr(x);
                self.cast(t, &x.ty);
            }
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.expr(a);
                }
                self.call(t, callee, args);
            }
            ExprKind::Select {
                cond,
                then_value,
                else_value,
            } => {
                self.expr(cond);
                self.expr(then_value);
                self.expr(else_value);
                if cond.ty != Ty::BOOL {
                    self.error(
                        "type-mismatch",
                        format!("select condition has type {} (expected bool)", cond.ty),
                    );
                }
                if !compat(t, &then_value.ty) || !compat(&then_value.ty, &else_value.ty) {
                    self.error(
                        "type-mismatch",
                        format!(
                            "select arms have types {} / {} but result is annotated {}",
                            then_value.ty, else_value.ty, t
                        ),
                    );
                }
            }
        }
    }

    fn binary(&mut self, t: &Ty, op: BinKind, lhs: &IrExpr, rhs: &IrExpr) {
        match t {
            // Pointer offset: `base + byte_or_element_offset`. Lowering
            // always scales the index to int64.
            Ty::Ptr(_) => {
                if op != BinKind::Add {
                    self.error(
                        "type-mismatch",
                        format!("pointer-typed binary {op:?} (only Add is pointer arithmetic)"),
                    );
                }
                if !lhs.ty.is_pointer() {
                    self.error(
                        "type-mismatch",
                        format!("pointer offset base has type {}", lhs.ty),
                    );
                }
                if !rhs.ty.is_integer() {
                    self.error(
                        "type-mismatch",
                        format!("pointer offset amount has type {}", rhs.ty),
                    );
                }
            }
            Ty::Vector(s, _) => {
                let arith_ok = s.is_float() || s.is_integer();
                let op_ok = match op {
                    BinKind::Add | BinKind::Sub | BinKind::Mul | BinKind::Div => arith_ok,
                    BinKind::Min | BinKind::Max => arith_ok,
                    BinKind::Rem
                    | BinKind::Shl
                    | BinKind::Shr
                    | BinKind::And
                    | BinKind::Or
                    | BinKind::Xor => s.is_integer(),
                };
                if !op_ok {
                    self.error(
                        "type-mismatch",
                        format!("vector binary {op:?} on element type {s}"),
                    );
                }
                for side in [lhs, rhs] {
                    if side.ty != *t {
                        self.error(
                            "type-mismatch",
                            format!("vector binary operand has type {} (expected {t})", side.ty),
                        );
                    }
                }
            }
            Ty::Scalar(s) if s.is_integer() => {
                // Shifts take any integer width on the right; everything else
                // requires matching operands (modulo pointer-difference
                // retyping, which compat absorbs).
                if !compat(t, &lhs.ty) {
                    self.error(
                        "type-mismatch",
                        format!(
                            "binary {op:?} annotated {} but left operand is {}",
                            t, lhs.ty
                        ),
                    );
                }
                if matches!(op, BinKind::Shl | BinKind::Shr) {
                    if !rhs.ty.is_integer() {
                        self.error(
                            "type-mismatch",
                            format!("shift amount has non-integer type {}", rhs.ty),
                        );
                    }
                } else if !compat(&lhs.ty, &rhs.ty) {
                    self.error(
                        "type-mismatch",
                        format!(
                            "binary {op:?} on mismatched types {} and {}",
                            lhs.ty, rhs.ty
                        ),
                    );
                }
            }
            Ty::Scalar(s) if s.is_float() => {
                let op_ok = matches!(
                    op,
                    BinKind::Add
                        | BinKind::Sub
                        | BinKind::Mul
                        | BinKind::Div
                        | BinKind::Rem
                        | BinKind::Min
                        | BinKind::Max
                );
                if !op_ok {
                    self.error(
                        "type-mismatch",
                        format!("binary {op:?} on floating type {t}"),
                    );
                }
                for side in [lhs, rhs] {
                    if side.ty != *t {
                        self.error(
                            "type-mismatch",
                            format!("binary operand has type {} (expected {t})", side.ty),
                        );
                    }
                }
            }
            Ty::Scalar(_) => {
                // bool: short-circuit forms lower to If/Select, but allow
                // direct And/Or/Xor over bools.
                if !matches!(op, BinKind::And | BinKind::Or | BinKind::Xor) {
                    self.error("type-mismatch", format!("binary {op:?} on type {t}"));
                }
                for side in [lhs, rhs] {
                    if side.ty != *t {
                        self.error(
                            "type-mismatch",
                            format!("binary operand has type {} (expected {t})", side.ty),
                        );
                    }
                }
            }
            other => self.error(
                "type-mismatch",
                format!("binary expression annotated with non-value type {other}"),
            ),
        }
    }

    fn cast(&mut self, to: &Ty, from: &Ty) {
        let ok = match (to, from) {
            // Scalar conversions, including bool sources/targets.
            (Ty::Scalar(_), Ty::Scalar(_)) => true,
            // Splat a scalar into a vector.
            (Ty::Vector(..), Ty::Scalar(_)) => true,
            // Vector element conversion of equal lane count.
            (Ty::Vector(_, n), Ty::Vector(_, m)) => n == m,
            // Address class: ptr↔ptr, ptr↔func, ptr↔int.
            (a, b) if is_addr_class(a) && is_addr_class(b) => true,
            (a, b) if is_addr_class(a) && b.is_integer() => true,
            (a, b) if a.is_integer() && is_addr_class(b) => true,
            _ => false,
        };
        if !ok {
            self.error("type-mismatch", format!("invalid cast from {from} to {to}"));
        }
    }

    fn call(&mut self, t: &Ty, callee: &Callee, args: &[IrExpr]) {
        match callee {
            Callee::Direct(id) => match self.env.function_sig(*id) {
                EnvEntry::Known(sig) => self.check_sig(t, &sig, args, &format!("fn{}", id.0)),
                EnvEntry::Opaque => {}
                EnvEntry::Invalid => self.error(
                    "bad-func-ref",
                    format!("call to nonexistent function fn{}", id.0),
                ),
            },
            Callee::Indirect(p) => {
                self.expr(p);
                match &p.ty {
                    Ty::Func(ft) => {
                        let ft = (**ft).clone();
                        self.check_sig(t, &ft, args, "indirect callee");
                    }
                    other => self.error(
                        "type-mismatch",
                        format!("indirect call through non-function value of type {other}"),
                    ),
                }
            }
            Callee::Builtin(b) => self.builtin_call(t, *b, args),
        }
    }

    fn check_sig(&mut self, t: &Ty, sig: &crate::types::FuncTy, args: &[IrExpr], who: &str) {
        if args.len() != sig.params.len() {
            self.error(
                "bad-arity",
                format!(
                    "call to {who} passes {} arguments but signature takes {}",
                    args.len(),
                    sig.params.len()
                ),
            );
            return;
        }
        for (i, (a, p)) in args.iter().zip(&sig.params).enumerate() {
            if !compat(&a.ty, p) {
                self.error(
                    "type-mismatch",
                    format!("argument {} to {who} has type {} (expected {})", i, a.ty, p),
                );
            }
        }
        if !compat(t, &sig.ret) {
            self.error(
                "type-mismatch",
                format!("call to {who} annotated {} but returns {}", t, sig.ret),
            );
        }
    }

    fn builtin_call(&mut self, t: &Ty, b: Builtin, args: &[IrExpr]) {
        use ArgClass::*;
        // Parameter classes per builtin. `Ptr` accepts any address-class
        // value (lowering passes aggregate pointers to memset/memcpy).
        let (params, variadic, ret): (&[ArgClass], bool, ArgClass) = match b {
            Builtin::Malloc => (&[Int], false, Ptr),
            Builtin::Free => (&[Ptr], false, Unit),
            Builtin::Realloc => (&[Ptr, Int], false, Ptr),
            Builtin::Memcpy => (&[Ptr, Ptr, Int], false, Ptr),
            Builtin::Memset => (&[Ptr, Int, Int], false, Ptr),
            Builtin::Sqrt
            | Builtin::Fabs
            | Builtin::Sin
            | Builtin::Cos
            | Builtin::Exp
            | Builtin::Log
            | Builtin::Floor
            | Builtin::Ceil => (&[Float], false, Float),
            Builtin::Pow | Builtin::Fmod => (&[Float, Float], false, Float),
            Builtin::Clock => (&[], false, Float),
            Builtin::Rand => (&[], false, Int),
            Builtin::Srand => (&[Int], false, Unit),
            Builtin::Abort => (&[], false, Unit),
            Builtin::Prefetch => (&[Ptr], false, Unit),
            Builtin::Printf => (&[Ptr], true, Int),
        };
        if args.len() < params.len() || (!variadic && args.len() != params.len()) {
            self.error(
                "bad-arity",
                format!(
                    "call to builtin {} passes {} arguments but it takes {}{}",
                    b.name(),
                    args.len(),
                    params.len(),
                    if variadic { " or more" } else { "" }
                ),
            );
            return;
        }
        for (i, (a, p)) in args.iter().zip(params).enumerate() {
            if !p.admits(&a.ty) {
                self.error(
                    "type-mismatch",
                    format!(
                        "argument {} to builtin {} has type {} (expected {})",
                        i,
                        b.name(),
                        a.ty,
                        p.describe()
                    ),
                );
            }
        }
        if variadic {
            for a in &args[params.len()..] {
                if !a.ty.is_register() {
                    self.error(
                        "type-mismatch",
                        format!(
                            "variadic argument to builtin {} has non-register type {}",
                            b.name(),
                            a.ty
                        ),
                    );
                }
            }
        }
        if !(ret.admits(t) || (ret == Unit && *t == Ty::Unit)) {
            self.error(
                "type-mismatch",
                format!(
                    "call to builtin {} annotated {} (expected {})",
                    b.name(),
                    t,
                    ret.describe()
                ),
            );
        }
    }
}

/// Loose per-argument classes for builtin signatures.
#[derive(Clone, Copy, PartialEq)]
enum ArgClass {
    /// Any address-class value.
    Ptr,
    /// Any integer scalar.
    Int,
    /// Any floating scalar.
    Float,
    /// No value.
    Unit,
}

impl ArgClass {
    fn admits(self, t: &Ty) -> bool {
        match self {
            ArgClass::Ptr => is_addr_class(t),
            ArgClass::Int => t.is_integer(),
            ArgClass::Float => t.is_float(),
            ArgClass::Unit => *t == Ty::Unit,
        }
    }

    fn describe(self) -> &'static str {
        match self {
            ArgClass::Ptr => "a pointer",
            ArgClass::Int => "an integer",
            ArgClass::Float => "a float",
            ArgClass::Unit => "no value",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{analyze_function, verify_function, NoEnv};
    use crate::ir::{ExprKind, IrExpr, IrFunction, StmtKind};
    use crate::types::{FuncTy, Ty};

    fn unit_fn(name: &str) -> IrFunction {
        IrFunction {
            name: name.into(),
            ty: FuncTy {
                params: vec![],
                ret: Ty::Unit,
            },
            locals: vec![],
            body: vec![],
        }
    }

    #[test]
    fn accepts_trivial_function() {
        let mut f = unit_fn("ok");
        f.body = vec![StmtKind::Return(None).into()];
        assert!(verify_function(&f, None, &NoEnv).is_ok());
    }

    #[test]
    fn rejects_type_corrupted_assignment() {
        let mut f = unit_fn("bad");
        let l = f.add_local("x", Ty::INT, false);
        f.body = vec![StmtKind::Assign {
            dst: l,
            value: IrExpr {
                ty: Ty::F64,
                kind: ExprKind::ConstFloat(1.5),
            },
        }
        .into()];
        let err = verify_function(&f, None, &NoEnv).unwrap_err();
        assert_eq!(err.code, "type-mismatch");
        assert!(err.message.contains("int"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_local() {
        let mut f = unit_fn("oob_local");
        f.body = vec![StmtKind::Expr(IrExpr::local(crate::ir::LocalId(7), Ty::INT)).into()];
        let err = verify_function(&f, None, &NoEnv).unwrap_err();
        assert_eq!(err.code, "bad-local-ref");
    }

    #[test]
    fn rejects_break_outside_loop() {
        let mut f = unit_fn("stray_break");
        f.body = vec![StmtKind::Break.into()];
        let err = verify_function(&f, None, &NoEnv).unwrap_err();
        assert_eq!(err.code, "bad-break");
    }

    #[test]
    fn accepts_pointer_offset_arithmetic() {
        // let p: &int in-memory array base + 4 (an int element offset, as
        // produced by index lowering).
        let mut f = unit_fn("ptr_math");
        let arr = f.add_local("a", Ty::Array(std::sync::Arc::new(Ty::INT), 8), true);
        let base = IrExpr {
            ty: Ty::INT.ptr_to(),
            kind: ExprKind::LocalAddr(arr),
        };
        let addr = IrExpr {
            ty: Ty::INT.ptr_to(),
            kind: ExprKind::Binary {
                op: crate::ir::BinKind::Add,
                lhs: Box::new(base),
                rhs: Box::new(IrExpr::int64(4)),
            },
        };
        let load = IrExpr {
            ty: Ty::INT,
            kind: ExprKind::Load(Box::new(addr)),
        };
        f.body = vec![StmtKind::Expr(load).into(), StmtKind::Return(None).into()];
        assert!(verify_function(&f, None, &NoEnv).is_ok());
    }

    #[test]
    fn analyze_reports_errors_before_warnings() {
        let mut f = unit_fn("mixed");
        f.body = vec![StmtKind::Break.into()];
        let diags = analyze_function(&f, None, &NoEnv);
        assert!(!diags.is_empty());
        assert_eq!(diags[0].severity, super::super::Severity::Error);
    }
}
