//! Dataflow analyses over the structured statement tree.
//!
//! Three passes, all warning-only:
//!
//! * **Use before initialization** — a forward *possible-init* walk. A local
//!   counts as initialized once any explicit write to it exists on *some*
//!   path (assignments, stores through its address, or its address escaping
//!   into a call). Compiler-synthesized zero-initialization (`implicit`
//!   statements) deliberately does not count: the VM zeroes every `var`, so
//!   reading one the programmer never wrote is well-defined but almost
//!   certainly a bug. Using possible- rather than definite-init keeps the
//!   pass free of false positives on loop-carried patterns (`for i ... a[i]
//!   = f(i)` then reading `a` after the loop).
//! * **Dead stores** — a backward liveness walk with a union fixpoint for
//!   loops. An explicit assignment whose value is never read afterwards and
//!   has no side effects is flagged.
//! * **Reachability** — statements after a `return`/`break`, after an `if`
//!   whose branches both terminate, or after a `while true` with no `break`
//!   are unreachable; a non-unit function whose body can fall through the
//!   end is missing a return.

use super::{diag, Diagnostic, Severity};
use crate::ir::{ExprKind, IrExpr, IrFunction, IrStmt, LocalId, StmtKind};
use crate::types::Ty;
use terra_syntax::Span;

pub(super) fn run(f: &IrFunction, diags: &mut Vec<Diagnostic>) {
    init_pass(f, diags);
    liveness_pass(f, diags);
}

/// Dense bitset over local ids.
#[derive(Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn full(n: usize) -> Self {
        let mut s = Self::new(n);
        for i in 0..n {
            s.insert(LocalId(i as u32));
        }
        s
    }

    fn insert(&mut self, l: LocalId) {
        let i = l.0 as usize;
        if i / 64 < self.words.len() {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    fn remove(&mut self, l: LocalId) {
        let i = l.0 as usize;
        if i / 64 < self.words.len() {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    fn contains(&self, l: LocalId) -> bool {
        let i = l.0 as usize;
        i / 64 < self.words.len() && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn union(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

// ---------------------------------------------------------------------------
// Forward pass: possible-init + reachability.
// ---------------------------------------------------------------------------

struct InitWalk<'a> {
    f: &'a IrFunction,
    diags: &'a mut Vec<Diagnostic>,
    init: BitSet,
    /// Locals already warned about (one finding per local).
    reported: BitSet,
    span: Span,
}

fn init_pass(f: &IrFunction, diags: &mut Vec<Diagnostic>) {
    let n = f.locals.len();
    let mut init = BitSet::new(n);
    for i in 0..f.param_count() {
        init.insert(LocalId(i as u32));
    }
    let mut w = InitWalk {
        f,
        diags,
        init,
        reported: BitSet::new(n),
        span: Span::synthetic(),
    };
    let falls_through = w.block(&f.body);
    if falls_through && f.ty.ret != Ty::Unit {
        let span = f
            .body
            .last()
            .map(|s| s.span)
            .unwrap_or_else(Span::synthetic);
        w.diags.push(diag(
            f,
            Severity::Warning,
            "missing-return",
            span,
            format!(
                "function returns {} but control can reach the end of its body",
                f.ty.ret
            ),
        ));
    }
}

impl InitWalk<'_> {
    /// Walks a block, applying init effects and reporting reads of
    /// never-written locals. Returns whether control can fall through the
    /// end of the block.
    fn block(&mut self, stmts: &[IrStmt]) -> bool {
        let mut reachable = true;
        let mut warned_unreachable = false;
        for s in stmts {
            if !reachable && !s.implicit && !warned_unreachable {
                self.diags.push(diag(
                    self.f,
                    Severity::Warning,
                    "unreachable-code",
                    s.span,
                    "unreachable code".to_string(),
                ));
                warned_unreachable = true;
            }
            if self.stmt(s) == Flow::Stops {
                reachable = false;
            }
        }
        reachable
    }

    fn stmt(&mut self, s: &IrStmt) -> Flow {
        self.span = s.span;
        if s.implicit {
            // Synthesized zero-init and defer expansion: no user-visible
            // reads or writes.
            return Flow::Continues;
        }
        match &s.kind {
            StmtKind::Assign { dst, value } => {
                self.value(value);
                self.init.insert(*dst);
            }
            StmtKind::Store { addr, value } => {
                self.value(value);
                self.addr(addr, false);
            }
            StmtKind::CopyMem { dst, src, .. } => {
                self.addr(src, true);
                self.addr(dst, false);
            }
            StmtKind::Expr(e) => self.value(e),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.value(cond);
                let entry = self.init.clone();
                let t = self.block(then_body);
                let then_exit = std::mem::replace(&mut self.init, entry);
                let e = self.block(else_body);
                // Possible-init: a write on either path counts.
                self.init.union(&then_exit);
                if !t && !e {
                    return Flow::Stops;
                }
            }
            StmtKind::While { cond, body } => {
                // Simulate the back edge for possible-init: anything written
                // anywhere in the body may be initialized by the time any
                // statement in it executes again.
                let mut writes = BitSet::new(self.f.locals.len());
                collect_writes(body, &mut writes);
                self.init.union(&writes);
                self.value(cond);
                self.block(body);
                if is_const_true(cond) && !has_toplevel_break(body) {
                    return Flow::Stops;
                }
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                self.value(start);
                self.value(stop);
                self.value(step);
                self.init.insert(*var);
                let mut writes = BitSet::new(self.f.locals.len());
                collect_writes(body, &mut writes);
                self.init.union(&writes);
                self.block(body);
            }
            StmtKind::ParallelFor {
                start, stop, args, ..
            } => {
                // The kernel body is a separate function; only the operands
                // are evaluated in this frame. Captured addresses escape via
                // `value`'s LocalAddr rule.
                self.value(start);
                self.value(stop);
                for a in args {
                    self.value(a);
                }
            }
            StmtKind::Return(v) => {
                if let Some(e) = v {
                    self.value(e);
                }
                return Flow::Stops;
            }
            StmtKind::Break => return Flow::Stops,
        }
        Flow::Continues
    }

    /// Visits an expression evaluated for its value.
    fn value(&mut self, e: &IrExpr) {
        match &e.kind {
            ExprKind::Local(l) => self.read(*l),
            // A bare address flowing into a value position (usually a call
            // argument) escapes: assume the callee initializes it.
            ExprKind::LocalAddr(l) => self.init.insert(*l),
            ExprKind::Load(a) => self.addr(a, true),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Cmp { lhs, rhs, .. } => {
                self.value(lhs);
                self.value(rhs);
            }
            ExprKind::Unary { expr, .. } | ExprKind::Cast(expr) => self.value(expr),
            ExprKind::Call { callee, args } => {
                if let crate::ir::Callee::Indirect(p) = callee {
                    self.value(p);
                }
                for a in args {
                    self.value(a);
                }
            }
            ExprKind::Select {
                cond,
                then_value,
                else_value,
            } => {
                self.value(cond);
                self.value(then_value);
                self.value(else_value);
            }
            _ => {}
        }
    }

    /// Visits an address expression: peels constant/variable offsets down to
    /// a `LocalAddr` base, treating the access as a read or write of that
    /// local. Offset subexpressions are ordinary value reads.
    fn addr(&mut self, a: &IrExpr, is_read: bool) {
        match &a.kind {
            ExprKind::LocalAddr(l) => {
                if is_read {
                    self.read(*l);
                } else {
                    self.init.insert(*l);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } if a.ty.is_pointer() => {
                self.addr(lhs, is_read);
                self.value(rhs);
            }
            ExprKind::Cast(inner) => self.addr(inner, is_read),
            _ => self.value(a),
        }
    }

    fn read(&mut self, l: LocalId) {
        if !self.init.contains(l) && !self.reported.contains(l) {
            self.reported.insert(l);
            let name = &self.f.locals[l.0 as usize].name;
            self.diags.push(diag(
                self.f,
                Severity::Warning,
                "use-before-init",
                self.span,
                format!("variable '{name}' is read but never initialized before this point"),
            ));
        }
    }
}

#[derive(PartialEq)]
enum Flow {
    Continues,
    Stops,
}

/// Records every local that any statement in `stmts` (recursively) could
/// write: assignment targets, store/copy destinations, escaping addresses.
fn collect_writes(stmts: &[IrStmt], out: &mut BitSet) {
    fn expr(e: &IrExpr, out: &mut BitSet) {
        if let ExprKind::LocalAddr(l) = e.kind {
            out.insert(l);
        }
        each_child(e, &mut |c| expr(c, out));
    }
    for s in stmts {
        match &s.kind {
            StmtKind::Assign { dst, value } => {
                out.insert(*dst);
                expr(value, out);
            }
            StmtKind::Store { addr, value } => {
                expr(addr, out);
                expr(value, out);
            }
            StmtKind::CopyMem { dst, src, .. } => {
                expr(dst, out);
                expr(src, out);
            }
            StmtKind::Expr(e) => expr(e, out),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, out);
                collect_writes(then_body, out);
                collect_writes(else_body, out);
            }
            StmtKind::While { cond, body } => {
                expr(cond, out);
                collect_writes(body, out);
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                out.insert(*var);
                expr(start, out);
                expr(stop, out);
                expr(step, out);
                collect_writes(body, out);
            }
            StmtKind::ParallelFor {
                start, stop, args, ..
            } => {
                expr(start, out);
                expr(stop, out);
                for a in args {
                    expr(a, out);
                }
            }
            StmtKind::Return(Some(e)) => expr(e, out),
            StmtKind::Return(None) | StmtKind::Break => {}
        }
    }
}

fn is_const_true(e: &IrExpr) -> bool {
    matches!(e.kind, ExprKind::ConstBool(true))
}

/// Whether `stmts` contains a `break` that targets the enclosing loop
/// (i.e. not inside a nested loop).
fn has_toplevel_break(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Break => true,
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => has_toplevel_break(then_body) || has_toplevel_break(else_body),
        _ => false,
    })
}

fn each_child(e: &IrExpr, f: &mut dyn FnMut(&IrExpr)) {
    match &e.kind {
        ExprKind::Load(a) => f(a),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Cmp { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast(expr) => f(expr),
        ExprKind::Call { callee, args } => {
            if let crate::ir::Callee::Indirect(p) = callee {
                f(p);
            }
            for a in args {
                f(a);
            }
        }
        ExprKind::Select {
            cond,
            then_value,
            else_value,
        } => {
            f(cond);
            f(then_value);
            f(else_value);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Backward pass: liveness + dead stores.
// ---------------------------------------------------------------------------

struct Liveness<'a> {
    f: &'a IrFunction,
    diags: &'a mut Vec<Diagnostic>,
}

fn liveness_pass(f: &IrFunction, diags: &mut Vec<Diagnostic>) {
    let mut lv = Liveness { f, diags };
    let exit = BitSet::new(f.locals.len());
    let _ = lv.block(&f.body, exit, true);
}

impl Liveness<'_> {
    /// Computes live-in of `stmts` given `live` (live-out). Dead-store
    /// warnings are emitted only when `report` is set, so loop fixpoint
    /// iterations stay silent.
    fn block(&mut self, stmts: &[IrStmt], mut live: BitSet, report: bool) -> BitSet {
        for s in stmts.iter().rev() {
            live = self.stmt(s, live, report);
        }
        live
    }

    fn stmt(&mut self, s: &IrStmt, mut live: BitSet, report: bool) -> BitSet {
        match &s.kind {
            StmtKind::Assign { dst, value } => {
                if report && !s.implicit && !live.contains(*dst) && !has_call(value) {
                    let name = &self.f.locals[dst.0 as usize].name;
                    self.diags.push(diag(
                        self.f,
                        Severity::Warning,
                        "dead-store",
                        s.span,
                        format!("value assigned to '{name}' is never read"),
                    ));
                }
                live.remove(*dst);
                add_uses(value, &mut live);
                live
            }
            StmtKind::Store { addr, value } => {
                // Memory is not tracked: stores are gen-only.
                add_uses(addr, &mut live);
                add_uses(value, &mut live);
                live
            }
            StmtKind::CopyMem { dst, src, .. } => {
                add_uses(dst, &mut live);
                add_uses(src, &mut live);
                live
            }
            StmtKind::Expr(e) => {
                add_uses(e, &mut live);
                live
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let t = self.block(then_body, live.clone(), report);
                let mut e = self.block(else_body, live, report);
                e.union(&t);
                add_uses(cond, &mut e);
                e
            }
            StmtKind::While { cond, body } => {
                let mut boundary = live;
                add_uses(cond, &mut boundary);
                loop {
                    let li = self.block(body, boundary.clone(), false);
                    let mut next = boundary.clone();
                    next.union(&li);
                    if next == boundary {
                        break;
                    }
                    boundary = next;
                }
                if report {
                    let _ = self.block(body, boundary.clone(), true);
                }
                boundary
            }
            StmtKind::For {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let mut boundary = live;
                // The loop variable and bounds are read by the loop header
                // on every iteration.
                boundary.insert(*var);
                add_uses(stop, &mut boundary);
                add_uses(step, &mut boundary);
                loop {
                    let li = self.block(body, boundary.clone(), false);
                    let mut next = boundary.clone();
                    next.union(&li);
                    if next == boundary {
                        break;
                    }
                    boundary = next;
                }
                if report {
                    let _ = self.block(body, boundary.clone(), true);
                }
                let mut live_in = boundary;
                live_in.remove(*var);
                add_uses(start, &mut live_in);
                add_uses(stop, &mut live_in);
                add_uses(step, &mut live_in);
                live_in
            }
            StmtKind::ParallelFor {
                start, stop, args, ..
            } => {
                add_uses(start, &mut live);
                add_uses(stop, &mut live);
                for a in args {
                    add_uses(a, &mut live);
                }
                live
            }
            StmtKind::Return(v) => {
                let mut live = BitSet::new(self.f.locals.len());
                if let Some(e) = v {
                    add_uses(e, &mut live);
                }
                live
            }
            // `break` jumps to the loop exit, whose liveness this structured
            // walk doesn't thread through; assume everything is live to stay
            // free of false dead-store positives.
            StmtKind::Break => BitSet::full(self.f.locals.len()),
        }
    }
}

/// Adds every local mentioned by `e` (reads and address-takes) to `live`.
fn add_uses(e: &IrExpr, live: &mut BitSet) {
    match e.kind {
        ExprKind::Local(l) | ExprKind::LocalAddr(l) => live.insert(l),
        _ => {}
    }
    each_child(e, &mut |c| add_uses(c, live));
}

fn has_call(e: &IrExpr) -> bool {
    if matches!(e.kind, ExprKind::Call { .. }) {
        return true;
    }
    let mut found = false;
    each_child(e, &mut |c| found |= has_call(c));
    found
}

#[cfg(test)]
mod tests {
    use super::super::{analyze_function, NoEnv};
    use crate::ir::{CmpKind, IrExpr, IrFunction, IrStmt, StmtKind};
    use crate::types::{FuncTy, Ty};

    fn int_fn(name: &str) -> IrFunction {
        IrFunction {
            name: name.into(),
            ty: FuncTy {
                params: vec![],
                ret: Ty::INT,
            },
            locals: vec![],
            body: vec![],
        }
    }

    fn codes(f: &IrFunction) -> Vec<&'static str> {
        analyze_function(f, None, &NoEnv)
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn flags_use_before_init() {
        let mut f = int_fn("ubi");
        let x = f.add_local("x", Ty::INT, false);
        // var x : int  (implicit zero-init)  ;  return x
        f.body = vec![
            IrStmt::synthesized(
                terra_syntax::Span::synthetic(),
                StmtKind::Assign {
                    dst: x,
                    value: IrExpr::int32(0),
                },
            ),
            StmtKind::Return(Some(IrExpr::local(x, Ty::INT))).into(),
        ];
        assert!(codes(&f).contains(&"use-before-init"), "{:?}", codes(&f));
    }

    #[test]
    fn initialized_variable_is_clean() {
        let mut f = int_fn("ok");
        let x = f.add_local("x", Ty::INT, false);
        f.body = vec![
            StmtKind::Assign {
                dst: x,
                value: IrExpr::int32(7),
            }
            .into(),
            StmtKind::Return(Some(IrExpr::local(x, Ty::INT))).into(),
        ];
        assert!(codes(&f).is_empty(), "{:?}", codes(&f));
    }

    #[test]
    fn loop_body_writes_count_as_init() {
        let mut f = int_fn("loop_init");
        let x = f.add_local("x", Ty::INT, false);
        let i = f.add_local("i", Ty::INT, false);
        f.body = vec![
            StmtKind::For {
                var: i,
                start: IrExpr::int32(0),
                stop: IrExpr::int32(4),
                step: IrExpr::int32(1),
                body: vec![StmtKind::Assign {
                    dst: x,
                    value: IrExpr::local(i, Ty::INT),
                }
                .into()],
            }
            .into(),
            StmtKind::Return(Some(IrExpr::local(x, Ty::INT))).into(),
        ];
        assert!(!codes(&f).contains(&"use-before-init"), "{:?}", codes(&f));
    }

    #[test]
    fn flags_dead_store() {
        let mut f = int_fn("ds");
        let x = f.add_local("x", Ty::INT, false);
        f.body = vec![
            StmtKind::Assign {
                dst: x,
                value: IrExpr::int32(1),
            }
            .into(),
            StmtKind::Assign {
                dst: x,
                value: IrExpr::int32(2),
            }
            .into(),
            StmtKind::Return(Some(IrExpr::local(x, Ty::INT))).into(),
        ];
        assert_eq!(codes(&f), vec!["dead-store"]);
    }

    #[test]
    fn flags_unreachable_code() {
        let mut f = int_fn("unreach");
        f.body = vec![
            StmtKind::Return(Some(IrExpr::int32(1))).into(),
            StmtKind::Return(Some(IrExpr::int32(2))).into(),
        ];
        assert_eq!(codes(&f), vec!["unreachable-code"]);
    }

    #[test]
    fn flags_missing_return() {
        let mut f = int_fn("noreturn");
        let x = f.add_local("x", Ty::INT, false);
        f.body = vec![StmtKind::If {
            cond: IrExpr::cmp(CmpKind::Gt, IrExpr::int32(1), IrExpr::int32(0)),
            then_body: vec![StmtKind::Return(Some(IrExpr::local(x, Ty::INT))).into()],
            else_body: vec![],
        }
        .into()];
        // x is also read before init in the then-arm.
        let c = codes(&f);
        assert!(c.contains(&"missing-return"), "{c:?}");
    }

    #[test]
    fn infinite_loop_satisfies_return() {
        let mut f = int_fn("spin");
        f.body = vec![StmtKind::While {
            cond: IrExpr::boolean(true),
            body: vec![],
        }
        .into()];
        assert!(!codes(&f).contains(&"missing-return"), "{:?}", codes(&f));
    }

    // -- BitSet ------------------------------------------------------------

    use super::BitSet;
    use crate::ir::LocalId;

    #[test]
    fn bitset_insert_remove_round_trip_at_word_boundaries() {
        // 63/64/65 exercise the last-bit-of-a-word, exact-multiple, and
        // one-past-a-word-boundary layouts.
        for n in [1usize, 63, 64, 65, 130] {
            let mut s = BitSet::new(n);
            for i in 0..n {
                assert!(!s.contains(LocalId(i as u32)), "n={n} fresh bit {i} set");
                s.insert(LocalId(i as u32));
                assert!(s.contains(LocalId(i as u32)), "n={n} bit {i} lost");
            }
            for i in 0..n {
                s.remove(LocalId(i as u32));
                assert!(!s.contains(LocalId(i as u32)), "n={n} bit {i} survived");
            }
        }
    }

    #[test]
    fn bitset_full_holds_exactly_the_first_n_ids() {
        for n in [0usize, 63, 64, 65] {
            let s = BitSet::full(n);
            for i in 0..n {
                assert!(s.contains(LocalId(i as u32)), "n={n} missing {i}");
            }
            assert!(!s.contains(LocalId(n as u32)), "n={n} contains {n}");
        }
    }

    #[test]
    fn bitset_out_of_range_ops_are_noops() {
        let mut s = BitSet::new(64);
        s.insert(LocalId(64));
        s.insert(LocalId(1000));
        assert!(!s.contains(LocalId(64)));
        assert!(!s.contains(LocalId(1000)));
        s.remove(LocalId(1000)); // must not panic
        assert_eq!(s.words.len(), 1, "out-of-range insert grew the set");
    }

    #[test]
    fn bitset_union_is_bitwise_or() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(LocalId(3));
        a.insert(LocalId(64));
        b.insert(LocalId(64));
        b.insert(LocalId(99));
        a.union(&b);
        for (i, want) in [(3u32, true), (64, true), (99, true), (0, false)] {
            assert_eq!(a.contains(LocalId(i)), want, "bit {i}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Model check against a HashSet: any interleaving of in-range
        /// inserts and removes leaves exactly the model's members set.
        #[test]
        fn bitset_matches_hashset_model(
            n in 1usize..=130,
            ops in proptest::collection::vec((proptest::prelude::any::<bool>(), 0u32..130), 0..64),
        ) {
            // The guard is word-granular: ids up to the last allocated
            // word round-trip; ids past it are dropped.
            let cap = n.div_ceil(64) * 64;
            let mut s = BitSet::new(n);
            let mut model = std::collections::HashSet::new();
            for (is_insert, id) in ops {
                if is_insert {
                    s.insert(LocalId(id));
                    if (id as usize) < cap {
                        model.insert(id);
                    }
                } else {
                    s.remove(LocalId(id));
                    model.remove(&id);
                }
                for probe in 0..130u32 {
                    let want = model.contains(&probe);
                    proptest::prop_assert_eq!(s.contains(LocalId(probe)), want);
                }
            }
        }

        /// Union agrees with the set-theoretic union of two models.
        #[test]
        fn bitset_union_matches_model(
            n in 1usize..=130,
            xs in proptest::collection::vec(0u32..130, 0..32),
            ys in proptest::collection::vec(0u32..130, 0..32),
        ) {
            let mut a = BitSet::new(n);
            let mut b = BitSet::new(n);
            for &x in &xs {
                a.insert(LocalId(x));
            }
            for &y in &ys {
                b.insert(LocalId(y));
            }
            a.union(&b);
            let cap = n.div_ceil(64) * 64;
            for probe in 0..130u32 {
                let want = (probe as usize) < cap
                    && (xs.contains(&probe) || ys.contains(&probe));
                proptest::prop_assert_eq!(a.contains(LocalId(probe)), want);
            }
        }
    }
}
